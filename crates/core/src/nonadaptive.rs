//! The nonadaptive bit-level baseline: Fig. 4(b) realized with
//! comparators only.
//!
//! Section III.A starts from an odd-even merge variant whose balanced
//! merging block costs `O(n lg n)` per merge — `O(n lg² n)` for the whole
//! sorter — and Networks 1–2 exist precisely to cut that down by
//! *adapting* on the ones-count / middle bits. Building the nonadaptive
//! network on the same circuit substrate quantifies the saving
//! (experiment E17, the adaptivity ablation): same sorting function, same
//! depth order, but a `lg n / 4`-factor more hardware.
//!
//! The construction is the bit-level image of
//! `absort_cmpnet::fig4::fig4b_sort`: recursive half-sorters, the shuffle
//! (Theorem 1), and the full balanced merging block of bit comparators —
//! no prefix adder, no swappers, no data-dependent select signals.

use absort_blocks::stages::shuffle;
use absort_circuit::{assert_pow2, Builder, Circuit, Wire};

/// Builds the n-input nonadaptive binary sorter (bit-level Fig. 4(b)).
///
/// Cost is exactly `n lg n (lg n + 1)/4` bit comparators (the same count
/// as Batcher's bitonic sorter); depth `lg n (lg n + 1)/2`.
pub fn build(n: usize) -> Circuit {
    assert_pow2(n, "nonadaptive fig4b sorter");
    #[cfg(feature = "telemetry")]
    let _tel = absort_telemetry::span("build");
    let mut b = Builder::new();
    let ins = b.input_bus(n);
    let outs = b.scoped("fig4b_sorter", |b| sorter(b, &ins));
    b.outputs(&outs);
    b.finish()
}

fn sorter(b: &mut Builder, xs: &[Wire]) -> Vec<Wire> {
    let m = xs.len();
    if m == 1 {
        return xs.to_vec();
    }
    if m == 2 {
        let (lo, hi) = b.bit_compare(xs[0], xs[1]);
        return vec![lo, hi];
    }
    let u = sorter(b, &xs[..m / 2]);
    let l = sorter(b, &xs[m / 2..]);
    let mut cat = u;
    cat.extend_from_slice(&l);
    let z = shuffle(&cat);
    balanced_block(b, &z)
}

/// The full balanced merging block in bit comparators: the first stage
/// pairs `i` with `m−1−i`, then both halves recurse.
fn balanced_block(b: &mut Builder, xs: &[Wire]) -> Vec<Wire> {
    let m = xs.len();
    if m < 2 {
        return xs.to_vec();
    }
    let mut y = xs.to_vec();
    for i in 0..m / 2 {
        let (lo, hi) = b.bit_compare(y[i], y[m - 1 - i]);
        y[i] = lo;
        y[m - 1 - i] = hi;
    }
    let upper = balanced_block(b, &y[..m / 2]);
    let lower = balanced_block(b, &y[m / 2..]);
    let mut out = upper;
    out.extend(lower);
    out
}

/// Exact cost of [`build`]: `n lg n (lg n + 1)/4` (validated against the
/// built circuit and against `absort_cmpnet::fig4::fig4b_cost`).
pub fn cost_exact(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    let k = n.trailing_zeros() as u64;
    n as u64 * k * (k + 1) / 4
}

/// The adaptivity saving at size `n`: nonadaptive cost divided by the
/// mux-merger sorter's exact cost. Grows as `Θ(lg n)`.
pub fn adaptivity_saving(n: usize) -> f64 {
    cost_exact(n) as f64 / crate::muxmerge::formulas::sorter_cost_exact(n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{all_sequences, sorted_oracle};
    use rand::prelude::*;

    #[test]
    fn sorts_exhaustively_to_16() {
        for k in 1..=4usize {
            let n = 1 << k;
            let c = build(n);
            for s in all_sequences(n) {
                assert_eq!(c.eval(&s), sorted_oracle(&s), "n={n}");
            }
        }
    }

    #[test]
    fn cost_matches_closed_form_and_cmpnet() {
        for k in 1..=10u32 {
            let n = 1usize << k;
            let c = build(n);
            assert_eq!(c.cost().total, cost_exact(n), "n={n}");
            assert_eq!(
                cost_exact(n),
                absort_cmpnet::fig4::fig4b_cost(n),
                "n={n}: bit-level build must mirror the word-level network"
            );
        }
    }

    #[test]
    fn depth_matches_batcher_order() {
        for k in 2..=8usize {
            let n = 1usize << k;
            assert_eq!(build(n).depth(), k * (k + 1) / 2, "n={n}");
        }
    }

    #[test]
    fn adaptivity_saving_grows_with_n() {
        let mut prev = 0.0;
        for k in [6u32, 10, 14, 18] {
            let s = adaptivity_saving(1usize << k);
            assert!(s > prev, "saving must grow: k={k}, {s}");
            prev = s;
        }
        // Θ(lg n)/4-ish: at n=2^18 expect a saving around 18/4 ≈ 4.5 vs
        // the ~3.56 constant of the mux-merger — i.e. > 1.2
        assert!(prev > 1.2, "saving at 2^18 is {prev}");
    }

    #[test]
    fn agrees_with_adaptive_sorters() {
        let n = 64;
        let na = build(n);
        let mm = crate::muxmerge::build(n);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let s: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            assert_eq!(na.eval(&s), mm.eval(&s));
        }
    }
}
