//! Network 2: the mux-merger binary sorter (paper Section III.B, Fig. 6,
//! Table I).
//!
//! The sorter recursively bisorts its input with two half-size sorters and
//! merges with a *mux-merger*. Theorem 3 says a bisorted sequence cut into
//! quarters has at least two clean quarters, the other two concatenating
//! to a bisorted sequence — and which-is-which is decided by the two
//! "middle bits": the topmost elements of quarters 2 and 4. The
//! mux-merger uses those two data bits as select inputs of an IN-SWAP
//! four-way swapper (bringing the bisorted pair to the middle two
//! quarters and the clean quarters outside), recurses on the middle half,
//! and restores order with an OUT-SWAP four-way swapper.
//!
//! Paper bounds: merger cost `C_m(n) = 4n`, merger depth `2 lg n`;
//! sorter cost `C(n) = 4 n lg n`, sorter depth `Σ_i 2 lg(n/2^i) = Θ(lg² n)`.
//!
//! ## Table I as implemented
//!
//! With select `(s1, s2)` = (top of Xq2, top of Xq4), writing quarter
//! permutations as output-position ← input-quarter maps:
//!
//! | sel | pattern (Thm. 3) | IN-SWAP | OUT-SWAP |
//! |-----|------------------|---------|----------|
//! | 00 | Xq1, Xq3 all 0; Xq2·Xq4 bisorted | `[0,1,3,2]` | `[0,3,1,2]` |
//! | 01 | Xq1 all 0, Xq4 all 1; Xq2·Xq3 bisorted | identity | identity |
//! | 10 | Xq2 all 1, Xq3 all 0; Xq1·Xq4 bisorted | `[2,0,3,1]` | identity |
//! | 11 | Xq2, Xq4 all 1; Xq1·Xq3 bisorted | `[1,0,2,3]` | `[1,2,0,3]` |
//!
//! (The printed table's cycle notation is partially illegible in the
//! archival scan; the table above is *derived from Theorem 3* — clean-0
//! quarters to the top, the bisorted pair to the middle, clean-1 quarters
//! to the bottom — and verified exhaustively over every bisorted input in
//! `table::verify_table1`, which is the behaviour Table I specifies.)

use crate::lang;
use crate::packet::{self, Keyed};
use absort_blocks::swap::{four_way_swapper, QuarterPerm};
use absort_circuit::{assert_pow2, Builder, Circuit, Wire};

/// IN-SWAP quarter permutations, indexed by select value `2·s1 + s2`.
pub const IN_SWAP: [QuarterPerm; 4] = [
    [0, 1, 3, 2], // 00: pair (q2,q4) to middle, q1 top, q3 bottom
    [0, 1, 2, 3], // 01: already [clean0, pair, pair, clean1]
    [2, 0, 3, 1], // 10: q3 (0s) top, pair (q1,q4) middle, q2 (1s) bottom
    [1, 0, 2, 3], // 11: q2 (1s) rides top, pair (q1,q3) middle, q4 bottom
];

/// OUT-SWAP quarter permutations, indexed like [`IN_SWAP`].
pub const OUT_SWAP: [QuarterPerm; 4] = [
    [0, 3, 1, 2], // 00: clean 0s from position 4 back up to position 2
    [0, 1, 2, 3], // 01: already sorted
    [0, 1, 2, 3], // 10: already sorted
    [1, 2, 0, 3], // 11: clean 1s from position 1 down to position 3
];

/// Builds the n-input mux-merger circuit: merges a *bisorted* input into
/// sorted order. (Fig. 6's dashed rectangle.) Cost `4n − 7` ≈ paper's
/// `4n`, depth `2 lg n − 1` ≈ paper's `2 lg n`.
pub fn build_merger(n: usize) -> Circuit {
    assert_pow2(n, "mux-merger");
    #[cfg(feature = "telemetry")]
    let _tel = absort_telemetry::span("build");
    let mut b = Builder::new();
    let ins = b.input_bus(n);
    let outs = b.scoped("mux_merger", |b| merger(b, &ins));
    b.outputs(&outs);
    b.finish()
}

/// Builds the full n-input mux-merger binary sorter (Fig. 6).
///
/// ```
/// use absort_core::{lang, muxmerge};
///
/// let circuit = muxmerge::build(16);
/// let input = lang::bits("0110_1001_1100_0011");
/// assert_eq!(circuit.eval(&input), lang::sorted_oracle(&input));
/// // the exact 4n lg n − Θ(n) recurrence, verified bit-for-bit:
/// assert_eq!(circuit.cost().total, muxmerge::formulas::sorter_cost_exact(16));
/// ```
pub fn build(n: usize) -> Circuit {
    assert_pow2(n, "mux-merger sorter");
    #[cfg(feature = "telemetry")]
    let _tel = absort_telemetry::span("build");
    let mut b = Builder::new();
    let ins = b.input_bus(n);
    let outs = b.scoped("muxmerge_sorter", |b| sorter(b, &ins));
    b.outputs(&outs);
    b.finish()
}

/// In-builder sorter: embeds the mux-merger sorter into a larger
/// construction (used by the fish-merger circuits and ablations).
pub fn sorter_wires(b: &mut Builder, xs: &[Wire]) -> Vec<Wire> {
    sorter(b, xs)
}

/// In-builder merger: embeds the (bisorted-input) mux-merger.
pub fn merger_wires(b: &mut Builder, xs: &[Wire]) -> Vec<Wire> {
    merger(b, xs)
}

fn sorter(b: &mut Builder, xs: &[Wire]) -> Vec<Wire> {
    let m = xs.len();
    if m == 1 {
        return xs.to_vec();
    }
    if m == 2 {
        let (lo, hi) = b.bit_compare(xs[0], xs[1]);
        return vec![lo, hi];
    }
    let u = b.scoped("upper", |b| sorter(b, &xs[..m / 2]));
    let l = b.scoped("lower", |b| sorter(b, &xs[m / 2..]));
    let mut cat = u;
    cat.extend_from_slice(&l);
    b.scoped("merger", |b| merger(b, &cat))
}

/// The recursive mux-merger on a bisorted wire bundle.
fn merger(b: &mut Builder, xs: &[Wire]) -> Vec<Wire> {
    let m = xs.len();
    if m == 1 {
        return xs.to_vec();
    }
    if m == 2 {
        // A bisorted 2-sequence is arbitrary; one comparator merges it.
        let (lo, hi) = b.bit_compare(xs[0], xs[1]);
        return vec![lo, hi];
    }
    let q = m / 4;
    // Select inputs: the data bits at the top of quarters 2 and 4.
    let s1 = xs[q];
    let s2 = xs[3 * q];
    let inward = four_way_swapper(b, s1, s2, xs, IN_SWAP);
    let merged_mid = b.scoped("level", |b| merger(b, &inward[q..3 * q]));
    let mut joined = inward[..q].to_vec();
    joined.extend_from_slice(&merged_mid);
    joined.extend_from_slice(&inward[3 * q..]);
    four_way_swapper(b, s1, s2, &joined, OUT_SWAP)
}

/// Functional mirror of the mux-merger on a bisorted sequence, asserting
/// Theorem 3's structure along the way (debug builds). Generic over
/// [`Keyed`] line values so payloads are carried exactly as the network
/// moves its lines.
pub fn merge<P: Keyed>(x: &[P]) -> Vec<P> {
    assert_pow2(x.len(), "mux-merge (functional)");
    assert!(
        lang::is_bisorted(&packet::keys(x)),
        "mux-merger input must be bisorted"
    );
    merge_rec(x)
}

/// One level of a recorded mux-merge (for Fig. 6-style traces).
#[derive(Debug, Clone)]
pub struct MergeStep {
    /// Width at this level.
    pub m: usize,
    /// The bisorted input (key bits).
    pub input: Vec<bool>,
    /// The two select bits `(s1, s2)` read from the quarter tops.
    pub selects: (bool, bool),
    /// After the IN-SWAP.
    pub after_in_swap: Vec<bool>,
    /// This level's merged output.
    pub output: Vec<bool>,
}

/// [`merge`] with a per-level trace (outermost level first).
pub fn merge_traced(x: &[bool]) -> (Vec<bool>, Vec<MergeStep>) {
    assert_pow2(x.len(), "mux-merge (traced)");
    assert!(lang::is_bisorted(x), "mux-merger input must be bisorted");
    let mut steps = Vec::new();
    let out = merge_traced_rec(x, &mut steps);
    (out, steps)
}

fn merge_traced_rec(x: &[bool], steps: &mut Vec<MergeStep>) -> Vec<bool> {
    let m = x.len();
    if m <= 2 {
        return merge_rec(x);
    }
    let q = m / 4;
    let sel = (usize::from(x[q]) << 1) | usize::from(x[3 * q]);
    let inward = apply_quarters(x, IN_SWAP[sel]);
    let mid = merge_traced_rec(&inward[q..3 * q], steps);
    let mut joined = inward[..q].to_vec();
    joined.extend_from_slice(&mid);
    joined.extend_from_slice(&inward[3 * q..]);
    let out = apply_quarters(&joined, OUT_SWAP[sel]);
    steps.insert(
        0,
        MergeStep {
            m,
            input: x.to_vec(),
            selects: (x[q], x[3 * q]),
            after_in_swap: inward,
            output: out.clone(),
        },
    );
    out
}

fn merge_rec<P: Keyed>(x: &[P]) -> Vec<P> {
    let m = x.len();
    if m == 1 {
        return x.to_vec();
    }
    if m == 2 {
        let (lo, hi) = packet::compare_exchange(x[0].clone(), x[1].clone());
        return vec![lo, hi];
    }
    let q = m / 4;
    let sel = (usize::from(x[q].key()) << 1) | usize::from(x[3 * q].key());
    let inward = apply_quarters(x, IN_SWAP[sel]);
    #[cfg(debug_assertions)]
    {
        let ks = packet::keys(&inward);
        debug_assert!(
            lang::is_bisorted(&ks[q..3 * q]),
            "middle half must be bisorted (Theorem 3)"
        );
        debug_assert!(lang::is_clean(&ks[..q]), "top quarter must be clean");
        debug_assert!(lang::is_clean(&ks[3 * q..]), "bottom quarter must be clean");
    }
    let mid = merge_rec(&inward[q..3 * q]);
    let mut joined = inward[..q].to_vec();
    joined.extend_from_slice(&mid);
    joined.extend_from_slice(&inward[3 * q..]);
    apply_quarters(&joined, OUT_SWAP[sel])
}

/// Functional mux-merger sorter, generic over [`Keyed`] line values.
pub fn sort<P: Keyed>(items: &[P]) -> Vec<P> {
    assert_pow2(items.len(), "mux-merger sorter (functional)");
    let m = items.len();
    if m == 1 {
        return items.to_vec();
    }
    if m == 2 {
        let (lo, hi) = packet::compare_exchange(items[0].clone(), items[1].clone());
        return vec![lo, hi];
    }
    let mut cat = sort(&items[..m / 2]);
    cat.extend(sort(&items[m / 2..]));
    merge_rec(&cat)
}

/// Applies a quarter permutation (output quarter `p` ← input quarter
/// `perm[p]`) to a sequence.
pub fn apply_quarters<P: Clone>(x: &[P], perm: QuarterPerm) -> Vec<P> {
    let q = x.len() / 4;
    let mut out = Vec::with_capacity(x.len());
    for p in perm {
        out.extend_from_slice(&x[p as usize * q..(p as usize + 1) * q]);
    }
    out
}

/// Paper closed forms for Network 2.
pub mod formulas {
    /// Merger cost: the paper's `C_m(n) = 4n`; our construction is exact:
    /// `C_m(n) = 2n + 2(n/2) + … + 2·4 + 1 = 4n − 7` for `n ≥ 4`.
    pub fn merger_cost_exact(n: usize) -> u64 {
        assert!(n.is_power_of_two());
        match n {
            1 => 0,
            2 => 1,
            _ => 2 * n as u64 + merger_cost_exact(n / 2),
        }
    }

    /// Sorter cost recurrence `C(n) = 2 C(n/2) + C_m(n)`, `C(2) = 1` —
    /// `Θ(4 n lg n)` with the exact value returned.
    pub fn sorter_cost_exact(n: usize) -> u64 {
        assert!(n.is_power_of_two());
        match n {
            1 => 0,
            2 => 1,
            _ => 2 * sorter_cost_exact(n / 2) + merger_cost_exact(n),
        }
    }

    /// The paper's dominant sorter cost term, `4 n lg n`.
    pub fn paper_cost_dominant(n: usize) -> u64 {
        assert!(n.is_power_of_two());
        4 * n as u64 * n.trailing_zeros() as u64
    }

    /// Merger depth: `D_m(n) = 2 + D_m(n/2)`, `D_m(2) = 1` ⇒ `2 lg n − 1`.
    pub fn merger_depth_exact(n: usize) -> u64 {
        assert!(n.is_power_of_two());
        match n {
            1 => 0,
            2 => 1,
            _ => 2 * n.trailing_zeros() as u64 - 1,
        }
    }

    /// Sorter depth recurrence `D(n) = D(n/2) + D_m(n)` ⇒ `Θ(lg² n)`
    /// (the journal text prints `D(n) = 2 lg n` here, but its own Section
    /// III.C uses `2 lg² k` for the k-input mux-merger sorter, consistent
    /// with this recurrence).
    pub fn sorter_depth_exact(n: usize) -> u64 {
        assert!(n.is_power_of_two());
        match n {
            1 => 0,
            2 => 1,
            _ => sorter_depth_exact(n / 2) + merger_depth_exact(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{all_bisorted, all_sequences, sorted_oracle};
    use rand::prelude::*;

    #[test]
    fn merge_all_bisorted_to_24_functional() {
        for n in [4usize, 8, 16] {
            for x in all_bisorted(n) {
                assert_eq!(merge(&x), sorted_oracle(&x), "n={n}");
            }
        }
    }

    #[test]
    fn merger_circuit_exhaustive_over_bisorted() {
        for n in [4usize, 8, 16, 32] {
            let c = build_merger(n);
            for x in all_bisorted(n) {
                assert_eq!(c.eval(&x), sorted_oracle(&x), "n={n}");
            }
        }
    }

    #[test]
    fn sorter_circuit_exhaustive_to_16() {
        for k in 1..=4usize {
            let n = 1 << k;
            let c = build(n);
            for s in all_sequences(n) {
                assert_eq!(c.eval(&s), sorted_oracle(&s), "n={n}");
            }
        }
    }

    #[test]
    fn functional_sorter_matches_oracle_large_random() {
        let mut rng = StdRng::seed_from_u64(9);
        for k in [6usize, 10, 14] {
            let n = 1 << k;
            for _ in 0..10 {
                let s: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                assert_eq!(sort(&s), sorted_oracle(&s), "n={n}");
            }
        }
    }

    #[test]
    fn circuit_and_functional_agree() {
        let n = 64;
        let c = build(n);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let s: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            assert_eq!(c.eval(&s), sort(&s));
        }
    }

    #[test]
    fn merger_cost_matches_4n() {
        for k in 2..=10u32 {
            let n = 1usize << k;
            let c = build_merger(n);
            assert_eq!(c.cost().total, formulas::merger_cost_exact(n), "n={n}");
            assert_eq!(formulas::merger_cost_exact(n), 4 * n as u64 - 7, "n={n}");
        }
    }

    #[test]
    fn merger_depth_matches_2lgn() {
        for k in 2..=10u32 {
            let n = 1usize << k;
            let c = build_merger(n);
            assert_eq!(c.depth() as u64, formulas::merger_depth_exact(n), "n={n}");
        }
    }

    #[test]
    fn sorter_cost_matches_recurrence_and_dominant_term() {
        for k in 1..=10u32 {
            let n = 1usize << k;
            let c = build(n);
            let cost = c.cost().total;
            assert_eq!(cost, formulas::sorter_cost_exact(n), "n={n}");
            let dominant = formulas::paper_cost_dominant(n);
            assert!(cost <= dominant, "n={n}: exact {cost} must be ≤ 4n lg n");
            assert!(
                n < 8 || cost >= dominant - 8 * n as u64,
                "n={n}: exact {cost} too far below 4n lg n = {dominant}"
            );
        }
    }

    #[test]
    fn sorter_depth_matches_recurrence() {
        for k in 1..=10u32 {
            let n = 1usize << k;
            assert_eq!(
                build(n).depth() as u64,
                formulas::sorter_depth_exact(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn merge_traced_matches_untraced_and_records_levels() {
        use crate::lang::bits;
        let x = bits("0000011100111111"); // both halves sorted
        assert!(lang::is_bisorted(&x));
        let (out, steps) = merge_traced(&x);
        assert_eq!(out, merge(&x));
        let ms: Vec<usize> = steps.iter().map(|s| s.m).collect();
        assert_eq!(ms, vec![16, 8, 4]);
        for s in &steps {
            assert_eq!(s.selects.0, s.input[s.m / 4]);
            assert_eq!(s.selects.1, s.input[3 * s.m / 4]);
            assert!(lang::is_sorted(&s.output));
        }
    }

    #[test]
    fn in_swap_permutes_theorem3_cases() {
        // For every bisorted sequence, after IN-SWAP the outer quarters
        // must be clean (0s on top, 1s on bottom) and the middle bisorted.
        for x in all_bisorted(16) {
            let q = 4;
            let sel = (usize::from(x[q]) << 1) | usize::from(x[3 * q]);
            let inw = apply_quarters(&x, IN_SWAP[sel]);
            assert!(lang::is_clean(&inw[..q]), "top quarter clean: {x:?}");
            assert!(lang::is_clean(&inw[3 * q..]), "bottom quarter clean: {x:?}");
            assert!(lang::is_bisorted(&inw[q..3 * q]), "middle bisorted: {x:?}");
            // The clean values respect the final ordering the OUT-SWAP
            // produces: a clean-1 top quarter only occurs for sel = 11 and
            // a clean-0 bottom quarter only for sel = 00 (both repaired by
            // the OUT-SWAP).
            if inw[0] {
                assert_eq!(sel, 0b11, "{x:?}");
            }
            if !inw[3 * q] {
                assert!(sel == 0b00 || x.iter().all(|&b| !b), "{x:?}");
            }
        }
    }
}
