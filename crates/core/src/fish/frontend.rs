//! Data-level simulation of the fish sorter's time-multiplexed front end.
//!
//! [`schedule`](crate::fish::schedule) computes Model B *latencies*; this
//! module actually clocks the datapath: a register-chain model of the
//! `(n, n/k)`-multiplexer → shared `n/k`-input sorter → `(n/k, n)`-
//! demultiplexer pipeline, moving one group's worth of bits per stage per
//! cycle, with structural-hazard checking (a stage may hold at most one
//! group). Serial mode admits the next group only after the previous one
//! has fully drained; pipelined mode admits one group per cycle — the
//! paper's eq. 25 regime.
//!
//! The cycle counts measured here are cross-checked against the closed
//! forms of `schedule::front_time` in the tests, so the two Model B
//! views (latency algebra vs clocked registers) cannot drift apart.

use crate::muxmerge::{self, formulas::sorter_depth_exact};
use crate::packet::{keys, Keyed};

/// Result of clocking the front end on a concrete input.
#[derive(Debug, Clone)]
pub struct FrontEndRun<P> {
    /// The k-sorted output (group `g` sorted, in place).
    pub output: Vec<P>,
    /// Cycle at which the last group landed in the merger input register.
    pub cycles: u64,
    /// Peak number of groups simultaneously in flight (1 in serial mode,
    /// up to the pipeline depth when pipelined).
    pub peak_in_flight: usize,
}

/// Clock-accurate front-end simulation.
///
/// `pipelined = false` reproduces eq. 22's serial behaviour,
/// `pipelined = true` eq. 25's.
pub fn run<P: Keyed>(items: &[P], k: usize, pipelined: bool) -> FrontEndRun<P> {
    let n = items.len();
    assert!(k >= 2 && k.is_power_of_two() && n % k == 0);
    let group_size = n / k;
    let lgk = k.trailing_zeros() as u64;
    let depth = sorter_depth_exact(group_size);
    // Pipeline stages: lg k mux levels + sorter depth + lg k demux levels.
    let n_stages = (lgk + depth + lgk) as usize;

    // Each stage register holds at most one group id.
    let mut stages: Vec<Option<usize>> = vec![None; n_stages];
    let mut output: Vec<Option<Vec<P>>> = vec![None; k];
    let mut next_group = 0usize;
    let mut cycles = 0u64;
    let mut peak = 0usize;
    let mut done = 0usize;

    // Cycle semantics: a group admitted during cycle `c` occupies stage 0
    // at the end of `c`, advances one stage per cycle, and is *delivered*
    // at the end of the cycle in which it occupies the last stage — so a
    // group's latency is exactly `n_stages` cycles, matching
    // `schedule::front_time`.
    while done < k {
        cycles += 1;
        // 1. advance the pipeline (back to front), checking structural
        //    hazards: a stage must be empty to receive.
        for s in (1..n_stages).rev() {
            if stages[s].is_none() {
                stages[s] = stages[s - 1].take();
            } else {
                assert!(
                    stages[s - 1].is_none(),
                    "structural hazard: two groups colliding at stage {s}"
                );
            }
        }
        // 2. admit a new group: pipelined mode admits one per cycle;
        //    serial mode only into a completely empty datapath.
        let may_admit = next_group < k
            && stages[0].is_none()
            && (pipelined || stages.iter().all(Option::is_none));
        if may_admit {
            stages[0] = Some(next_group);
            next_group += 1;
        }
        peak = peak.max(stages.iter().filter(|s| s.is_some()).count());
        // 3. deliver from the last stage at end of cycle.
        if let Some(g) = stages[n_stages - 1].take() {
            let group = &items[g * group_size..(g + 1) * group_size];
            output[g] = Some(muxmerge::sort(group));
            done += 1;
        }
    }

    FrontEndRun {
        output: output
            .into_iter()
            .flat_map(|g| g.expect("group sorted"))
            .collect(),
        cycles,
        peak_in_flight: peak,
    }
}

/// Convenience: run on bits and return only the k-sorted key sequence.
pub fn run_bits(bits: &[bool], k: usize, pipelined: bool) -> (Vec<bool>, u64) {
    let r = run(bits, k, pipelined);
    (keys(&r.output), r.cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fish::schedule;
    use crate::lang;
    use rand::prelude::*;

    #[test]
    fn output_is_k_sorted_and_matches_functional() {
        let mut rng = StdRng::seed_from_u64(50);
        for (n, k) in [(64usize, 4usize), (256, 8), (1024, 16)] {
            let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            for pipelined in [false, true] {
                let (out, _) = run_bits(&bits, k, pipelined);
                assert!(lang::is_k_sorted(&out, k), "n={n} k={k}");
                // group-by-group it is exactly the functional sorter's output
                let expect: Vec<bool> = bits.chunks(n / k).flat_map(muxmerge::sort).collect();
                assert_eq!(out, expect);
            }
        }
    }

    #[test]
    fn cycle_counts_match_schedule_closed_forms() {
        for (n, k) in [(64usize, 4usize), (256, 4), (1024, 8), (4096, 16)] {
            for pipelined in [false, true] {
                let bits = vec![false; n];
                let (_, cycles) = run_bits(&bits, k, pipelined);
                let expected = schedule::front_time(n, k, pipelined);
                assert_eq!(
                    cycles, expected,
                    "n={n} k={k} pipelined={pipelined}: clocked {cycles} vs closed form {expected}"
                );
            }
        }
    }

    #[test]
    fn serial_mode_has_one_group_in_flight() {
        let bits = vec![true; 256];
        let r = run(&bits, 8, false);
        assert_eq!(r.peak_in_flight, 1);
    }

    #[test]
    fn pipelined_mode_fills_the_pipe() {
        let bits = vec![true; 1024];
        let k = 16;
        let r = run(&bits, k, true);
        // with k=16 groups and a deep sorter, many groups are in flight
        assert!(r.peak_in_flight >= 8, "peak {}", r.peak_in_flight);
    }

    #[test]
    fn payloads_survive_the_front_end() {
        use crate::packet::tag_indices;
        let mut rng = StdRng::seed_from_u64(51);
        let n = 256;
        let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let r = run(&tag_indices(&bits), 4, true);
        let mut ids: Vec<usize> = r.output.iter().map(|p| p.1).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..n).collect::<Vec<_>>());
    }
}
