//! Gate-level realization of the fish sorter's pipelined front end.
//!
//! [`frontend`](crate::fish::frontend) clocks a register-chain *model*;
//! this module goes one level lower: the shared `n/k`-input sorter is the
//! **actual built circuit** (Network 2's netlist), retimed into
//! unit-depth pipeline stages by `absort_circuit::pipeline::Pipelined`,
//! and the `k` input groups stream through it one per cycle. The
//! multiplexer and demultiplexer trees contribute their `lg k` stages
//! each. Cycle counts are cross-checked against both the register-chain
//! model and the closed forms of `schedule::front_time`, closing the
//! chain: paper algebra ↔ clocked model ↔ gate-level pipeline.

use crate::fish::schedule;
use crate::muxmerge;
use absort_circuit::pipeline::Pipelined;

/// Result of the gate-level front-end run.
#[derive(Debug, Clone)]
pub struct HardwareRun {
    /// The k-sorted bit sequence.
    pub output: Vec<bool>,
    /// Total cycles until the last group lands (mux stages + sorter
    /// pipeline + demux stages).
    pub cycles: u64,
    /// The shared sorter's pipeline stage count (its measured depth).
    pub sorter_stages: usize,
    /// Flip-flop bound for the retimed sorter (hardware footnote; the
    /// paper's cost accounting does not price registers).
    pub register_bound: u64,
}

/// Streams the `k` groups of `bits` through the gate-level pipelined
/// `n/k`-input sorter (one group admitted per cycle).
pub fn run_pipelined(bits: &[bool], k: usize) -> HardwareRun {
    let n = bits.len();
    assert!(k >= 2 && k.is_power_of_two() && n % k == 0);
    let group = n / k;
    let circuit = muxmerge::build(group);
    let pipe = Pipelined::new(&circuit);
    let lgk = k.trailing_zeros() as u64;

    let inputs: Vec<Vec<bool>> = bits.chunks(group).map(<[bool]>::to_vec).collect();
    let (outs, sorter_cycles) = pipe.simulate(&inputs);
    let output: Vec<bool> = outs.into_iter().flatten().collect();

    HardwareRun {
        output,
        // lg k mux stages in front, lg k demux stages behind.
        cycles: lgk + sorter_cycles + lgk,
        sorter_stages: pipe.stages(),
        register_bound: pipe.register_bound(),
    }
}

/// Sanity handle: the closed-form pipelined front time this run should
/// match.
pub fn expected_cycles(n: usize, k: usize) -> u64 {
    schedule::front_time(n, k, true)
}

/// Builds the front end's *group streamer* as a real clocked circuit
/// (Model B's "simple sequential or clocked circuits", Section II): a
/// `lg k`-bit counter register drives the select inputs of the
/// `(n, n/k)`-multiplexer, so each clock cycle presents the next group
/// of `n/k` lines at the outputs. External inputs: the full `n` lines
/// (held by the source); external outputs: the selected group.
pub fn build_group_streamer(n: usize, k: usize) -> absort_circuit::clocked::ClockedCircuit {
    use absort_blocks::mux::group_multiplexer;
    use absort_circuit::clocked::ClockedCircuit;
    use absort_circuit::Builder;
    assert!(k >= 2 && k.is_power_of_two() && n % k == 0);
    let kbits = k.trailing_zeros() as usize;
    let mut b = Builder::new();
    let lines = b.input_bus(n);
    let state = b.input_bus(kbits); // counter register (little-endian)
                                    // The multiplexer's select is MSB-first; the counter state is
                                    // little-endian — reverse the wires (free).
    let sel_msb_first: Vec<_> = state.iter().rev().copied().collect();
    let group = group_multiplexer(&mut b, &sel_msb_first, &lines, n / k);
    // counter increment (ripple)
    let mut carry = b.constant(true);
    let mut next = Vec::with_capacity(kbits);
    for &s in &state {
        let sum = b.xor(s, carry);
        carry = b.and(s, carry);
        next.push(sum);
    }
    let mut outs = group;
    outs.extend(next);
    b.outputs(&outs);
    ClockedCircuit::new(b.finish(), n, n / k, vec![false; kbits])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang;
    use rand::prelude::*;

    #[test]
    fn gate_level_output_matches_functional_front_end() {
        let mut rng = StdRng::seed_from_u64(81);
        for (n, k) in [(64usize, 4usize), (256, 8), (1024, 16)] {
            let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let hw = run_pipelined(&bits, k);
            assert!(lang::is_k_sorted(&hw.output, k));
            let expect: Vec<bool> = bits.chunks(n / k).flat_map(muxmerge::sort).collect();
            assert_eq!(hw.output, expect, "n={n} k={k}");
        }
    }

    #[test]
    fn gate_level_cycles_match_closed_form_and_model() {
        use crate::fish::frontend;
        for (n, k) in [(64usize, 4usize), (256, 8), (1024, 16)] {
            let bits = vec![false; n];
            let hw = run_pipelined(&bits, k);
            assert_eq!(
                hw.cycles,
                expected_cycles(n, k),
                "vs closed form n={n} k={k}"
            );
            let (_, model_cycles) = frontend::run_bits(&bits, k, true);
            assert_eq!(
                hw.cycles, model_cycles,
                "vs register-chain model n={n} k={k}"
            );
        }
    }

    #[test]
    fn group_streamer_emits_groups_in_order() {
        let (n, k) = (32usize, 4usize);
        let streamer = build_group_streamer(n, k);
        assert_eq!(streamer.n_inputs(), n);
        assert_eq!(streamer.n_outputs(), n / k);
        let mut rng = StdRng::seed_from_u64(82);
        let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let mut sim = streamer.power_on();
        for cycle in 0..2 * k {
            let out = sim.step(&bits);
            let g = cycle % k;
            assert_eq!(out, &bits[g * n / k..(g + 1) * n / k], "cycle {cycle}");
        }
        // the streamer's select/counter hardware is tiny: mux (n − n/k)
        // plus 2 lg k counter gates
        let expected = (n - n / k) as u64 + 2 * k.trailing_zeros() as u64;
        assert_eq!(streamer.cost().total, expected);
    }

    #[test]
    fn sorter_stage_count_is_the_measured_depth() {
        let hw = run_pipelined(&vec![false; 256], 8);
        assert_eq!(
            hw.sorter_stages as u64,
            muxmerge::formulas::sorter_depth_exact(32)
        );
        assert!(hw.register_bound > 0);
    }
}
