//! Cycle-accurate Model B timing for the fish sorter.
//!
//! Model B posits a global clock; every unit-depth primitive layer takes
//! one cycle. The front end runs the `k` groups through the single
//! `n/k`-input sorter either **serially** (each group occupies the whole
//! datapath for its full latency) or **pipelined** (the sorter is a
//! `depth`-segment pipeline accepting one group per cycle — the paper's
//! eq. 25 regime, and the contrast it draws with columnsort, which must
//! pipeline four separate sorters).
//!
//! The merger's clean sorters are themselves time-multiplexed: each level
//! dispatches its `k` clean blocks through one mux/demux pair, one block
//! per cycle, after the `k`-input sorter has produced the leading-bit
//! ranks. Clean path and recursive path run on disjoint hardware, so a
//! level's latency is `1 (k-SWAP) + max(clean path, recursive path) +
//! two-way merger depth`.

use crate::muxmerge::formulas::{merger_depth_exact, sorter_depth_exact};

fn lg(n: usize) -> u64 {
    assert!(n.is_power_of_two() && n > 0);
    n.trailing_zeros() as u64
}

/// Simulates the front end cycle by cycle and returns the cycle at which
/// the last group lands in the merger's input register.
///
/// Latency per group: `lg k` (multiplexer) + sorter depth + `lg k`
/// (demultiplexer). Serially the groups queue; pipelined, a new group
/// enters each cycle.
pub fn front_time(n: usize, k: usize, pipelined: bool) -> u64 {
    let group_latency = lg(k) + sorter_depth_exact(n / k) + lg(k);
    let mut busy_until = 0u64; // when the (non-pipelined) datapath frees
    let mut last_done = 0u64;
    for g in 0..k as u64 {
        let enter = if pipelined {
            g // one group per cycle
        } else {
            busy_until
        };
        let done = enter + group_latency;
        busy_until = done;
        last_done = done;
    }
    last_done
}

/// Latency in cycles of the k-way clean sorter at a merger level: the
/// k-input sorter ranks the leading bits, then the `k` blocks stream
/// through the shared mux/dispatch/demux path (depth `3 lg k`), one block
/// per cycle.
pub fn clean_sorter_time(k: usize) -> u64 {
    sorter_depth_exact(k) + 3 * lg(k) + (k as u64 - 1)
}

/// Latency in cycles of the `m`-input k-way mux-merger.
pub fn merger_time(m: usize, k: usize) -> u64 {
    assert!(m >= k);
    if m == k {
        return sorter_depth_exact(k);
    }
    let clean = clean_sorter_time(k);
    let rec = merger_time(m / 2, k);
    1 + clean.max(rec) + merger_depth_exact(m)
}

/// Total sorting time of the fish sorter in cycles.
pub fn sorting_time(n: usize, k: usize, pipelined: bool) -> u64 {
    front_time(n, k, pipelined) + merger_time(n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_matches_closed_forms() {
        for (n, k) in [(256usize, 4usize), (1 << 12, 16), (1 << 16, 16)] {
            let lat = lg(k) + sorter_depth_exact(n / k) + lg(k);
            assert_eq!(
                front_time(n, k, false),
                k as u64 * lat,
                "serial n={n} k={k}"
            );
            assert_eq!(
                front_time(n, k, true),
                lat + k as u64 - 1,
                "pipelined n={n} k={k}"
            );
        }
    }

    #[test]
    fn unpipelined_time_is_theta_lg3_at_k_lg_n() {
        // T(n, lg n) = Θ(lg³ n) (eq. 24): check the ratio to lg³ n is
        // bounded above and below across three octaves.
        for a in [16usize, 32] {
            // choose n = 2^a with a a power of two so k = lg n is valid
            let n = 1usize << a;
            let t = sorting_time(n, a, false) as f64;
            let l = a as f64;
            let ratio = t / (l * l * l);
            assert!(
                (0.5..=6.0).contains(&ratio),
                "n=2^{a}: T={t}, T/lg³n = {ratio}"
            );
        }
    }

    #[test]
    fn pipelined_time_is_theta_lg2_at_k_lg_n() {
        // T_pip(n, lg n) = Θ(lg² n) (eq. 26).
        for a in [16usize, 32] {
            let n = 1usize << a;
            let t = sorting_time(n, a, true) as f64;
            let l = a as f64;
            let ratio = t / (l * l);
            assert!(
                (0.5..=8.0).contains(&ratio),
                "n=2^{a}: T_pip={t}, T/lg²n = {ratio}"
            );
        }
    }

    #[test]
    fn merger_time_monotone_in_m() {
        let k = 8;
        let mut prev = 0;
        for m in [8usize, 16, 32, 64, 128, 256] {
            let t = merger_time(m, k);
            assert!(t >= prev, "m={m}");
            prev = t;
        }
    }

    #[test]
    fn pipelining_gain_approaches_k() {
        // For large n/k, serial front ≈ k × pipelined front.
        let (n, k) = (1usize << 20, 16usize);
        let serial = front_time(n, k, false) as f64;
        let piped = front_time(n, k, true) as f64;
        let gain = serial / piped;
        assert!(gain > k as f64 * 0.7, "gain {gain} vs k={k}");
    }
}
