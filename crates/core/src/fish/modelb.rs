//! The complete fish sorter as one Model B run: data movement and clock
//! cycles in the same simulation.
//!
//! [`frontend`](super::frontend) clocks the front end with data;
//! [`schedule`](super::schedule) computes whole-sorter latencies without
//! data. This module closes the loop: a single simulation that carries
//! the bits through every stage — front end, per-level k-SWAP, clean
//! sorter (with its k-step dispatch), recursive merger, final two-way
//! mergers — while accounting cycles with the same rules as the
//! schedule. The invariants tested: the output equals the oracle, and
//! the cycle totals equal `schedule::sorting_time` exactly, in both
//! serial and pipelined modes.

use super::{frontend, kmerge, schedule};
use crate::lang;
use crate::muxmerge;

/// The result of a full Model B run.
#[derive(Debug, Clone)]
pub struct ModelBRun {
    /// The sorted output.
    pub output: Vec<bool>,
    /// Cycles spent in the time-multiplexed front end.
    pub front_cycles: u64,
    /// Cycles spent in the k-way merger (critical path through its
    /// recursion, including the clean sorters' dispatch steps).
    pub merger_cycles: u64,
    /// Total sorting time in cycles.
    pub total_cycles: u64,
}

/// Runs the complete fish sorter on `bits` with `k` groups.
pub fn run(bits: &[bool], k: usize, pipelined: bool) -> ModelBRun {
    let n = bits.len();
    assert!(n.is_power_of_two() && k.is_power_of_two() && k >= 2 && k <= n / k);

    // Phase 1: the clocked front end (data + cycles).
    let (ksorted, front_cycles) = frontend::run_bits(bits, k, pipelined);
    debug_assert!(lang::is_k_sorted(&ksorted, k));

    // Phase 2: the k-way merger, walked with data while accumulating the
    // critical-path cycles exactly as `schedule::merger_time` does.
    let (output, merger_cycles) = merge_with_cycles(&ksorted, k);
    debug_assert!(lang::is_sorted(&output));

    ModelBRun {
        output,
        front_cycles,
        merger_cycles,
        total_cycles: front_cycles + merger_cycles,
    }
}

/// Merges a k-sorted sequence, returning the merged data and the
/// critical-path cycle count of the level (k-SWAP: 1 cycle; clean path
/// and recursive path run concurrently on disjoint hardware — the level
/// waits for the slower; the two-way merger then takes its measured
/// depth).
fn merge_with_cycles(s: &[bool], k: usize) -> (Vec<bool>, u64) {
    let m = s.len();
    if m == k {
        return (muxmerge::sort(s), muxmerge::formulas::sorter_depth_exact(k));
    }
    let (clean, rest) = kmerge::k_swap(s, k);
    // Clean path: the k-input sorter ranks the leading bits, then the k
    // blocks stream through the dispatch (depth 3 lg k, one block/cycle).
    let (clean_sorted, _) = kmerge::clean_sort(&clean, k);
    let clean_cycles = schedule::clean_sorter_time(k);
    // Recursive path, concurrent with the clean path.
    let (lower_sorted, rec_cycles) = merge_with_cycles(&rest, k);
    // Join: bisorted → the two-way mux-merger.
    let mut bis = clean_sorted;
    bis.extend_from_slice(&lower_sorted);
    let merged = muxmerge::merge(&bis);
    let cycles = 1 + clean_cycles.max(rec_cycles) + muxmerge::formulas::merger_depth_exact(m);
    (merged, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::sorted_oracle;
    use rand::prelude::*;

    #[test]
    fn data_and_cycles_match_the_independent_models() {
        let mut rng = StdRng::seed_from_u64(90);
        for (n, k) in [(64usize, 4usize), (256, 4), (256, 8), (1024, 16)] {
            for pipelined in [false, true] {
                let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                let run = run(&bits, k, pipelined);
                assert_eq!(run.output, sorted_oracle(&bits), "n={n} k={k}");
                assert_eq!(
                    run.total_cycles,
                    schedule::sorting_time(n, k, pipelined),
                    "n={n} k={k} pipelined={pipelined}: unified sim vs latency algebra"
                );
                assert_eq!(
                    run.front_cycles,
                    schedule::front_time(n, k, pipelined),
                    "front end n={n} k={k}"
                );
                assert_eq!(run.merger_cycles, schedule::merger_time(n, k));
            }
        }
    }

    #[test]
    fn merger_cycles_dominated_by_two_way_merges_at_large_n() {
        // per level: 1 + max(clean, rec) + (2 lg m − 1); the Σ 2 lg m term
        // should dominate as n grows at fixed k.
        let k = 4;
        let bits = vec![true; 1 << 12];
        let run = run(&bits, k, true);
        let n = 1usize << 12;
        let sum_merges: u64 = (3..=12u32)
            .map(|a| muxmerge::formulas::merger_depth_exact(1usize << a))
            .sum();
        assert!(
            run.merger_cycles >= sum_merges,
            "{} >= {} (n={n})",
            run.merger_cycles,
            sum_merges
        );
    }

    #[test]
    fn all_equal_inputs_still_cost_full_cycles() {
        // Model B is data-independent in time: constants sort in the same
        // cycle count as adversarial inputs.
        let (n, k) = (256usize, 8usize);
        let zeros = run(&vec![false; n], k, true);
        let mut rng = StdRng::seed_from_u64(91);
        let random: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let rnd = run(&random, k, true);
        assert_eq!(zeros.total_cycles, rnd.total_cycles);
    }
}
