//! The paper's closed forms for Network 3 (eqs. 7–21) plus the exact
//! costs of our construction, block by block.

use crate::muxmerge::formulas::{merger_cost_exact, sorter_cost_exact};

fn lg(n: usize) -> u64 {
    assert!(n.is_power_of_two() && n > 0);
    n.trailing_zeros() as u64
}

/// Exact cost of the front end: the `(n, n/k)`-multiplexer plus the
/// `(n/k, n)`-demultiplexer (`n − n/k` each; the paper rounds to `2n`).
pub fn front_cost_exact(n: usize, k: usize) -> u64 {
    2 * (n as u64 - (n / k) as u64)
}

/// Exact cost of the k-way clean sorter at merger level `m` (it sorts the
/// `m/2`-size clean half): `(m/2, m/2k)`-multiplexer + `(m/2k, m/2)`-
/// demultiplexer + `(k,1)`-multiplexer + the k-input mux-merger sorter.
/// The paper budgets `m + k` for the dispatch and `4k lg k` for the
/// sorter.
pub fn clean_sorter_cost_exact(m: usize, k: usize) -> u64 {
    let half = (m / 2) as u64;
    (half - k as u64) + (half - k as u64) + (k as u64 - 1) + sorter_cost_exact(k)
}

/// Exact cost of the n-input k-way mux-merger: recurrence of eq. (9) with
/// our constructed component costs.
pub fn kmerger_cost_exact(m: usize, k: usize) -> u64 {
    assert!(m >= k);
    if m == k {
        return sorter_cost_exact(k);
    }
    let kswap = (m / 2) as u64;
    kswap + clean_sorter_cost_exact(m, k) + kmerger_cost_exact(m / 2, k) + merger_cost_exact(m)
}

/// Exact total cost of the fish sorter: front + single `n/k`-input sorter
/// + k-way merger (eq. 7 with exact parts).
pub fn total_cost_exact(n: usize, k: usize) -> u64 {
    front_cost_exact(n, k) + sorter_cost_exact(n / k) + kmerger_cost_exact(n, k)
}

/// Eq. (15): the paper's closed form for the k-way merger cost,
/// `C_km(n,k) = 11n − 11k + k lg(n/k) + 4k lg k lg(n/k) + 4k lg k`.
pub fn kmerger_cost_paper(n: usize, k: usize) -> u64 {
    let (nf, kf) = (n as u64, k as u64);
    let lnk = lg(n / k);
    let lk = lg(k);
    11 * nf - 11 * kf + kf * lnk + 4 * kf * lk * lnk + 4 * kf * lk
}

/// Eq. (17): the paper's total cost bound,
/// `C(n,k) ≤ 2n + 4(n/k)lg(n/k) + 11n + k lg(n/k) + 4k lg k lg(n/k) + 4k lg k`.
pub fn total_cost_paper(n: usize, k: usize) -> u64 {
    let nk = (n / k) as u64;
    2 * n as u64 + 4 * nk * lg(n / k) + kmerger_cost_paper(n, k) + 11 * k as u64
    // (+11k restores the −11k inside the merger closed form, matching the
    // paper's printed eq. 17 which drops that negative term in the bound)
}

/// Eq. (16)/(18) merger depth bound:
/// `D_km(n,k) ≤ lg(n/k) + 2 lg n lg(n/k) + 2 lg² k`.
pub fn merger_depth_paper(n: usize, k: usize) -> u64 {
    let lnk = lg(n / k);
    let lk = lg(k);
    lnk + 2 * lg(n) * lnk + 2 * lk * lk
}

/// Eq. (18): total depth bound,
/// `D(n,k) ≤ 2 lg k + 2 lg²(n/k) + lg(n/k) + 2 lg n lg(n/k) + 2 lg² k`.
pub fn total_depth_paper(n: usize, k: usize) -> u64 {
    let lnk = lg(n / k);
    2 * lg(k) + 2 * lnk * lnk + merger_depth_paper(n, k)
}

/// Eq. (19) at `k = lg n`: `C(n, lg n) ≤ 17n + 5 lg² n lg lg n + 4 lg n lg lg n`.
/// (Requires `lg n` to be a power of two so the construction exists.)
pub fn total_cost_paper_at_default_k(n: usize) -> u64 {
    let l = lg(n);
    let ll = if l <= 1 {
        0
    } else {
        64 - (l - 1).leading_zeros() as u64
    };
    17 * n as u64 + 5 * l * l * ll + 4 * l * ll
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_merger_cost_below_paper_closed_form() {
        for (n, k) in [
            (64usize, 4usize),
            (256, 4),
            (256, 16),
            (1 << 12, 16),
            (1 << 16, 16),
        ] {
            let exact = kmerger_cost_exact(n, k);
            let paper = kmerger_cost_paper(n, k);
            assert!(
                exact <= paper,
                "n={n} k={k}: exact {exact} > paper closed form {paper}"
            );
            // and not wildly below — the closed form tracks the construction
            assert!(exact * 2 > paper, "n={n} k={k}: exact {exact} vs {paper}");
        }
    }

    #[test]
    fn exact_total_below_paper_total() {
        for (n, k) in [(256usize, 4usize), (1 << 12, 8), (1 << 16, 16)] {
            assert!(
                total_cost_exact(n, k) <= total_cost_paper(n, k),
                "n={n} k={k}"
            );
        }
    }

    #[test]
    fn linear_cost_at_k_lg_n() {
        // When lg n is a power of two, k = lg n exactly; cost ≤ 17n + o(n).
        for a in [4usize, 8, 16] {
            let n = 1usize << a;
            let k = a; // power of two by choice of a
            let exact = total_cost_exact(n, k);
            let bound = total_cost_paper_at_default_k(n);
            assert!(exact <= bound, "n={n}: exact {exact} > 17n bound {bound}");
        }
    }

    #[test]
    fn cost_paper_formula_matches_recurrence_shape() {
        // Unrolling eq. (12) C(m) = 11m/2 + 4k lg k + k + C(m/2) from
        // C(k,k) = 4k lg k should equal eq. (15).
        for (n, k) in [(256usize, 4usize), (1 << 10, 8)] {
            let mut c = 4 * (k as u64) * lg(k);
            let mut m = 2 * k;
            while m <= n {
                c += 11 * (m as u64) / 2 + 4 * (k as u64) * lg(k) + k as u64;
                m *= 2;
            }
            assert_eq!(c, kmerger_cost_paper(n, k), "n={n} k={k}");
        }
    }

    #[test]
    fn depth_bound_is_theta_lg2_at_default_k() {
        for a in [4usize, 8, 16] {
            let n = 1usize << a;
            let d = total_depth_paper(n, a);
            let lg2 = (a * a) as u64;
            assert!(d >= 2 * lg2 && d <= 8 * lg2, "n={n}: depth bound {d}");
        }
    }
}
