//! Network 3: the fish binary sorter (paper Section III.C, Figs. 7–9).
//!
//! A **Model B** (time-multiplexed) adaptive sorter. The `n` inputs are
//! divided into `k` groups of `n/k`; the groups are run sequentially
//! through an `(n, n/k)`-multiplexer into a *single* `n/k`-input binary
//! sorter (we use the mux-merger sorter of Network 2), demultiplexed into
//! position, and the resulting k-sorted sequence is merged by an
//! `n`-input k-way mux-merger:
//!
//! * a **k-SWAP** (k two-way swappers selected by each subsequence's
//!   middle bit) splits the sequence into a clean k-sorted upper half and
//!   a k-sorted lower half (Theorem 4);
//! * a **k-way clean sorter** (k-input sorter on the blocks' leading bits
//!   plus a time-multiplexed mux/demux dispatch) sorts the clean half;
//! * the lower half is merged recursively; and
//! * a final **two-way mux-merger** combines the two sorted halves.
//!
//! With `k = lg n`: cost `≤ 17n + o(n)` (eq. 19), depth `O(lg² n)`
//! (eq. 21), sorting time `O(lg³ n)` unpipelined (eq. 24) or `O(lg² n)`
//! with the input groups pipelined through the single sorter (eq. 26).
//!
//! [`kmerge`] holds the functional dataflow (with Fig. 8/Fig. 9 traces),
//! [`formulas`] the paper's closed forms (eqs. 7–26), [`schedule`] the
//! Model B latency algebra, [`frontend`] a clocked register-chain model
//! of the time-multiplexed front end, [`hardware`] the same front end at
//! gate level (the built sorter circuit retimed into pipeline stages),
//! and [`circuits`] the k-SWAP/combinational-merger circuits used by the
//! E18 ablation.

pub mod circuits;
pub mod formulas;
pub mod frontend;
pub mod hardware;
pub mod kmerge;
pub mod modelb;
pub mod schedule;

use crate::lang;
use crate::muxmerge;
use absort_circuit::assert_pow2;

/// Configuration of a fish sorter instance.
///
/// ```
/// use absort_core::{lang, FishSorter};
///
/// let fish = FishSorter::with_default_k(1024); // k ≈ lg n
/// let input: Vec<bool> = (0..1024).map(|i| i % 3 == 0).collect();
/// assert_eq!(fish.sort(&input), lang::sorted_oracle(&input));
///
/// let report = fish.report();
/// assert!(report.cost_exact <= 17 * 1024); // the O(n) headline, constant ≤ 17
/// assert!(report.time_pipelined < report.time_unpipelined);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FishSorter {
    /// Total input size (`2^a`).
    pub n: usize,
    /// Number of time-multiplexed groups (`2^b`, `k ≤ n`, and `n/k ≥ k`
    /// so the k-way merger's base case is reachable).
    pub k: usize,
}

impl FishSorter {
    /// Creates a fish sorter; panics on invalid `(n, k)`.
    pub fn new(n: usize, k: usize) -> Self {
        assert_pow2(n, "fish sorter n");
        assert_pow2(k, "fish sorter k");
        assert!(k >= 2, "fish sorter needs k >= 2, got k={k}");
        assert!(
            k <= n / k,
            "fish sorter needs k <= n/k (k-sorted recursion bottoms out at size k); got n={n}, k={k}"
        );
        FishSorter { n, k }
    }

    /// The paper's cost-minimising choice `k = lg n` rounded to a power of
    /// two (and clamped to the validity range).
    pub fn with_default_k(n: usize) -> Self {
        assert_pow2(n, "fish sorter n");
        let lg = n.trailing_zeros() as usize;
        let k = lg.next_power_of_two().max(2);
        let k = k.min(1 << (n.trailing_zeros() / 2)).max(2);
        FishSorter::new(n, k)
    }

    /// Sorts through the full fish dataflow: group-wise sorting via the
    /// (shared) `n/k`-input sorter, then the k-way mux-merger. Generic
    /// over [`crate::packet::Keyed`] line values, so payloads are carried.
    pub fn sort<P: crate::packet::Keyed>(&self, items: &[P]) -> Vec<P> {
        assert_eq!(items.len(), self.n, "input length != n");
        // Phase 1 (time-multiplexed in hardware): each group through the
        // single n/k-input binary sorter.
        let mut ksorted = Vec::with_capacity(self.n);
        for group in items.chunks(self.n / self.k) {
            ksorted.extend(muxmerge::sort(group));
        }
        debug_assert!(lang::is_k_sorted(&crate::packet::keys(&ksorted), self.k));
        // Phase 2: the n-input k-way mux-merger.
        kmerge::kmerge(&ksorted, self.k)
    }

    /// Full report: exact constructed cost, paper-formula cost, depth, and
    /// sorting times with and without pipelining.
    pub fn report(&self) -> FishReport {
        let (n, k) = (self.n, self.k);
        FishReport {
            n,
            k,
            cost_exact: formulas::total_cost_exact(n, k),
            cost_paper_bound: formulas::total_cost_paper(n, k),
            merger_depth_paper_bound: formulas::merger_depth_paper(n, k),
            time_unpipelined: schedule::sorting_time(n, k, false),
            time_pipelined: schedule::sorting_time(n, k, true),
        }
    }
}

/// Cost/depth/time summary for one `(n, k)` fish instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FishReport {
    /// Input size.
    pub n: usize,
    /// Group count.
    pub k: usize,
    /// Exact cost of our construction (unit components, paper accounting).
    pub cost_exact: u64,
    /// The paper's closed-form cost bound (eq. 17).
    pub cost_paper_bound: u64,
    /// The paper's merger depth bound (eq. 18).
    pub merger_depth_paper_bound: u64,
    /// Sorting time in clock cycles without pipelining (eq. 22 model).
    pub time_unpipelined: u64,
    /// Sorting time in clock cycles with the input groups pipelined
    /// (eq. 25 model).
    pub time_pipelined: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{all_sequences, sorted_oracle};
    use rand::prelude::*;

    #[test]
    fn sorts_exhaustively_n16_k2_k4() {
        for k in [2usize, 4] {
            let f = FishSorter::new(16, k);
            for s in all_sequences(16) {
                assert_eq!(f.sort(&s), sorted_oracle(&s), "k={k}");
            }
        }
    }

    #[test]
    fn sorts_random_large_many_k() {
        let mut rng = StdRng::seed_from_u64(77);
        for (n, ks) in [(256usize, vec![2usize, 4, 8, 16]), (4096, vec![4, 16, 64])] {
            for &k in &ks {
                let f = FishSorter::new(n, k);
                for _ in 0..10 {
                    let s: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                    assert_eq!(f.sort(&s), sorted_oracle(&s), "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn default_k_is_near_lg_n() {
        let f = FishSorter::with_default_k(1 << 16);
        assert_eq!(f.n, 1 << 16);
        assert_eq!(f.k, 16); // lg(2^16) = 16, already a power of two
        let f2 = FishSorter::with_default_k(1 << 10);
        assert_eq!(f2.k, 16); // lg = 10 → 16, and 16 ≤ 2^(10/2) = 32
    }

    #[test]
    #[should_panic(expected = "k <= n/k")]
    fn oversized_k_rejected() {
        let _ = FishSorter::new(16, 8);
    }

    #[test]
    fn pipelining_strictly_helps() {
        for (n, k) in [(1usize << 10, 8usize), (1 << 14, 16), (1 << 16, 16)] {
            let r = FishSorter::new(n, k).report();
            assert!(
                r.time_pipelined < r.time_unpipelined,
                "n={n} k={k}: {} !< {}",
                r.time_pipelined,
                r.time_unpipelined
            );
        }
    }

    #[test]
    fn cost_is_linear_at_default_k() {
        // Headline claim: O(n) cost at k = lg n; the paper's constant is
        // ≤ 17 plus o(n) terms.
        for a in [10usize, 12, 14, 16, 18] {
            let n = 1 << a;
            let f = FishSorter::with_default_k(n);
            let r = f.report();
            assert!(
                r.cost_exact <= 18 * n as u64,
                "n={n} k={}: cost {} > 18n",
                f.k,
                r.cost_exact
            );
        }
    }
}
