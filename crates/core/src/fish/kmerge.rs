//! The n-input k-way mux-merger (paper Figs. 7–9) — functional dataflow
//! with trace capture for regenerating the paper's worked examples.

use crate::lang;
use crate::muxmerge;
use crate::packet::{self, Keyed};

/// One level of k-way merging, recorded for Fig. 8-style traces.
#[derive(Debug, Clone)]
pub struct LevelTrace {
    /// Size of the sequence entering this level.
    pub m: usize,
    /// The k-sorted input to this level.
    pub input: Vec<bool>,
    /// Upper half after the k-SWAP: clean k-sorted.
    pub upper_clean: Vec<bool>,
    /// Lower half after the k-SWAP: k-sorted.
    pub lower_rest: Vec<bool>,
    /// The clean sorter's output (sorted upper half).
    pub clean_sorted: Vec<bool>,
    /// This level's final merged output.
    pub merged: Vec<bool>,
}

/// A full k-way merge trace: the per-level records plus the base-case
/// sort.
#[derive(Debug, Clone, Default)]
pub struct KMergeTrace {
    /// Levels from size `m = n` down to `2k`.
    pub levels: Vec<LevelTrace>,
    /// The base-case input (size `k`) handed to the k-input sorter.
    pub base_input: Vec<bool>,
    /// The base-case sorted output.
    pub base_output: Vec<bool>,
}

/// The k-SWAP operation (one stage of `k` two-way swappers): splits a
/// k-sorted sequence into `(clean k-sorted upper half, k-sorted lower
/// half)` per Theorem 4.
///
/// Each subsequence's middle bit drives its swapper: middle bit 0 means
/// the upper half of the subsequence is clean (all 0s) and already on
/// top; middle bit 1 means the lower half is clean (all 1s) and gets
/// swapped up.
pub fn k_swap<P: Keyed>(s: &[P], k: usize) -> (Vec<P>, Vec<P>) {
    assert!(
        lang::is_k_sorted(&packet::keys(s), k),
        "k-SWAP input must be k-sorted"
    );
    let block = s.len() / k;
    assert!(block >= 2, "k-SWAP blocks must have at least 2 elements");
    let mut clean = Vec::with_capacity(s.len() / 2);
    let mut rest = Vec::with_capacity(s.len() / 2);
    for chunk in s.chunks(block) {
        let mid = chunk[block / 2].key();
        let (upper, lower) = chunk.split_at(block / 2);
        if mid {
            clean.extend_from_slice(lower);
            rest.extend_from_slice(upper);
        } else {
            clean.extend_from_slice(upper);
            rest.extend_from_slice(lower);
        }
    }
    debug_assert!(
        lang::is_clean_k_sorted(&packet::keys(&clean), k),
        "Theorem 4 violated (clean)"
    );
    debug_assert!(
        lang::is_k_sorted(&packet::keys(&rest), k),
        "Theorem 4 violated (rest)"
    );
    (clean, rest)
}

/// Trace of the k-way clean sorter (Fig. 9): the blocks' leading bits,
/// their sorted order, and the dispatch destinations.
#[derive(Debug, Clone)]
pub struct CleanSortTrace {
    /// Leading bit of each clean block, in input order.
    pub leading_bits: Vec<bool>,
    /// The k leading bits after the k-input sorter.
    pub sorted_bits: Vec<bool>,
    /// `dispatch[i]` = output block position that input block `i` is sent
    /// to through the (n/2k, n/2)-demultiplexer.
    pub dispatch: Vec<usize>,
    /// The sorted output.
    pub output: Vec<bool>,
}

/// The k-way clean sorter: sorts a *clean k-sorted* sequence (k constant
/// blocks) by sorting the blocks' leading bits with a k-input binary
/// sorter and dispatching each block to its sorted position through the
/// time-multiplexed (m, m/k)-multiplexer / (m/k, m)-demultiplexer pair.
pub fn clean_sort<P: Keyed>(s: &[P], k: usize) -> (Vec<P>, CleanSortTrace) {
    assert!(
        lang::is_clean_k_sorted(&packet::keys(s), k),
        "clean sorter input must be clean k-sorted"
    );
    let block = s.len() / k;
    let leading_bits: Vec<bool> = s.chunks(block).map(|c| c[0].key()).collect();
    // The k-input binary sorter (Network 2 functional form).
    let sorted_bits = muxmerge::sort(&leading_bits);
    // Dispatch: a 0-block goes to the slot equal to its rank among
    // 0-blocks; a 1-block to (number of zero blocks) + its rank among
    // 1-blocks. This is exactly "sending each subsequence to its
    // corresponding sorted position"; in hardware each block flows through
    // the shared mux/demux pair on its own clock step.
    let zeros = leading_bits.iter().filter(|&&b| !b).count();
    let mut z_seen = 0;
    let mut o_seen = 0;
    let mut dispatch = Vec::with_capacity(k);
    let mut output: Vec<P> = s.to_vec();
    for (i, &bit) in leading_bits.iter().enumerate() {
        let dest = if bit {
            let d = zeros + o_seen;
            o_seen += 1;
            d
        } else {
            let d = z_seen;
            z_seen += 1;
            d
        };
        dispatch.push(dest);
        output[dest * block..(dest + 1) * block].clone_from_slice(&s[i * block..(i + 1) * block]);
    }
    debug_assert!(lang::is_sorted(&packet::keys(&output)));
    let trace = CleanSortTrace {
        leading_bits,
        sorted_bits,
        dispatch,
        output: packet::keys(&output),
    };
    (output, trace)
}

/// The n-input k-way mux-merger: merges a k-sorted sequence into sorted
/// order. Recursion: k-SWAP, clean-sort the upper half, k-way merge the
/// lower half, and combine the two sorted halves with the two-way
/// mux-merger (Network 2's merger).
pub fn kmerge<P: Keyed>(s: &[P], k: usize) -> Vec<P> {
    kmerge_traced(s, k, None)
}

/// [`kmerge`] with optional trace capture (used for the Fig. 8
/// reproduction). Traces record key bits.
pub fn kmerge_traced<P: Keyed>(s: &[P], k: usize, mut trace: Option<&mut KMergeTrace>) -> Vec<P> {
    assert!(
        k.is_power_of_two() && k >= 2,
        "k must be a power of two ≥ 2"
    );
    assert!(
        s.len().is_power_of_two() && s.len() >= k,
        "sequence length must be a power of two ≥ k"
    );
    assert!(
        lang::is_k_sorted(&packet::keys(s), k),
        "k-way merge input must be k-sorted"
    );
    let m = s.len();
    if m == k {
        // Base case: k sorted subsequences of one element each — i.e. an
        // arbitrary k-bit sequence — sorted by the k-input mux-merger
        // binary sorter.
        let out = muxmerge::sort(s);
        if let Some(t) = trace.as_deref_mut() {
            t.base_input = packet::keys(s);
            t.base_output = packet::keys(&out);
        }
        return out;
    }
    let (upper_clean, lower_rest) = k_swap(s, k);
    let (clean_sorted, _cs_trace) = clean_sort(&upper_clean, k);
    let lower_sorted = kmerge_traced(&lower_rest, k, trace.as_deref_mut());
    let mut bis = clean_sorted.clone();
    bis.extend_from_slice(&lower_sorted);
    debug_assert!(lang::is_bisorted(&packet::keys(&bis)));
    let merged = muxmerge::merge(&bis);
    if let Some(t) = trace {
        t.levels.push(LevelTrace {
            m,
            input: packet::keys(s),
            upper_clean: packet::keys(&upper_clean),
            lower_rest: packet::keys(&lower_rest),
            clean_sorted: packet::keys(&clean_sorted),
            merged: packet::keys(&merged),
        });
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{all_k_sorted, bits, show, sorted_oracle};
    use rand::prelude::*;

    #[test]
    fn k_swap_on_paper_example_4() {
        // 1111/0001/0011/0111 (4-sorted): middle bits 1,0,1,1 → clean
        // halves 11, 00, 11, 11 up; rest 11, 01, 00, 01 down.
        let s = bits("1111000100110111");
        let (clean, rest) = k_swap(&s, 4);
        assert_eq!(show(&clean, 2), "11/00/11/11");
        assert_eq!(show(&rest, 2), "11/01/00/01");
    }

    #[test]
    fn kmerge_exhaustive_all_k_sorted() {
        for (n, k) in [(8usize, 2usize), (8, 4)] {
            for s in all_k_sorted(n, k) {
                assert_eq!(kmerge(&s, k), sorted_oracle(&s), "n={n} k={k}");
            }
        }
        // larger: every 4-sorted 16-bit sequence (5^4 = 625 cases)
        for s in all_k_sorted(16, 4) {
            assert_eq!(kmerge(&s, 4), sorted_oracle(&s));
        }
    }

    #[test]
    fn kmerge_random_large() {
        let mut rng = StdRng::seed_from_u64(13);
        for (n, k) in [(1024usize, 8usize), (4096, 16), (1 << 14, 16)] {
            let block = n / k;
            for _ in 0..5 {
                let mut s = Vec::with_capacity(n);
                for _ in 0..k {
                    let ones = rng.gen_range(0..=block);
                    s.extend(std::iter::repeat_n(false, block - ones));
                    s.extend(std::iter::repeat_n(true, ones));
                }
                assert_eq!(kmerge(&s, k), sorted_oracle(&s), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn clean_sort_dispatch_is_a_permutation() {
        for s in all_k_sorted(16, 4) {
            let (clean, _) = k_swap(&s, 4);
            let (_, trace) = clean_sort(&clean, 4);
            let mut seen = [false; 4];
            for &d in &trace.dispatch {
                assert!(!seen[d], "dispatch reuses slot {d}");
                seen[d] = true;
            }
        }
    }

    #[test]
    fn clean_sort_output_blocks_match_sorted_bits() {
        let s = bits("1111000000001111"); // clean 4-sorted, blocks 1,0,0,1
        let (out, trace) = clean_sort(&s, 4);
        assert_eq!(show(&out, 4), "0000/0000/1111/1111");
        assert_eq!(trace.sorted_bits, bits("0011"));
        // each output block is the broadcast of the corresponding sorted bit
        for (j, chunk) in out.chunks(4).enumerate() {
            assert!(chunk.iter().all(|&b| b == trace.sorted_bits[j]));
        }
    }

    #[test]
    fn trace_captures_every_level() {
        let mut rng = StdRng::seed_from_u64(4);
        let (n, k) = (64usize, 4usize);
        let block = n / k;
        let mut s = Vec::new();
        for _ in 0..k {
            let ones = rng.gen_range(0..=block);
            s.extend(std::iter::repeat_n(false, block - ones));
            s.extend(std::iter::repeat_n(true, ones));
        }
        let mut t = KMergeTrace::default();
        let out = kmerge_traced(&s, k, Some(&mut t));
        assert_eq!(out, sorted_oracle(&s));
        // levels m = 64, 32, 16, 8 → recorded smallest-first
        let ms: Vec<usize> = t.levels.iter().map(|l| l.m).collect();
        assert_eq!(ms, vec![8, 16, 32, 64]);
        assert_eq!(t.base_input.len(), k);
        assert_eq!(t.levels.last().unwrap().merged, out);
    }
}
