//! Circuit-level pieces of the k-way mux-merger, including a fully
//! **combinational** (non-time-multiplexed) variant of the merger.
//!
//! The fish sorter owes its `O(n)` cost to time-multiplexing the clean
//! sorter's dispatch through one `(m/2, m/2k)`-multiplexer /
//! `(m/2k, m/2)`-demultiplexer pair (cost `m + k` per level). This module
//! builds the alternative the paper implicitly rejects — a combinational
//! dispatch that routes all `k` blocks at once — so the ablation
//! (experiment E18) can *measure* what time-multiplexing buys: the
//! combinational dispatch needs rank logic plus a `k`-way OR-select per
//! line, `Θ(k·m)` hardware per level instead of `Θ(m)`.
//!
//! Also provides the k-SWAP stage as a standalone circuit (cost `m/2`,
//! depth 1 — eq. 9's `C_SWAP`/`D_SWAP` terms, verified in hardware).

use crate::muxmerge;
use absort_blocks::adder::{add, AdderKind};
use absort_circuit::{assert_pow2, Builder, Circuit, Wire};

/// Builds the m-input k-SWAP as a circuit: `k` two-way swappers, each on
/// one size-`m/k` sorted subsequence, each controlled by that
/// subsequence's own middle bit. The upper `m/2` outputs collect the
/// clean halves, the lower `m/2` the rest (Theorem 4).
pub fn build_kswap(m: usize, k: usize) -> Circuit {
    #[cfg(feature = "telemetry")]
    let _tel = absort_telemetry::span("build");
    let mut b = Builder::new();
    let ins = b.input_bus(m);
    let outs = kswap_wires(&mut b, &ins, k);
    b.outputs(&outs);
    b.finish()
}

/// In-builder k-SWAP (see [`build_kswap`]); returns the `m` output wires,
/// clean halves first.
pub fn kswap_wires(b: &mut Builder, ins: &[Wire], k: usize) -> Vec<Wire> {
    let m = ins.len();
    assert_pow2(m, "k-SWAP width");
    assert_pow2(k, "k-SWAP group count");
    let block = m / k;
    assert!(block >= 2, "k-SWAP blocks need >= 2 lines");
    let mut clean = Vec::with_capacity(m / 2);
    let mut rest = Vec::with_capacity(m / 2);
    b.scoped("kswap", |b| {
        for blk in ins.chunks(block) {
            // middle bit = first element of the lower half; ctrl = 1
            // swaps the halves so the clean half goes up.
            let ctrl = blk[block / 2];
            let swapped = absort_blocks::swap::two_way_swapper(b, ctrl, blk);
            clean.extend_from_slice(&swapped[..block / 2]);
            rest.extend_from_slice(&swapped[block / 2..]);
        }
    });
    clean.extend(rest);
    clean
}

/// Builds the fully combinational m-input k-way merger: k-SWAP, a
/// *combinational* clean sorter (rank logic + per-line k-way select — no
/// time multiplexing), recursive merge of the lower half, and the final
/// two-way mux-merger. Functionally identical to the Model B merger; the
/// hardware cost difference is the E18 ablation.
pub fn build_combinational_kmerger(m: usize, k: usize) -> Circuit {
    assert_pow2(m, "k-way merger width");
    assert_pow2(k, "k-way merger group count");
    assert!(k >= 2 && k <= m / k, "need 2 <= k <= m/k");
    #[cfg(feature = "telemetry")]
    let _tel = absort_telemetry::span("build");
    let mut b = Builder::new();
    let ins = b.input_bus(m);
    let outs = kmerger_wires(&mut b, &ins, k);
    b.outputs(&outs);
    b.finish()
}

fn kmerger_wires(b: &mut Builder, ins: &[Wire], k: usize) -> Vec<Wire> {
    let m = ins.len();
    if m == k {
        return muxmerge::sorter_wires(b, ins);
    }
    let swapped = kswap_wires(b, ins, k);
    let clean_sorted = b.scoped("clean_sorter", |b| {
        clean_sorter_wires(b, &swapped[..m / 2], k)
    });
    let lower_sorted = b.scoped("level", |b| kmerger_wires(b, &swapped[m / 2..], k));
    let mut joined = clean_sorted;
    joined.extend(lower_sorted);
    b.scoped("final_merge", |b| muxmerge::merger_wires(b, &joined))
}

/// Combinational clean sorter on `k` clean blocks: computes each block's
/// destination rank (zeros before it, or total zeros + ones before it),
/// then routes every line with a k-way indicator/OR select. Carries the
/// data (no broadcast shortcut), so payload-level equivalence with the
/// Model B dispatch holds line by line.
#[allow(clippy::needless_range_loop)] // rank/indicator matrices are indexed in lockstep
fn clean_sorter_wires(b: &mut Builder, ins: &[Wire], k: usize) -> Vec<Wire> {
    let half = ins.len();
    let block = half / k;
    let kbits = k.trailing_zeros() as usize;
    let leading: Vec<Wire> = (0..k).map(|i| ins[i * block]).collect();

    // Running counts: zeros_before[i], ones_before[i] as kbits-bit words
    // (dest < k always fits). Built with 1-bit increments (adders of
    // width kbits against a zero-extended bit).
    let zero = b.constant(false);
    let mut zeros_before: Vec<Vec<Wire>> = Vec::with_capacity(k + 1);
    let mut ones_before: Vec<Vec<Wire>> = Vec::with_capacity(k);
    zeros_before.push(vec![zero; kbits]);
    ones_before.push(vec![zero; kbits]);
    for i in 0..k {
        let nb = b.not(leading[i]);
        let mut inc_z = vec![zero; kbits];
        inc_z[0] = nb;
        let mut inc_o = vec![zero; kbits];
        inc_o[0] = leading[i];
        let z = add(b, AdderKind::Ripple, &zeros_before[i], &inc_z);
        let o = add(b, AdderKind::Ripple, &ones_before[i], &inc_o);
        zeros_before.push(z[..kbits].to_vec());
        ones_before.push(o[..kbits].to_vec());
    }
    let zeros_total = zeros_before[k].clone();

    // dest_i = b_i ? zeros_total + ones_before[i] : zeros_before[i]
    let mut dest: Vec<Vec<Wire>> = Vec::with_capacity(k);
    for i in 0..k {
        let sum = add(b, AdderKind::Ripple, &zeros_total, &ones_before[i]);
        let bits: Vec<Wire> = (0..kbits)
            .map(|t| b.mux2(leading[i], zeros_before[i][t], sum[t]))
            .collect();
        dest.push(bits);
    }

    // indicator(i, j) = [dest_i == j]
    let mut indicator = vec![vec![zero; k]; k];
    for (i, d) in dest.iter().enumerate() {
        for j in 0..k {
            let mut acc: Option<Wire> = None;
            for (t, &bit) in d.iter().enumerate() {
                let want = (j >> t) & 1 == 1;
                let term = if want { bit } else { b.not(bit) };
                acc = Some(match acc {
                    None => term,
                    Some(a) => b.and(a, term),
                });
            }
            indicator[i][j] = acc.expect("k >= 2 so kbits >= 1");
        }
    }

    // output block j, line l = OR_i (indicator[i][j] AND ins[i*block + l])
    let mut out = Vec::with_capacity(half);
    for j in 0..k {
        for l in 0..block {
            let mut acc: Option<Wire> = None;
            for i in 0..k {
                let t = b.and(indicator[i][j], ins[i * block + l]);
                acc = Some(match acc {
                    None => t,
                    Some(a) => b.or(a, t),
                });
            }
            out.push(acc.expect("k >= 1"));
        }
    }
    out
}

/// The E18 ablation numbers at merger width `m`: the combinational
/// dispatch hardware per level vs the paper's time-multiplexed `m + k`
/// budget.
pub fn dispatch_ablation(m: usize, k: usize) -> (u64, u64) {
    let c = build_combinational_kmerger(m, k);
    let combinational = c
        .cost_of_scope("clean_sorter")
        .expect("clean_sorter scope")
        .total;
    let time_multiplexed = m as u64 + k as u64; // paper's per-level budget
    (combinational, time_multiplexed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fish::kmerge;
    use crate::lang;

    #[test]
    fn kswap_circuit_matches_functional_and_paper_costs() {
        for (m, k) in [(16usize, 4usize), (32, 4)] {
            let c = build_kswap(m, k);
            assert_eq!(c.cost().total, m as u64 / 2, "paper: C_SWAP = m/2");
            assert_eq!(c.depth(), 1, "paper: D_SWAP = 1");
            // exhaustive over every k-sorted input at these sizes
            for s in lang::all_k_sorted(m, k) {
                let (clean, rest) = kmerge::k_swap(&s, k);
                let mut expect = clean;
                expect.extend(rest);
                assert_eq!(c.eval(&s), expect, "m={m} k={k}");
            }
        }
        // random spot checks at a larger size (all_k_sorted would be 9^8
        // sequences there)
        use rand::prelude::*;
        let (m, k) = (64usize, 8usize);
        let c = build_kswap(m, k);
        assert_eq!(c.cost().total, m as u64 / 2);
        let mut rng = StdRng::seed_from_u64(62);
        let block = m / k;
        for _ in 0..200 {
            let mut s = Vec::with_capacity(m);
            for _ in 0..k {
                let ones = rng.gen_range(0..=block);
                s.extend(std::iter::repeat_n(false, block - ones));
                s.extend(std::iter::repeat_n(true, ones));
            }
            let (clean, rest) = kmerge::k_swap(&s, k);
            let mut expect = clean;
            expect.extend(rest);
            assert_eq!(c.eval(&s), expect);
        }
    }

    #[test]
    fn combinational_merger_sorts_all_k_sorted() {
        for (m, k) in [(8usize, 2usize), (16, 4), (32, 4)] {
            let c = build_combinational_kmerger(m, k);
            for s in lang::all_k_sorted(m, k) {
                assert_eq!(c.eval(&s), lang::sorted_oracle(&s), "m={m} k={k}");
            }
        }
    }

    #[test]
    fn combinational_merger_matches_model_b_dataflow() {
        use rand::prelude::*;
        let (m, k) = (256usize, 8usize);
        let c = build_combinational_kmerger(m, k);
        let mut rng = StdRng::seed_from_u64(61);
        let block = m / k;
        for _ in 0..50 {
            let mut s = Vec::with_capacity(m);
            for _ in 0..k {
                let ones = rng.gen_range(0..=block);
                s.extend(std::iter::repeat_n(false, block - ones));
                s.extend(std::iter::repeat_n(true, ones));
            }
            assert_eq!(c.eval(&s), kmerge::kmerge(&s, k));
        }
    }

    #[test]
    fn dispatch_ablation_shows_time_multiplexing_saving() {
        // The combinational dispatch must cost several times the paper's
        // time-multiplexed m + k budget, and the gap grows with k.
        let (c4, t4) = dispatch_ablation(64, 4);
        let (c8, t8) = dispatch_ablation(256, 8);
        assert!(c4 > 2 * t4, "k=4: {c4} vs {t4}");
        assert!(c8 > 3 * t8, "k=8: {c8} vs {t8}");
        assert!(
            c8 as f64 / t8 as f64 > c4 as f64 / t4 as f64,
            "saving must grow with k"
        );
    }
}
