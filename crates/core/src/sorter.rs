//! A uniform handle over the paper's three adaptive binary sorters, used
//! by the Section IV interconnection networks (concentrators and
//! permuters) and the benchmark harness.

use crate::packet::Keyed;
use crate::{fish, muxmerge, prefix};

/// Which adaptive binary sorting network to use.
///
/// ```
/// use absort_core::{lang, SorterKind};
///
/// let bits = lang::bits("0110_1001");
/// for kind in [SorterKind::Prefix, SorterKind::MuxMerger, SorterKind::Fish { k: None }] {
///     assert_eq!(kind.sort(&bits), lang::sorted_oracle(&bits));
/// }
/// // payloads travel with their key bits:
/// let tagged = [(true, "x"), (false, "y")];
/// assert_eq!(SorterKind::MuxMerger.sort(&tagged), vec![(false, "y"), (true, "x")]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SorterKind {
    /// Network 1 — the prefix binary sorter (`3 n lg n` cost,
    /// `O(lg² n)` depth).
    Prefix,
    /// Network 2 — the mux-merger binary sorter (`4 n lg n` cost,
    /// `O(lg² n)` depth).
    MuxMerger,
    /// Network 3 — the time-multiplexed fish binary sorter (`O(n)` cost;
    /// `k = None` picks the paper's `k ≈ lg n`).
    Fish {
        /// Group count override (power of two, `k ≤ n/k`).
        k: Option<usize>,
    },
}

impl SorterKind {
    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SorterKind::Prefix => "prefix",
            SorterKind::MuxMerger => "mux-merger",
            SorterKind::Fish { .. } => "fish",
        }
    }

    fn fish(self, n: usize) -> fish::FishSorter {
        match self {
            // A requested k is clamped to the largest valid group count for
            // this n (k ≤ n/k): recursive users like the radix permuter
            // instantiate the sorter at progressively smaller widths.
            SorterKind::Fish { k: Some(k) } => {
                let max_k = 1usize << (n.trailing_zeros() / 2);
                fish::FishSorter::new(n, k.min(max_k).max(2))
            }
            SorterKind::Fish { k: None } => fish::FishSorter::with_default_k(n),
            _ => unreachable!(),
        }
    }

    /// Sorts keyed line values (payloads travel with their key bits).
    pub fn sort<P: Keyed>(&self, items: &[P]) -> Vec<P> {
        match self {
            SorterKind::Prefix => prefix::sort(items),
            SorterKind::MuxMerger => muxmerge::sort(items),
            SorterKind::Fish { .. } => self.fish(items.len()).sort(items),
        }
    }

    /// Bit-level cost of the n-input instance (exact for our
    /// constructions).
    pub fn cost(&self, n: usize) -> u64 {
        match self {
            SorterKind::Prefix => {
                // measured dominant + adder-tree lower term; the analysis
                // crate measures the exact value from the built circuit —
                // here we return the paper's closed form (used for the
                // Table II comparisons).
                prefix::paper_cost_dominant(n)
            }
            SorterKind::MuxMerger => muxmerge::formulas::sorter_cost_exact(n),
            SorterKind::Fish { .. } => {
                let f = self.fish(n);
                fish::formulas::total_cost_exact(f.n, f.k)
            }
        }
    }

    /// Bit-level depth (combinational) or, for the fish sorter, the
    /// pipelined sorting time in cycles — the quantity the paper compares.
    pub fn depth(&self, n: usize) -> u64 {
        match self {
            SorterKind::Prefix => prefix::paper_depth_bound(n),
            SorterKind::MuxMerger => muxmerge::formulas::sorter_depth_exact(n),
            SorterKind::Fish { .. } => {
                let f = self.fish(n);
                fish::schedule::sorting_time(f.n, f.k, true)
            }
        }
    }

    /// Whether the sorter is time-multiplexed (packet-switched when used
    /// inside a permuter) rather than purely combinational
    /// (circuit-switched) — the distinction Section IV draws.
    pub fn is_time_multiplexed(&self) -> bool {
        matches!(self, SorterKind::Fish { .. })
    }
}

/// All three kinds with default parameters, for sweep drivers.
pub const ALL_KINDS: [SorterKind; 3] = [
    SorterKind::Prefix,
    SorterKind::MuxMerger,
    SorterKind::Fish { k: None },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{all_sequences, sorted_oracle};
    use crate::packet::{keys, tag_indices};

    #[test]
    fn all_kinds_sort_exhaustively_n16() {
        for kind in ALL_KINDS {
            for s in all_sequences(16) {
                assert_eq!(kind.sort(&s), sorted_oracle(&s), "{}", kind.name());
            }
        }
    }

    #[test]
    fn payloads_are_permuted_not_lost() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(21);
        for kind in ALL_KINDS {
            let n = 256;
            let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let tagged = tag_indices(&bits);
            let out = kind.sort(&tagged);
            // keys sorted
            assert_eq!(keys(&out), sorted_oracle(&bits), "{}", kind.name());
            // payloads form a permutation of 0..n
            let mut ids: Vec<usize> = out.iter().map(|p| p.1).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..n).collect::<Vec<_>>(), "{}", kind.name());
            // each payload still carries its original key
            for &(key, id) in &out {
                assert_eq!(key, bits[id], "{}", kind.name());
            }
        }
    }

    #[test]
    fn cost_ordering_matches_paper_for_large_n() {
        // fish (O(n)) < prefix (3n lg n) < mux-merger (4n lg n) for large n.
        let n = 1 << 16;
        let fish = SorterKind::Fish { k: None }.cost(n);
        let prefix = SorterKind::Prefix.cost(n);
        let mux = SorterKind::MuxMerger.cost(n);
        assert!(fish < prefix, "fish {fish} < prefix {prefix}");
        assert!(prefix < mux, "prefix {prefix} < mux {mux}");
    }
}
