//! Packets: values the networks *carry*.
//!
//! The paper stresses that its networks "can carry, or move the inputs
//! through" — unlike the O(n)-cost Boolean sorting *circuits* of
//! Muller–Preparata/Wegener, which only generate sorted bits at their
//! outputs. To honour that distinction, the functional mirrors of all
//! three sorters are generic over a [`Keyed`] line value: sorting `bool`s
//! exercises the bit behaviour, while sorting `(bool, payload)` pairs
//! proves the same data movement transports arbitrary cargo — which is
//! what the Section IV concentrators and permutation networks rely on.

/// A value carried on a network line, exposing the single key bit the
/// comparators and swappers steer by.
pub trait Keyed: Clone {
    /// The binary sort key (0 routes up, 1 routes down).
    fn key(&self) -> bool;
}

impl Keyed for bool {
    #[inline]
    fn key(&self) -> bool {
        *self
    }
}

impl<T: Clone> Keyed for (bool, T) {
    #[inline]
    fn key(&self) -> bool {
        self.0
    }
}

/// A comparator exchange on two keyed lines: packets swap iff the upper
/// key is 1 and the lower is 0 (for bits this is exactly
/// `(min, max) = (AND, OR)`).
#[inline]
pub fn compare_exchange<P: Keyed>(a: P, b: P) -> (P, P) {
    if a.key() && !b.key() {
        (b, a)
    } else {
        (a, b)
    }
}

/// Extracts the key bits of a packet slice.
pub fn keys<P: Keyed>(items: &[P]) -> Vec<bool> {
    items.iter().map(Keyed::key).collect()
}

/// Attaches each element's original index as payload: `(key, index)`.
pub fn tag_indices(bits: &[bool]) -> Vec<(bool, usize)> {
    bits.iter().copied().zip(0..).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_exchange_matches_and_or_on_bits() {
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let (lo, hi) = compare_exchange(a, b);
            assert_eq!(lo, a & b);
            assert_eq!(hi, a | b);
        }
    }

    #[test]
    fn payloads_travel_with_keys() {
        let (lo, hi) = compare_exchange((true, "x"), (false, "y"));
        assert_eq!(lo, (false, "y"));
        assert_eq!(hi, (true, "x"));
        let (lo, hi) = compare_exchange((true, 1), (true, 2));
        assert_eq!((lo.1, hi.1), (1, 2), "equal keys must not move");
    }

    #[test]
    fn tagging() {
        let t = tag_indices(&[true, false]);
        assert_eq!(t, vec![(true, 0), (false, 1)]);
        assert_eq!(keys(&t), vec![true, false]);
    }
}
