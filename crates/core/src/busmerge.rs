//! Bus-carrying mux-merger: the adaptive sorter steering whole wire
//! bundles.
//!
//! The Section IV networks move *packets* — an address plus payload — but
//! Network 2's circuit moves single bits. This module generalizes the
//! mux-merger to `w`-wire bundles: the steering logic (quarter middle
//! bits, compare-exchange conditions) reads one designated **key wire**
//! per bundle, and every 2×2/4×4 switch is replicated across the bundle's
//! `w` wires under the shared control. That is exactly how the paper's
//! networks carry data ("a binary sorter can distribute the inputs … by
//! sorting the leading bits", Section IV), now as a real netlist: the
//! gate-level radix permuter of `absort-networks::permuter_circuit` is
//! built from these.
//!
//! Cost: the single-bit mux-merger's switch count times `w`, plus two
//! gates per compare-exchange for the swap condition. Depth gains one
//! level per comparator (the condition gate) but stays `Θ(lg² n)`.

use absort_circuit::{assert_pow2, Builder, Wire};

/// A bundle of `w` wires travelling together; `wires[key]` is the bit the
/// sorters steer by.
#[derive(Debug, Clone)]
pub struct Bus {
    /// The bundle's wires (payload and address bits alike).
    pub wires: Vec<Wire>,
}

impl Bus {
    /// Creates a bundle.
    pub fn new(wires: Vec<Wire>) -> Self {
        assert!(!wires.is_empty(), "empty bus");
        Bus { wires }
    }

    /// Bundle width.
    pub fn width(&self) -> usize {
        self.wires.len()
    }
}

/// Compare-exchange on two bundles by their key wires: swaps the whole
/// bundles iff `a.key = 1` and `b.key = 0` (the packet reading of a bit
/// comparator). Cost: 2 gates + `w` switches.
pub fn bus_compare_exchange(b: &mut Builder, key: usize, x: &Bus, y: &Bus) -> (Bus, Bus) {
    assert_eq!(x.width(), y.width(), "bus width mismatch");
    let nk = b.not(y.wires[key]);
    let swap = b.and(x.wires[key], nk);
    let mut lo = Vec::with_capacity(x.width());
    let mut hi = Vec::with_capacity(x.width());
    for (&xa, &ya) in x.wires.iter().zip(&y.wires) {
        let (o0, o1) = b.switch2(swap, xa, ya);
        lo.push(o0);
        hi.push(o1);
    }
    (Bus::new(lo), Bus::new(hi))
}

/// Four-way swapper on bundles: quarter permutation selected by two
/// key-derived control wires, applied to every wire slice of the bundles.
fn bus_four_way(
    b: &mut Builder,
    s1: Wire,
    s0: Wire,
    buses: &[Bus],
    perms: [absort_blocks::swap::QuarterPerm; 4],
) -> Vec<Bus> {
    let m = buses.len();
    let w = buses[0].width();
    let q = m / 4;
    let mut out: Vec<Vec<Wire>> = vec![Vec::with_capacity(w); m];
    for slice in 0..w {
        let lines: Vec<Wire> = buses.iter().map(|bus| bus.wires[slice]).collect();
        let swapped = absort_blocks::swap::four_way_swapper(b, s1, s0, &lines, perms);
        for (pos, wire) in swapped.into_iter().enumerate() {
            out[pos].push(wire);
        }
    }
    debug_assert_eq!(out[0].len(), w);
    let _ = q;
    out.into_iter().map(Bus::new).collect()
}

/// The bus mux-merger: merges `m` bundles whose key bits form a bisorted
/// sequence (recursive IN-SWAP / OUT-SWAP structure of Network 2).
pub fn bus_merger(b: &mut Builder, key: usize, buses: &[Bus]) -> Vec<Bus> {
    let m = buses.len();
    assert_pow2(m, "bus merger width");
    if m == 1 {
        return buses.to_vec();
    }
    if m == 2 {
        let (lo, hi) = bus_compare_exchange(b, key, &buses[0], &buses[1]);
        return vec![lo, hi];
    }
    let q = m / 4;
    let s1 = buses[q].wires[key];
    let s2 = buses[3 * q].wires[key];
    let inward = bus_four_way(b, s1, s2, buses, crate::muxmerge::IN_SWAP);
    let mid = bus_merger(b, key, &inward[q..3 * q]);
    let mut joined = inward[..q].to_vec();
    joined.extend(mid);
    joined.extend_from_slice(&inward[3 * q..]);
    bus_four_way(b, s1, s2, &joined, crate::muxmerge::OUT_SWAP)
}

/// The bus mux-merger **sorter**: sorts `m` bundles by their key bits
/// (Network 2 on packets).
pub fn bus_sorter(b: &mut Builder, key: usize, buses: &[Bus]) -> Vec<Bus> {
    let m = buses.len();
    assert_pow2(m, "bus sorter width");
    if m == 1 {
        return buses.to_vec();
    }
    if m == 2 {
        let (lo, hi) = bus_compare_exchange(b, key, &buses[0], &buses[1]);
        return vec![lo, hi];
    }
    let upper = bus_sorter(b, key, &buses[..m / 2]);
    let lower = bus_sorter(b, key, &buses[m / 2..]);
    let mut cat = upper;
    cat.extend(lower);
    bus_merger(b, key, &cat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang;
    use rand::prelude::*;

    /// Builds a circuit sorting `m` bundles of width `w` by wire `key`.
    fn build_bus_sorter(m: usize, w: usize, key: usize) -> absort_circuit::Circuit {
        let mut b = Builder::new();
        let buses: Vec<Bus> = (0..m).map(|_| Bus::new(b.input_bus(w))).collect();
        let sorted = bus_sorter(&mut b, key, &buses);
        let outs: Vec<Wire> = sorted.into_iter().flat_map(|bus| bus.wires).collect();
        b.outputs(&outs);
        b.finish()
    }

    #[test]
    fn sorts_bundles_by_key_and_carries_payload() {
        let (m, w, key) = (8usize, 4usize, 0usize);
        let c = build_bus_sorter(m, w, key);
        let mut rng = StdRng::seed_from_u64(70);
        for _ in 0..100 {
            // bundle i: key bit + a 3-bit payload tag
            let keys: Vec<bool> = (0..m).map(|_| rng.gen()).collect();
            let mut input = Vec::new();
            for (i, &kbit) in keys.iter().enumerate() {
                input.push(kbit);
                for t in 0..3 {
                    input.push(i >> t & 1 == 1);
                }
            }
            let out = c.eval(&input);
            // decode bundles
            let bundles: Vec<(bool, usize)> = out
                .chunks(w)
                .map(|ch| {
                    let tag = (0..3).fold(0usize, |acc, t| acc | (usize::from(ch[1 + t]) << t));
                    (ch[0], tag)
                })
                .collect();
            // keys sorted
            let out_keys: Vec<bool> = bundles.iter().map(|&(k, _)| k).collect();
            assert_eq!(out_keys, lang::sorted_oracle(&keys));
            // payloads form a permutation and keep their key bits
            let mut tags: Vec<usize> = bundles.iter().map(|&(_, t)| t).collect();
            tags.sort_unstable();
            assert_eq!(tags, (0..m).collect::<Vec<_>>());
            for &(kbit, tag) in &bundles {
                assert_eq!(kbit, keys[tag], "bundle {tag} kept its key");
            }
        }
    }

    #[test]
    fn key_position_is_respected() {
        // steer by wire 2 of 3 instead of wire 0
        let (m, w, key) = (4usize, 3usize, 2usize);
        let c = build_bus_sorter(m, w, key);
        // bundles: (x, y, key): keys 1,0,1,0
        let mut input = Vec::new();
        for i in 0..m {
            input.push(i % 2 == 0); // x
            input.push(true); // y
            input.push(i % 2 == 0); // key: bundles 0,2 have key 1
        }
        let out = c.eval(&input);
        let out_keys: Vec<bool> = out.chunks(w).map(|ch| ch[2]).collect();
        assert_eq!(out_keys, vec![false, false, true, true]);
    }

    #[test]
    fn width_1_bus_matches_plain_sorter_cost_shape() {
        let m = 16;
        let c = build_bus_sorter(m, 1, 0);
        let plain = crate::muxmerge::build(m);
        // same function on the key bit
        for v in 0..1u32 << m {
            let bits: Vec<bool> = (0..m).map(|i| v >> i & 1 == 1).collect();
            if v % 97 != 0 {
                continue; // sample
            }
            assert_eq!(c.eval(&bits), plain.eval(&bits));
        }
        // the bus version adds 2 gates per comparator for the explicit
        // swap condition; otherwise the switch counts track
        assert!(c.cost().total >= plain.cost().total);
        assert!(c.cost().total <= plain.cost().total + 2 * 15 + 16);
    }
}
