//! Network 1: the prefix binary sorter (paper Section III.A, Fig. 5).
//!
//! A recursive adaptive binary sorter: the two halves are sorted
//! recursively, their shuffled concatenation lands in `A_n` (Theorem 1),
//! and a *patch-up network* sorts it. Each patch-up level applies one
//! balanced comparator stage (after which one half is clean-sorted and
//! the other is in `A_{n/2}`, Theorem 2), uses the count of 1's — computed
//! once per sorter level by prefix adders — to *adaptively* select the
//! unsorted half, channels it to the next level with a two-way swapper,
//! and swaps the result back.
//!
//! Paper bounds: cost `3 n lg n + O(lg² n)` (our constructed circuits add
//! an `O(n)` term for the adder tree, measured by the analysis crate),
//! depth `O(lg² n)`.
//!
//! The select-signal plumbing uses one observation the figure leaves
//! implicit: if the current `A_m` sequence holds `s` ones and the
//! unsorted half is chosen by `s ≥ m/2`, then the unsorted half holds
//! `s mod m/2` ones, *except* that `s = m` maps to `m/2` — and in binary
//! that is exactly the bit vector `[s_0, …, s_{lg m − 2}, s_{lg m}]`. So
//! the count bits are re-wired (zero gates) down the patch-up recursion
//! and each level needs only one OR gate for its select.

use crate::lang;
use crate::packet::{self, Keyed};
use absort_blocks::adder::{add, AdderKind};
use absort_blocks::popcount::ge_half;
use absort_blocks::stages::{balanced_stage, shuffle};
use absort_blocks::swap::two_way_swapper;
use absort_circuit::{assert_pow2, Builder, Circuit, Wire};

/// Builds the n-input prefix binary sorter circuit (`n = 2^k`).
///
/// ```
/// use absort_core::{lang, prefix};
///
/// let circuit = prefix::build(16);
/// let input = lang::bits("1011_0100_0111_0010");
/// assert_eq!(circuit.eval(&input), lang::sorted_oracle(&input));
/// // the dominant 3n lg n cost term (paper §III.A):
/// assert!(circuit.cost().total >= prefix::paper_cost_dominant(16) - 12 * 16);
/// ```
pub fn build(n: usize) -> Circuit {
    build_with_adder(n, AdderKind::Prefix)
}

/// [`build`] with an explicit adder construction — the E16 ablation.
///
/// Measured outcome (see EXPERIMENTS.md): swapping the prefix adders for
/// ripple-carry adders leaves the sorter's depth **unchanged** at every
/// size we build (n ≤ 2¹²) — the count path (`Σ 2 lg m ≈ lg² n` with
/// ripple) stays strictly shorter than the patch-up data path
/// (`Σ 3 lg m ≈ 1.5 lg² n`), so the select signals always arrive early.
/// The prefix adder matters when the count is consumed directly (a
/// standalone rank/population count, as in concentrator rank logic), not
/// for Network 1's critical path; ripple even saves ≈4 gates per counted
/// bit. This is a sharper statement than the paper's, obtained by
/// measuring the built circuits.
pub fn build_with_adder(n: usize, adder: AdderKind) -> Circuit {
    assert_pow2(n, "prefix sorter");
    #[cfg(feature = "telemetry")]
    let _tel = absort_telemetry::span("build");
    let mut b = Builder::new();
    let ins = b.input_bus(n);
    let (outs, _count) = b.scoped("prefix_sorter", |b| sorter(b, adder, &ins));
    b.outputs(&outs);
    b.finish()
}

/// Recursive sorter body: returns the sorted wires and the count of 1's
/// (`lg m + 1` little-endian bits).
fn sorter(b: &mut Builder, adder: AdderKind, xs: &[Wire]) -> (Vec<Wire>, Vec<Wire>) {
    let m = xs.len();
    if m == 1 {
        return (xs.to_vec(), xs.to_vec());
    }
    let (u, cu) = b.scoped("upper", |b| sorter(b, adder, &xs[..m / 2]));
    let (l, cl) = b.scoped("lower", |b| sorter(b, adder, &xs[m / 2..]));
    let count = b.scoped("adder", |b| add(b, adder, &cu, &cl));
    let mut cat = u;
    cat.extend_from_slice(&l);
    let z = shuffle(&cat); // Theorem 1: z ∈ A_m
    let out = b.scoped("patchup", |b| patchup(b, &z, &count));
    (out, count)
}

/// The patch-up network: sorts a wire bundle whose value is guaranteed to
/// lie in `A_m`, given the count of its 1's.
fn patchup(b: &mut Builder, z: &[Wire], count: &[Wire]) -> Vec<Wire> {
    let m = z.len();
    debug_assert_eq!(count.len(), m.trailing_zeros() as usize + 1);
    if m == 1 {
        return z.to_vec();
    }
    if m == 2 {
        // A_2 is every 2-bit sequence; one comparator sorts it (C_p(2)=1).
        let (lo, hi) = b.bit_compare(z[0], z[1]);
        return vec![lo, hi];
    }
    let k = m.trailing_zeros() as usize; // lg m
    let y = balanced_stage(b, z); // Theorem 2
                                  // s >= m/2 ⇒ the lower half is clean (all 1s) and the upper half is
                                  // the unsorted one; swap so the unsorted half sits in the lower slot.
    let sel = ge_half(b, count, m);
    let sw = two_way_swapper(b, sel, &y);
    // Count of 1's in the unsorted half: [s_0..s_{k-2}, s_k] (see module
    // docs) — pure rewiring.
    let mut sub_count: Vec<Wire> = count[..k - 1].to_vec();
    sub_count.push(count[k]);
    let lower_sorted = b.scoped("level", |b| patchup(b, &sw[m / 2..], &sub_count));
    let mut joined = sw[..m / 2].to_vec();
    joined.extend_from_slice(&lower_sorted);
    two_way_swapper(b, sel, &joined)
}

/// Functional mirror of the prefix sorter: sorts via exactly the
/// network's dataflow (recursive half-sorts, shuffle, balanced stages,
/// count-driven swaps), asserting Theorems 1–2 along the way in debug
/// builds. Generic over [`Keyed`] line values (payloads travel with their
/// key bits). `O(n lg n)` time; usable far beyond circuit-buildable
/// sizes.
pub fn sort<P: Keyed>(items: &[P]) -> Vec<P> {
    assert_pow2(items.len(), "prefix sorter (functional)");
    sort_rec(items)
}

fn shuffle_packets<P: Clone>(s: &[P]) -> Vec<P> {
    let n = s.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n / 2 {
        out.push(s[i].clone());
        out.push(s[n / 2 + i].clone());
    }
    out
}

fn sort_rec<P: Keyed>(items: &[P]) -> Vec<P> {
    let m = items.len();
    if m == 1 {
        return items.to_vec();
    }
    let u = sort_rec(&items[..m / 2]);
    let l = sort_rec(&items[m / 2..]);
    let mut cat = u;
    cat.extend_from_slice(&l);
    let z = shuffle_packets(&cat);
    debug_assert!(lang::in_a_n(&packet::keys(&z)), "Theorem 1 violated");
    let ones = z.iter().filter(|p| p.key()).count();
    patchup_fn(&z, ones)
}

fn patchup_fn<P: Keyed>(z: &[P], ones: usize) -> Vec<P> {
    let m = z.len();
    debug_assert_eq!(ones, z.iter().filter(|p| p.key()).count());
    if m == 1 {
        return z.to_vec();
    }
    if m == 2 {
        let (lo, hi) = packet::compare_exchange(z[0].clone(), z[1].clone());
        return vec![lo, hi];
    }
    debug_assert!(
        lang::in_a_n(&packet::keys(z)),
        "patch-up input must be in A_m"
    );
    let mut y = z.to_vec();
    for i in 0..m / 2 {
        let (lo, hi) = packet::compare_exchange(y[i].clone(), y[m - 1 - i].clone());
        y[i] = lo;
        y[m - 1 - i] = hi;
    }
    let sel = ones >= m / 2;
    if sel {
        debug_assert!(
            y[m / 2..].iter().all(|p| p.key()),
            "lower half must be clean 1s"
        );
        y.rotate_left(m / 2); // two-way swap: exchange halves
    } else {
        debug_assert!(
            y[..m / 2].iter().all(|p| !p.key()),
            "upper half must be clean 0s"
        );
    }
    debug_assert!(
        lang::in_a_n(&packet::keys(&y[m / 2..])),
        "Theorem 2 violated"
    );
    let sub_ones = if sel { ones - m / 2 } else { ones };
    let lower = patchup_fn(&y[m / 2..], sub_ones);
    let mut out = y[..m / 2].to_vec();
    out.extend_from_slice(&lower);
    if sel {
        out.rotate_left(m / 2);
    }
    out
}

/// One recorded patch-up step (for Fig. 5-style traces).
#[derive(Debug, Clone)]
pub struct PatchupStep {
    /// Width of this patch-up level.
    pub m: usize,
    /// The `A_m` sequence entering the level.
    pub input: Vec<bool>,
    /// Ones count at this level.
    pub ones: usize,
    /// The level's select signal (`ones >= m/2`).
    pub select: bool,
    /// After the balanced comparator stage.
    pub after_compare: Vec<bool>,
    /// The level's sorted output.
    pub output: Vec<bool>,
}

/// A full trace of the top-level merge of the prefix sorter: the sorted
/// halves, their shuffled concatenation, the prefix-adder count, and
/// every patch-up level.
#[derive(Debug, Clone, Default)]
pub struct PrefixTrace {
    /// The recursively sorted upper half.
    pub upper_sorted: Vec<bool>,
    /// The recursively sorted lower half.
    pub lower_sorted: Vec<bool>,
    /// The shuffled concatenation (in `A_n` by Theorem 1).
    pub shuffled: Vec<bool>,
    /// Total count of 1's (the prefix adder's output).
    pub ones: usize,
    /// The patch-up levels, outermost first.
    pub levels: Vec<PatchupStep>,
}

/// Sorts and records a Fig. 5-style trace of the *top-level* merge
/// (recursive sub-sorts are performed silently; the interesting adaptive
/// behaviour is per level).
pub fn sort_traced(bits: &[bool]) -> (Vec<bool>, PrefixTrace) {
    assert_pow2(bits.len(), "prefix sorter (traced)");
    let n = bits.len();
    let mut trace = PrefixTrace::default();
    if n == 1 {
        return (bits.to_vec(), trace);
    }
    trace.upper_sorted = sort_rec(&bits[..n / 2]);
    trace.lower_sorted = sort_rec(&bits[n / 2..]);
    let mut cat = trace.upper_sorted.clone();
    cat.extend_from_slice(&trace.lower_sorted);
    trace.shuffled = lang::shuffle(&cat);
    trace.ones = trace.shuffled.iter().filter(|&&b| b).count();
    let out = patchup_traced(&trace.shuffled, trace.ones, &mut trace.levels);
    (out, trace)
}

fn patchup_traced(z: &[bool], ones: usize, steps: &mut Vec<PatchupStep>) -> Vec<bool> {
    let m = z.len();
    if m <= 2 {
        return patchup_fn(z, ones);
    }
    let mut y = lang::balanced_stage(z);
    let sel = ones >= m / 2;
    let after_compare = y.clone();
    if sel {
        y.rotate_left(m / 2);
    }
    let sub_ones = if sel { ones - m / 2 } else { ones };
    let lower = patchup_traced(&y[m / 2..], sub_ones, steps);
    let mut out = y[..m / 2].to_vec();
    out.extend_from_slice(&lower);
    if sel {
        out.rotate_left(m / 2);
    }
    steps.insert(
        0,
        PatchupStep {
            m,
            input: z.to_vec(),
            ones,
            select: sel,
            after_compare,
            output: out.clone(),
        },
    );
    out
}

/// The paper's closed-form *dominant* cost term for Network 1:
/// `3 n lg n` (plus lower-order terms it writes as `O(lg² n)`; our
/// constructed circuit's lower-order term is `Θ(n)` from the adder tree —
/// see EXPERIMENTS.md E5).
pub fn paper_cost_dominant(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    3 * n as u64 * n.trailing_zeros() as u64
}

/// The paper's closed-form depth bound for Network 1:
/// `3 lg² n + 2 lg n lg lg n`.
pub fn paper_depth_bound(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    let k = n.trailing_zeros() as u64;
    let lglg = if k <= 1 {
        0
    } else {
        (64 - (k - 1).leading_zeros()) as u64
    };
    3 * k * k + 2 * k * lglg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{all_sequences, sorted_oracle};
    use rand::prelude::*;

    #[test]
    fn functional_sorts_exhaustively_to_256() {
        for k in 0..=8usize {
            let n = 1 << k;
            if n <= 16 {
                for s in all_sequences(n) {
                    assert_eq!(sort(&s), sorted_oracle(&s));
                }
            }
        }
    }

    #[test]
    fn functional_sorts_random_large() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in [8usize, 10, 14, 16] {
            let n = 1 << k;
            for _ in 0..5 {
                let s: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                assert_eq!(sort(&s), sorted_oracle(&s), "n={n}");
            }
        }
    }

    #[test]
    fn circuit_sorts_exhaustively_to_16() {
        for k in 1..=4usize {
            let n = 1 << k;
            let c = build(n);
            for s in all_sequences(n) {
                assert_eq!(c.eval(&s), sorted_oracle(&s), "n={n}");
            }
        }
    }

    #[test]
    fn circuit_matches_functional_on_random_64() {
        let n = 64;
        let c = build(n);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            assert_eq!(c.eval(&s), sort(&s));
        }
    }

    #[test]
    fn cost_dominant_term_is_3n_lgn() {
        for k in 2..=10u32 {
            let n = 1usize << k;
            let c = build(n);
            let cost = c.cost().total;
            let dominant = paper_cost_dominant(n);
            // The adder tree adds a positive Θ(n) term at large n (and
            // the patch-up base cases save a few units at tiny n): the
            // exact cost must track 3n lg n within ±12n.
            assert!(
                cost + 12 * n as u64 >= dominant && cost <= dominant + 12 * n as u64,
                "n={n}: cost {cost} not within 3n lg n ± 12n (dominant {dominant})"
            );
        }
    }

    #[test]
    fn depth_is_within_paper_bound() {
        for k in 2..=10usize {
            let n = 1 << k;
            let d = build(n).depth() as u64;
            assert!(
                d <= paper_depth_bound(n),
                "n={n}: depth {d} > paper bound {}",
                paper_depth_bound(n)
            );
        }
    }

    #[test]
    fn ripple_adder_ablation_same_depth_lower_cost() {
        use absort_blocks::adder::AdderKind;
        for n in [64usize, 256, 1024] {
            let fast = build(n);
            let slow = build_with_adder(n, AdderKind::Ripple);
            // same function...
            let mut rng = StdRng::seed_from_u64(6);
            for _ in 0..30 {
                let s: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
                assert_eq!(slow.eval(&s), fast.eval(&s));
            }
            // ...and (the measured E16 finding) the same depth: the count
            // path hides behind the deeper patch-up path, and ripple
            // adders are slightly cheaper.
            assert_eq!(slow.depth(), fast.depth(), "n={n}");
            assert!(slow.cost().total < fast.cost().total, "n={n}");
        }
        // Second measured E16 finding: even the standalone popcount tree
        // does NOT need prefix adders — ripple carries skew across tree
        // levels (the next adder's low bits arrive before the previous
        // adder's high bits), so the tree's depth stays O(lg n) for both
        // kinds and ripple is actually a little shallower and cheaper.
        // Prefix adders win only for a single wide addition (see
        // absort_blocks::adder::tests::ripple_depth_is_linear_...).
        use absort_blocks::popcount::popcount_with;
        use absort_circuit::Builder;
        let build_pc = |kind| {
            let mut b = Builder::new();
            let ins = b.input_bus(1024);
            let cnt = popcount_with(&mut b, kind, &ins);
            b.outputs(&cnt);
            b.finish()
        };
        let d_prefix = build_pc(AdderKind::Prefix).depth();
        let d_ripple = build_pc(AdderKind::Ripple).depth();
        assert!(
            d_ripple <= d_prefix + 2 && d_prefix <= 5 * 10 + 5,
            "popcount tree depths: ripple {d_ripple}, prefix {d_prefix}"
        );
    }

    #[test]
    fn patchup_cost_tracks_3n() {
        // C_p(m) = 3m/2 + C_p(m/2) + 1 select OR ⇒ ≤ 3m + lg m.
        let n = 256;
        let c = build(n);
        // top-level patch-up scope
        let cost = c
            .cost_of_scope("prefix_sorter/patchup")
            .expect("scope exists")
            .total;
        assert!(
            cost <= 3 * n as u64 + 8,
            "patch-up cost {cost} exceeds 3n + lg n"
        );
        assert!(
            cost >= 3 * n as u64 / 2,
            "patch-up cost {cost} implausibly low"
        );
    }
}
