//! Table I: behaviour of the mux-merger (experiment E7).
//!
//! Table I of the paper lists, for each value of the two select inputs
//! (the topmost bits of quarters 2 and 4 of a bisorted input), the input
//! pattern guaranteed by Theorem 3 and the IN-SWAP / OUT-SWAP quarter
//! permutations the merger applies. This module regenerates the table
//! from our implementation and verifies it **exhaustively**: every
//! bisorted sequence of a given size is classified, checked against the
//! claimed pattern, and merged.

use crate::lang;
use crate::muxmerge::{apply_quarters, merge, IN_SWAP, OUT_SWAP};
use absort_blocks::swap::QuarterPerm;

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The select value `(s1, s2)` packed as `2·s1 + s2`.
    pub sel: u8,
    /// The guaranteed input pattern (paper wording).
    pub pattern: &'static str,
    /// IN-SWAP quarter permutation (output quarter ← input quarter).
    pub in_swap: QuarterPerm,
    /// OUT-SWAP quarter permutation.
    pub out_swap: QuarterPerm,
}

/// The four rows of Table I as implemented (see the derivation note in
/// [`crate::muxmerge`]).
pub fn rows() -> Vec<Table1Row> {
    let pattern = [
        "Xq1 and Xq3 are all 0's, Xq2·Xq4 is bisorted",
        "Xq1 is all 0's, Xq4 is all 1's, and Xq2·Xq3 is bisorted",
        "Xq1·Xq4 is bisorted, Xq2 is all 1's, and Xq3 is all 0's",
        "Xq1·Xq3 is bisorted, Xq2 and Xq4 are all 1's",
    ];
    (0..4)
        .map(|sel| Table1Row {
            sel: sel as u8,
            pattern: pattern[sel],
            in_swap: IN_SWAP[sel],
            out_swap: OUT_SWAP[sel],
        })
        .collect()
}

/// A Table I verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Violation {
    /// The offending bisorted input.
    pub input: Vec<bool>,
    /// What went wrong.
    pub reason: String,
}

/// Exhaustively verifies Table I at size `n`: for **every** bisorted
/// sequence, checks (a) the select value implies exactly the row's input
/// pattern, (b) the IN-SWAP leaves clean outer quarters and a bisorted
/// middle, and (c) the full merger sorts. Returns all violations (empty =
/// table verified).
pub fn verify(n: usize) -> Vec<Table1Violation> {
    assert!(n >= 4 && n % 4 == 0);
    let q = n / 4;
    let mut violations = Vec::new();
    for x in lang::all_bisorted(n) {
        let quarters: Vec<&[bool]> = x.chunks(q).collect();
        let sel = (usize::from(x[q]) << 1) | usize::from(x[3 * q]);
        let mut fail = |reason: String| {
            violations.push(Table1Violation {
                input: x.clone(),
                reason,
            });
        };
        // (a) pattern per row
        let pattern_ok = match sel {
            0b00 => {
                quarters[0].iter().all(|&b| !b)
                    && quarters[2].iter().all(|&b| !b)
                    && lang::is_bisorted(&[quarters[1], quarters[3]].concat())
            }
            0b01 => {
                quarters[0].iter().all(|&b| !b)
                    && quarters[3].iter().all(|&b| b)
                    && lang::is_bisorted(&[quarters[1], quarters[2]].concat())
            }
            0b10 => {
                lang::is_bisorted(&[quarters[0], quarters[3]].concat())
                    && quarters[1].iter().all(|&b| b)
                    && quarters[2].iter().all(|&b| !b)
            }
            0b11 => {
                lang::is_bisorted(&[quarters[0], quarters[2]].concat())
                    && quarters[1].iter().all(|&b| b)
                    && quarters[3].iter().all(|&b| b)
            }
            _ => unreachable!(),
        };
        if !pattern_ok {
            fail(format!("sel={sel:02b}: input pattern mismatch"));
            continue;
        }
        // (b) IN-SWAP invariant
        let inward = apply_quarters(&x, IN_SWAP[sel]);
        if !(lang::is_clean(&inward[..q])
            && lang::is_clean(&inward[3 * q..])
            && lang::is_bisorted(&inward[q..3 * q]))
        {
            fail(format!("sel={sel:02b}: IN-SWAP invariant broken"));
            continue;
        }
        // (c) end-to-end merge
        if merge(&x) != lang::sorted_oracle(&x) {
            fail(format!("sel={sel:02b}: merger failed to sort"));
        }
    }
    violations
}

/// Renders Table I as aligned ASCII (for the `repro table1` report).
pub fn render() -> String {
    fn perm(p: QuarterPerm) -> String {
        format!("[{} {} {} {}]", p[0] + 1, p[1] + 1, p[2] + 1, p[3] + 1)
    }
    let mut out = String::from(
        "sel | input pattern (Theorem 3)                               | IN-SWAP   | OUT-SWAP\n",
    );
    out.push_str(
        "----+---------------------------------------------------------+-----------+----------\n",
    );
    for r in rows() {
        out.push_str(&format!(
            " {}{} | {:<55} | {:<9} | {}\n",
            r.sel >> 1,
            r.sel & 1,
            r.pattern,
            perm(r.in_swap),
            perm(r.out_swap),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_verified_exhaustively_n8_to_n32() {
        for n in [8usize, 16, 32] {
            let v = verify(n);
            assert!(v.is_empty(), "n={n}: {:?}", &v[..v.len().min(3)]);
        }
    }

    #[test]
    fn all_four_select_values_occur() {
        let mut seen = [false; 4];
        for x in lang::all_bisorted(16) {
            let sel = (usize::from(x[4]) << 1) | usize::from(x[12]);
            seen[sel] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn render_contains_all_rows() {
        let s = render();
        for sel in ["00", "01", "10", "11"] {
            assert!(s.contains(&format!(" {sel} |")), "missing row {sel}\n{s}");
        }
    }
}
