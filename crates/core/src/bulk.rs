//! Bulk binary sorting: many sequences at once through one built circuit.
//!
//! The 64-lane evaluator sorts 64 independent n-bit sequences in a single
//! pass over the netlist, and the crossbeam batch evaluator shards lane
//! groups across threads — the data-parallel way to use these networks
//! from software (and the engine behind the exhaustive verifiers). For
//! one-off sorts the functional forms are faster; for millions of
//! fixed-width records the amortized circuit pass wins (see the
//! `eval_engines` bench).

use crate::muxmerge;
use absort_circuit::{assert_pow2, CompiledCircuit, CompiledEvaluator};

/// A reusable bulk sorter: one built n-input mux-merger circuit, lowered
/// once to its compiled micro-op tape, plus the thread count for batch
/// evaluation.
pub struct BulkSorter {
    compiled: CompiledCircuit,
    n: usize,
    threads: usize,
}

impl BulkSorter {
    /// Builds the bulk sorter for `n = 2^k`-bit sequences, evaluating
    /// batches on `threads` threads. The netlist is compiled here, so
    /// every later batch runs on the register-allocated tape.
    pub fn new(n: usize, threads: usize) -> Self {
        assert_pow2(n, "bulk sorter");
        BulkSorter {
            compiled: muxmerge::build(n).compile(),
            n,
            threads: threads.max(1),
        }
    }

    /// Sequence width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sorts every sequence in `batch` (each of length `n`).
    pub fn sort_batch(&self, batch: &[Vec<bool>]) -> Vec<Vec<bool>> {
        self.compiled.eval_batch_parallel(batch, self.threads)
    }

    /// Sorts sequences packed as `u64` words (little-endian bit `i` =
    /// line `i`; `n ≤ 64`). The fastest path: 64 sequences per circuit
    /// pass with no per-bool materialization and no per-chunk allocation.
    pub fn sort_words(&self, words: &[u64]) -> Vec<u64> {
        assert!(self.n <= 64, "word-packed sorting needs n <= 64");
        let mut out = Vec::with_capacity(words.len());
        let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&self.compiled);
        let mut lanes = vec![0u64; self.n];
        let mut sorted = vec![0u64; self.n];
        for chunk in words.chunks(64) {
            // transpose chunk into lanes: lane word `i` holds line i of
            // every sequence in the chunk
            lanes.fill(0);
            for (v, &w) in chunk.iter().enumerate() {
                for (i, lane) in lanes.iter_mut().enumerate() {
                    *lane |= (w >> i & 1) << v;
                }
            }
            ev.run_into(&lanes, &mut sorted);
            for v in 0..chunk.len() {
                let mut w = 0u64;
                for (i, lane) in sorted.iter().enumerate() {
                    w |= (lane >> v & 1) << i;
                }
                out.push(w);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::sorted_oracle;
    use rand::prelude::*;

    #[test]
    fn batch_matches_oracle() {
        let n = 64;
        let bulk = BulkSorter::new(n, 4);
        let mut rng = StdRng::seed_from_u64(30);
        let batch: Vec<Vec<bool>> = (0..300)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect();
        let out = bulk.sort_batch(&batch);
        for (i, o) in batch.iter().zip(&out) {
            assert_eq!(o, &sorted_oracle(i));
        }
    }

    #[test]
    fn words_match_batch() {
        let n = 32;
        let bulk = BulkSorter::new(n, 1);
        let mut rng = StdRng::seed_from_u64(31);
        let words: Vec<u64> = (0..200).map(|_| rng.gen::<u32>() as u64).collect();
        let sorted = bulk.sort_words(&words);
        for (&w, &s) in words.iter().zip(&sorted) {
            let expect_ones = w.count_ones();
            assert_eq!(s.count_ones(), expect_ones, "ones preserved");
            // sorted pattern: ones in the top positions
            let expected = if expect_ones == 0 {
                0
            } else {
                ((1u64 << expect_ones) - 1) << (n as u32 - expect_ones)
            };
            assert_eq!(s, expected, "w={w:032b}");
        }
    }

    #[test]
    fn odd_batch_sizes() {
        let bulk = BulkSorter::new(16, 2);
        for len in [1usize, 63, 64, 65, 130] {
            let batch: Vec<Vec<bool>> = (0..len)
                .map(|i| (0..16).map(|j| (i + j) % 3 == 0).collect())
                .collect();
            let out = bulk.sort_batch(&batch);
            assert_eq!(out.len(), len);
            for (i, o) in batch.iter().zip(&out) {
                assert_eq!(o, &sorted_oracle(i), "len={len}");
            }
        }
    }
}
