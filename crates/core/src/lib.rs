//! # absort-core — adaptive binary sorting networks
//!
//! The primary contribution of Chien & Oruç, *Adaptive Binary Sorting
//! Schemes and Associated Interconnection Networks* (ICPP 1992 / IEEE
//! TPDS 5(6), 1994): three adaptive networks that sort arbitrary binary
//! sequences, each in two validated-against-each-other forms — a real
//! bit-level circuit on the `absort-circuit` substrate (exact cost/depth
//! in the paper's units) and a functional dataflow mirror (fast, generic
//! over payload-carrying packets).
//!
//! | network | module | cost | depth / time |
//! |---|---|---|---|
//! | 1 — prefix binary sorter | [`prefix`] | `3 n lg n + O(n)` | `O(lg² n)` |
//! | 2 — mux-merger binary sorter | [`muxmerge`] | `4 n lg n` | `O(lg² n)` |
//! | 3 — fish binary sorter (Model B) | [`fish`] | `O(n)` (≤ 17n at `k = lg n`) | `O(lg³ n)` / `O(lg² n)` pipelined |
//!
//! Supporting theory — the binary-sequence language `A_n` and
//! Theorems 1–4 — lives in [`lang`]; Table I machinery in [`table1`];
//! the payload abstraction in [`packet`]; and a uniform handle over the
//! three sorters (used by `absort-networks` for concentrators and
//! permuters) in [`sorter`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod busmerge;
pub mod fish;
pub mod lang;
pub mod muxmerge;
pub mod nonadaptive;
pub mod packet;
pub mod prefix;
pub mod sorter;
pub mod table1;

pub use fish::FishSorter;
pub use packet::Keyed;
pub use sorter::SorterKind;
