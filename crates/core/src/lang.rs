//! Binary-sequence theory: Definitions 1–5 and the predicates behind
//! Theorems 1–4.
//!
//! The paper's constructions rest on structural facts about binary
//! sequences:
//!
//! * **Definition 1** — the regular language
//!   `A_n = {0,1}^n ∩ [((00)*+(11)*)((01)*+(10)*)((00)*+(11)*)]`;
//! * **Definition 2** — *clean-sorted* sequences (all 0 or all 1);
//! * **Definition 3** — *bisorted* sequences (both halves sorted);
//! * **Definitions 4–5** — *k-sorted* and *clean k-sorted* sequences.
//!
//! This module implements the predicates, exhaustive generators, and the
//! shuffle operation, and states Theorems 1–4 as checkable functions used
//! by property tests throughout the workspace.

/// True iff `s` is ascending-sorted (all 0's precede all 1's).
pub fn is_sorted(s: &[bool]) -> bool {
    s.windows(2).all(|w| w[0] <= w[1])
}

/// Definition 2: true iff every element of `s` is identical.
pub fn is_clean(s: &[bool]) -> bool {
    s.windows(2).all(|w| w[0] == w[1])
}

/// Definition 3: true iff both halves of `s` are sorted (`s` must have
/// even length).
pub fn is_bisorted(s: &[bool]) -> bool {
    assert!(s.len() % 2 == 0, "bisorted is defined for even lengths");
    let h = s.len() / 2;
    is_sorted(&s[..h]) && is_sorted(&s[h..])
}

/// Definition 4: true iff `s` consists of `k` equal-size sorted
/// subsequences.
pub fn is_k_sorted(s: &[bool], k: usize) -> bool {
    assert!(k > 0 && s.len() % k == 0, "length must be a multiple of k");
    let block = s.len() / k;
    s.chunks(block).all(is_sorted)
}

/// Definition 5: true iff `s` consists of `k` equal-size *clean* (all-0 or
/// all-1) subsequences.
pub fn is_clean_k_sorted(s: &[bool], k: usize) -> bool {
    assert!(k > 0 && s.len() % k == 0, "length must be a multiple of k");
    let block = s.len() / k;
    s.chunks(block).all(is_clean)
}

/// Definition 1: membership in `A_n` — a run of `00`/`11` pairs, then a
/// run of `01`/`10` pairs, then a run of `00`/`11` pairs (each run
/// possibly empty, and each run drawn from a *single* pair pattern).
///
/// The scan works over the `n/2` adjacent pairs: the pair string must
/// match `x* y* z*` where `x, z ∈ {00, 11}` and `y ∈ {01, 10}`.
///
/// ```
/// use absort_core::lang::{bits, in_a_n};
///
/// assert!(in_a_n(&bits("00/1010/11")));  // a paper example
/// assert!(!in_a_n(&bits("0110")));       // 01 then 10 mixes patterns
/// ```
pub fn in_a_n(s: &[bool]) -> bool {
    if s.len() % 2 != 0 {
        return false;
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Pair {
        Eq(bool),  // 00 or 11
        Mix(bool), // 01 (false) or 10 (true), by first element
    }
    let pairs: Vec<Pair> = s
        .chunks(2)
        .map(|p| {
            if p[0] == p[1] {
                Pair::Eq(p[0])
            } else {
                Pair::Mix(p[0])
            }
        })
        .collect();
    // Phase 0: leading Eq run (one value); Phase 1: Mix run (one pattern);
    // Phase 2: trailing Eq run (one value).
    let mut i = 0;
    if let Some(&Pair::Eq(v)) = pairs.first() {
        while i < pairs.len() && pairs[i] == Pair::Eq(v) {
            i += 1;
        }
    }
    if let Some(&Pair::Mix(v)) = pairs.get(i) {
        while i < pairs.len() && pairs[i] == Pair::Mix(v) {
            i += 1;
        }
    }
    if let Some(&Pair::Eq(v)) = pairs.get(i) {
        while i < pairs.len() && pairs[i] == Pair::Eq(v) {
            i += 1;
        }
    }
    i == pairs.len()
}

/// The perfect shuffle of `s` (interleaves the two halves): output
/// `2i ← s[i]`, `2i+1 ← s[n/2 + i]`.
pub fn shuffle(s: &[bool]) -> Vec<bool> {
    let n = s.len();
    assert!(n % 2 == 0, "shuffle needs an even length");
    let mut out = Vec::with_capacity(n);
    for i in 0..n / 2 {
        out.push(s[i]);
        out.push(s[n / 2 + i]);
    }
    out
}

/// The sorted rearrangement of `s` (the oracle all sorters are checked
/// against): `zeros` 0's followed by `ones` 1's.
pub fn sorted_oracle(s: &[bool]) -> Vec<bool> {
    let ones = s.iter().filter(|&&b| b).count();
    let mut out = vec![false; s.len() - ones];
    out.extend(std::iter::repeat_n(true, ones));
    out
}

/// Parses a compact `0`/`1` string (separators `/`, `_`, and spaces are
/// ignored) into a bit vector — handy for transcribing the paper's
/// examples.
pub fn bits(s: &str) -> Vec<bool> {
    s.chars()
        .filter(|c| !matches!(c, '/' | '_' | ' '))
        .map(|c| match c {
            '0' => false,
            '1' => true,
            other => panic!("invalid bit character {other:?}"),
        })
        .collect()
}

/// Formats a bit vector as a `0`/`1` string with `/` every `group` bits
/// (0 = no grouping), mirroring the paper's notation.
pub fn show(s: &[bool], group: usize) -> String {
    let mut out = String::with_capacity(s.len() + s.len() / group.max(1));
    for (i, &b) in s.iter().enumerate() {
        if group > 0 && i > 0 && i % group == 0 {
            out.push('/');
        }
        out.push(if b { '1' } else { '0' });
    }
    out
}

// ---- generators ---------------------------------------------------------

/// All binary sequences of length `n` (lexicographic by little-endian
/// value). For test use; `n <= 24`.
pub fn all_sequences(n: usize) -> impl Iterator<Item = Vec<bool>> {
    assert!(n <= 24, "exhaustive generation limited to n <= 24");
    (0..1u64 << n).map(move |v| (0..n).map(|i| v >> i & 1 == 1).collect())
}

/// All sorted binary sequences of length `n` (there are `n + 1`).
pub fn all_sorted(n: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..=n).map(move |ones| {
        let mut s = vec![false; n - ones];
        s.extend(std::iter::repeat_n(true, ones));
        s
    })
}

/// All bisorted sequences of length `n` (there are `(n/2 + 1)^2`).
pub fn all_bisorted(n: usize) -> impl Iterator<Item = Vec<bool>> {
    assert!(n % 2 == 0);
    all_sorted(n / 2).flat_map(move |upper| {
        all_sorted(n / 2).map(move |lower| {
            let mut s = upper.clone();
            s.extend_from_slice(&lower);
            s
        })
    })
}

/// All k-sorted sequences of length `n` (there are `(n/k + 1)^k`).
pub fn all_k_sorted(n: usize, k: usize) -> Vec<Vec<bool>> {
    assert!(k > 0 && n % k == 0);
    let block = n / k;
    let mut acc: Vec<Vec<bool>> = vec![Vec::new()];
    for _ in 0..k {
        let mut next = Vec::with_capacity(acc.len() * (block + 1));
        for prefix in &acc {
            for sorted in all_sorted(block) {
                let mut s = prefix.clone();
                s.extend_from_slice(&sorted);
                next.push(s);
            }
        }
        acc = next;
    }
    acc
}

/// All members of `A_n`, generated by filtering `all_sequences` (test
/// sizes only).
pub fn all_a_n(n: usize) -> Vec<Vec<bool>> {
    all_sequences(n).filter(|s| in_a_n(s)).collect()
}

/// `|A_n|` in closed form (a count the paper does not state): writing
/// `p = n/2` for the number of pairs, a member has at most three runs —
/// an `{00,11}` run, an `{01,10}` run, an `{00,11}` run — so counting
/// distinct strings by run structure:
///
/// * 1-run strings: 4;
/// * 2-run strings: 10 admissible ordered symbol pairs (the two mixed
///   pair-symbols may not be adjacent) × `p−1` compositions;
/// * 3-run strings: 8 symbol choices × `C(p−1, 2)` compositions;
///
/// giving `|A_n| = 4 + 10(p−1) + 4(p−1)(p−2)` for `p ≥ 1` — quadratic in
/// `n`, which is *why* the patch-up network can be so cheap: after the
/// shuffle only `Θ(n²)` of the `2^n` sequences can occur.
pub fn count_a_n(n: usize) -> u64 {
    assert!(n % 2 == 0, "A_n is defined for even n");
    let p = (n / 2) as u64;
    match p {
        0 => 1,
        _ => 4 + 10 * (p - 1) + 4 * (p - 1) * (p.saturating_sub(2)),
    }
}

// ---- seeded random generators --------------------------------------------

/// Seeded generators for the structured sequence classes, shared by the
/// property tests across the workspace (hand-rolling these in every test
/// file invites subtle distribution bugs).
pub mod gen {
    use super::*;

    /// Splitmix64 step — a tiny deterministic stream so this module needs
    /// no RNG dependency.
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniformly random value in `0..=max`.
    fn below(state: &mut u64, max: usize) -> usize {
        (next(state) % (max as u64 + 1)) as usize
    }

    /// A random sorted sequence of length `n`.
    pub fn sorted(seed: u64, n: usize) -> Vec<bool> {
        let mut s = seed;
        let ones = below(&mut s, n);
        let mut v = vec![false; n - ones];
        v.extend(std::iter::repeat_n(true, ones));
        v
    }

    /// A random bisorted sequence of length `n`.
    pub fn bisorted(seed: u64, n: usize) -> Vec<bool> {
        assert!(n % 2 == 0);
        let mut v = sorted(seed, n / 2);
        v.extend(sorted(seed ^ 0xB15D, n / 2));
        debug_assert!(is_bisorted(&v));
        v
    }

    /// A random k-sorted sequence of length `n`.
    pub fn k_sorted(seed: u64, n: usize, k: usize) -> Vec<bool> {
        assert!(k > 0 && n % k == 0);
        let block = n / k;
        let mut state = seed;
        let mut v = Vec::with_capacity(n);
        for _ in 0..k {
            let ones = below(&mut state, block);
            v.extend(std::iter::repeat_n(false, block - ones));
            v.extend(std::iter::repeat_n(true, ones));
        }
        debug_assert!(is_k_sorted(&v, k));
        v
    }

    /// A random member of `A_n`, built from its run structure (leading
    /// 00/11 run, mixed run, trailing 00/11 run).
    pub fn a_n(seed: u64, n: usize) -> Vec<bool> {
        assert!(n % 2 == 0);
        let p = n / 2;
        let mut state = seed;
        let a = below(&mut state, p);
        let b = below(&mut state, p - a);
        let c = p - a - b;
        let (p1, p2, p3) = (
            next(&mut state) & 1 == 1,
            next(&mut state) & 1 == 1,
            next(&mut state) & 1 == 1,
        );
        let mut v = Vec::with_capacity(n);
        for _ in 0..a {
            v.push(p1);
            v.push(p1);
        }
        for _ in 0..b {
            v.push(p2);
            v.push(!p2);
        }
        for _ in 0..c {
            v.push(p3);
            v.push(p3);
        }
        debug_assert!(in_a_n(&v), "{}", show(&v, 0));
        v
    }
}

// ---- theorem oracles -----------------------------------------------------

/// Theorem 1 as a checkable statement: the shuffled concatenation of two
/// sorted half-sequences lies in `A_n`.
pub fn theorem1_holds(upper: &[bool], lower: &[bool]) -> bool {
    assert_eq!(upper.len(), lower.len());
    assert!(
        is_sorted(upper) && is_sorted(lower),
        "halves must be sorted"
    );
    let mut cat = upper.to_vec();
    cat.extend_from_slice(lower);
    in_a_n(&shuffle(&cat))
}

/// The balanced comparator stage on a sequence: compares `i` with
/// `n−1−i`, min to the top. (Software mirror of
/// `absort_blocks::stages::balanced_stage`.)
pub fn balanced_stage(s: &[bool]) -> Vec<bool> {
    let n = s.len();
    let mut out = s.to_vec();
    for i in 0..n / 2 {
        let (a, b) = (out[i], out[n - 1 - i]);
        out[i] = a & b;
        out[n - 1 - i] = a | b;
    }
    out
}

/// Theorem 2 as a checkable statement: applying the balanced stage to a
/// sequence in `A_n` leaves one half clean-sorted and the other in
/// `A_{n/2}`.
pub fn theorem2_holds(z: &[bool]) -> bool {
    assert!(in_a_n(z), "theorem 2 requires an A_n input");
    let n = z.len();
    let y = balanced_stage(z);
    let (yu, yl) = y.split_at(n / 2);
    (is_clean(yu) && in_a_n(yl)) || (is_clean(yl) && in_a_n(yu))
}

/// Theorem 3 as a checkable statement: cutting a bisorted sequence into
/// quarters yields at least two clean quarters whose removal leaves a
/// bisorted concatenation. Returns the verdict plus which quarters were
/// identified clean by the middle-bit rule (see
/// [`crate::muxmerge`]).
pub fn theorem3_holds(x: &[bool]) -> bool {
    assert!(is_bisorted(x), "theorem 3 requires a bisorted input");
    let n = x.len();
    let q = n / 4;
    let quarters: Vec<&[bool]> = x.chunks(q).collect();
    // middle-bit rule: s1 = x[n/4] (top of Xq2), s2 = x[3n/4] (top of Xq4)
    let s1 = x[q];
    let s2 = x[3 * q];
    let (clean_a, bis_a) = if s1 { (1, 0) } else { (0, 1) };
    let (clean_b, bis_b) = if s2 { (3, 2) } else { (2, 3) };
    let mut cat = quarters[bis_a].to_vec();
    cat.extend_from_slice(quarters[bis_b]);
    is_clean(quarters[clean_a])
        && is_clean(quarters[clean_b])
        && is_bisorted(&cat)
        // the clean quarters' values match the rule: s1 selects all-1 Xq2
        // vs all-0 Xq1, likewise s2.
        && quarters[clean_a].iter().all(|&b| b == s1)
        && quarters[clean_b].iter().all(|&b| b == s2)
}

/// Theorem 4 as a checkable statement: halving each of the `k` sorted
/// subsequences of a k-sorted sequence by the middle-bit rule yields `k`
/// clean halves forming a clean k-sorted sequence and `k` sorted halves
/// forming a k-sorted sequence.
pub fn theorem4_holds(s: &[bool], k: usize) -> bool {
    assert!(is_k_sorted(s, k), "theorem 4 requires a k-sorted input");
    let block = s.len() / k;
    assert!(block % 2 == 0);
    let mut clean_part = Vec::with_capacity(s.len() / 2);
    let mut rest_part = Vec::with_capacity(s.len() / 2);
    for chunk in s.chunks(block) {
        let mid = chunk[block / 2];
        let (upper, lower) = chunk.split_at(block / 2);
        // mid = 0: upper half clean (all 0); mid = 1: lower half clean.
        if mid {
            clean_part.extend_from_slice(lower);
            rest_part.extend_from_slice(upper);
        } else {
            clean_part.extend_from_slice(upper);
            rest_part.extend_from_slice(lower);
        }
    }
    is_clean_k_sorted(&clean_part, k) && is_k_sorted(&rest_part, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_a8_examples_are_members() {
        // "0000/1010, 00/1010/11, 101010/11, 00/0101/11, 11111111 are all
        // elements of A_8."
        for ex in ["00001010", "00101011", "10101011", "00010111", "11111111"] {
            assert!(in_a_n(&bits(ex)), "{ex} should be in A_8");
        }
    }

    #[test]
    fn a_n_rejects_non_members() {
        for ex in ["01001011", "10110100", "01100000", "11011000"] {
            assert!(!in_a_n(&bits(ex)), "{ex} should not be in A_8");
        }
    }

    #[test]
    fn sorted_sequences_belong_to_a_n() {
        // Paper remark: any sorted binary sequence of length n is in A_n.
        for n in [2usize, 4, 8, 12] {
            for s in all_sorted(n) {
                assert!(in_a_n(&s), "{}", show(&s, 0));
            }
        }
    }

    #[test]
    fn a_n_matches_naive_regex_oracle() {
        // Independent oracle: try all (i, j) splits into three runs and
        // check each run directly.
        fn oracle(s: &[bool]) -> bool {
            let n = s.len();
            if n % 2 != 0 {
                return false;
            }
            let run_eq = |t: &[bool]| t.chunks(2).all(|p| p[0] == p[1]) && is_clean_pairs(t);
            let run_mix = |t: &[bool]| t.chunks(2).all(|p| p[0] != p[1]) && same_first_bits(t);
            fn is_clean_pairs(t: &[bool]) -> bool {
                // all pairs identical to each other (multiple of 00 OR of 11)
                t.is_empty() || t.iter().all(|&b| b == t[0])
            }
            fn same_first_bits(t: &[bool]) -> bool {
                t.chunks(2).all(|p| p[0] == t[0])
            }
            for i in (0..=n).step_by(2) {
                for j in (i..=n).step_by(2) {
                    if run_eq(&s[..i]) && run_mix(&s[i..j]) && run_eq(&s[j..]) {
                        return true;
                    }
                }
            }
            false
        }
        for n in [2usize, 4, 6, 8, 10] {
            for s in all_sequences(n) {
                assert_eq!(in_a_n(&s), oracle(&s), "{}", show(&s, 0));
            }
        }
    }

    #[test]
    fn theorem1_exhaustive_to_16() {
        for half in [1usize, 2, 4, 8] {
            for u in all_sorted(half) {
                for l in all_sorted(half) {
                    assert!(theorem1_holds(&u, &l));
                }
            }
        }
    }

    #[test]
    fn paper_example_1() {
        // X_U = 1111, X_L = 0001 → shuffle(concat) = 10101011 ∈ A_8.
        let xu = bits("1111");
        let xl = bits("0001");
        let mut cat = xu.clone();
        cat.extend_from_slice(&xl);
        assert_eq!(show(&shuffle(&cat), 0), "10101011");
        assert!(theorem1_holds(&xu, &xl));
    }

    #[test]
    fn theorem2_exhaustive_over_a_n() {
        // Theorem 2 speaks about halves in A_{n/2}, so it needs n >= 4
        // (A_1 is empty: the language is built from pairs). The n = 2
        // base case is handled by a single comparator in the networks.
        for n in [4usize, 8, 16] {
            for z in all_a_n(n) {
                assert!(theorem2_holds(&z), "Z = {}", show(&z, 0));
            }
        }
    }

    #[test]
    fn theorem3_exhaustive_over_bisorted() {
        for n in [4usize, 8, 16, 24] {
            if n % 4 != 0 {
                continue;
            }
            for x in all_bisorted(n) {
                assert!(theorem3_holds(&x), "X = {}", show(&x, 0));
            }
        }
    }

    #[test]
    fn paper_example_3() {
        // 0001/0001: quarters 00, 01, 00, 01 — two clean, two forming 0101
        // which is bisorted.
        let x = bits("00010001");
        assert!(is_bisorted(&x));
        assert!(theorem3_holds(&x));
    }

    #[test]
    fn theorem4_exhaustive_small() {
        for (n, k) in [(8usize, 2usize), (8, 4), (16, 4), (16, 8), (24, 4)] {
            for s in all_k_sorted(n, k) {
                assert!(theorem4_holds(&s, k), "s = {}", show(&s, n / k));
            }
        }
    }

    #[test]
    fn paper_example_4() {
        // 1111/0001/0011/0111 is 4-sorted; halving gives six clean halves,
        // and the clean/rest split follows the middle-bit rule.
        let s = bits("1111000100110111");
        assert!(is_k_sorted(&s, 4));
        assert!(theorem4_holds(&s, 4));
    }

    #[test]
    fn definitions_4_and_5_paper_examples() {
        let s = bits("1111000100110111");
        assert!(is_k_sorted(&s, 4));
        assert!(!is_clean_k_sorted(&s, 4));
        let c = bits("1111000000001111");
        assert!(is_clean_k_sorted(&c, 4));
    }

    #[test]
    fn sorted_oracle_counts() {
        assert_eq!(sorted_oracle(&bits("1010")), bits("0011"));
        assert_eq!(sorted_oracle(&bits("0000")), bits("0000"));
        assert_eq!(sorted_oracle(&bits("111")), bits("111"));
    }

    #[test]
    fn generators_have_expected_counts() {
        assert_eq!(all_sorted(4).count(), 5);
        assert_eq!(all_bisorted(8).count(), 25);
        assert_eq!(all_k_sorted(8, 4).len(), 81);
        // |A_n| grows polynomially; sanity: strictly between sorted count
        // and 2^n.
        let a8 = all_a_n(8).len();
        assert!(a8 > 9 && a8 < 256, "|A_8| = {a8}");
    }

    #[test]
    fn generators_produce_members_of_their_classes() {
        for seed in 0..200u64 {
            assert!(is_sorted(&gen::sorted(seed, 32)));
            assert!(is_bisorted(&gen::bisorted(seed, 32)));
            assert!(is_k_sorted(&gen::k_sorted(seed, 32, 4), 4));
            assert!(in_a_n(&gen::a_n(seed, 32)));
        }
    }

    #[test]
    fn a_n_generator_covers_the_class() {
        // at n = 8 the generator should reach a healthy fraction of the
        // 58 members across seeds (it is surjective by construction).
        let mut seen = std::collections::HashSet::new();
        for seed in 0..4000u64 {
            seen.insert(gen::a_n(seed, 8));
        }
        assert!(
            seen.len() as u64 >= count_a_n(8) / 2,
            "only {} of {} reached",
            seen.len(),
            count_a_n(8)
        );
        for s in &seen {
            assert!(in_a_n(s));
        }
    }

    #[test]
    fn count_a_n_matches_enumeration() {
        for n in [2usize, 4, 6, 8, 10, 12, 14, 16, 18] {
            assert_eq!(
                count_a_n(n),
                all_a_n(n).len() as u64,
                "closed form vs enumeration at n={n}"
            );
        }
    }

    #[test]
    fn a_n_is_polynomially_small() {
        // |A_n| = Θ(n²) vs 2^n possible sequences — the structural reason
        // the patch-up network gets away with O(n) hardware.
        assert_eq!(count_a_n(4), 14);
        assert_eq!(count_a_n(8), 58);
        let n = 64;
        assert!(count_a_n(n) < (n * n) as u64);
    }

    #[test]
    fn bits_and_show_roundtrip() {
        let s = bits("00/1010/11");
        assert_eq!(show(&s, 2), "00/10/10/11");
        assert_eq!(s.len(), 8);
    }
}
