//! Two-way and four-way swapping networks (paper Section II.A–B, Fig. 2).

use absort_circuit::{assert_pow2, Builder, Perm4, Wire};

/// Two-way swapper: when `ctrl = 0` the inputs pass straight through;
/// when `ctrl = 1` the two halves of the inputs are exchanged.
///
/// Built exactly as in Fig. 2(a): a two-way shuffle, one stage of `n/2`
/// 2×2 switches sharing the control signal, and the reversed shuffle
/// (wiring is free). Cost `n/2`, depth 1.
///
/// ```
/// use absort_blocks::swap::two_way_swapper;
/// use absort_circuit::Builder;
///
/// let mut b = Builder::new();
/// let ctrl = b.input();
/// let ins = b.input_bus(4);
/// let outs = two_way_swapper(&mut b, ctrl, &ins);
/// b.outputs(&outs);
/// let c = b.finish();
/// assert_eq!(c.cost().total, 2); // n/2 switches
/// // ctrl = 1 exchanges the halves
/// assert_eq!(
///     c.eval(&[true, /* data: */ true, true, false, false]),
///     vec![false, false, true, true]
/// );
/// ```
pub fn two_way_swapper(b: &mut Builder, ctrl: Wire, inputs: &[Wire]) -> Vec<Wire> {
    let n = inputs.len();
    assert_pow2(n, "two-way swapper");
    assert!(n >= 2, "two-way swapper needs at least 2 inputs");
    let mut out = vec![inputs[0]; n];
    b.scoped("two_way_swapper", |b| {
        // The shuffle pairs line i with line i + n/2 on switch i; the
        // reversed shuffle puts switch outputs back at positions i and
        // i + n/2.
        for i in 0..n / 2 {
            let (oa, ob) = b.switch2(ctrl, inputs[i], inputs[i + n / 2]);
            out[i] = oa;
            out[i + n / 2] = ob;
        }
    });
    out
}

/// A quarter-level permutation for a four-way swapper, as an
/// output-from-input map over quarters: output quarter `q` carries input
/// quarter `perm[q]`.
pub type QuarterPerm = [u8; 4];

/// Converts cycle notation over quarters 1–4 (as the paper writes it,
/// e.g. `(1)(23)(4)` = swap quarters 2 and 3) into a [`QuarterPerm`].
///
/// `cycles` lists the cycles with 1-based quarter numbers; fixed points
/// may be omitted. The paper's cycles act by *sending* quarter `c[i]`'s
/// contents to quarter `c[i+1]`'s position.
pub fn quarter_perm_from_cycles(cycles: &[&[u8]]) -> QuarterPerm {
    // dest[src] = where src's contents go.
    let mut dest: [u8; 4] = [0, 1, 2, 3];
    let mut touched = [false; 4];
    for cycle in cycles {
        for (idx, &q) in cycle.iter().enumerate() {
            assert!((1..=4).contains(&q), "quarter {q} out of range 1-4");
            let q0 = (q - 1) as usize;
            assert!(!touched[q0], "quarter {q} appears in two cycles");
            touched[q0] = true;
            let next = cycle[(idx + 1) % cycle.len()];
            dest[q0] = next - 1;
        }
    }
    // Convert "contents of src go to dest[src]" into output-from-input.
    let mut perm: QuarterPerm = [0; 4];
    for (src, &d) in dest.iter().enumerate() {
        perm[d as usize] = src as u8;
    }
    perm
}

/// Four-way swapper: permutes the four quarters of its inputs by one of
/// four quarter-permutations selected by `(s1, s0)`.
///
/// Built as in Fig. 2(b): a four-way shuffle, one stage of `n/4` 4×4
/// switches sharing the two select signals, and the reversed shuffle.
/// Cost `n` (n/4 switches × 4 units each), depth 1.
///
/// `perms[sel]` is the quarter permutation applied when the select value
/// is `sel = 2·s1 + s0` (output quarter `q` ← input quarter
/// `perms[sel][q]`).
pub fn four_way_swapper(
    b: &mut Builder,
    s1: Wire,
    s0: Wire,
    inputs: &[Wire],
    perms: [QuarterPerm; 4],
) -> Vec<Wire> {
    let n = inputs.len();
    assert_pow2(n, "four-way swapper");
    assert!(n >= 4, "four-way swapper needs at least 4 inputs");
    let q = n / 4;
    let mut out = vec![inputs[0]; n];
    // Each 4×4 switch permutes the line bundle {i, i+q, i+2q, i+3q}; the
    // quarter permutation is the same line permutation on every switch.
    let line_perms: [Perm4; 4] = perms;
    b.scoped("four_way_swapper", |b| {
        for i in 0..q {
            let ins = [
                inputs[i],
                inputs[i + q],
                inputs[i + 2 * q],
                inputs[i + 3 * q],
            ];
            let outs = b.switch4(s1, s0, ins, line_perms);
            for (j, &o) in outs.iter().enumerate() {
                out[i + j * q] = o;
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_circuit::Builder;

    fn bits(v: u32, n: usize) -> Vec<bool> {
        (0..n).map(|i| v >> i & 1 == 1).collect()
    }

    #[test]
    fn two_way_swaps_halves() {
        let n = 8;
        let mut b = Builder::new();
        let ctrl = b.input();
        let ins = b.input_bus(n);
        let outs = two_way_swapper(&mut b, ctrl, &ins);
        b.outputs(&outs);
        let c = b.finish();
        assert_eq!(c.cost().total as usize, n / 2, "paper: cost n/2");
        assert_eq!(c.depth(), 1, "paper: depth 1");

        let data = bits(0b0000_1111, n); // upper half (low indices) = 1s
        let mut inp = vec![false];
        inp.extend_from_slice(&data);
        assert_eq!(c.eval(&inp), data, "ctrl=0 is identity");

        inp[0] = true;
        let expect = bits(0b1111_0000, n);
        assert_eq!(c.eval(&inp), expect, "ctrl=1 exchanges halves");
    }

    #[test]
    fn cycle_notation_roundtrip() {
        // identity
        assert_eq!(quarter_perm_from_cycles(&[]), [0, 1, 2, 3]);
        // (23): swap quarters 2 and 3
        assert_eq!(quarter_perm_from_cycles(&[&[2, 3]]), [0, 2, 1, 3]);
        // (13)(24): exchange halves
        assert_eq!(quarter_perm_from_cycles(&[&[1, 3], &[2, 4]]), [2, 3, 0, 1]);
        // (234): 2→3, 3→4, 4→2 — output q2 gets old q4's contents
        assert_eq!(quarter_perm_from_cycles(&[&[2, 3, 4]]), [0, 3, 1, 2]);
        // (134)(2): 1→3, 3→4, 4→1
        assert_eq!(quarter_perm_from_cycles(&[&[1, 3, 4], &[2]]), [3, 1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "two cycles")]
    fn overlapping_cycles_rejected() {
        let _ = quarter_perm_from_cycles(&[&[1, 2], &[2, 3]]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn four_way_applies_selected_quarter_perm() {
        let n = 16;
        let perms = [
            quarter_perm_from_cycles(&[]),
            quarter_perm_from_cycles(&[&[2, 3]]),
            quarter_perm_from_cycles(&[&[1, 3], &[2, 4]]),
            quarter_perm_from_cycles(&[&[2, 3, 4]]),
        ];
        let mut b = Builder::new();
        let s1 = b.input();
        let s0 = b.input();
        let ins = b.input_bus(n);
        let outs = four_way_swapper(&mut b, s1, s0, &ins, perms);
        b.outputs(&outs);
        let c = b.finish();
        assert_eq!(c.cost().total as usize, n, "paper: cost n");
        assert_eq!(c.depth(), 1, "paper: depth 1");

        // Distinct marker per quarter: quarter q holds bit pattern with a
        // single 1 at position q within the quarter.
        let data: Vec<bool> = (0..n).map(|i| i % 4 == i / 4).collect();
        let quarter =
            |v: &[bool], q: usize| -> Vec<bool> { v[q * n / 4..(q + 1) * n / 4].to_vec() };
        for sel in 0..4usize {
            let mut inp = vec![sel >> 1 & 1 == 1, sel & 1 == 1];
            inp.extend_from_slice(&data);
            let got = c.eval(&inp);
            for qo in 0..4 {
                let qi = perms[sel][qo] as usize;
                assert_eq!(
                    quarter(&got, qo),
                    quarter(&data, qi),
                    "sel={sel} output quarter {qo}"
                );
            }
        }
    }
}
