//! Population count by the paper's recursive prefix-adder scheme.
//!
//! Network 1 (the prefix binary sorter, Fig. 5) detects which half of the
//! outputs is clean-sorted by counting the 1's in the input sequence,
//! "recursively adding the numbers of 1's in the two half-size input
//! sequences" with prefix adders. [`popcount`] is that circuit; the
//! adaptive select signal is derived from the count by [`ge_half`].

use crate::adder::{add, AdderKind};
use absort_circuit::{assert_pow2, Builder, Wire};

/// Counts the 1's among `inputs` (length `n = 2^k`), returning the count
/// as `lg n + 1` little-endian bits.
///
/// Built exactly as the paper describes: the counts of the two halves are
/// computed recursively and added with a prefix adder. Total cost is
/// `Θ(n)` with `Θ(lg n · lg lg n)` depth (a tree of `lg n` adder levels,
/// the level for width-`m` words having depth `Θ(lg m)`).
///
/// ```
/// use absort_blocks::popcount::popcount;
/// use absort_circuit::Builder;
///
/// let mut b = Builder::new();
/// let ins = b.input_bus(8);
/// let count = popcount(&mut b, &ins);
/// b.outputs(&count);
/// let c = b.finish();
/// // count the ones of 1101_0010 (4 ones): little-endian 100
/// let out = c.eval(&[true, true, false, true, false, false, true, false]);
/// assert_eq!(out, vec![false, false, true, false]); // 4 in 4 bits
/// ```
pub fn popcount(b: &mut Builder, inputs: &[Wire]) -> Vec<Wire> {
    popcount_with(b, AdderKind::Prefix, inputs)
}

/// [`popcount`] with an explicit adder construction — the E16 ablation
/// point (ripple-carry adders push the tree's depth from
/// `Θ(lg n lg lg n)` to `Θ(lg² n)`-with-a-larger-constant territory).
pub fn popcount_with(b: &mut Builder, kind: AdderKind, inputs: &[Wire]) -> Vec<Wire> {
    let n = inputs.len();
    assert_pow2(n, "popcount");
    if n == 1 {
        return vec![inputs[0]];
    }
    let (lo, hi) = inputs.split_at(n / 2);
    let cl = popcount_with(b, kind, lo);
    let ch = popcount_with(b, kind, hi);
    add(b, kind, &cl, &ch)
}

/// Given the `lg n + 1`-bit count of 1's among `n` inputs, returns the
/// wire that is 1 iff the count is at least `n/2`.
///
/// Since the count lies in `[0, n]`, `count >= n/2` holds exactly when the
/// bit of weight `n` or the bit of weight `n/2` is set — the "most
/// significant bit" examination of the paper, done carefully at the
/// boundary `count = n`.
pub fn ge_half(b: &mut Builder, count: &[Wire], n: usize) -> Wire {
    assert_pow2(n, "ge_half");
    let k = n.trailing_zeros() as usize;
    assert_eq!(count.len(), k + 1, "count must have lg n + 1 bits");
    if n == 1 {
        // count >= 1/2 rounds to count >= 0, which always holds.
        return b.constant(true);
    }
    b.or(count[k], count[k - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_circuit::Builder;

    fn build(n: usize) -> absort_circuit::Circuit {
        let mut b = Builder::new();
        let ins = b.input_bus(n);
        let cnt = popcount(&mut b, &ins);
        let ge = ge_half(&mut b, &cnt, n);
        let mut outs = cnt;
        outs.push(ge);
        b.outputs(&outs);
        b.finish()
    }

    #[test]
    fn exhaustive_popcount_up_to_16() {
        for k in 0..=4u32 {
            let n = 1usize << k;
            let c = build(n);
            for v in 0..1u64 << n {
                let inp: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
                let out = c.eval(&inp);
                let count = out[..=k as usize]
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << i));
                assert_eq!(count, v.count_ones(), "n={n} v={v:b}");
                assert_eq!(
                    out[k as usize + 1],
                    v.count_ones() as usize >= n / 2,
                    "ge_half n={n} v={v:b}"
                );
            }
        }
    }

    #[test]
    fn popcount_cost_is_linear() {
        // The adder tree costs Θ(n); audit the constant stays below 9n
        // (each level: n/2^{i+1} adders of width i+1, ~9 gates per bit).
        for k in 2..=10u32 {
            let n = 1usize << k;
            let mut b = Builder::new();
            let ins = b.input_bus(n);
            let cnt = popcount(&mut b, &ins);
            b.outputs(&cnt);
            let c = b.finish();
            let cost = c.cost().total;
            assert!(cost <= 9 * n as u64, "n={n}: popcount cost {cost} > 9n");
        }
    }

    #[test]
    fn popcount_depth_grows_slowly() {
        // Depth is Θ(lg n · lg lg n); check it stays well under the depth
        // of the sorter bodies it instruments (3 lg² n).
        for k in 2..=10usize {
            let n = 1usize << k;
            let mut b = Builder::new();
            let ins = b.input_bus(n);
            let cnt = popcount(&mut b, &ins);
            b.outputs(&cnt);
            let d = b.finish().depth();
            assert!(d <= 3 * k * k, "n={n}: popcount depth {d}");
        }
    }

    #[test]
    fn ge_half_boundaries() {
        let n = 8;
        let c = build(n);
        // count = 3 (below half), 4 (exactly half), 8 (all ones)
        let cases = [(0b0000_0111u32, false), (0b0000_1111, true), (0xFF, true)];
        for (v, expect) in cases {
            let inp: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
            let out = c.eval(&inp);
            assert_eq!(out[4], expect, "v={v:08b}");
        }
    }
}
