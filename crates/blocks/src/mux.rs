//! (n,k)-multiplexers (paper Section II.C, Fig. 3(a)).

use absort_circuit::{assert_pow2, Builder, Wire};

/// (m,1)-multiplexer: selects one of `m = 2^s` inputs by `s` select bits
/// (`sel[0]` is the most significant, matching the paper's group-identifier
/// bits). Built as a balanced binary tree of (2,1)-multiplexers: cost
/// `m − 1`, depth `lg m`.
pub fn tree_multiplexer(b: &mut Builder, sel: &[Wire], inputs: &[Wire]) -> Wire {
    assert_eq!(
        inputs.len(),
        1usize << sel.len(),
        "(m,1)-multiplexer needs 2^|sel| inputs"
    );
    if inputs.len() == 1 {
        return inputs[0];
    }
    let half = inputs.len() / 2;
    let lo = tree_multiplexer(b, &sel[1..], &inputs[..half]);
    let hi = tree_multiplexer(b, &sel[1..], &inputs[half..]);
    b.mux2(sel[0], lo, hi)
}

/// (n,k)-multiplexer: selects one of the `n/k` groups of `k` consecutive
/// inputs and presents it on the `k` outputs, according to the
/// `lg(n/k)`-bit select input (`sel[0]` most significant).
///
/// Built by coupling `k` (n/k,1)-multiplexers as in Fig. 3(a). Cost
/// `n − k` (the paper rounds to `n`), depth `lg(n/k)`.
pub fn group_multiplexer(b: &mut Builder, sel: &[Wire], inputs: &[Wire], k: usize) -> Vec<Wire> {
    let n = inputs.len();
    assert_pow2(n, "(n,k)-multiplexer");
    assert_pow2(k, "(n,k)-multiplexer group size");
    assert!(k <= n, "group size k={k} exceeds n={n}");
    let groups = n / k;
    assert_eq!(
        sel.len(),
        groups.trailing_zeros() as usize,
        "(n,k)-multiplexer needs lg(n/k) select bits"
    );
    b.scoped("group_multiplexer", |b| {
        (0..k)
            .map(|j| {
                let leg: Vec<Wire> = (0..groups).map(|g| inputs[g * k + j]).collect();
                tree_multiplexer(b, sel, &leg)
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_circuit::Builder;

    /// The (16,4)-multiplexer of Fig. 3(a): selects one of four groups of
    /// four inputs by the two leftmost bits of the input codes.
    #[test]
    fn fig3a_16_4_multiplexer() {
        let (n, k) = (16usize, 4usize);
        let mut b = Builder::new();
        let sel = b.input_bus(2);
        let ins = b.input_bus(n);
        let outs = group_multiplexer(&mut b, &sel, &ins, k);
        b.outputs(&outs);
        let c = b.finish();
        assert_eq!(c.cost().total as usize, n - k, "cost n − k (paper: ~n)");
        assert_eq!(c.depth(), 2, "depth lg(n/k) = 2");

        // Put a distinct 4-bit pattern in each group and check each select.
        let data: Vec<bool> = (0..n).map(|i| (i / k + i % k) % 2 == 0).collect();
        for g in 0..4usize {
            let mut inp = vec![g >> 1 & 1 == 1, g & 1 == 1];
            inp.extend_from_slice(&data);
            let got = c.eval(&inp);
            assert_eq!(got, &data[g * k..(g + 1) * k], "group {g}");
        }
    }

    #[test]
    fn one_group_is_wiring() {
        // (k,k)-multiplexer: no selection to do, zero cost.
        let mut b = Builder::new();
        let ins = b.input_bus(4);
        let outs = group_multiplexer(&mut b, &[], &ins, 4);
        assert_eq!(outs, ins);
    }

    #[test]
    fn tree_multiplexer_full_decode() {
        let m = 8;
        let mut b = Builder::new();
        let sel = b.input_bus(3);
        let ins = b.input_bus(m);
        let out = tree_multiplexer(&mut b, &sel, &ins);
        b.outputs(&[out]);
        let c = b.finish();
        assert_eq!(c.cost().total as usize, m - 1);
        assert_eq!(c.depth(), 3);
        for pick in 0..m {
            // one-hot data: only input `pick` is 1
            for probe in 0..m {
                let mut inp: Vec<bool> = (0..3).map(|i| pick >> (2 - i) & 1 == 1).collect();
                inp.extend((0..m).map(|i| i == probe));
                let got = c.eval(&inp);
                assert_eq!(got[0], probe == pick, "pick={pick} probe={probe}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lg(n/k) select bits")]
    fn wrong_select_width_panics() {
        let mut b = Builder::new();
        let sel = b.input_bus(1);
        let ins = b.input_bus(16);
        let _ = group_multiplexer(&mut b, &sel, &ins, 4);
    }
}
