//! Comparator stages used by the sorting-network constructions.

use absort_circuit::{Builder, Wire};

/// The first stage of the balanced merging block: compares line `i` with
/// line `n−1−i` (min to the top). On an `A_n` sequence this leaves one
/// half clean-sorted and the other in `A_{n/2}` (Theorem 2) — the heart
/// of the prefix sorter's patch-up network. Cost `n/2`, depth 1.
pub fn balanced_stage(b: &mut Builder, inputs: &[Wire]) -> Vec<Wire> {
    let n = inputs.len();
    assert!(n >= 2 && n % 2 == 0, "balanced stage needs an even width");
    let mut out = vec![inputs[0]; n];
    b.scoped("balanced_stage", |b| {
        for i in 0..n / 2 {
            let (lo, hi) = b.bit_compare(inputs[i], inputs[n - 1 - i]);
            out[i] = lo;
            out[n - 1 - i] = hi;
        }
    });
    out
}

/// A stage of comparators on adjacent pairs `(2i, 2i+1)`, min to the even
/// line — the two-input sorters that begin the Fig. 4(b) construction.
/// Cost `n/2`, depth 1.
pub fn adjacent_stage(b: &mut Builder, inputs: &[Wire]) -> Vec<Wire> {
    let n = inputs.len();
    assert!(n % 2 == 0, "adjacent stage needs an even width");
    let mut out = Vec::with_capacity(n);
    b.scoped("adjacent_stage", |b| {
        for i in 0..n / 2 {
            let (lo, hi) = b.bit_compare(inputs[2 * i], inputs[2 * i + 1]);
            out.push(lo);
            out.push(hi);
        }
    });
    out
}

/// The perfect shuffle as free wiring: output `2i` ← input `i`,
/// output `2i+1` ← input `n/2+i` (interleaves the halves).
pub fn shuffle(inputs: &[Wire]) -> Vec<Wire> {
    let n = inputs.len();
    assert!(n % 2 == 0, "shuffle needs an even width");
    let mut out = Vec::with_capacity(n);
    for i in 0..n / 2 {
        out.push(inputs[i]);
        out.push(inputs[n / 2 + i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_circuit::Builder;

    #[test]
    fn balanced_stage_example_2() {
        // Paper Example 2: Z = 10101011 → Y_U = 1000, Y_L = 1111.
        let mut b = Builder::new();
        let ins = b.input_bus(8);
        let outs = balanced_stage(&mut b, &ins);
        b.outputs(&outs);
        let c = b.finish();
        assert_eq!(c.cost().total, 4);
        assert_eq!(c.depth(), 1);
        let z = [true, false, true, false, true, false, true, true];
        let got = c.eval(&z);
        let expect = [true, false, false, false, true, true, true, true];
        assert_eq!(got, expect);
    }

    #[test]
    fn adjacent_stage_sorts_pairs() {
        let mut b = Builder::new();
        let ins = b.input_bus(4);
        let outs = adjacent_stage(&mut b, &ins);
        b.outputs(&outs);
        let c = b.finish();
        let got = c.eval(&[true, false, false, true]);
        assert_eq!(got, vec![false, true, false, true]);
    }

    #[test]
    fn shuffle_is_free_wiring() {
        let mut b = Builder::new();
        let ins = b.input_bus(8);
        let sh = shuffle(&ins);
        b.outputs(&sh);
        let c = b.finish();
        assert_eq!(c.cost().total, 0);
        assert_eq!(c.depth(), 0);
        let data: Vec<bool> = vec![true, true, true, true, false, false, false, true];
        let got = c.eval(&data);
        // interleave halves: 1111 / 0001 -> 10101011 (paper Example 1)
        let expect = vec![true, false, true, false, true, false, true, true];
        assert_eq!(got, expect);
    }
}
