//! # absort-blocks — the paper's building blocks (Section II)
//!
//! Circuit-level generators for every building block of the adaptive
//! sorting network models, with the paper's exact cost/depth accounting:
//!
//! | block | paper cost | paper depth | module |
//! |---|---|---|---|
//! | two-way swapper | n/2 | 1 | [`swap::two_way_swapper`] |
//! | four-way swapper (IN-/OUT-SWAP) | n | 1 | [`swap::four_way_swapper`] |
//! | (n,k)-multiplexer | n − k | lg(n/k) | [`mux::group_multiplexer`] |
//! | (k,n)-demultiplexer | n − k | lg(n/k) | [`demux::group_demultiplexer`] |
//! | population counter + prefix adders | O(n) | O(lg n) | [`popcount`] |
//! | balanced-merge comparator stage | n/2 | 1 | [`stages::balanced_stage`] |
//!
//! (The paper rounds the multiplexer/demultiplexer cost `n − k` up to `n`;
//! we construct and count the exact circuits.)
//!
//! Every generator takes a [`absort_circuit::Builder`] plus input wires
//! and returns output wires, so the sorters in `absort-core` compose them
//! exactly the way the paper's figures do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod demux;
pub mod mux;
pub mod popcount;
pub mod stages;
pub mod swap;

pub use popcount::{ge_half, popcount};
pub use swap::{four_way_swapper, two_way_swapper};
