//! (k,n)-demultiplexers (paper Section II.D, Fig. 3(b)).

use absort_circuit::{assert_pow2, Builder, Wire};

/// (1,m)-demultiplexer: routes its input to one of `m = 2^s` outputs
/// selected by `s` select bits (`sel[0]` most significant); the other
/// outputs carry 0. Built as a balanced binary tree of
/// (1,2)-demultiplexers: cost `m − 1`, depth `lg m`.
pub fn tree_demultiplexer(b: &mut Builder, sel: &[Wire], input: Wire) -> Vec<Wire> {
    if sel.is_empty() {
        return vec![input];
    }
    let (lo, hi) = b.demux2(sel[0], input);
    let mut out = tree_demultiplexer(b, &sel[1..], lo);
    out.extend(tree_demultiplexer(b, &sel[1..], hi));
    out
}

/// (k,n)-demultiplexer: routes its `k` inputs to one of the `n/k` groups
/// of `k` consecutive outputs, selected by the `lg(n/k)`-bit select input
/// (`sel[0]` most significant); all other outputs carry 0.
///
/// Built by coupling `k` (1,n/k)-demultiplexers as in Fig. 3(b). Cost
/// `n − k` (the paper rounds to `n`), depth `lg(n/k)`.
pub fn group_demultiplexer(b: &mut Builder, sel: &[Wire], inputs: &[Wire], n: usize) -> Vec<Wire> {
    let k = inputs.len();
    assert_pow2(n, "(k,n)-demultiplexer");
    assert_pow2(k, "(k,n)-demultiplexer input count");
    assert!(k <= n, "input count k={k} exceeds n={n}");
    let groups = n / k;
    assert_eq!(
        sel.len(),
        groups.trailing_zeros() as usize,
        "(k,n)-demultiplexer needs lg(n/k) select bits"
    );
    b.scoped("group_demultiplexer", |b| {
        // legs[j][g] = input j's copy for group g
        let legs: Vec<Vec<Wire>> = inputs
            .iter()
            .map(|&x| tree_demultiplexer(b, sel, x))
            .collect();
        let mut out = Vec::with_capacity(n);
        for g in 0..groups {
            for leg in legs.iter() {
                out.push(leg[g]);
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_circuit::Builder;

    /// The (4,16)-demultiplexer of Fig. 3(b).
    #[test]
    fn fig3b_4_16_demultiplexer() {
        let (k, n) = (4usize, 16usize);
        let mut b = Builder::new();
        let sel = b.input_bus(2);
        let ins = b.input_bus(k);
        let outs = group_demultiplexer(&mut b, &sel, &ins, n);
        b.outputs(&outs);
        let c = b.finish();
        assert_eq!(c.cost().total as usize, n - k, "cost n − k (paper: ~n)");
        assert_eq!(c.depth(), 2, "depth lg(n/k) = 2");

        let data = [true, false, true, true];
        for g in 0..4usize {
            let mut inp = vec![g >> 1 & 1 == 1, g & 1 == 1];
            inp.extend_from_slice(&data);
            let got = c.eval(&inp);
            for (pos, &bit) in got.iter().enumerate() {
                let expect = pos / k == g && data[pos % k];
                assert_eq!(bit, expect, "group {g}, output {pos}");
            }
        }
    }

    #[test]
    fn demux_then_or_recovers_input() {
        // Routing to any group and OR-ing the groups back together is the
        // identity — the demultiplexer loses nothing.
        let (k, n) = (2usize, 8usize);
        let mut b = Builder::new();
        let sel = b.input_bus(2);
        let ins = b.input_bus(k);
        let outs = group_demultiplexer(&mut b, &sel, &ins, n);
        let mut recovered = Vec::new();
        for j in 0..k {
            let mut acc = outs[j];
            for g in 1..n / k {
                acc = b.or(acc, outs[g * k + j]);
            }
            recovered.push(acc);
        }
        b.outputs(&recovered);
        let c = b.finish();
        for g in 0..4usize {
            for v in 0..4u32 {
                let mut inp = vec![g >> 1 & 1 == 1, g & 1 == 1];
                inp.extend((0..k).map(|i| v >> i & 1 == 1));
                let got = c.eval(&inp);
                let expect: Vec<bool> = (0..k).map(|i| v >> i & 1 == 1).collect();
                assert_eq!(got, expect, "g={g} v={v}");
            }
        }
    }

    #[test]
    fn trivial_demux_is_wiring() {
        let mut b = Builder::new();
        let ins = b.input_bus(4);
        let outs = group_demultiplexer(&mut b, &[], &ins, 4);
        assert_eq!(outs, ins);
    }
}
