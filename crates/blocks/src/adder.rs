//! Parallel-prefix (carry-lookahead) addition.
//!
//! The paper's Network 1 uses "a simple lg n-bit prefix adder" with cost
//! `O(lg n)` and depth `O(lg lg n)` (it cites CLR for cost `3 lg n` and
//! depth `2 lg lg n`). We build the Brent–Kung prefix adder, which has the
//! same asymptotics — linear cost in the word width `m` and `O(lg m)`
//! depth; the exact gate constants of *our* construction are measured and
//! reported by the analysis crate rather than assumed.

use absort_circuit::{Builder, Wire};

/// A (generate, propagate) pair during the prefix scan.
#[derive(Clone, Copy)]
struct Gp {
    g: Wire,
    p: Wire,
}

/// Combines two adjacent (g,p) spans, `hi` covering the more significant
/// span: `(G, P) = (g_hi OR (p_hi AND g_lo), p_hi AND p_lo)`. 3 gates.
fn combine(b: &mut Builder, hi: Gp, lo: Gp) -> Gp {
    let t = b.and(hi.p, lo.g);
    let g = b.or(hi.g, t);
    let p = b.and(hi.p, lo.p);
    Gp { g, p }
}

/// Brent–Kung inclusive prefix scan over (g,p) pairs: `out[i]` covers the
/// span `0..=i`. Uses ~2m combines and 2·lg m − 1 combine levels.
fn brent_kung(b: &mut Builder, nodes: &[Gp]) -> Vec<Gp> {
    let m = nodes.len();
    if m == 1 {
        return vec![nodes[0]];
    }
    // Pair adjacent nodes; an odd tail element rides along unpaired.
    let mut paired = Vec::with_capacity(m / 2);
    for i in 0..m / 2 {
        paired.push(combine(b, nodes[2 * i + 1], nodes[2 * i]));
    }
    let rec = brent_kung(b, &paired);
    let mut out = vec![nodes[0]; m];
    out[0] = nodes[0];
    for i in 0..m / 2 {
        out[2 * i + 1] = rec[i];
        if 2 * i + 2 < m {
            out[2 * i + 2] = combine(b, nodes[2 * i + 2], rec[i]);
        }
    }
    out
}

/// Which adder construction to use (the ablation of DESIGN.md: the
/// paper's Network 1 specifies a *prefix* adder; a ripple-carry adder is
/// the naive alternative whose linear carry chain shows up directly in
/// the sorter's measured depth — experiment E16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdderKind {
    /// Brent–Kung parallel-prefix adder: `Θ(m)` cost, `Θ(lg m)` depth.
    Prefix,
    /// Ripple-carry adder: `Θ(m)` cost, `Θ(m)` depth.
    Ripple,
}

/// Adds two little-endian `m`-bit numbers with the selected construction,
/// returning `m + 1` sum bits.
pub fn add(b: &mut Builder, kind: AdderKind, a: &[Wire], c: &[Wire]) -> Vec<Wire> {
    match kind {
        AdderKind::Prefix => prefix_add(b, a, c),
        AdderKind::Ripple => ripple_add(b, a, c),
    }
}

/// Adds two little-endian `m`-bit numbers with a ripple-carry adder,
/// returning `m + 1` little-endian sum bits. 5 gates per full-adder
/// stage, depth `2m − 1`-ish: the carry chain is serial.
pub fn ripple_add(b: &mut Builder, a: &[Wire], c: &[Wire]) -> Vec<Wire> {
    assert_eq!(a.len(), c.len(), "ripple_add needs equal widths");
    assert!(!a.is_empty(), "ripple_add on empty words");
    b.scoped("ripple_add", |b| {
        let mut sum = Vec::with_capacity(a.len() + 1);
        // half adder for bit 0
        let s0 = b.xor(a[0], c[0]);
        let mut carry = b.and(a[0], c[0]);
        sum.push(s0);
        for (&x, &y) in a[1..].iter().zip(&c[1..]) {
            let p = b.xor(x, y);
            let s = b.xor(p, carry);
            let g = b.and(x, y);
            let t = b.and(p, carry);
            carry = b.or(g, t);
            sum.push(s);
        }
        sum.push(carry);
        sum
    })
}

/// Adds two little-endian `m`-bit numbers with a Brent–Kung prefix adder,
/// returning `m + 1` little-endian sum bits (the last is the carry out).
///
/// Cost is `Θ(m)` gates with depth `Θ(lg m)` — the "prefix adder" of the
/// paper's Network 1.
pub fn prefix_add(b: &mut Builder, a: &[Wire], c: &[Wire]) -> Vec<Wire> {
    assert_eq!(a.len(), c.len(), "prefix_add needs equal widths");
    assert!(!a.is_empty(), "prefix_add on empty words");
    let m = a.len();
    b.scoped("prefix_add", |b| {
        let gp: Vec<Gp> = a
            .iter()
            .zip(c)
            .map(|(&x, &y)| Gp {
                g: b.and(x, y),
                p: b.xor(x, y),
            })
            .collect();
        let pre = brent_kung(b, &gp);
        let mut sum = Vec::with_capacity(m + 1);
        sum.push(gp[0].p); // bit 0: p0 ^ carry-in(0) = p0
        for i in 1..m {
            let s = b.xor(gp[i].p, pre[i - 1].g);
            sum.push(s);
        }
        sum.push(pre[m - 1].g); // carry out
        sum
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_circuit::Builder;

    fn build_adder(m: usize) -> absort_circuit::Circuit {
        let mut b = Builder::new();
        let a = b.input_bus(m);
        let c = b.input_bus(m);
        let s = prefix_add(&mut b, &a, &c);
        b.outputs(&s);
        b.finish()
    }

    fn to_bits(v: u64, m: usize) -> Vec<bool> {
        (0..m).map(|i| v >> i & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn exhaustive_small_widths() {
        for m in 1..=6usize {
            let c = build_adder(m);
            for x in 0..1u64 << m {
                for y in 0..1u64 << m {
                    let mut inp = to_bits(x, m);
                    inp.extend(to_bits(y, m));
                    let out = c.eval(&inp);
                    assert_eq!(from_bits(&out), x + y, "m={m} {x}+{y}");
                }
            }
        }
    }

    #[test]
    fn random_wide_adds() {
        use rand::prelude::*;
        let m = 32;
        let c = build_adder(m);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let x: u64 = rng.gen::<u32>() as u64;
            let y: u64 = rng.gen::<u32>() as u64;
            let mut inp = to_bits(x, m);
            inp.extend(to_bits(y, m));
            assert_eq!(from_bits(&c.eval(&inp)), x + y);
        }
    }

    #[test]
    fn cost_is_linear_depth_is_logarithmic() {
        // Brent–Kung: cost ≤ 9m (3 gp + ~2 combines of 3 gates + 1 sum
        // per bit), depth ≤ 2 lg m + 2.
        for k in 1..=7u32 {
            let m = 1usize << k;
            let c = build_adder(m);
            let cost = c.cost().total;
            assert!(cost <= 9 * m as u64, "m={m}: cost {cost} > 9m");
            // The paper counts each (g,p) combine as one unit-depth node
            // (depth 2 lg m); our combines are two gate levels each, so
            // the gate-level depth is ≤ 4 lg m + 3 with the same Θ(lg m).
            let depth = c.depth();
            assert!(
                depth <= 4 * k as usize + 3,
                "m={m}: depth {depth} > 4 lg m + 3"
            );
        }
    }

    fn build_ripple(m: usize) -> absort_circuit::Circuit {
        let mut b = Builder::new();
        let a = b.input_bus(m);
        let c = b.input_bus(m);
        let s = ripple_add(&mut b, &a, &c);
        b.outputs(&s);
        b.finish()
    }

    #[test]
    fn ripple_exhaustive_small_widths() {
        for m in 1..=6usize {
            let c = build_ripple(m);
            for x in 0..1u64 << m {
                for y in 0..1u64 << m {
                    let mut inp = to_bits(x, m);
                    inp.extend(to_bits(y, m));
                    assert_eq!(from_bits(&c.eval(&inp)), x + y, "m={m} {x}+{y}");
                }
            }
        }
    }

    #[test]
    fn ripple_depth_is_linear_prefix_is_logarithmic() {
        // The E16 ablation's microscopic view: at m = 64 the ripple carry
        // chain is an order of magnitude deeper than Brent–Kung.
        let m = 64;
        let ripple = build_ripple(m).depth();
        let prefix = build_adder(m).depth();
        assert!(ripple >= m, "ripple depth {ripple} must be ≥ m");
        assert!(prefix <= 4 * 6 + 3, "prefix depth {prefix}");
        assert!(ripple > 4 * prefix, "ripple {ripple} vs prefix {prefix}");
    }

    #[test]
    fn kind_dispatch() {
        let mut b = Builder::new();
        let a = b.input_bus(4);
        let c = b.input_bus(4);
        let s = add(&mut b, AdderKind::Ripple, &a, &c);
        b.outputs(&s);
        let circ = b.finish();
        let mut inp = to_bits(9, 4);
        inp.extend(to_bits(5, 4));
        assert_eq!(from_bits(&circ.eval(&inp)), 14);
    }

    #[test]
    fn odd_widths_work() {
        for m in [3usize, 5, 7, 11] {
            let c = build_adder(m);
            let top = (1u64 << m) - 1;
            let mut inp = to_bits(top, m);
            inp.extend(to_bits(1, m));
            assert_eq!(from_bits(&c.eval(&inp)), top + 1, "m={m}");
        }
    }
}
