//! Property tests for the log-bucketed [`Histogram`]: quantile
//! monotonicity, bounds against true order statistics, and the
//! merge-equals-record-all law that `LocalRecorder` batching relies on.

use absort_telemetry::Histogram;
use proptest::prelude::*;

/// Upper bound on relative quantisation error: bucket upper bounds
/// overshoot a sample by at most 25% (4 sub-buckets per octave).
fn within_bucket_error(reported: u64, actual: u64) -> bool {
    reported >= actual && (reported - actual) as f64 <= 0.25 * actual as f64 + 1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// p50 ≤ p90 ≤ p99 ≤ p999 ≤ max and min ≤ p50 for any sample set,
    /// and every reported quantile stays within bucket error of a true
    /// order statistic.
    #[test]
    fn quantiles_are_monotone(samples in proptest::collection::vec(0u64..1_000_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let qs = [0.50, 0.90, 0.99, 0.999];
        let vals: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        prop_assert!(h.min() <= vals[0], "min {} > p50 {}", h.min(), vals[0]);
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {vals:?}");
        }
        prop_assert!(vals[3] <= h.max(), "p999 {} > max {}", vals[3], h.max());

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.count(), samples.len() as u64);
        for (&q, &reported) in qs.iter().zip(&vals) {
            let rank = ((q * samples.len() as f64).ceil() as usize)
                .clamp(1, samples.len());
            let actual = sorted[rank - 1];
            prop_assert!(
                within_bucket_error(reported, actual),
                "q={q}: reported {reported} vs true {actual}"
            );
        }
    }

    /// Splitting a sample stream across two histograms and merging gives
    /// exactly the histogram of the whole stream, regardless of split.
    #[test]
    fn merge_equals_record_all(
        samples in proptest::collection::vec(any::<u64>(), 0..150),
        split_seed in any::<u64>(),
    ) {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            all.record(v);
            if (split_seed >> (i % 64)) & 1 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        prop_assert_eq!(&a, &all);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    /// Recording is total: any u64 lands in a bucket, and extremes are
    /// reported exactly.
    #[test]
    fn extremes_round_trip(v in any::<u64>()) {
        let mut h = Histogram::new();
        h.record(v);
        prop_assert_eq!(h.min(), v);
        prop_assert_eq!(h.max(), v);
        prop_assert_eq!(h.quantile(0.5), v);
        prop_assert_eq!(h.count(), 1);
    }
}
