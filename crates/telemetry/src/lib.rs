//! # absort-telemetry — spans, counters, and run manifests
//!
//! The paper's result tables are *exact* structural numbers (cost, depth,
//! sorting time) measured from constructed circuits; this crate adds the
//! complementary *wall-clock* and *volume* view: where does time go when
//! a 2^20-input sorter is built, how many components and lanes does an
//! evaluation sweep actually touch. It is deliberately std-only (atomics
//! plus a `Mutex`'d registry — the build environment is offline, so the
//! planned `parking_lot` dependency is replaced by `std::sync::Mutex`).
//!
//! ## Model
//!
//! * A process-global [`Registry`] aggregates **counters** (named `u64`
//!   totals) and **timings** (count / total / min / max nanoseconds per
//!   named span path).
//! * [`span`] returns an RAII guard; nested spans build `/`-separated
//!   paths via a thread-local stack (`build/prefix_sorter/patchup`), so
//!   the rendered report mirrors `Circuit::scope_report`'s profiler look.
//! * [`LocalRecorder`] batches counter increments in plain (non-atomic)
//!   thread-local storage and merges into the registry once on drop —
//!   this is what the multi-threaded batch evaluator uses so workers
//!   never contend on a lock inside the pass loop.
//! * [`write_manifest`] exports everything as a machine-readable JSON
//!   *run manifest* (see [`json`]), conventionally under
//!   `results/metrics/<run>.json`.
//!
//! ## Cost when disabled
//!
//! Telemetry is **off by default**: every entry point first reads one
//! relaxed atomic and returns a no-op guard / does nothing. Hot loops in
//! the workspace additionally keep their instrumentation at per-pass (not
//! per-component) granularity, so the disabled overhead is far below
//! measurement noise (see the `eval_engines` bench).
//!
//! ## Example
//!
//! ```
//! absort_telemetry::set_enabled(true);
//! {
//!     let _outer = absort_telemetry::span("build");
//!     let _inner = absort_telemetry::span("prefix_sorter");
//!     absort_telemetry::counter_add("build.circuits", 1);
//! }
//! let report = absort_telemetry::render_report();
//! assert!(report.contains("build"));
//! assert!(report.contains("prefix_sorter"));
//! absort_telemetry::set_enabled(false);
//! absort_telemetry::reset();
//! ```

#![forbid(unsafe_code)]

pub mod hist;
pub mod json;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub use hist::Histogram;
pub use trace::{set_trace_enabled, trace_enabled, trace_event_count, trace_json, write_trace};

use json::Value;

// ---------------------------------------------------------------------------
// Global enable switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static SPAN_DEPTH_CAP: AtomicUsize = AtomicUsize::new(8);
/// Spans dropped by the depth cap since the last [`reset`]. Surfaced as
/// the `telemetry.spans.depth_capped` counter so truncated profiles are
/// detectable from the manifest alone.
static DEPTH_CAPPED: AtomicU64 = AtomicU64::new(0);

/// Whether recording is active. One relaxed load — safe to call anywhere.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables recording if the `ABSORT_METRICS` environment variable is set
/// to anything but `0`/empty; honours `ABSORT_METRICS_SPAN_DEPTH` for the
/// span nesting cap. Returns the resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("ABSORT_METRICS_SPAN_DEPTH") {
        if let Ok(cap) = v.parse::<usize>() {
            SPAN_DEPTH_CAP.store(cap, Ordering::Relaxed);
        }
    }
    let on = std::env::var("ABSORT_METRICS").is_ok_and(|v| !v.is_empty() && v != "0");
    if on {
        set_enabled(true);
    }
    enabled()
}

/// Caps how deeply nested spans are recorded (deeper spans become no-ops;
/// their time still accrues to the enclosing span). Protects builds with
/// thousands of recursive construction scopes from profiling overhead.
pub fn set_span_depth_cap(cap: usize) {
    SPAN_DEPTH_CAP.store(cap, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingStat {
    /// Number of completed span instances.
    pub count: u64,
    /// Total nanoseconds across instances.
    pub total_ns: u64,
    /// Fastest instance.
    pub min_ns: u64,
    /// Slowest instance.
    pub max_ns: u64,
}

impl TimingStat {
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Mean nanoseconds per instance.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    timings: BTreeMap<String, TimingStat>,
    hists: BTreeMap<String, Histogram>,
    sections: Vec<(String, Value)>,
}

/// The process-global store of counters, span timings, and extra manifest
/// sections.
pub struct Registry {
    inner: Mutex<Inner>,
}

/// An owned snapshot of the registry, ordered by name/path.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals.
    pub counters: Vec<(String, u64)>,
    /// Span timing aggregates, keyed by `/`-separated path.
    pub timings: Vec<(String, TimingStat)>,
    /// Named latency histograms.
    pub hists: Vec<(String, Histogram)>,
    /// Extra manifest sections registered by callers.
    pub sections: Vec<(String, Value)>,
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry only means a panic happened mid-record;
        // the aggregates are still well-formed integers.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the counter's new total (for trace counter samples).
    fn add_counter(&self, name: &str, delta: u64) -> u64 {
        let mut g = self.lock();
        if let Some(v) = g.counters.get_mut(name) {
            *v += delta;
            *v
        } else {
            g.counters.insert(name.to_owned(), delta);
            delta
        }
    }

    fn merge_hist(&self, name: &str, h: &Histogram) {
        let mut g = self.lock();
        if let Some(slot) = g.hists.get_mut(name) {
            slot.merge(h);
        } else {
            g.hists.insert(name.to_owned(), h.clone());
        }
    }

    fn record_hist(&self, name: &str, value: u64) {
        let mut g = self.lock();
        if let Some(slot) = g.hists.get_mut(name) {
            slot.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            g.hists.insert(name.to_owned(), h);
        }
    }

    fn record_timing(&self, path: &str, ns: u64) {
        let mut g = self.lock();
        if let Some(t) = g.timings.get_mut(path) {
            t.record(ns);
        } else {
            let mut t = TimingStat {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            };
            t.record(ns);
            g.timings.insert(path.to_owned(), t);
        }
    }

    /// Takes an ordered snapshot of everything recorded so far. Derived
    /// counters are injected here: `telemetry.spans.depth_capped` (when
    /// the span depth cap dropped anything) and `telemetry.hist.count` /
    /// `telemetry.hist.samples` (when any histogram has data).
    pub fn snapshot(&self) -> Snapshot {
        let g = self.lock();
        let mut counters = g.counters.clone();
        let capped = DEPTH_CAPPED.load(Ordering::Relaxed);
        if capped > 0 {
            counters.insert("telemetry.spans.depth_capped".to_owned(), capped);
        }
        if !g.hists.is_empty() {
            counters.insert("telemetry.hist.count".to_owned(), g.hists.len() as u64);
            counters.insert(
                "telemetry.hist.samples".to_owned(),
                g.hists.values().map(Histogram::count).sum(),
            );
        }
        Snapshot {
            counters: counters.into_iter().collect(),
            timings: g.timings.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            hists: g
                .hists
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            sections: g.sections.clone(),
        }
    }

    /// Clears all recorded data (counters, timings, histograms,
    /// sections), the depth-cap drop count, and any buffered trace
    /// events.
    pub fn clear(&self) {
        let mut g = self.lock();
        g.counters.clear();
        g.timings.clear();
        g.hists.clear();
        g.sections.clear();
        DEPTH_CAPPED.store(0, Ordering::Relaxed);
        trace::clear_events();
    }
}

/// The global registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(Inner::default()),
    })
}

/// Adds `delta` to the named counter (no-op when disabled). In event
/// mode the new total is also pushed as a trace counter sample.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        let total = global().add_counter(name, delta);
        if trace::trace_enabled() {
            trace::push_event(trace::TraceEvent::Counter {
                name: name.to_owned(),
                ts_ns: trace::now_ns(),
                tid: trace::thread_id(),
                total,
            });
        }
    }
}

/// Adds several counters under one registry lock (no-op when disabled).
pub fn counter_add_many(pairs: &[(&str, u64)]) {
    if !enabled() {
        return;
    }
    let reg = global();
    let mut totals: Vec<(&str, u64)> = Vec::new();
    {
        let mut g = reg.lock();
        for &(name, delta) in pairs {
            let total = if let Some(v) = g.counters.get_mut(name) {
                *v += delta;
                *v
            } else {
                g.counters.insert(name.to_owned(), delta);
                delta
            };
            if trace::trace_enabled() {
                totals.push((name, total));
            }
        }
    }
    if !totals.is_empty() {
        let ts_ns = trace::now_ns();
        let tid = trace::thread_id();
        for (name, total) in totals {
            trace::push_event(trace::TraceEvent::Counter {
                name: name.to_owned(),
                ts_ns,
                tid,
                total,
            });
        }
    }
}

/// Records one sample into the named global histogram (no-op when
/// disabled). Takes the registry lock — prefer
/// [`LocalRecorder::record_ns`] in hot loops.
#[inline]
pub fn hist_record(name: &str, value: u64) {
    if enabled() {
        global().record_hist(name, value);
    }
}

/// Folds a locally built histogram into the named global histogram
/// (no-op when disabled or when `h` is empty).
pub fn hist_merge(name: &str, h: &Histogram) {
    if enabled() && h.count() > 0 {
        global().merge_hist(name, h);
    }
}

/// Registers an extra named section to be embedded in the next manifest
/// (e.g. circuit stats from the CLI). Later sections with the same name
/// replace earlier ones.
pub fn add_section(name: &str, value: Value) {
    let mut g = global().lock();
    if let Some(slot) = g.sections.iter_mut().find(|(k, _)| k == name) {
        slot.1 = value;
    } else {
        g.sections.push((name.to_owned(), value));
    }
}

/// Clears all recorded data in the global registry (tests, or separating
/// phases of a long process).
pub fn reset() {
    global().clear();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    /// The `/`-joined path of currently open spans on this thread, plus
    /// the open-span count (which may exceed the recorded depth cap).
    static SPAN_PATH: RefCell<(String, usize)> = const { RefCell::new((String::new(), 0)) };
}

/// RAII guard for one timed span. Created by [`span`]; records on drop.
#[must_use = "a span records its duration when dropped; binding it to _ drops immediately"]
pub struct Span {
    /// `Some((start, previous path length))` when actively recording.
    active: Option<(Instant, usize)>,
    /// Whether a trace begin event was emitted (end must pair with it).
    traced: bool,
}

impl Span {
    /// A guard that records nothing.
    pub fn disabled() -> Span {
        Span {
            active: None,
            traced: false,
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("active", &self.active.is_some())
            .finish()
    }
}

/// Opens a named span. When telemetry is disabled (or the nesting cap is
/// reached) this returns a no-op guard after a single atomic load.
///
/// `name` should be a single path segment (`"prefix_sorter"`); nesting
/// builds the full path. Segments containing `/` are allowed and simply
/// deepen the rendered tree (`span("build/prefix_sorter")`).
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    SPAN_PATH.with(|tl| {
        let (path, depth) = &mut *tl.borrow_mut();
        *depth += 1;
        if *depth > SPAN_DEPTH_CAP.load(Ordering::Relaxed) {
            // Too deep: count the nesting level but record nothing.
            // The drop is itself counted so truncated profiles are
            // detectable (`telemetry.spans.depth_capped`).
            *depth -= 1;
            DEPTH_CAPPED.fetch_add(1, Ordering::Relaxed);
            return Span::disabled();
        }
        let prev_len = path.len();
        if !path.is_empty() {
            path.push('/');
        }
        path.push_str(name);
        let traced = trace::trace_enabled();
        if traced {
            trace::push_event(trace::TraceEvent::Begin {
                name: name.rsplit('/').next().unwrap_or(name).to_owned(),
                ts_ns: trace::now_ns(),
                tid: trace::thread_id(),
            });
        }
        Span {
            active: Some((Instant::now(), prev_len)),
            traced,
        }
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((start, prev_len)) = self.active.take() else {
            return;
        };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SPAN_PATH.with(|tl| {
            let (path, depth) = &mut *tl.borrow_mut();
            global().record_timing(path, ns);
            path.truncate(prev_len);
            *depth = depth.saturating_sub(1);
        });
        if self.traced {
            trace::push_event(trace::TraceEvent::End {
                ts_ns: trace::now_ns(),
                tid: trace::thread_id(),
            });
        }
    }
}

/// Depth of the current thread's open-span stack.
pub fn span_depth() -> usize {
    SPAN_PATH.with(|tl| tl.borrow().1)
}

// ---------------------------------------------------------------------------
// Per-thread recorder
// ---------------------------------------------------------------------------

/// Batches counter increments without touching the global registry until
/// drop. Increment cost is a plain `u64` add on a tiny linear map — no
/// atomics, no locks — so evaluator worker threads can count per pass.
///
/// When telemetry is disabled at construction time the recorder is inert
/// (increments are skipped via one bool test, nothing is flushed).
#[derive(Debug)]
pub struct LocalRecorder {
    active: bool,
    counts: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Histogram)>,
}

impl LocalRecorder {
    /// A recorder bound to the current global enabled state.
    pub fn new() -> LocalRecorder {
        LocalRecorder {
            active: enabled(),
            counts: Vec::new(),
            hists: Vec::new(),
        }
    }

    /// Whether this recorder will record anything.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn add(&mut self, name: &'static str, delta: u64) {
        if !self.active {
            return;
        }
        for slot in &mut self.counts {
            if slot.0 == name {
                slot.1 += delta;
                return;
            }
        }
        self.counts.push((name, delta));
    }

    /// Records one sample (nanoseconds by convention) into the named
    /// local histogram. Like [`LocalRecorder::add`], this touches only
    /// thread-local state; the histogram merges into the registry at
    /// flush/drop.
    #[inline]
    pub fn record_ns(&mut self, name: &'static str, ns: u64) {
        if !self.active {
            return;
        }
        for slot in &mut self.hists {
            if slot.0 == name {
                slot.1.record(ns);
                return;
            }
        }
        let mut h = Histogram::new();
        h.record(ns);
        self.hists.push((name, h));
    }

    /// Merges into the global registry now (otherwise happens on drop).
    pub fn flush(mut self) {
        self.flush_inner();
    }

    fn flush_inner(&mut self) {
        if !self.active {
            return;
        }
        if !self.counts.is_empty() {
            let pairs: Vec<(&str, u64)> = self.counts.drain(..).collect();
            counter_add_many(&pairs);
        }
        if !self.hists.is_empty() {
            for (name, h) in self.hists.drain(..) {
                hist_merge(name, &h);
            }
        }
    }
}

impl Default for LocalRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for LocalRecorder {
    fn drop(&mut self) {
        self.flush_inner();
    }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Renders the span tree (indented by path depth, mirroring
/// `scope_report`) followed by the counter table.
pub fn render_report() -> String {
    let snap = global().snapshot();
    let mut out = String::new();
    let _ = writeln!(out, "-- telemetry: spans --");
    if snap.timings.is_empty() {
        let _ = writeln!(out, "(none recorded)");
    }
    // BTreeMap ordering means a parent path sorts before its children, so
    // plain iteration with depth-derived indentation prints a tree.
    for (path, t) in &snap.timings {
        let depth = path.matches('/').count();
        let name = path.rsplit('/').next().unwrap_or(path);
        let _ = writeln!(
            out,
            "{:indent$}{name}: {} (n={}, mean {}, max {})",
            "",
            fmt_ns(t.total_ns),
            t.count,
            fmt_ns(t.mean_ns()),
            fmt_ns(t.max_ns),
            indent = depth * 2,
        );
    }
    let _ = writeln!(out, "-- telemetry: counters --");
    if snap.counters.is_empty() {
        let _ = writeln!(out, "(none recorded)");
    }
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "{name}: {v}");
    }
    if !snap.hists.is_empty() {
        let _ = writeln!(out, "-- telemetry: histograms --");
        for (name, h) in &snap.hists {
            let _ = writeln!(
                out,
                "{name}: n={} mean {} p50 {} p99 {} max {}",
                h.count(),
                fmt_ns(h.mean()),
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.99)),
                fmt_ns(h.max()),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Manifests
// ---------------------------------------------------------------------------

/// Milliseconds since the Unix epoch.
fn unix_ms() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| i64::try_from(d.as_millis()).unwrap_or(i64::MAX))
        .unwrap_or(0)
}

/// Builds the manifest JSON document from the current registry state.
///
/// Schema (`absort-telemetry/v1`):
///
/// ```json
/// {
///   "schema": "absort-telemetry/v1",
///   "created_unix_ms": 1700000000000,
///   "meta": { "crate_version": "...", "os": "...", "arch": "...", "argv": [".."] },
///   "spans": { "<path>": { "count": 1, "total_ns": 1, "min_ns": 1, "max_ns": 1, "mean_ns": 1 } },
///   "counters": { "<name>": 1 },
///   "histograms": { "<name>": { "count": 1, "sum_ns": 1, "min_ns": 1, "max_ns": 1,
///                               "mean_ns": 1, "p50_ns": 1, "p90_ns": 1, "p99_ns": 1,
///                               "p999_ns": 1 } },
///   "<extra sections from add_section>": { }
/// }
/// ```
///
/// Derived counters `telemetry.hist.count` / `telemetry.hist.samples`
/// (and `telemetry.spans.depth_capped` when the span cap dropped
/// anything) appear in `counters` alongside the recorded totals.
pub fn manifest() -> Value {
    let snap = global().snapshot();
    let argv: Vec<Value> = std::env::args().map(Value::Str).collect();
    let meta = Value::obj([
        (
            "crate_version",
            Value::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("os", Value::Str(std::env::consts::OS.into())),
        ("arch", Value::Str(std::env::consts::ARCH.into())),
        ("argv", Value::Arr(argv)),
    ]);
    let spans = Value::Obj(
        snap.timings
            .iter()
            .map(|(path, t)| {
                (
                    path.clone(),
                    Value::obj([
                        ("count", Value::Int(t.count as i64)),
                        ("total_ns", Value::Int(t.total_ns as i64)),
                        ("min_ns", Value::Int(t.min_ns as i64)),
                        ("max_ns", Value::Int(t.max_ns as i64)),
                        ("mean_ns", Value::Int(t.mean_ns() as i64)),
                    ]),
                )
            })
            .collect(),
    );
    let counters = Value::Obj(
        snap.counters
            .iter()
            .map(|(name, v)| (name.clone(), Value::Int(*v as i64)))
            .collect(),
    );
    let histograms = Value::Obj(
        snap.hists
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    Value::obj([
                        ("count", Value::Int(h.count() as i64)),
                        ("sum_ns", Value::Int(h.sum() as i64)),
                        ("min_ns", Value::Int(h.min() as i64)),
                        ("max_ns", Value::Int(h.max() as i64)),
                        ("mean_ns", Value::Int(h.mean() as i64)),
                        ("p50_ns", Value::Int(h.quantile(0.50) as i64)),
                        ("p90_ns", Value::Int(h.quantile(0.90) as i64)),
                        ("p99_ns", Value::Int(h.quantile(0.99) as i64)),
                        ("p999_ns", Value::Int(h.quantile(0.999) as i64)),
                    ]),
                )
            })
            .collect(),
    );
    let mut fields = vec![
        (
            "schema".to_owned(),
            Value::Str("absort-telemetry/v1".into()),
        ),
        ("created_unix_ms".to_owned(), Value::Int(unix_ms())),
        ("meta".to_owned(), meta),
        ("spans".to_owned(), spans),
        ("counters".to_owned(), counters),
        ("histograms".to_owned(), histograms),
    ];
    fields.extend(snap.sections);
    Value::Obj(fields)
}

/// Writes the manifest to `path` (creating parent directories).
pub fn write_manifest(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, manifest().to_pretty())
}

/// The conventional manifest location for a run named `run`:
/// `results/metrics/<run>-<unix_ms>.json` under the current directory.
pub fn default_manifest_path(run: &str) -> PathBuf {
    let safe: String = run
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    PathBuf::from("results")
        .join("metrics")
        .join(format!("{safe}-{}.json", unix_ms()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global, so every test runs under one
    /// lock and restores a clean slate.
    fn with_clean_telemetry(f: impl FnOnce()) {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_trace_enabled(false);
        reset();
        set_enabled(true);
        f();
        set_enabled(false);
        set_trace_enabled(false);
        reset();
    }

    #[test]
    fn disabled_records_nothing() {
        with_clean_telemetry(|| {
            set_enabled(false);
            {
                let _s = span("ghost");
                counter_add("ghost.count", 5);
                let mut r = LocalRecorder::new();
                r.add("ghost.local", 2);
            }
            let snap = global().snapshot();
            assert!(snap.counters.is_empty());
            assert!(snap.timings.is_empty());
        });
    }

    #[test]
    fn spans_nest_into_paths() {
        with_clean_telemetry(|| {
            {
                let _a = span("build");
                {
                    let _b = span("prefix");
                    let _c = span("patchup");
                }
                {
                    let _b2 = span("prefix");
                }
            }
            let snap = global().snapshot();
            let paths: Vec<&str> = snap.timings.iter().map(|(p, _)| p.as_str()).collect();
            assert_eq!(paths, ["build", "build/prefix", "build/prefix/patchup"]);
            let prefix = &snap.timings[1].1;
            assert_eq!(prefix.count, 2);
            assert!(prefix.total_ns >= prefix.min_ns);
            assert!(prefix.max_ns >= prefix.min_ns);
        });
    }

    #[test]
    fn depth_cap_suppresses_deep_spans() {
        with_clean_telemetry(|| {
            set_span_depth_cap(2);
            {
                let _a = span("l1");
                let _b = span("l2");
                let _c = span("l3");
                assert_eq!(span_depth(), 2, "capped span must not deepen the stack");
            }
            set_span_depth_cap(8);
            let snap = global().snapshot();
            let paths: Vec<&str> = snap.timings.iter().map(|(p, _)| p.as_str()).collect();
            assert_eq!(paths, ["l1", "l1/l2"]);
        });
    }

    #[test]
    fn counters_accumulate_and_merge_from_threads() {
        with_clean_telemetry(|| {
            counter_add("eval.passes", 2);
            counter_add("eval.passes", 3);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let mut r = LocalRecorder::new();
                        for _ in 0..100 {
                            r.add("eval.components", 7);
                        }
                    });
                }
            });
            let snap = global().snapshot();
            assert_eq!(
                snap.counters,
                vec![
                    ("eval.components".to_owned(), 2800),
                    ("eval.passes".to_owned(), 5)
                ]
            );
        });
    }

    #[test]
    fn manifest_roundtrips_through_parser() {
        with_clean_telemetry(|| {
            {
                let _s = span("build");
                counter_add("build.circuits", 1);
            }
            add_section("circuit", Value::obj([("cost", Value::Int(42))]));
            let m = manifest();
            let text = m.to_pretty();
            let back = json::parse(&text).expect("manifest parses");
            assert_eq!(
                back.get("schema").unwrap().as_str(),
                Some("absort-telemetry/v1")
            );
            let spans = back.get("spans").unwrap();
            let build = spans.get("build").expect("build span present");
            assert_eq!(build.get("count").unwrap().as_i64(), Some(1));
            assert!(build.get("total_ns").unwrap().as_i64().unwrap() >= 0);
            assert_eq!(
                back.get("counters")
                    .unwrap()
                    .get("build.circuits")
                    .unwrap()
                    .as_i64(),
                Some(1)
            );
            assert_eq!(
                back.get("circuit").unwrap().get("cost").unwrap().as_i64(),
                Some(42)
            );
        });
    }

    #[test]
    fn report_renders_tree() {
        with_clean_telemetry(|| {
            {
                let _a = span("build");
                let _b = span("adder");
            }
            counter_add("build.components", 9);
            let r = render_report();
            assert!(r.contains("build:"), "{r}");
            assert!(r.contains("  adder:"), "{r}");
            assert!(r.contains("build.components: 9"), "{r}");
        });
    }

    #[test]
    fn depth_cap_drops_are_counted_and_surfaced() {
        with_clean_telemetry(|| {
            set_span_depth_cap(1);
            {
                let _a = span("l1");
                let _b = span("l2");
                let _c = span("l3");
            }
            set_span_depth_cap(8);
            let snap = global().snapshot();
            assert_eq!(
                snap.counters,
                vec![("telemetry.spans.depth_capped".to_owned(), 2)]
            );
            let m = manifest();
            assert_eq!(
                m.get("counters")
                    .unwrap()
                    .get("telemetry.spans.depth_capped")
                    .unwrap()
                    .as_i64(),
                Some(2)
            );
            reset();
            let snap = global().snapshot();
            assert!(snap.counters.is_empty(), "reset clears the drop count");
        });
    }

    #[test]
    fn histograms_flow_through_recorder_and_manifest() {
        with_clean_telemetry(|| {
            hist_record("eval.vector_ns", 100);
            {
                let mut r = LocalRecorder::new();
                r.record_ns("eval.vector_ns", 200);
                r.record_ns("eval.vector_ns", 400);
                r.record_ns("compile.pass_ns", 50);
            }
            let snap = global().snapshot();
            let names: Vec<&str> = snap.hists.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, ["compile.pass_ns", "eval.vector_ns"]);
            assert_eq!(snap.hists[1].1.count(), 3);
            assert_eq!(snap.hists[1].1.sum(), 700);
            let counters: std::collections::BTreeMap<_, _> =
                snap.counters.iter().cloned().collect();
            assert_eq!(counters.get("telemetry.hist.count"), Some(&2));
            assert_eq!(counters.get("telemetry.hist.samples"), Some(&4));
            let m = manifest();
            let h = m
                .get("histograms")
                .unwrap()
                .get("eval.vector_ns")
                .expect("histogram exported");
            assert_eq!(h.get("count").unwrap().as_i64(), Some(3));
            let p50 = h.get("p50_ns").unwrap().as_i64().unwrap();
            let p99 = h.get("p99_ns").unwrap().as_i64().unwrap();
            let max = h.get("max_ns").unwrap().as_i64().unwrap();
            assert!(p50 <= p99 && p99 <= max, "p50={p50} p99={p99} max={max}");
            let report = render_report();
            assert!(report.contains("eval.vector_ns: n=3"), "{report}");
        });
    }

    #[test]
    fn disabled_recorder_skips_histograms() {
        with_clean_telemetry(|| {
            set_enabled(false);
            hist_record("ghost.ns", 5);
            let mut r = LocalRecorder::new();
            r.record_ns("ghost.ns", 7);
            drop(r);
            set_enabled(true);
            assert!(global().snapshot().hists.is_empty());
        });
    }

    #[test]
    fn trace_events_pair_and_nest() {
        with_clean_telemetry(|| {
            set_trace_enabled(true);
            {
                let _a = span("build");
                let _b = span("prefix");
                counter_add("build.circuits", 1);
            }
            set_trace_enabled(false);
            let doc = trace_json();
            let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
            let phases: Vec<&str> = evs
                .iter()
                .map(|e| e.get("ph").unwrap().as_str().unwrap())
                .collect();
            assert_eq!(phases, ["B", "B", "C", "E", "E"]);
            assert_eq!(
                evs[0].get("name").unwrap().as_str(),
                Some("build"),
                "outer begin first"
            );
            assert_eq!(evs[1].get("name").unwrap().as_str(), Some("prefix"));
            assert_eq!(
                evs[2]
                    .get("args")
                    .unwrap()
                    .get("build.circuits")
                    .unwrap()
                    .as_i64(),
                Some(1)
            );
            // Timestamps are monotone non-decreasing within the thread.
            let mut prev = -1.0f64;
            for e in evs {
                let ts = e.get("ts").unwrap().as_f64().unwrap();
                assert!(ts >= prev);
                prev = ts;
            }
            reset();
            assert_eq!(trace_event_count(), 0, "reset clears the trace buffer");
        });
    }

    #[test]
    fn capped_spans_emit_no_trace_events() {
        with_clean_telemetry(|| {
            set_trace_enabled(true);
            set_span_depth_cap(1);
            {
                let _a = span("l1");
                let _b = span("l2");
            }
            set_span_depth_cap(8);
            set_trace_enabled(false);
            let doc = trace_json();
            let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
            let phases: Vec<&str> = evs
                .iter()
                .map(|e| e.get("ph").unwrap().as_str().unwrap())
                .collect();
            assert_eq!(phases, ["B", "E"], "capped span must stay unpaired-free");
        });
    }

    #[test]
    fn default_path_is_sanitised() {
        let p = default_manifest_path("repro fig5/all");
        let s = p.to_string_lossy();
        assert!(s.starts_with("results/metrics/repro_fig5_all-"), "{s}");
        assert!(s.ends_with(".json"));
    }
}
