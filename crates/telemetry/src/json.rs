//! A minimal JSON value type with a writer and a strict parser.
//!
//! The workspace cannot take a serde dependency (the build environment is
//! offline), and the manifest schema is small and flat, so a hand-rolled
//! tree + recursive-descent parser keeps the telemetry crate std-only.
//! Object key order is preserved (`Vec<(String, Value)>`), which keeps
//! manifests diffable across runs.

use std::fmt::{self, Write as _};

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (serialised without a decimal point).
    Int(i64),
    /// A float (serialised with enough precision to round-trip).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with preserved key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an object.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
        Value::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, also accepting integral floats.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// The numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object fields.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                    if f.fract() == 0.0 && !out.ends_with(['.', 'e']) {
                        // Keep a float marker so parsers round-trip the type.
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the failure was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, nothing
/// else after the top-level value).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for manifest
                            // content; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::obj([
            ("name", Value::Str("prefix sorter \"n=64\"\n".into())),
            ("cost", Value::Int(1234)),
            ("mean_fanout", Value::Float(1.75)),
            ("whole", Value::Float(2.0)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "levels",
                Value::Arr(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            ),
            ("empty_obj", Value::Obj(vec![])),
            ("empty_arr", Value::Arr(vec![])),
        ]);
        let text = v.to_pretty();
        let back = parse(&text).expect("parse own output");
        assert_eq!(back, v);
    }

    #[test]
    fn parses_external_flavours() {
        let v = parse("  { \"a\" : [ 1 , -2.5e1 , \"x\\u0041\" ] }  ").expect("parse");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_i64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("xA")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("nulll").is_err());
    }

    #[test]
    fn preserves_key_order() {
        let v = parse("{\"z\": 1, \"a\": 2}").expect("parse");
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
