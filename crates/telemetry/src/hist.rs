//! Log-bucketed latency histograms.
//!
//! Values (nanoseconds by convention) land in buckets that are exact for
//! 0–3 and thereafter split each power-of-two octave into four
//! sub-buckets, giving a worst-case relative quantisation error of 25%
//! across the full `u64` range with ~252 buckets. Recording is a couple
//! of bit operations plus one slot increment — cheap enough for
//! per-vector evaluation latencies — and two histograms merge by adding
//! their buckets, which is what lets [`crate::LocalRecorder`] batch
//! per-thread and flush once.

/// Sub-buckets per power-of-two octave (4 → ≤25% quantisation error).
const SUB_BITS: u32 = 2;
const SUBS: u64 = 1 << SUB_BITS;
/// Values below `SUBS` get their own exact bucket.
const LINEAR: usize = SUBS as usize;
/// One bucket per (octave, sub-bucket) pair above the linear range.
pub(crate) const NUM_BUCKETS: usize = LINEAR + ((64 - SUB_BITS as usize) * LINEAR);

/// Index of the bucket `v` falls in. Monotonic in `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS here
    let sub = (v >> (exp - SUB_BITS)) & (SUBS - 1);
    ((exp - SUB_BITS) as usize) * LINEAR + LINEAR + sub as usize
}

/// Lowest value mapping to bucket `idx` (inverse of [`bucket_index`]).
fn bucket_lo(idx: usize) -> u64 {
    if idx < LINEAR {
        return idx as u64;
    }
    let exp = SUB_BITS + ((idx - LINEAR) / LINEAR) as u32;
    let sub = ((idx - LINEAR) % LINEAR) as u64;
    (1u64 << exp) | (sub << (exp - SUB_BITS))
}

/// Highest value mapping to bucket `idx`.
fn bucket_hi(idx: usize) -> u64 {
    if idx + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lo(idx + 1) - 1
    }
}

/// A mergeable log-bucketed histogram of `u64` samples (nanoseconds by
/// convention). `Default` is empty; the bucket array is allocated lazily
/// on first record so unused histograms cost three words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
            self.min = u64::MAX;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Folds `other` into `self`; the result is identical to having
    /// recorded both sample streams into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
            self.min = u64::MAX;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (s, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *s += *o;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q·count)`-th sample, clamped to the
    /// observed `[min, max]` range so quantiles are monotone in `q` and
    /// never exceed the true extremes. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_hi(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_invertible_at_boundaries() {
        let mut prev = 0usize;
        for idx in 0..NUM_BUCKETS {
            let lo = bucket_lo(idx);
            assert_eq!(bucket_index(lo), idx, "lo of bucket {idx} maps back");
            let hi = bucket_hi(idx);
            assert_eq!(bucket_index(hi), idx, "hi of bucket {idx} maps back");
            if idx > 0 {
                assert!(bucket_lo(idx) > bucket_lo(idx - 1));
                assert_eq!(bucket_index(lo - 1), prev, "no gap below bucket {idx}");
            }
            prev = idx;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_small_values_and_quantisation_error_bound() {
        for v in 0..4u64 {
            assert_eq!(bucket_lo(bucket_index(v)), v);
            assert_eq!(bucket_hi(bucket_index(v)), v);
        }
        // Above the linear range the bucket upper bound overestimates by
        // at most 25%.
        for &v in &[5u64, 100, 1_000, 123_456, 1 << 40] {
            let hi = bucket_hi(bucket_index(v));
            assert!(hi >= v);
            assert!((hi - v) as f64 <= 0.25 * v as f64 + 1.0, "v={v} hi={hi}");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 17, 90, 1_000, 12_345, 5] {
            h.record(v);
        }
        let (p50, p90, p99, p999) = (
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
            h.quantile(0.999),
        );
        assert!(h.min() <= p50, "{} <= {p50}", h.min());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        assert!(p999 <= h.max());
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 3 + 17 + 17 + 90 + 1_000 + 12_345 + 5);
    }

    #[test]
    fn single_sample_quantiles_equal_the_sample() {
        let mut h = Histogram::new();
        h.record(123_456);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 123_456);
        }
        assert_eq!(h.min(), 123_456);
        assert_eq!(h.max(), 123_456);
    }

    #[test]
    fn merge_equals_record_all() {
        let samples = [1u64, 2, 4, 8, 100, 10_000, 999, 7, 7, 1 << 33];
        let mut all = Histogram::new();
        for &v in &samples {
            all.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new());
        assert_eq!(a, all);
        let mut empty = Histogram::new();
        empty.merge(&all);
        assert_eq!(empty, all);
    }
}
