//! Opt-in event-mode recorder: Chrome `trace_event` JSON export.
//!
//! The default telemetry mode is *aggregate*: spans fold into per-path
//! [`crate::TimingStat`]s and allocate nothing per event. Turning tracing
//! on (`set_trace_enabled(true)`, or `--trace-out` in the CLI) makes the
//! same [`crate::span`] calls additionally push begin/end events — and
//! counter updates push counter samples — into a global buffer, which
//! [`trace_json`] serialises in the Chrome/Perfetto `trace_event`
//! format (open the file at <https://ui.perfetto.dev>).
//!
//! Event mode is strictly additive: spans that the aggregate path drops
//! (telemetry disabled, depth cap exceeded) emit no events either, so
//! begin/end pairs always balance per thread.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Value;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether event-mode tracing is on. One relaxed load.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turns event-mode tracing on or off. Tracing only records while
/// telemetry itself is enabled ([`crate::set_enabled`]).
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Monotonic time origin for trace timestamps (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
pub(crate) fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Small stable per-thread id (std's `ThreadId` has no stable integer
/// accessor): threads are numbered in first-use order.
pub(crate) fn thread_id() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[derive(Debug, Clone)]
pub(crate) enum TraceEvent {
    /// Span begin: name is the final path segment.
    Begin { name: String, ts_ns: u64, tid: u64 },
    /// Span end (Chrome pairs B/E per tid by nesting order).
    End { ts_ns: u64, tid: u64 },
    /// Counter sample: the counter's running total after an update.
    Counter {
        name: String,
        ts_ns: u64,
        tid: u64,
        total: u64,
    },
}

fn events() -> &'static Mutex<Vec<TraceEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn events_lock() -> std::sync::MutexGuard<'static, Vec<TraceEvent>> {
    events().lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn push_event(ev: TraceEvent) {
    events_lock().push(ev);
}

/// Drops all buffered trace events (called by [`crate::reset`]).
pub(crate) fn clear_events() {
    events_lock().clear();
}

/// Number of buffered trace events.
pub fn trace_event_count() -> usize {
    events_lock().len()
}

fn ts_us(ts_ns: u64) -> Value {
    Value::Float(ts_ns as f64 / 1_000.0)
}

/// Builds the Chrome `trace_event` JSON document from the buffered
/// events: `{"traceEvents": [...], "displayTimeUnit": "ms"}` with one
/// `B`/`E` pair per recorded span and `C` events for counter samples.
pub fn trace_json() -> Value {
    let evs = events_lock();
    let mut arr = Vec::with_capacity(evs.len());
    for ev in evs.iter() {
        let fields = match ev {
            TraceEvent::Begin { name, ts_ns, tid } => vec![
                ("name".to_owned(), Value::Str(name.clone())),
                ("cat".to_owned(), Value::Str("absort".into())),
                ("ph".to_owned(), Value::Str("B".into())),
                ("ts".to_owned(), ts_us(*ts_ns)),
                ("pid".to_owned(), Value::Int(1)),
                ("tid".to_owned(), Value::Int(*tid as i64)),
            ],
            TraceEvent::End { ts_ns, tid } => vec![
                ("ph".to_owned(), Value::Str("E".into())),
                ("ts".to_owned(), ts_us(*ts_ns)),
                ("pid".to_owned(), Value::Int(1)),
                ("tid".to_owned(), Value::Int(*tid as i64)),
            ],
            TraceEvent::Counter {
                name,
                ts_ns,
                tid,
                total,
            } => vec![
                ("name".to_owned(), Value::Str(name.clone())),
                ("cat".to_owned(), Value::Str("absort".into())),
                ("ph".to_owned(), Value::Str("C".into())),
                ("ts".to_owned(), ts_us(*ts_ns)),
                ("pid".to_owned(), Value::Int(1)),
                ("tid".to_owned(), Value::Int(*tid as i64)),
                (
                    "args".to_owned(),
                    Value::Obj(vec![(name.clone(), Value::Int(*total as i64))]),
                ),
            ],
        };
        arr.push(Value::Obj(fields));
    }
    Value::obj([
        ("traceEvents", Value::Arr(arr)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
}

/// Writes the buffered trace to `path` as Chrome `trace_event` JSON
/// (creating parent directories). The buffer is left intact.
pub fn write_trace(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, trace_json().to_pretty())
}
