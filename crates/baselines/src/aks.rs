//! Analytic model of the AKS sorting network [1] (and Paterson's
//! improvement [20]).
//!
//! The AKS network achieves `O(lg n)` depth and `O(n lg n)` cost, but
//! "the constants hidden in these complexities are so large" (paper,
//! abstract) that the adaptive constructions win "until n becomes
//! extremely large". A gate-faithful AKS construction is out of scope —
//! the paper itself never builds one; it argues purely from the constants
//! — so this module models AKS as
//!
//! * depth `= c_depth · lg n` comparator levels,
//! * cost `= (n/2) · c_depth · lg n` comparators (each level holds at
//!   most `n/2` disjoint comparators),
//!
//! with `c_depth` parameterized. The presets carry the constants used in
//! the literature: Paterson's construction needs about 6,100 lg n levels,
//! and estimates for the original AKS run to order 2^30·lg n (see
//! Paterson, *Improved sorting networks with O(log N) depth*,
//! Algorithmica 5, 1990). Experiment E15 reproduces the crossover claim
//! with these constants, and DESIGN.md §6 records the substitution.

/// An analytic comparator-network cost model: `depth = c·lg n`,
/// `cost = (n/2)·c·lg n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AksModel {
    /// Depth constant `c` in `depth = c · lg n`.
    pub depth_constant: f64,
    /// Human-readable provenance of the constant.
    pub label: &'static str,
}

/// Paterson's improved construction: ~6,100 lg n depth.
pub const PATERSON: AksModel = AksModel {
    depth_constant: 6100.0,
    label: "Paterson 1990 (~6100 lg n)",
};

/// The original AKS construction; constants estimated at order 2^30.
pub const AKS_ORIGINAL: AksModel = AksModel {
    depth_constant: 1.1e9,
    label: "AKS 1983 (order 2^30 lg n)",
};

/// An (unrealistically generous) hypothetical with constant 100, to show
/// the crossover is robust even to large improvements.
pub const HYPOTHETICAL_100: AksModel = AksModel {
    depth_constant: 100.0,
    label: "hypothetical (100 lg n)",
};

impl AksModel {
    /// Bit-level depth at input size `n = 2^a` (crossovers live far beyond
    /// any machine word, so sizes are handled as exponents).
    pub fn depth_at_exp(&self, a: u32) -> f64 {
        self.depth_constant * a as f64
    }

    /// Bit-level cost *per input* at `n = 2^a`: `cost/n = (c·lg n)/2`
    /// (each comparator level holds at most n/2 comparators). Comparing
    /// per-input costs avoids overflowing 2^a while preserving every
    /// crossover.
    pub fn cost_per_input_at_exp(&self, a: u32) -> f64 {
        self.depth_constant * a as f64 / 2.0
    }

    /// The smallest exponent `a` (with `n = 2^a`) at which this model's
    /// **depth** beats `rival_depth(a)`, searching up to `max_exp`.
    /// Returns `None` if the rival wins everywhere in range.
    pub fn depth_crossover_exp(
        &self,
        rival_depth: impl Fn(u32) -> f64,
        max_exp: u32,
    ) -> Option<u32> {
        (1..=max_exp).find(|&a| self.depth_at_exp(a) < rival_depth(a))
    }

    /// Like [`AksModel::depth_crossover_exp`] but comparing **cost per
    /// input** (equivalently total cost, since both sides share the
    /// factor `n`).
    pub fn cost_crossover_exp(
        &self,
        rival_cost_per_input: impl Fn(u32) -> f64,
        max_exp: u32,
    ) -> Option<u32> {
        (1..=max_exp).find(|&a| self.cost_per_input_at_exp(a) < rival_cost_per_input(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_crossover_vs_adaptive_lg2_is_astronomical() {
        // Adaptive sorters: depth ≈ 2 lg² n. AKS wins on depth only when
        // c·lg n < 2 lg² n, i.e. lg n > c/2.
        let rival = |a: u32| 2.0 * (a as f64) * (a as f64);
        let x = PATERSON.depth_crossover_exp(rival, 4000).unwrap();
        assert!(
            x > 3000,
            "Paterson-AKS should need n > 2^3000 to win on depth, got 2^{x}"
        );
        assert!(
            AKS_ORIGINAL.depth_crossover_exp(rival, 100_000).is_none(),
            "original AKS must not win below 2^100000"
        );
    }

    #[test]
    fn cost_crossover_vs_fish_never_happens() {
        // Fish sorter cost ≈ 17n, i.e. 17 per input; AKS cost per input is
        // Ω(lg n) — AKS never wins on cost, at any size.
        let rival = |_a: u32| 17.0;
        assert!(PATERSON.cost_crossover_exp(rival, 100_000).is_none());
    }

    #[test]
    fn cost_crossover_vs_batcher_exists_but_large() {
        // Batcher binary cost per input ≈ lg² n / 4: AKS per-input cost
        // (c/2) lg n beats it once lg n > 2c.
        let rival = |a: u32| (a as f64) * (a as f64) / 4.0;
        let x = HYPOTHETICAL_100.cost_crossover_exp(rival, 500).unwrap();
        assert!(x > 150 && x <= 250, "crossover at 2^{x}");
    }

    #[test]
    fn model_formulas() {
        let m = AksModel {
            depth_constant: 10.0,
            label: "test",
        };
        assert_eq!(m.depth_at_exp(8), 80.0);
        assert_eq!(m.cost_per_input_at_exp(8), 40.0);
    }
}
