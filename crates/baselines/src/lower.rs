//! Lowering word-level comparator networks to the bit-level substrate.
//!
//! A comparator network over binary data is a Model A circuit: each
//! comparator is one `BitCompare` cell, each wiring permutation is free
//! rewiring. Lowering Batcher's networks (or any `absort_cmpnet`
//! network) onto `absort-circuit` puts the nonadaptive baselines on the
//! *same* substrate as the adaptive sorters — so they share the cost
//! accounting, DOT export, statistics, equivalence checking, and fault
//! injection. The bit-level cost of a lowered network equals its
//! comparator count and its circuit depth equals the network depth,
//! which the tests pin down.

use absort_circuit::{Builder, Circuit};
use absort_cmpnet::{Network, Stage};

/// Lowers `net` to a bit-level circuit: `n` inputs, `n` outputs, one
/// `BitCompare` per comparator.
pub fn lower(net: &Network) -> Circuit {
    let n = net.n();
    let mut b = Builder::new();
    let mut lines = b.input_bus(n);
    for stage in net.stages() {
        match stage {
            Stage::Compare(pairs) => {
                for &(i, j) in pairs {
                    let (i, j) = (i as usize, j as usize);
                    let (lo, hi) = b.bit_compare(lines[i], lines[j]);
                    lines[i] = lo;
                    lines[j] = hi;
                }
            }
            Stage::Permute(perm) => {
                let old = lines.clone();
                for (t, &p) in perm.iter().enumerate() {
                    lines[t] = old[p as usize];
                }
            }
        }
    }
    b.outputs(&lines);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_cmpnet::{batcher, catalog, fig4};
    use absort_core::lang::{all_sequences, sorted_oracle};

    #[test]
    fn lowered_fig1_matches_cost_depth_and_function() {
        let net = catalog::fig1();
        let c = lower(&net);
        assert_eq!(c.cost().total, net.cost());
        assert_eq!(c.depth(), net.depth());
        for s in all_sequences(4) {
            assert_eq!(c.eval(&s), sorted_oracle(&s));
        }
    }

    #[test]
    fn lowered_batcher_16_is_exhaustively_correct() {
        let net = batcher::odd_even_merge_sort(16);
        let c = lower(&net);
        assert_eq!(c.cost().total, net.cost());
        assert_eq!(c.depth() as u64, net.depth() as u64);
        // exhaustive equivalence against the adaptive mux-merger circuit
        use absort_circuit::equiv::{check_exhaustive, Equivalence};
        let adaptive = absort_core::muxmerge::build(16);
        assert_eq!(
            check_exhaustive(&c, &adaptive),
            Equivalence::EqualExhaustive
        );
    }

    #[test]
    fn lowered_fig4b_handles_permute_stages() {
        // fig4b uses shuffle wiring stages; the lowering must preserve
        // them as free rewiring (cost unchanged).
        let net = fig4::fig4b_sort(8);
        let c = lower(&net);
        assert_eq!(c.cost().total, net.cost(), "wiring must stay free");
        for s in all_sequences(8) {
            assert_eq!(c.eval(&s), sorted_oracle(&s));
        }
    }

    #[test]
    fn lowered_networks_are_mutation_testable() {
        // the point of the lowering: substrate tooling now applies.
        use absort_circuit::equiv::{check_exhaustive, Equivalence};
        use absort_circuit::mutate::{mutation_score, Fault};
        let c = lower(&batcher::odd_even_merge_sort(8));
        let r = c.clone();
        let (killed, total) = mutation_score(&c, Fault::InvertBehaviour, |m| {
            !matches!(check_exhaustive(m, &r), Equivalence::EqualExhaustive)
        });
        assert_eq!(total, 19, "one mutant per comparator of OEM-8");
        assert_eq!(killed, total);
    }
}
