//! Batcher's networks at bit level.
//!
//! On binary inputs a comparator is a single unit-cost cell (an AND/OR
//! pair of constant-fanin gates, exactly the `BitCompare` primitive of
//! `absort-circuit`), so Batcher's n-input binary sorter has bit-level
//! cost equal to its comparator count `Θ(n lg² n)` and bit-level depth
//! `lg n (lg n + 1)/2`. These are the numbers the paper's Section I
//! compares its `O(n lg n)`- and `O(n)`-cost adaptive sorters against,
//! and the sub-sorters of the columnsort network model.
//!
//! For *word-level* permutation switching (Table II), each comparator
//! must compare `lg n`-bit addresses serially or in parallel, giving
//! `O(n lg³ n)` bit-level cost — computed here as well.

use absort_cmpnet::batcher::{batcher_depth, oem_sort_cost};
use absort_cmpnet::{batcher, Network};
use absort_core::packet::{self, Keyed};

/// The two Batcher constructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatcherKind {
    /// Odd-even merge sort.
    OddEvenMerge,
    /// Bitonic sort.
    Bitonic,
}

/// An n-input Batcher network with bit-level accounting.
#[derive(Debug, Clone)]
pub struct BatcherBinary {
    kind: BatcherKind,
    net: Network,
}

impl BatcherBinary {
    /// Builds the n-input network (`n = 2^k`).
    pub fn new(kind: BatcherKind, n: usize) -> Self {
        let net = match kind {
            BatcherKind::OddEvenMerge => batcher::odd_even_merge_sort(n),
            BatcherKind::Bitonic => batcher::bitonic_sort(n),
        };
        BatcherBinary { kind, net }
    }

    /// The construction variant.
    pub fn kind(&self) -> BatcherKind {
        self.kind
    }

    /// The underlying comparator network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Bit-level cost (unit-cost binary comparators).
    pub fn cost(&self) -> u64 {
        self.net.cost()
    }

    /// Bit-level depth.
    pub fn depth(&self) -> u64 {
        self.net.depth() as u64
    }

    /// Sorts keyed packets by walking the comparator stages (payloads
    /// travel with keys; ties never move, as in hardware).
    pub fn sort<P: Keyed>(&self, items: &[P]) -> Vec<P> {
        use absort_cmpnet::Stage;
        let mut data = items.to_vec();
        for stage in self.net.stages() {
            match stage {
                Stage::Compare(pairs) => {
                    for &(i, j) in pairs {
                        let (i, j) = (i as usize, j as usize);
                        let (lo, hi) = packet::compare_exchange(data[i].clone(), data[j].clone());
                        data[i] = lo;
                        data[j] = hi;
                    }
                }
                Stage::Permute(perm) => {
                    let old = data.clone();
                    for (k, &p) in perm.iter().enumerate() {
                        data[k] = old[p as usize].clone();
                    }
                }
            }
        }
        data
    }
}

/// Closed-form bit-level cost of Batcher's odd-even binary sorter.
pub fn binary_cost(n: usize) -> u64 {
    oem_sort_cost(n)
}

/// Closed-form bit-level depth of Batcher's networks.
pub fn binary_depth(n: usize) -> u64 {
    batcher_depth(n)
}

/// Bit-level cost of Batcher's network used as a *word-level* permutation
/// switch on `lg n`-bit destination addresses: each comparator becomes a
/// `Θ(lg n)`-gate address comparator, giving `Θ(n lg³ n)` (the Table II
/// row for Batcher [3]).
pub fn permutation_cost(n: usize) -> u64 {
    oem_sort_cost(n) * n.trailing_zeros() as u64
}

/// Bit-level permutation time for the same use: depth × per-comparator
/// `Θ(lg n)` bit delay, `Θ(lg³ n)`.
pub fn permutation_time(n: usize) -> u64 {
    batcher_depth(n) * n.trailing_zeros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_core::lang::{all_sequences, sorted_oracle};
    use absort_core::packet::tag_indices;
    use rand::prelude::*;

    #[test]
    fn both_kinds_sort_bits_exhaustively_n16() {
        for kind in [BatcherKind::OddEvenMerge, BatcherKind::Bitonic] {
            let b = BatcherBinary::new(kind, 16);
            for s in all_sequences(16) {
                assert_eq!(b.sort(&s), sorted_oracle(&s), "{kind:?}");
            }
        }
    }

    #[test]
    fn packets_travel() {
        let b = BatcherBinary::new(BatcherKind::OddEvenMerge, 64);
        let mut rng = StdRng::seed_from_u64(3);
        let bits: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
        let out = b.sort(&tag_indices(&bits));
        let mut ids: Vec<usize> = out.iter().map(|p| p.1).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
        for &(key, id) in &out {
            assert_eq!(key, bits[id]);
        }
    }

    #[test]
    fn cost_formulas_consistent() {
        for k in 1..=8u32 {
            let n = 1usize << k;
            let b = BatcherBinary::new(BatcherKind::OddEvenMerge, n);
            assert_eq!(b.cost(), binary_cost(n));
            assert_eq!(b.depth(), binary_depth(n));
            assert_eq!(permutation_cost(n), binary_cost(n) * k as u64);
        }
    }

    #[test]
    fn adaptive_sorters_beat_batcher_binary_cost() {
        // The paper's headline: O(n lg n) and O(n) vs Batcher's O(n lg² n).
        use absort_core::sorter::SorterKind;
        let n = 1usize << 20;
        let batcher = binary_cost(n);
        assert!(SorterKind::Prefix.cost(n) < batcher);
        assert!(SorterKind::MuxMerger.cost(n) < batcher);
        // fish is Θ(n) vs Θ(n lg² n): a widening factor, ~5× at n = 2^20
        assert!(SorterKind::Fish { k: None }.cost(n) < batcher / 4);
    }
}
