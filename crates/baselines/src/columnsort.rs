//! Leighton's columnsort [14]: the full eight-step algorithm and the
//! time-multiplexed network version the paper compares the fish sorter
//! against (Section III.C).
//!
//! Columnsort arranges `n = r·s` items in an `r × s` matrix (column-major,
//! `r` divisible by `s`, `r ≥ 2(s−1)²`) and sorts in eight steps: four
//! column-sorting steps interleaved with transpose / untranspose /
//! shift / unshift data rearrangements. The result is sorted in
//! column-major order.
//!
//! The network version time-multiplexes the column sorts through
//! `r`-input Batcher sorters. With `r = n/lg² n`, `s = lg² n` its
//! bit-level cost is `O(n)` — matching the fish sorter — but its four
//! sorting passes must each be pipelined *separately* (four pipelined
//! sorters), whereas the fish sorter pipelines a single `n/lg n`-input
//! sorter; and without pipelining its sorting time is `O(lg⁴ n)` against
//! the fish sorter's `O(lg³ n)`.

use crate::batcher_bits;

/// A value extended with ±∞ sentinels for the shift steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Item<T: Ord> {
    NegInf,
    Val(T),
    PosInf,
}

/// Columnsort matrix geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Rows per column.
    pub r: usize,
    /// Number of columns.
    pub s: usize,
}

impl Geometry {
    /// Validates Leighton's conditions: `r` divisible by `s` and
    /// `r ≥ 2(s−1)²`.
    pub fn new(r: usize, s: usize) -> Self {
        assert!(r >= 1 && s >= 1);
        assert!(r % s == 0, "columnsort needs s | r (r={r}, s={s})");
        assert!(
            r >= 2 * (s - 1) * (s - 1),
            "columnsort needs r >= 2(s-1)^2 (r={r}, s={s})"
        );
        Geometry { r, s }
    }

    /// Total size `n = r·s`.
    pub fn n(&self) -> usize {
        self.r * self.s
    }

    /// The paper's network parameters: `r = n/lg² n`, `s = lg² n`
    /// (rounded to powers of two).
    ///
    /// **Model-only at practical sizes:** Leighton's sortability condition
    /// `r ≥ 2(s−1)²` holds for these parameters only once
    /// `n ≳ 2 lg⁶ n` (n beyond ~2^36); below that the geometry is used
    /// purely as the paper does — to account cost and time of the network
    /// version. [`columnsort`] itself always validates via
    /// [`Geometry::new`].
    pub fn paper_params(n: usize) -> Self {
        assert!(n.is_power_of_two());
        let lg = n.trailing_zeros() as usize;
        // Clamp s to √n so r ≥ s (at small n, lg² n would exceed √n and
        // the geometry degenerates; asymptotically the clamp is inactive).
        let s = (lg * lg).next_power_of_two().min(1usize << (lg / 2));
        let r = n / s;
        Geometry { r, s }
    }
}

fn sort_columns<T: Ord>(data: &mut [T], r: usize) {
    for col in data.chunks_mut(r) {
        col.sort_unstable();
    }
}

/// Step 2 — transpose: read the matrix in column-major order, write it
/// back in row-major order (matrix stays `r × s`, column-major storage).
fn transpose<T: Clone>(data: &[T], g: Geometry) -> Vec<T> {
    let mut out = data.to_vec();
    for (idx, v) in data.iter().enumerate() {
        let row = idx / g.s;
        let col = idx % g.s;
        out[col * g.r + row] = v.clone();
    }
    out
}

/// Step 4 — untranspose: the inverse of [`transpose`].
#[allow(clippy::needless_range_loop)] // idx is decomposed into (row, col)
fn untranspose<T: Clone>(data: &[T], g: Geometry) -> Vec<T> {
    let mut out = data.to_vec();
    for idx in 0..data.len() {
        let row = idx / g.s;
        let col = idx % g.s;
        out[idx] = data[col * g.r + row].clone();
    }
    out
}

/// Steps 6–8 — shift each column down by `⌊r/2⌋` into an `(s+1)`-column
/// matrix padded with −∞ / +∞, sort the columns, and unshift.
fn shift_sort_unshift<T: Ord + Clone>(data: &[T], g: Geometry) -> Vec<T> {
    let (r, s) = (g.r, g.s);
    let h = r / 2;
    // The shifted matrix is r × (s+1): ⌊r/2⌋ −∞ sentinels, the data in
    // column-major order shifted down by h, and r−h +∞ sentinels at the
    // end (total r(s+1) entries).
    let mut wide: Vec<Item<T>> = Vec::with_capacity(r * (s + 1));
    wide.extend(std::iter::repeat_n(Item::NegInf, h));
    wide.extend(data.iter().cloned().map(Item::Val));
    wide.extend(std::iter::repeat_n(Item::PosInf, r - h));
    debug_assert_eq!(wide.len(), r * (s + 1));

    sort_columns(&mut wide, r);

    // unshift: drop the sentinels, reading the same positions back
    let mut out = Vec::with_capacity(r * s);
    for v in wide.into_iter() {
        if let Item::Val(x) = v {
            out.push(x);
        }
    }
    debug_assert_eq!(out.len(), r * s);
    out
}

/// Sorts `data` (length `r·s`, column-major `r × s`) with the eight-step
/// columnsort algorithm; the output is sorted in column-major order
/// (equivalently: fully ascending, since column-major order is the final
/// total order).
///
/// ```
/// use absort_baselines::columnsort::{columnsort, Geometry};
///
/// let g = Geometry::new(4, 2); // r = 4 rows, s = 2 columns
/// let sorted = columnsort(&[7, 3, 5, 1, 8, 2, 6, 4], g);
/// assert_eq!(sorted, vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
pub fn columnsort<T: Ord + Clone>(data: &[T], g: Geometry) -> Vec<T> {
    assert_eq!(data.len(), g.n(), "data length != r·s");
    let mut m = data.to_vec();
    sort_columns(&mut m, g.r); // step 1
    m = transpose(&m, g); // step 2
    sort_columns(&mut m, g.r); // step 3
    m = untranspose(&m, g); // step 4
    sort_columns(&mut m, g.r); // step 5
    shift_sort_unshift(&m, g) // steps 6–8
}

/// Cost/time model of the **time-multiplexed columnsort network**: the
/// column sorts run through a single shared `r`-input Batcher binary
/// sorter behind an `(n, r)`-multiplexer / `(r, n)`-demultiplexer pair
/// (the paper notes this dispatch hardware is "comparable to the cost of
/// the (n,k)-multiplexer and (k,n)-demultiplexer used in our fish binary
/// sorter").
#[derive(Debug, Clone, Copy)]
pub struct ColumnsortModel {
    /// Geometry (use [`Geometry::paper_params`] for the paper's choice).
    pub g: Geometry,
}

impl ColumnsortModel {
    /// Bit-level cost: one `r`-input Batcher binary sorter + mux/demux
    /// dispatch (`2(n − r)`).
    pub fn cost(&self) -> u64 {
        let n = self.g.n();
        batcher_bits::binary_cost(self.g.r) + 2 * (n as u64 - self.g.r as u64)
    }

    /// Bit-level cost of the *unmultiplexed* binary columnsort network
    /// (`s` separate Batcher sorters per pass): `Θ(n lg² n)` at the
    /// paper's parameters — the Section III.C remark.
    pub fn unmultiplexed_cost(&self) -> u64 {
        4 * self.g.s as u64 * batcher_bits::binary_cost(self.g.r)
    }

    /// Sorting time in cycles. Four sorting passes, each pushing `s`
    /// columns through the sorter; the three rearrangement steps are
    /// wiring (one register cycle each). `pipelined` requires all four
    /// passes' sorters to accept one column per cycle — the "separately
    /// pipelined" burden the paper contrasts with the fish sorter.
    pub fn time(&self, pipelined: bool) -> u64 {
        let d = batcher_bits::binary_depth(self.g.r);
        let s = self.g.s as u64;
        let pass = if pipelined { d + s - 1 } else { s * d };
        4 * pass + 3
    }

    /// Number of sorter datapaths that must be *separately pipelined* to
    /// reach the pipelined time: four for columnsort, one for the fish
    /// sorter (Section III.C).
    pub fn pipelines_required(&self) -> u64 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_core::lang::{all_sequences, sorted_oracle};
    use rand::prelude::*;

    #[test]
    fn sorts_binary_exhaustively_8() {
        // r=4, s=2: r % s == 0, r ≥ 2(s−1)² = 2.
        let g = Geometry::new(4, 2);
        for s in all_sequences(8) {
            assert_eq!(columnsort(&s, g), sorted_oracle(&s));
        }
    }

    #[test]
    fn sorts_binary_exhaustively_16() {
        let g = Geometry::new(8, 2);
        for s in all_sequences(16) {
            assert_eq!(columnsort(&s, g), sorted_oracle(&s));
        }
    }

    #[test]
    fn sorts_random_words_various_geometries() {
        let mut rng = StdRng::seed_from_u64(17);
        for (r, s) in [(4usize, 2usize), (9, 3), (20, 4), (64, 4), (50, 5)] {
            let g = Geometry::new(r, s);
            for _ in 0..20 {
                let data: Vec<i32> = (0..g.n()).map(|_| rng.gen_range(-100..100)).collect();
                let mut expect = data.clone();
                expect.sort_unstable();
                assert_eq!(columnsort(&data, g), expect, "r={r} s={s}");
            }
        }
    }

    #[test]
    fn duplicates_are_preserved() {
        let g = Geometry::new(9, 3);
        let data: Vec<u8> = (0..27).map(|i| (i % 4) as u8).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(columnsort(&data, g), expect);
    }

    #[test]
    #[should_panic(expected = "r >= 2(s-1)^2")]
    fn leighton_condition_enforced() {
        let _ = Geometry::new(6, 3); // 6 < 2·4
    }

    #[test]
    fn paper_params_are_valid_and_linear_cost() {
        for a in [16usize, 20] {
            let n = 1usize << a;
            let g = Geometry::paper_params(n);
            assert_eq!(g.n(), n);
            let model = ColumnsortModel { g };
            // O(n) cost: within a small constant of n.
            assert!(
                model.cost() < 3 * n as u64,
                "n=2^{a}: cost {}",
                model.cost()
            );
            // unmultiplexed version is Θ(n lg² n)-ish: much larger.
            assert!(model.unmultiplexed_cost() > 10 * model.cost());
        }
    }

    #[test]
    fn fish_beats_columnsort_time_unpipelined() {
        // O(lg³ n) vs O(lg⁴ n): the gap must grow with n.
        use absort_core::fish::schedule;
        let mut prev_ratio = 0.0f64;
        for a in [16usize, 20, 24] {
            let n = 1usize << a;
            let cs = ColumnsortModel {
                g: Geometry::paper_params(n),
            }
            .time(false) as f64;
            let fish = schedule::sorting_time(n, (a).next_power_of_two(), false) as f64;
            let ratio = cs / fish;
            assert!(ratio > prev_ratio * 0.9, "a={a}: ratio {ratio}");
            prev_ratio = ratio;
        }
        assert!(prev_ratio > 1.0, "columnsort should be slower unpipelined");
    }

    #[test]
    fn pipelined_times_are_both_lg2_scale() {
        for a in [16usize, 20] {
            let n = 1usize << a;
            let model = ColumnsortModel {
                g: Geometry::paper_params(n),
            };
            let t = model.time(true) as f64;
            let lg2 = (a * a) as f64;
            assert!(
                t / lg2 < 40.0,
                "a={a}: pipelined time {t} not O(lg² n) scale"
            );
        }
    }
}
