//! # absort-baselines — the networks the paper measures against
//!
//! * [`batcher_bits`] — Batcher's odd-even merge / bitonic networks viewed
//!   at bit level (binary comparators of unit cost), the classical
//!   nonadaptive baseline whose `O(n lg² n)` binary cost the adaptive
//!   sorters beat;
//! * [`columnsort`] — Leighton's columnsort: the full eight-step algorithm
//!   (functional, arbitrary `Ord` data) plus the time-multiplexed network
//!   version's cost/time model, the only other known `O(n)`-cost binary
//!   sorting scheme (Section III.C's comparison);
//! * [`lower`] — lowering of word-level comparator networks onto the
//!   bit-level substrate (shared accounting/tooling with the adaptive
//!   sorters);
//! * [`aks`] — an analytic cost/depth model of the AKS sorting network
//!   with parameterized constants (a faithful construction is neither
//!   feasible nor needed: the paper uses only its asymptotics and "large
//!   constants" for the crossover argument, reproduced in experiment E15).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aks;
pub mod batcher_bits;
pub mod columnsort;
pub mod lower;
