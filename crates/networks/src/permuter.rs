//! The radix permuter built from adaptive binary sorters (Fig. 10).
//!
//! Jan and Oruç's radix permuter is recursively constructed from a
//! distributor, two concentrators, and two half-size radix permuters; the
//! paper's observation is that **one binary sorter replaces the
//! distributor and both concentrators**: sorting the packets by the
//! leading bit of their destination address sends the packets addressed
//! to the upper half (bit 0) to the upper half-size permuter and the rest
//! down, all in one pass. Recursing on the remaining address bits places
//! every packet exactly.
//!
//! Cost/time (eqs. 26–27), with `S(n)`/`D(n)` the sorter's cost/time:
//! `C_rp(n) = S(n) + 2·C_rp(n/2)` and `D_rp(n) = D(n) + D_rp(n/2)`, giving
//! `O(n lg n)` cost and `O(lg³ n)` permutation time with the fish sorter
//! (a packet-switched permuter), or `O(n lg² n)` cost with the
//! combinational mux-merger/prefix sorters (circuit-switched).

use absort_core::packet::Keyed;
use absort_core::sorter::SorterKind;

/// A packet inside the permuter: destination address plus payload; the
/// sort key at each level is one address bit.
#[derive(Debug, Clone)]
struct Routed<T: Clone> {
    dest: usize,
    bit: usize, // current address bit, MSB first: key = dest >> bit & 1
    payload: T,
}

impl<T: Clone> Keyed for Routed<T> {
    fn key(&self) -> bool {
        self.dest >> self.bit & 1 == 1
    }
}

/// Errors from permutation routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermuteError {
    /// The destination list is not a permutation of `0..n`.
    NotAPermutation {
        /// First offending destination value.
        dest: usize,
    },
    /// Wrong number of packets.
    WrongWidth {
        /// Packets presented.
        got: usize,
        /// Expected (`n`).
        expected: usize,
    },
}

impl std::fmt::Display for PermuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PermuteError::NotAPermutation { dest } => {
                write!(
                    f,
                    "destination list is not a permutation (around value {dest})"
                )
            }
            PermuteError::WrongWidth { got, expected } => {
                write!(f, "expected {expected} packets, got {got}")
            }
        }
    }
}

impl std::error::Error for PermuteError {}

/// An n-input radix permuter over a chosen binary sorter.
///
/// ```
/// use absort_core::SorterKind;
/// use absort_networks::permuter::RadixPermuter;
///
/// let permuter = RadixPermuter::new(SorterKind::Fish { k: None }, 4);
/// // packet i addressed to output dest_i
/// let packets = [(2, "a"), (0, "b"), (3, "c"), (1, "d")];
/// assert_eq!(permuter.route(&packets).unwrap(), vec!["b", "d", "a", "c"]);
/// assert!(permuter.is_packet_switched()); // fish sorter ⇒ packet switching
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RadixPermuter {
    sorter: SorterKind,
    n: usize,
}

impl RadixPermuter {
    /// Creates an n-input radix permuter (`n = 2^k`).
    pub fn new(sorter: SorterKind, n: usize) -> Self {
        assert!(n.is_power_of_two(), "radix permuter needs n = 2^k");
        RadixPermuter { sorter, n }
    }

    /// Input/output width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Routes `packets[i] = (dest_i, payload_i)` so that output `dest_i`
    /// holds `payload_i`. The `dest` values must form a permutation of
    /// `0..n`.
    pub fn route<T: Clone>(&self, packets: &[(usize, T)]) -> Result<Vec<T>, PermuteError> {
        if packets.len() != self.n {
            return Err(PermuteError::WrongWidth {
                got: packets.len(),
                expected: self.n,
            });
        }
        let mut seen = vec![false; self.n];
        for &(d, _) in packets {
            if d >= self.n || seen[d] {
                return Err(PermuteError::NotAPermutation { dest: d });
            }
            seen[d] = true;
        }
        let bits = self.n.trailing_zeros() as usize;
        let mut lines: Vec<Routed<T>> = packets
            .iter()
            .map(|(d, p)| Routed {
                dest: *d,
                bit: bits.saturating_sub(1),
                payload: p.clone(),
            })
            .collect();
        self.route_level(&mut lines, bits);
        Ok(lines.into_iter().map(|r| r.payload).collect())
    }

    /// One recursion level: sort the segment by the current address bit,
    /// then recurse on the halves with the next bit.
    fn route_level<T: Clone>(&self, seg: &mut [Routed<T>], bits_left: usize) {
        let m = seg.len();
        if m <= 1 || bits_left == 0 {
            return;
        }
        let bit = bits_left - 1;
        for r in seg.iter_mut() {
            r.bit = bit;
        }
        if m == 2 {
            // Base case: a single 2×2 switch steered by the last address bit.
            if seg[0].key() {
                seg.swap(0, 1);
            }
            return;
        }
        let sorted = self.sorter.sort(seg);
        seg.clone_from_slice(&sorted);
        // All bit-0 packets are now in the upper half, bit-1 in the lower.
        debug_assert!(seg[..m / 2].iter().all(|r| !r.key()));
        debug_assert!(seg[m / 2..].iter().all(|r| r.key()));
        let (up, down) = seg.split_at_mut(m / 2);
        self.route_level(up, bit);
        self.route_level(down, bit);
    }

    /// Bit-level cost per eq. (26): `C(n) = S(n) + 2 C(n/2)` with `S` the
    /// sorter cost.
    pub fn cost(&self) -> u64 {
        fn rec(kind: SorterKind, m: usize) -> u64 {
            if m <= 2 {
                // a single 2×2 switch routes the last bit
                return if m == 2 { 1 } else { 0 };
            }
            kind.cost(m) + 2 * rec(kind, m / 2)
        }
        rec(self.sorter, self.n)
    }

    /// Bit-level permutation time per eq. (27): `D(n) = T(n) + D(n/2)`
    /// with `T` the sorter's sorting time.
    pub fn time(&self) -> u64 {
        fn rec(kind: SorterKind, m: usize) -> u64 {
            if m <= 2 {
                return 1;
            }
            kind.depth(m) + rec(kind, m / 2)
        }
        rec(self.sorter, self.n)
    }

    /// Packet-switched (fish-based) or circuit-switched (combinational
    /// sorters) — the Section IV distinction.
    pub fn is_packet_switched(&self) -> bool {
        self.sorter.is_time_multiplexed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_core::sorter::ALL_KINDS;
    use rand::prelude::*;

    #[test]
    fn routes_identity_and_reversal() {
        for kind in ALL_KINDS {
            let p = RadixPermuter::new(kind, 16);
            let ident: Vec<(usize, usize)> = (0..16).map(|i| (i, 100 + i)).collect();
            assert_eq!(
                p.route(&ident).unwrap(),
                (0..16).map(|i| 100 + i).collect::<Vec<_>>()
            );
            let rev: Vec<(usize, usize)> = (0..16).map(|i| (15 - i, i)).collect();
            let out = p.route(&rev).unwrap();
            for (d, v) in out.iter().enumerate() {
                assert_eq!(*v, 15 - d, "{}", kind.name());
            }
        }
    }

    #[test]
    fn routes_random_permutations_all_sorters() {
        let mut rng = StdRng::seed_from_u64(23);
        for kind in ALL_KINDS {
            for n in [8usize, 64, 256] {
                let p = RadixPermuter::new(kind, n);
                for _ in 0..10 {
                    let mut dests: Vec<usize> = (0..n).collect();
                    dests.shuffle(&mut rng);
                    let packets: Vec<(usize, String)> = dests
                        .iter()
                        .enumerate()
                        .map(|(i, &d)| (d, format!("p{i}")))
                        .collect();
                    let out = p.route(&packets).unwrap();
                    for (slot, got) in out.iter().enumerate() {
                        let src = dests.iter().position(|&d| d == slot).unwrap();
                        assert_eq!(got, &format!("p{src}"), "{} n={n}", kind.name());
                    }
                }
            }
        }
    }

    #[test]
    fn all_permutations_n8_muxmerger() {
        // Rearrangeability check: every one of the 8! = 40320 permutations.
        let p = RadixPermuter::new(SorterKind::MuxMerger, 8);
        let mut dests = [0usize, 1, 2, 3, 4, 5, 6, 7];
        permute_all(&mut dests, 0, &mut |d| {
            let packets: Vec<(usize, usize)> = d.iter().enumerate().map(|(i, &x)| (x, i)).collect();
            let out = p.route(&packets).unwrap();
            for (slot, &src) in out.iter().enumerate() {
                assert_eq!(d[src], slot);
            }
        });
    }

    fn permute_all(d: &mut [usize; 8], k: usize, f: &mut impl FnMut(&[usize; 8])) {
        if k == d.len() {
            f(d);
            return;
        }
        for i in k..d.len() {
            d.swap(k, i);
            permute_all(d, k + 1, f);
            d.swap(k, i);
        }
    }

    #[test]
    fn rejects_non_permutations() {
        let p = RadixPermuter::new(SorterKind::Prefix, 8);
        let dup: Vec<(usize, u8)> = (0..8).map(|i| (i / 2, i as u8)).collect();
        assert!(matches!(
            p.route(&dup),
            Err(PermuteError::NotAPermutation { .. })
        ));
        let short: Vec<(usize, u8)> = (0..4).map(|i| (i, 0)).collect();
        assert!(matches!(
            p.route(&short),
            Err(PermuteError::WrongWidth { .. })
        ));
    }

    #[test]
    fn fish_permuter_cost_is_n_lg_n_scale() {
        // eq. (26): O(n lg n) with the fish sorter.
        let n = 1usize << 16;
        let c = RadixPermuter::new(SorterKind::Fish { k: None }, n).cost() as f64;
        let nlgn = (n as f64) * 16.0;
        assert!(c / nlgn < 25.0, "cost {c} not O(n lg n) scale");
        assert!(c / nlgn > 5.0, "cost {c} suspiciously low");
        assert!(RadixPermuter::new(SorterKind::Fish { k: None }, n).is_packet_switched());
    }

    #[test]
    fn fish_permuter_time_is_lg3_scale() {
        // eq. (27): O(lg³ n).
        for a in [12usize, 16] {
            let n = 1usize << a;
            let t = RadixPermuter::new(SorterKind::Fish { k: None }, n).time() as f64;
            let lg3 = (a * a * a) as f64;
            assert!(t / lg3 < 10.0, "n=2^{a}: time {t} not O(lg³ n) scale");
        }
    }

    #[test]
    fn muxmerger_permuter_is_circuit_switched_n_lg2n() {
        let n = 1usize << 14;
        let p = RadixPermuter::new(SorterKind::MuxMerger, n);
        assert!(!p.is_packet_switched());
        let c = p.cost() as f64;
        let nlg2n = (n as f64) * 14.0 * 14.0;
        assert!(
            c / nlg2n < 5.0 && c / nlg2n > 1.0,
            "cost {c} vs n lg²n {nlg2n}"
        );
    }
}
