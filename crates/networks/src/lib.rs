//! # absort-networks — concentrators and permutation networks (Section IV)
//!
//! The paper's application layer: binary sorters *are* concentrators, and
//! stacked binary sorters form permutation networks.
//!
//! * [`concentrator`] — `(n, m)`-concentrators built from any of the three
//!   adaptive binary sorters (tag the packets to concentrate with 0 and
//!   sort); the asymptotically least-cost *practical* concentrators the
//!   paper claims;
//! * [`permuter`] — the radix permuter of Fig. 10: a binary sorter on each
//!   destination-address bit distributes packets to recursively smaller
//!   permuters; `O(n lg n)` bit-level cost and `O(lg³ n)` routing time
//!   with the fish sorter (packet-switched), `O(n lg² n)` cost with the
//!   mux-merger sorter (circuit-switched);
//! * [`benes`] — the Beneš rearrangeable network with the classical
//!   looping routing algorithm, the Table II baseline;
//! * [`hardened`] — self-checking wrappers: the zero-one principle turned
//!   into a runtime monotonicity checker (plus popcount conservation and
//!   optional duplicate-and-compare), and the Model B shared-sorter
//!   streamer with the same rail checked every cycle;
//! * [`word_sorter`] — a stable w-bit word sorter assembled from stable
//!   binary split passes and the radix permuter (the "sequence of binary
//!   sorting steps" decomposition of Section I, carried to completion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher_permuter;
pub mod benes;
pub mod concentrator;
pub mod hardened;
pub mod permuter;
pub mod permuter_circuit;
pub mod sparse_router;
pub mod word_sorter;
