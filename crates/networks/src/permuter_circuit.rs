//! The radix permuter as a **gate-level circuit** (Fig. 10, literally).
//!
//! [`crate::permuter::RadixPermuter`] simulates the construction at
//! packet level; this module *builds* it: every input is a bundle of
//! `lg n` address wires plus `payload_bits` data wires, each recursion
//! level is a bus-carrying mux-merger sorter steered by that level's
//! address bit, and the output wires physically deliver every payload to
//! its addressed position. This is the circuit-switched permutation
//! network of Table II, measurable like any other netlist.
//!
//! Bit-level cost is the packet permuter's switch count times the bundle
//! width `w = lg n + payload_bits` (plus two gates per compare-exchange),
//! i.e. `Θ(n lg² n · w)` with the mux-merger sorter — the honest price of
//! carrying addresses in-band, which the paper's bit-level Table II
//! accounting abstracts as per-line cost.

use absort_circuit::{assert_pow2, Builder, Circuit, Wire};
use absort_core::busmerge::{bus_sorter, Bus};

/// A built radix-permuter circuit.
pub struct PermuterCircuit {
    circuit: Circuit,
    n: usize,
    payload_bits: usize,
}

impl PermuterCircuit {
    /// Builds the n-input permuter carrying `payload_bits` of data per
    /// packet. Input wire layout, per packet `i` (packets concatenated):
    /// `lg n` address bits (little-endian) then `payload_bits` data bits.
    /// Output layout identical; output slot `d` holds the packet
    /// addressed to `d`.
    pub fn build(n: usize, payload_bits: usize) -> Self {
        assert_pow2(n, "permuter circuit");
        assert!(n >= 2);
        let abits = n.trailing_zeros() as usize;
        let w = abits + payload_bits;
        let mut b = Builder::new();
        let mut buses: Vec<Bus> = (0..n).map(|_| Bus::new(b.input_bus(w))).collect();
        // Route by address bits, most significant first: sorting by the
        // bit splits the packets into the correct halves; recurse.
        route(&mut b, &mut buses, abits);
        let outs: Vec<Wire> = buses.iter().flat_map(|bus| bus.wires.clone()).collect();
        b.outputs(&outs);
        PermuterCircuit {
            circuit: b.finish(),
            n,
            payload_bits,
        }
    }

    /// The underlying netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Bit-level cost of the built network.
    pub fn cost(&self) -> u64 {
        self.circuit.cost().total
    }

    /// Bit-level depth (= permutation time for this circuit-switched
    /// network).
    pub fn depth(&self) -> usize {
        self.circuit.depth()
    }

    /// Routes concrete packets: `packets[i] = (dest, payload)`; returns
    /// the payload delivered at each output slot.
    pub fn route(&self, packets: &[(usize, u64)]) -> Vec<u64> {
        assert_eq!(packets.len(), self.n);
        let abits = self.n.trailing_zeros() as usize;
        let mut input = Vec::with_capacity(self.circuit.n_inputs());
        for &(d, p) in packets {
            assert!(d < self.n, "destination out of range");
            for t in 0..abits {
                input.push(d >> t & 1 == 1);
            }
            for t in 0..self.payload_bits {
                input.push(p >> t & 1 == 1);
            }
        }
        let out = self.circuit.eval(&input);
        out.chunks(abits + self.payload_bits)
            .map(|ch| {
                ch[abits..]
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (t, &bit)| acc | (u64::from(bit) << t))
            })
            .collect()
    }
}

fn route(b: &mut Builder, buses: &mut [Bus], bits_left: usize) {
    let m = buses.len();
    if m <= 1 || bits_left == 0 {
        return;
    }
    let key = bits_left - 1; // current address bit (MSB first)
    let sorted = bus_sorter(b, key, buses);
    buses.clone_from_slice(&sorted);
    let (up, down) = buses.split_at_mut(m / 2);
    route(b, up, key);
    route(b, down, key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn routes_every_permutation_of_4() {
        let pc = PermuterCircuit::build(4, 3);
        let mut dests = [0usize, 1, 2, 3];
        permute_all(&mut dests, 0, &mut |d: &[usize; 4]| {
            let packets: Vec<(usize, u64)> =
                d.iter().enumerate().map(|(i, &x)| (x, i as u64)).collect();
            let out = pc.route(&packets);
            for (i, &dst) in d.iter().enumerate() {
                assert_eq!(out[dst], i as u64, "perm {d:?}");
            }
        });
    }

    fn permute_all(d: &mut [usize; 4], k: usize, f: &mut impl FnMut(&[usize; 4])) {
        if k == d.len() {
            f(d);
            return;
        }
        for i in k..d.len() {
            d.swap(k, i);
            permute_all(d, k + 1, f);
            d.swap(k, i);
        }
    }

    #[test]
    fn routes_random_permutations_at_16_and_32() {
        let mut rng = StdRng::seed_from_u64(73);
        for n in [16usize, 32] {
            let pc = PermuterCircuit::build(n, 8);
            for _ in 0..20 {
                let mut perm: Vec<usize> = (0..n).collect();
                perm.shuffle(&mut rng);
                let packets: Vec<(usize, u64)> = perm
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| (d, 0x40 + i as u64))
                    .collect();
                let out = pc.route(&packets);
                for (i, &d) in perm.iter().enumerate() {
                    assert_eq!(out[d], 0x40 + i as u64, "n={n}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_packet_level_permuter() {
        use crate::permuter::RadixPermuter;
        use absort_core::sorter::SorterKind;
        let n = 16;
        let pc = PermuterCircuit::build(n, 6);
        let rp = RadixPermuter::new(SorterKind::MuxMerger, n);
        let mut rng = StdRng::seed_from_u64(74);
        for _ in 0..10 {
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let packets: Vec<(usize, u64)> = perm
                .iter()
                .enumerate()
                .map(|(i, &d)| (d, i as u64))
                .collect();
            let via_circuit = pc.route(&packets);
            let via_packets = rp.route(&packets).unwrap();
            assert_eq!(via_circuit, via_packets);
        }
    }

    #[test]
    fn cost_scales_with_bundle_width() {
        let narrow = PermuterCircuit::build(16, 1);
        let wide = PermuterCircuit::build(16, 9);
        // datapath dominates: doubling w should roughly scale the switch
        // count; (lg n + 1) = 5 vs (lg n + 9) = 13 → ~2.6×
        let ratio = wide.cost() as f64 / narrow.cost() as f64;
        assert!(
            (1.8..=3.2).contains(&ratio),
            "cost ratio {ratio} (narrow {}, wide {})",
            narrow.cost(),
            wide.cost()
        );
        // circuit-switched permutation time = depth, Θ(lg³ n)-ish
        assert!(narrow.depth() >= 16, "depth {}", narrow.depth());
    }
}
