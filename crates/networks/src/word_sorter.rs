//! A full word sorter assembled from the paper's parts.
//!
//! Section I observes that "the permutation and sorting problems can be
//! broken into a sequence of sorting steps on binary sequences". This
//! module carries that through: an LSD radix sorter for `w`-bit keys
//! built from `w` **stable binary split** passes, each realized with the
//! paper's hardware vocabulary —
//!
//! * the destination of every packet under a stable split by bit `b` is a
//!   prefix popcount (`zeros before me`, or `total zeros + ones before
//!   me`): exactly the rank logic of the fish sorter's clean-sorter
//!   dispatch, scaled from blocks to lines (a `Θ(n lg n)`-gate,
//!   `Θ(lg n lg lg n)`-depth parallel prefix-sum circuit);
//! * the computed destinations form a permutation, routed by the paper's
//!   radix permuter (Fig. 10).
//!
//! Stability of each split makes the LSD induction go through, so `w`
//! passes sort `w`-bit keys — duplicates and payloads included — at
//! `Θ(w · n lg n)` bit-level cost with the fish-based permuter. This is
//! the "sorting arbitrary numbers with binary sorters" endpoint the paper
//! gestures at but does not spell out.

use crate::permuter::{PermuteError, RadixPermuter};
use absort_core::sorter::SorterKind;

/// An n-input, w-bit-key word sorter.
///
/// ```
/// use absort_core::SorterKind;
/// use absort_networks::word_sorter::WordSorter;
///
/// let ws = WordSorter::new(SorterKind::MuxMerger, 4, 8);
/// let out = ws.sort(&[(9, "x"), (3, "y"), (9, "z"), (1, "w")]).unwrap();
/// // stable: equal keys keep input order
/// assert_eq!(out, vec![(1, "w"), (3, "y"), (9, "x"), (9, "z")]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WordSorter {
    permuter: RadixPermuter,
    n: usize,
    key_bits: u32,
}

impl WordSorter {
    /// Creates a word sorter for `n = 2^k` items with `key_bits`-bit keys,
    /// routing each pass through a radix permuter over the given binary
    /// sorter.
    pub fn new(sorter: SorterKind, n: usize, key_bits: u32) -> Self {
        assert!(n.is_power_of_two(), "word sorter needs n = 2^k");
        assert!((1..=64).contains(&key_bits), "key width 1..=64");
        WordSorter {
            permuter: RadixPermuter::new(sorter, n),
            n,
            key_bits,
        }
    }

    /// Input width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Key width in bits.
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// The stable-split destinations for one bit: zeros keep their order
    /// at the front, ones keep theirs behind all zeros. (The prefix
    /// popcount that a hardware pass computes with a parallel prefix-sum
    /// tree.)
    fn split_destinations(bits: &[bool]) -> Vec<usize> {
        let zeros = bits.iter().filter(|&&b| !b).count();
        let mut z_seen = 0usize;
        let mut o_seen = 0usize;
        bits.iter()
            .map(|&b| {
                if b {
                    let d = zeros + o_seen;
                    o_seen += 1;
                    d
                } else {
                    let d = z_seen;
                    z_seen += 1;
                    d
                }
            })
            .collect()
    }

    /// Sorts `(key, payload)` pairs stably by key. `O(w)` passes, each a
    /// permutation routed through the underlying radix permuter.
    pub fn sort<T: Clone>(&self, items: &[(u64, T)]) -> Result<Vec<(u64, T)>, PermuteError> {
        if items.len() != self.n {
            return Err(PermuteError::WrongWidth {
                got: items.len(),
                expected: self.n,
            });
        }
        let mut cur: Vec<(u64, T)> = items.to_vec();
        for bit in 0..self.key_bits {
            let bits: Vec<bool> = cur.iter().map(|(k, _)| k >> bit & 1 == 1).collect();
            let dests = Self::split_destinations(&bits);
            let packets: Vec<(usize, (u64, T))> = dests
                .iter()
                .zip(cur.iter())
                .map(|(&d, item)| (d, item.clone()))
                .collect();
            cur = self.permuter.route(&packets)?;
        }
        Ok(cur)
    }

    /// Bit-level cost model: `w` passes × (prefix-sum rank logic +
    /// permuter). The rank logic is a Brent–Kung prefix sum over `n`
    /// one-bit inputs producing `lg n`-bit counts: ≈ `2n` combine adders
    /// of `lg n` bits at ≈3 gates per bit.
    pub fn cost(&self) -> u64 {
        let lgn = self.n.trailing_zeros() as u64;
        let rank_logic = 6 * self.n as u64 * lgn;
        self.key_bits as u64 * (rank_logic + self.permuter.cost())
    }

    /// Bit-level sorting time model: `w` sequential passes, each the rank
    /// logic's depth plus the permuter's routing time.
    pub fn time(&self) -> u64 {
        let lgn = self.n.trailing_zeros() as u64;
        let lglg = if lgn <= 1 {
            1
        } else {
            64 - (lgn - 1).leading_zeros() as u64
        };
        self.key_bits as u64 * (2 * lgn * lglg + self.permuter.time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn sorts_random_keys_all_sorters() {
        let mut rng = StdRng::seed_from_u64(71);
        for kind in [
            SorterKind::MuxMerger,
            SorterKind::Prefix,
            SorterKind::Fish { k: None },
        ] {
            let n = 64;
            let ws = WordSorter::new(kind, n, 16);
            for _ in 0..5 {
                let items: Vec<(u64, usize)> = (0..n)
                    .map(|i| (rng.gen_range(0..u16::MAX as u64), i))
                    .collect();
                let out = ws.sort(&items).unwrap();
                let mut expect = items.clone();
                expect.sort_by_key(|&(k, _)| k);
                let got_keys: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
                let want_keys: Vec<u64> = expect.iter().map(|&(k, _)| k).collect();
                assert_eq!(got_keys, want_keys, "{}", kind.name());
            }
        }
    }

    #[test]
    fn sorting_is_stable() {
        // many duplicate keys: payload order within a key must be input
        // order (LSD radix with stable splits is stable end-to-end).
        let mut rng = StdRng::seed_from_u64(72);
        let n = 128;
        let ws = WordSorter::new(SorterKind::MuxMerger, n, 4);
        let items: Vec<(u64, usize)> = (0..n).map(|i| (rng.gen_range(0..8), i)).collect();
        let out = ws.sort(&items).unwrap();
        let mut expect = items.clone();
        expect.sort_by_key(|&(k, _)| k); // std stable sort
        assert_eq!(out, expect);
    }

    #[test]
    fn full_width_keys() {
        let mut rng = StdRng::seed_from_u64(73);
        let n = 32;
        let ws = WordSorter::new(SorterKind::Fish { k: None }, n, 64);
        let items: Vec<(u64, ())> = (0..n).map(|_| (rng.gen(), ())).collect();
        let out = ws.sort(&items).unwrap();
        let keys: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn split_destinations_are_stable_permutation() {
        let bits = vec![true, false, true, false, false, true];
        let d = WordSorter::split_destinations(&bits);
        assert_eq!(d, vec![3, 0, 4, 1, 2, 5]);
    }

    #[test]
    fn wrong_width_rejected() {
        let ws = WordSorter::new(SorterKind::Prefix, 16, 8);
        let items: Vec<(u64, ())> = vec![(0, ()); 8];
        assert!(matches!(
            ws.sort(&items),
            Err(PermuteError::WrongWidth {
                got: 8,
                expected: 16
            })
        ));
    }

    #[test]
    fn cost_scales_with_key_width_and_n_lg_n() {
        let n = 1usize << 12;
        let w16 = WordSorter::new(SorterKind::Fish { k: None }, n, 16).cost();
        let w32 = WordSorter::new(SorterKind::Fish { k: None }, n, 32).cost();
        assert_eq!(w32, 2 * w16, "cost linear in key width");
        let per_pass = w16 as f64 / 16.0;
        let nlgn = (n as f64) * 12.0;
        assert!(per_pass / nlgn < 30.0, "per-pass cost must be O(n lg n)");
    }
}
