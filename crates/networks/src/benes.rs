//! The Beneš rearrangeable permutation network with the classical looping
//! routing algorithm — the baseline row of Table II.
//!
//! An n-input Beneš network is built recursively: a stage of `n/2` 2×2
//! switches, two `n/2`-input Beneš subnetworks, and a closing stage of
//! `n/2` switches — `2 lg n − 1` stages and `n lg n − n/2` switches in
//! all. It realizes *every* permutation, but finding the switch settings
//! requires the (inherently sequential-looking) looping algorithm; the
//! paper cites Nassimi–Sahni [18] for an `O(lg⁴ n / lg lg n)`-time
//! parallel set-up on an `n lg n`-processor machine, which is what makes
//! its Table II permutation-time entry lose to sorter-based permuters
//! despite the optimal `O(lg n)` network depth.

/// Switch settings for one Beneš network instance (recursive).
#[derive(Debug, Clone)]
pub enum Routing {
    /// A single 2×2 switch: `cross = true` exchanges the two lines.
    Leaf {
        /// Whether the switch exchanges its inputs.
        cross: bool,
    },
    /// An internal node: entry/exit switch settings plus the two
    /// half-size routings.
    Node {
        /// `in_cross[t]`: entry switch `t` (lines `2t`, `2t+1`) crossed.
        in_cross: Vec<bool>,
        /// `out_cross[t]`: exit switch `t` crossed.
        out_cross: Vec<bool>,
        /// Routing of the upper subnetwork.
        upper: Box<Routing>,
        /// Routing of the lower subnetwork.
        lower: Box<Routing>,
    },
}

/// Errors from Beneš routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenesError {
    /// Destination list is not a permutation of `0..n`.
    NotAPermutation,
    /// `n` is not a power of two ≥ 2.
    BadWidth(usize),
}

impl std::fmt::Display for BenesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenesError::NotAPermutation => write!(f, "destinations are not a permutation"),
            BenesError::BadWidth(n) => {
                write!(f, "Beneš width must be a power of two >= 2, got {n}")
            }
        }
    }
}

impl std::error::Error for BenesError {}

/// Computes switch settings realizing `perm` (`perm[i]` = output of input
/// `i`) with the looping algorithm.
pub fn route(perm: &[usize]) -> Result<Routing, BenesError> {
    let n = perm.len();
    if !n.is_power_of_two() || n < 2 {
        return Err(BenesError::BadWidth(n));
    }
    let mut seen = vec![false; n];
    for &d in perm {
        if d >= n || seen[d] {
            return Err(BenesError::NotAPermutation);
        }
        seen[d] = true;
    }
    Ok(route_rec(perm))
}

fn route_rec(perm: &[usize]) -> Routing {
    let n = perm.len();
    if n == 2 {
        return Routing::Leaf {
            cross: perm[0] == 1,
        };
    }
    let (in_cross, out_cross, perm_u, perm_l) = split_once(perm);
    Routing::Node {
        in_cross,
        out_cross,
        upper: Box::new(route_rec(&perm_u)),
        lower: Box::new(route_rec(&perm_l)),
    }
}

/// One level of the looping algorithm: switch settings plus the two
/// half-size sub-permutations.
#[allow(clippy::needless_range_loop)] // parallel in/out arrays are indexed together
fn split_once(perm: &[usize]) -> (Vec<bool>, Vec<bool>, Vec<usize>, Vec<usize>) {
    let n = perm.len();
    let half = n / 2;
    // inverse permutation
    let mut inv = vec![0usize; n];
    for (i, &d) in perm.iter().enumerate() {
        inv[d] = i;
    }
    // up[i] = Some(true) if input i goes through the upper subnetwork.
    let mut up: Vec<Option<bool>> = vec![None; n];
    for start in 0..n {
        if up[start].is_some() {
            continue;
        }
        // Route `start` up, then follow the alternating constraint loop:
        // the output partner of wherever we land must use the other
        // subnetwork, and *its* input partner must use the other again.
        let mut i = start;
        let mut side = true; // true = upper
        loop {
            up[i] = Some(side);
            let d = perm[i];
            // output switch d/2: partner output must come from the other side
            let partner_out = d ^ 1;
            let j = inv[partner_out];
            if up[j].is_some() {
                break; // loop closed
            }
            up[j] = Some(!side);
            // j's input-switch partner must take the side opposite to j
            let next = j ^ 1;
            if up[next].is_some() {
                break;
            }
            i = next;
            side = !up[j].unwrap();
        }
    }
    // Build switch settings and the two sub-permutations.
    let mut in_cross = vec![false; half];
    let mut out_cross = vec![false; half];
    let mut perm_u = vec![0usize; half];
    let mut perm_l = vec![0usize; half];
    for t in 0..half {
        let a = 2 * t;
        let au = up[a].expect("assigned");
        let bu = up[a + 1].expect("assigned");
        debug_assert_ne!(au, bu, "input pair must split across subnetworks");
        // bar: line 2t → upper; cross: line 2t → lower
        in_cross[t] = !au;
        for line in [a, a + 1] {
            let d = perm[line];
            if up[line].unwrap() {
                perm_u[line / 2] = d / 2;
            } else {
                perm_l[line / 2] = d / 2;
            }
        }
    }
    for t in 0..half {
        let d = 2 * t;
        // output 2t comes from the upper subnetwork iff its source input
        // was routed up; bar = (upper feeds line 2t).
        let src_up = up[inv[d]].unwrap();
        let src_up_partner = up[inv[d + 1]].unwrap();
        debug_assert_ne!(src_up, src_up_partner, "output pair must split");
        out_cross[t] = !src_up;
    }
    (in_cross, out_cross, perm_u, perm_l)
}

/// Like [`route`], but descends the two independent half-size
/// subproblems on separate scoped threads while they stay above
/// `parallel_below` lines. The looping pass at each node is inherently
/// sequential (the paper cites [18] for why parallel set-up is the hard
/// part), but the recursion tree is embarrassingly parallel — a
/// practical speed-up for simulation at large `n`.
pub fn route_parallel(perm: &[usize], parallel_below: usize) -> Result<Routing, BenesError> {
    let n = perm.len();
    if !n.is_power_of_two() || n < 2 {
        return Err(BenesError::BadWidth(n));
    }
    let mut seen = vec![false; n];
    for &d in perm {
        if d >= n || seen[d] {
            return Err(BenesError::NotAPermutation);
        }
        seen[d] = true;
    }
    Ok(route_rec_parallel(perm, parallel_below))
}

fn route_rec_parallel(perm: &[usize], parallel_below: usize) -> Routing {
    let n = perm.len();
    if n <= parallel_below.max(2) {
        return route_rec(perm);
    }
    let (in_cross, out_cross, perm_u, perm_l) = split_once(perm);
    let (upper, lower) = crossbeam::thread::scope(|s| {
        let hu = s.spawn(|_| route_rec_parallel(&perm_u, parallel_below));
        let hl = s.spawn(|_| route_rec_parallel(&perm_l, parallel_below));
        (hu.join().expect("upper"), hl.join().expect("lower"))
    })
    .expect("routing worker panicked");
    Routing::Node {
        in_cross,
        out_cross,
        upper: Box::new(upper),
        lower: Box::new(lower),
    }
}

/// Applies a routing to concrete line values, simulating the network
/// stage by stage. `items.len()` must match the routing's width.
pub fn apply<T: Clone>(routing: &Routing, items: &[T]) -> Vec<T> {
    match routing {
        Routing::Leaf { cross } => {
            assert_eq!(items.len(), 2);
            if *cross {
                vec![items[1].clone(), items[0].clone()]
            } else {
                items.to_vec()
            }
        }
        Routing::Node {
            in_cross,
            out_cross,
            upper,
            lower,
        } => {
            let half = in_cross.len();
            let n = 2 * half;
            assert_eq!(items.len(), n);
            let mut up_in = Vec::with_capacity(half);
            let mut lo_in = Vec::with_capacity(half);
            for t in 0..half {
                let (a, b) = (items[2 * t].clone(), items[2 * t + 1].clone());
                if in_cross[t] {
                    up_in.push(b);
                    lo_in.push(a);
                } else {
                    up_in.push(a);
                    lo_in.push(b);
                }
            }
            let up_out = apply(upper, &up_in);
            let lo_out = apply(lower, &lo_in);
            let mut out = Vec::with_capacity(n);
            for t in 0..half {
                let (u, l) = (up_out[t].clone(), lo_out[t].clone());
                if out_cross[t] {
                    out.push(l);
                    out.push(u);
                } else {
                    out.push(u);
                    out.push(l);
                }
            }
            out
        }
    }
}

/// Routes and applies in one step: returns the permuted payloads, with
/// `result[perm[i]] = items[i]`.
///
/// ```
/// use absort_networks::benes;
///
/// let out = benes::permute(&[2, 0, 3, 1], &["a", "b", "c", "d"]).unwrap();
/// assert_eq!(out, vec!["b", "d", "a", "c"]);
/// ```
pub fn permute<T: Clone>(perm: &[usize], items: &[T]) -> Result<Vec<T>, BenesError> {
    let routing = route(perm)?;
    Ok(apply(&routing, items))
}

/// Number of 2×2 switches in the n-input Beneš network:
/// `n lg n − n/2`.
pub fn switch_count(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    let k = n.trailing_zeros() as u64;
    n as u64 * k - n as u64 / 2
}

/// Network depth in switch stages: `2 lg n − 1`.
pub fn stage_depth(n: usize) -> u64 {
    assert!(n.is_power_of_two());
    2 * n.trailing_zeros() as u64 - 1
}

/// Table II bit-level cost: the network's switches plus the `n lg n`
/// routing processors at `Θ(lg n)` bit-level cost each (the paper's
/// accounting, citing [18]): `Θ(n lg² n)`.
pub fn table2_cost(n: usize) -> u64 {
    let k = n.trailing_zeros() as u64;
    switch_count(n) + n as u64 * k * k
}

/// Table II permutation time: `Θ(lg⁴ n / lg lg n)` for the parallel
/// set-up [18] (dominates the `2 lg n − 1` propagation).
pub fn table2_time(n: usize) -> u64 {
    let k = n.trailing_zeros() as u64;
    let lglg = if k <= 1 {
        1
    } else {
        (64 - (k - 1).leading_zeros()) as u64
    };
    k * k * k * k / lglg.max(1) + stage_depth(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn all_permutations_n8() {
        let mut d: Vec<usize> = (0..8).collect();
        fn rec(d: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
            if k == d.len() {
                f(d);
                return;
            }
            for i in k..d.len() {
                d.swap(k, i);
                rec(d, k + 1, f);
                d.swap(k, i);
            }
        }
        rec(&mut d, 0, &mut |perm| {
            let items: Vec<usize> = (0..8).collect();
            let out = permute(perm, &items).unwrap();
            for (i, &dst) in perm.iter().enumerate() {
                assert_eq!(out[dst], items[i], "perm {perm:?}");
            }
        });
    }

    #[test]
    fn random_permutations_up_to_1024() {
        let mut rng = StdRng::seed_from_u64(31);
        for k in [4usize, 6, 8, 10] {
            let n = 1 << k;
            for _ in 0..20 {
                let mut perm: Vec<usize> = (0..n).collect();
                perm.shuffle(&mut rng);
                let items: Vec<u32> = (0..n as u32).collect();
                let out = permute(&perm, &items).unwrap();
                for (i, &dst) in perm.iter().enumerate() {
                    assert_eq!(out[dst], items[i], "n={n}");
                }
            }
        }
    }

    #[test]
    fn parallel_routing_matches_serial() {
        let mut rng = StdRng::seed_from_u64(33);
        for k in [5usize, 8, 10] {
            let n = 1 << k;
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let serial = route(&perm).unwrap();
            let parallel = route_parallel(&perm, 64).unwrap();
            // same realized mapping (settings may only differ if the
            // looping had freedom — compare behaviourally)
            let items: Vec<u32> = (0..n as u32).collect();
            assert_eq!(apply(&serial, &items), apply(&parallel, &items), "n={n}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(route(&[0, 0]), Err(BenesError::NotAPermutation)));
        assert!(matches!(route(&[0, 1, 2]), Err(BenesError::BadWidth(3))));
    }

    #[test]
    fn switch_count_matches_construction() {
        fn count(r: &Routing) -> u64 {
            match r {
                Routing::Leaf { .. } => 1,
                Routing::Node {
                    in_cross,
                    out_cross,
                    upper,
                    lower,
                } => in_cross.len() as u64 + out_cross.len() as u64 + count(upper) + count(lower),
            }
        }
        for k in 1..=8u32 {
            let n = 1usize << k;
            let perm: Vec<usize> = (0..n).collect();
            let r = route(&perm).unwrap();
            assert_eq!(count(&r), switch_count(n), "n={n}");
        }
    }

    #[test]
    fn depth_formula() {
        assert_eq!(stage_depth(2), 1);
        assert_eq!(stage_depth(8), 5);
        assert_eq!(stage_depth(1024), 19);
    }
}
