//! Sparse (partial-permutation) routing: concentrate, then permute.
//!
//! Real switch traffic rarely presents a full permutation — most cycles
//! only some inputs carry packets, each addressed to a distinct output.
//! Section IV's two primitives compose into exactly this router: an
//! `(n,n)`-concentrator compacts the active packets, and the radix
//! permuter places them (idle slots are routed to the unused outputs to
//! complete the permutation). Both stages are binary-sorter hardware, so
//! the whole router inherits the `O(n lg n)` bit-level cost of the
//! fish-based permuter.

use crate::concentrator::{ConcentrateError, Concentrator};
use crate::permuter::{PermuteError, RadixPermuter};
use absort_core::sorter::SorterKind;

/// A packet with a destination and a payload.
pub type SparsePacket<T> = Option<(usize, T)>;

/// Errors from sparse routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Two active packets share a destination.
    DestinationClash {
        /// The contested output.
        dest: usize,
    },
    /// A destination is out of range.
    BadDestination {
        /// The offending value.
        dest: usize,
    },
    /// Wrong number of input lines.
    WrongWidth {
        /// Lines presented.
        got: usize,
        /// Lines expected.
        expected: usize,
    },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::DestinationClash { dest } => {
                write!(f, "two packets addressed to output {dest}")
            }
            SparseError::BadDestination { dest } => write!(f, "destination {dest} out of range"),
            SparseError::WrongWidth { got, expected } => {
                write!(f, "expected {expected} lines, got {got}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

/// An n-input sparse router over a chosen binary sorter.
///
/// ```
/// use absort_core::SorterKind;
/// use absort_networks::sparse_router::SparseRouter;
///
/// let router = SparseRouter::new(SorterKind::Fish { k: None }, 8);
/// let mut inputs: Vec<Option<(usize, &str)>> = vec![None; 8];
/// inputs[1] = Some((6, "a"));
/// inputs[4] = Some((0, "b"));
/// let out = router.route(&inputs).unwrap();
/// assert_eq!(out[6], Some("a"));
/// assert_eq!(out[0], Some("b"));
/// assert_eq!(out.iter().filter(|o| o.is_some()).count(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SparseRouter {
    concentrator: Concentrator,
    permuter: RadixPermuter,
    n: usize,
}

impl SparseRouter {
    /// Creates an n-input sparse router (`n = 2^k`).
    pub fn new(sorter: SorterKind, n: usize) -> Self {
        SparseRouter {
            concentrator: Concentrator::new(sorter, n, n),
            permuter: RadixPermuter::new(sorter, n),
            n,
        }
    }

    /// Routes every active packet to its destination; idle inputs yield
    /// idle outputs. Destinations must be distinct and in range.
    pub fn route<T: Clone>(
        &self,
        inputs: &[SparsePacket<T>],
    ) -> Result<Vec<Option<T>>, SparseError> {
        if inputs.len() != self.n {
            return Err(SparseError::WrongWidth {
                got: inputs.len(),
                expected: self.n,
            });
        }
        let mut used = vec![false; self.n];
        for p in inputs.iter().flatten() {
            if p.0 >= self.n {
                return Err(SparseError::BadDestination { dest: p.0 });
            }
            if used[p.0] {
                return Err(SparseError::DestinationClash { dest: p.0 });
            }
            used[p.0] = true;
        }
        // Stage 1: concentrate the active packets to the first lines.
        let concentrated = self.concentrator.concentrate(inputs).map_err(|e| match e {
            // (n,n)-concentrators cannot overload; width already checked
            ConcentrateError::Overloaded { .. } | ConcentrateError::WrongWidth { .. } => {
                unreachable!("(n,n)-concentration cannot fail here: {e}")
            }
        })?;
        // Stage 2: complete to a full permutation by assigning the unused
        // destinations to the idle lines, then permute.
        let mut unused: Vec<usize> = (0..self.n).filter(|&d| !used[d]).collect();
        let packets: Vec<(usize, Option<T>)> = concentrated
            .into_iter()
            .map(|slot| match slot {
                Some((d, payload)) => (d, Some(payload)),
                None => (unused.pop().expect("enough spare destinations"), None),
            })
            .collect();
        match self.permuter.route(&packets) {
            Ok(out) => Ok(out),
            Err(e @ (PermuteError::NotAPermutation { .. } | PermuteError::WrongWidth { .. })) => {
                unreachable!("permutation completed by construction: {e}")
            }
        }
    }

    /// Combined bit-level cost of the two stages.
    pub fn cost(&self) -> u64 {
        self.concentrator.cost() + self.permuter.cost()
    }

    /// Combined routing time.
    pub fn time(&self) -> u64 {
        self.concentrator.time() + self.permuter.time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_sparse(rng: &mut StdRng, n: usize, active: usize) -> Vec<SparsePacket<u64>> {
        let mut slots: Vec<usize> = (0..n).collect();
        slots.shuffle(rng);
        let mut dests: Vec<usize> = (0..n).collect();
        dests.shuffle(rng);
        let mut inputs: Vec<SparsePacket<u64>> = vec![None; n];
        for i in 0..active {
            inputs[slots[i]] = Some((dests[i], rng.gen()));
        }
        inputs
    }

    #[test]
    fn routes_all_loads() {
        let mut rng = StdRng::seed_from_u64(44);
        for kind in [SorterKind::Fish { k: None }, SorterKind::MuxMerger] {
            let n = 64;
            let router = SparseRouter::new(kind, n);
            for active in [0usize, 1, 13, 32, 63, 64] {
                let inputs = random_sparse(&mut rng, n, active);
                let out = router.route(&inputs).unwrap();
                for p in inputs.iter().flatten() {
                    assert_eq!(out[p.0], Some(p.1), "{} load {active}", kind.name());
                }
                let delivered = out.iter().filter(|o| o.is_some()).count();
                assert_eq!(delivered, active, "no spurious packets");
            }
        }
    }

    #[test]
    fn detects_clashes_and_bad_destinations() {
        let router = SparseRouter::new(SorterKind::MuxMerger, 8);
        let mut inputs: Vec<SparsePacket<u8>> = vec![None; 8];
        inputs[0] = Some((3, 1));
        inputs[5] = Some((3, 2));
        assert_eq!(
            router.route(&inputs),
            Err(SparseError::DestinationClash { dest: 3 })
        );
        inputs[5] = Some((9, 2));
        assert_eq!(
            router.route(&inputs),
            Err(SparseError::BadDestination { dest: 9 })
        );
        let short: Vec<SparsePacket<u8>> = vec![None; 4];
        assert!(matches!(
            router.route(&short),
            Err(SparseError::WrongWidth {
                got: 4,
                expected: 8
            })
        ));
    }

    #[test]
    fn cost_is_two_sorter_stages() {
        let n = 1 << 10;
        let router = SparseRouter::new(SorterKind::Fish { k: None }, n);
        let conc = Concentrator::new(SorterKind::Fish { k: None }, n, n);
        let perm = RadixPermuter::new(SorterKind::Fish { k: None }, n);
        assert_eq!(router.cost(), conc.cost() + perm.cost());
        assert_eq!(router.time(), conc.time() + perm.time());
    }
}
