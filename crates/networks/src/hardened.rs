//! Self-checking sorter hardening (concurrent error detection).
//!
//! The zero-one principle that proves every sorter in the paper correct
//! also yields a near-free *runtime* checker: a binary sorter's output
//! must be monotone (all zeros, then all ones), and monotonicity of an
//! `n`-bit vector is checkable with `n − 1` comparator-grade gate pairs.
//! [`harden`] wraps any binary sorter with that checker plus an
//! input-conservation (popcount) check — a sorter permutes its input, so
//! the output's token count must equal the input's — and optionally a
//! full duplicate-and-compare copy. The checks are OR-ed onto a single
//! **error rail** appended after the data outputs; the data outputs
//! themselves are untouched, so a hardened sorter drops into any socket
//! the original fits.
//!
//! What the rail can and cannot see:
//!
//! * an internal fault that disorders an output or destroys/creates a
//!   token fires the rail on the same input that exposes it — this is
//!   exactly the offline oracle condition, evaluated in hardware;
//! * a fault on a *primary input pin* is invisible in principle: the
//!   checker observes the already-faulted input, which is just a
//!   different (valid) sorting problem. No concurrent checker placed
//!   after the pins can flag it; campaigns report those separately.
//!
//! [`streaming_sorter`] applies the same idea to the paper's Model B
//! resource sharing: a `lg k`-bit counter steers an `(n, n/k)` group
//! multiplexer into **one** shared `n/k`-input mux-merge sorter, sorting
//! one group per cycle — `k` cycles stream out a k-sorted sequence ready
//! for a combinational k-merger. The optional rail rides along as an
//! extra external output checked every cycle.

use absort_blocks::mux::group_multiplexer;
use absort_blocks::popcount::popcount;
use absort_circuit::clocked::{ClockedBuildError, ClockedCircuit};
use absort_circuit::{assert_pow2, Builder, Circuit, Wire, WireFault};
use absort_core::muxmerge;

/// Which concurrent checks [`harden`] wires onto the error rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardenOptions {
    /// Monotonicity (zero-one) check over the data outputs: `n − 1`
    /// adjacent-pair stages plus an OR rail.
    pub monotonicity: bool,
    /// Input-conservation check: `popcount(outputs) == popcount(inputs)`,
    /// reusing the prefix popcount block.
    pub conservation: bool,
    /// Duplicate-and-compare: a second copy of the whole sorter on the
    /// same inputs, with any output mismatch raising the rail. Costly
    /// (doubles the core) but catches faults the cheap checks mask.
    pub duplicate: bool,
    /// Control-path hardening for the clocked streamer
    /// ([`streaming_sorter`]): duplicate-and-compare the steering
    /// counter FSM (an independent shadow counter compared bit-for-bit
    /// against the primary, on both the current registers and the
    /// freshly computed next state, so increment-logic faults flag in
    /// the *same* cycle), a parity register shadowing the count LSB,
    /// and an end-of-schedule heartbeat register armed by the shadow
    /// counter's wrap carry and required to pulse exactly on
    /// schedule-start cycles. All violations OR onto the same error
    /// rail. Ignored by [`harden`] — a combinational sorter has no
    /// control state to protect.
    pub control: bool,
}

impl Default for HardenOptions {
    fn default() -> Self {
        HardenOptions {
            monotonicity: true,
            conservation: true,
            duplicate: false,
            control: true,
        }
    }
}

/// A sorter wrapped with concurrent checkers by [`harden`].
///
/// The wrapped circuit's outputs are the base sorter's `n_data` outputs
/// in order, followed by the error rail at index `n_data`. The maps
/// translate fault sites enumerated on the *base* netlist into this one,
/// so a campaign can inject exactly the base circuit's fault universe —
/// no checker-cone sites — and still read the rail.
pub struct HardenedSorter {
    /// The self-checking circuit: `n_data + 1` outputs, rail last.
    pub circuit: Circuit,
    /// `wire_map[w]` is the hardened wire carrying base wire `w`.
    pub wire_map: Vec<Wire>,
    /// Base component `ci` lives at `comp_base + ci` in the hardened
    /// netlist.
    pub comp_base: usize,
    /// Number of data outputs (the base sorter's output count).
    pub n_data: usize,
}

impl HardenedSorter {
    /// Output index of the error rail.
    pub fn rail_index(&self) -> usize {
        self.n_data
    }

    /// Translates a base-circuit wire into the hardened netlist.
    pub fn wire(&self, w: Wire) -> Wire {
        self.wire_map[w.index()]
    }

    /// Translates a base-circuit component index into the hardened
    /// netlist.
    pub fn component(&self, ci: usize) -> usize {
        self.comp_base + ci
    }

    /// Translates a base-circuit [`WireFault`] into the hardened netlist.
    pub fn fault(&self, f: WireFault) -> WireFault {
        match f {
            WireFault::StuckAt { wire, value } => WireFault::StuckAt {
                wire: self.wire(wire),
                value,
            },
            WireFault::BridgeOr { a, b } => WireFault::BridgeOr {
                a: self.wire(a),
                b: self.wire(b),
            },
            WireFault::TransientFlip { wire, vector } => WireFault::TransientFlip {
                wire: self.wire(wire),
                vector,
            },
        }
    }
}

/// OR-reduces `wires` onto one rail (constant 0 when empty).
fn or_tree(b: &mut Builder, wires: &[Wire]) -> Wire {
    match wires {
        [] => b.constant(false),
        [w] => *w,
        _ => {
            let mid = wires.len() / 2;
            let lo = or_tree(b, &wires[..mid]);
            let hi = or_tree(b, &wires[mid..]);
            b.or(lo, hi)
        }
    }
}

/// Monotonicity violations of `outs` (ascending zero-one order): one
/// wire per adjacent pair, high when `outs[i] > outs[i+1]`.
fn mono_violations(b: &mut Builder, outs: &[Wire]) -> Vec<Wire> {
    outs.windows(2)
        .map(|w| {
            let not_next = b.not(w[1]);
            b.and(w[0], not_next)
        })
        .collect()
}

/// Popcount-equality mismatch: high when the two buses' token counts
/// differ. Both buses must have the same power-of-two width.
fn conservation_mismatch(b: &mut Builder, ins: &[Wire], outs: &[Wire]) -> Wire {
    let cin = popcount(b, ins);
    let cout = popcount(b, outs);
    let diffs: Vec<Wire> = cin.iter().zip(&cout).map(|(&x, &y)| b.xor(x, y)).collect();
    or_tree(b, &diffs)
}

/// Wraps `base` (a binary sorter: equal input and output counts, power
/// of two) with the concurrent checks selected in `opts`. At least one
/// check must be enabled.
pub fn harden(base: &Circuit, opts: &HardenOptions) -> HardenedSorter {
    assert!(
        opts.monotonicity || opts.conservation || opts.duplicate,
        "harden: at least one check must be enabled"
    );
    let n = base.n_inputs();
    assert_eq!(
        n,
        base.n_outputs(),
        "harden wraps sorters: input and output counts must match"
    );
    assert_pow2(n, "harden");

    let mut b = Builder::new();
    let ins = b.input_bus(n);
    b.push_scope("core");
    let (wire_map, comp_base) = b.append_circuit(base, &ins);
    b.pop_scope();
    let data: Vec<Wire> = (0..n)
        .map(|i| wire_map[base.output_wire(i).index()])
        .collect();

    let mut alarms: Vec<Wire> = Vec::new();
    b.push_scope("checker");
    if opts.monotonicity {
        let mut v = b.scoped("mono", |b| mono_violations(b, &data));
        alarms.append(&mut v);
    }
    if opts.conservation {
        let m = b.scoped("conservation", |b| conservation_mismatch(b, &ins, &data));
        alarms.push(m);
    }
    if opts.duplicate {
        let mism = b.scoped("duplicate", |b| {
            let (dup_map, _) = b.append_circuit(base, &ins);
            let diffs: Vec<Wire> = (0..n)
                .map(|i| {
                    let d = dup_map[base.output_wire(i).index()];
                    b.xor(data[i], d)
                })
                .collect();
            or_tree(b, &diffs)
        });
        alarms.push(mism);
    }
    let rail = or_tree(&mut b, &alarms);
    b.pop_scope();

    let mut outs = data;
    outs.push(rail);
    b.outputs(&outs);

    HardenedSorter {
        circuit: b.finish(),
        wire_map,
        comp_base,
        n_data: n,
    }
}

/// A Model B time-multiplexed sorter built by [`streaming_sorter`].
pub struct StreamingSorter {
    /// The clocked machine. External inputs: the full `n` lines (held
    /// stable by the source for `k` cycles). External outputs: the sorted
    /// group of `n/k` lines for this cycle, then the error rail when
    /// `has_rail`.
    pub machine: ClockedCircuit,
    /// Number of groups (one sorted per cycle).
    pub k: usize,
    /// Group width `n/k`.
    pub group: usize,
    /// Whether the rail output is present (ext output index `group`).
    pub has_rail: bool,
    /// Whether the control path is hardened (shadow counter + parity +
    /// heartbeat registers behind the `lg k` primary counter bits; the
    /// state layout is then `[counter, shadow, parity, heartbeat]`).
    pub hardened_control: bool,
}

impl StreamingSorter {
    /// Streams many independent in-flight sorts through **one** power-on
    /// simulation in round-robin schedule slots: tenant `j` holds its
    /// `n` lines stable for cycles `j·k .. (j+1)·k` and collects its
    /// k-sorted stream from the shared machine, then the next tenant
    /// takes over with no drain cycles — the counter wraps straight into
    /// the next schedule, exactly the multi-tenant occupancy pattern a
    /// sorting service sees under sustained load.
    ///
    /// Returns, per tenant, the k-sorted `n`-bit stream and whether the
    /// error rail went high during that tenant's slot (always `false`
    /// without a rail).
    pub fn stream_tenants(&self, tenants: &[Vec<bool>]) -> Vec<(Vec<bool>, bool)> {
        let mut sim = self.machine.power_on();
        let mut results = Vec::with_capacity(tenants.len());
        for lines in tenants {
            let mut streamed = Vec::with_capacity(self.group * self.k);
            let mut rail = false;
            for _ in 0..self.k {
                let out = sim.step(lines);
                streamed.extend_from_slice(&out[..self.group]);
                if self.has_rail {
                    rail |= out[self.group];
                }
            }
            results.push((streamed, rail));
        }
        results
    }
}

/// Builds the paper's Model B shared-sorter streamer: a `lg k`-bit
/// counter register steers an `(n, n/k)` group multiplexer into one
/// shared `n/k`-input mux-merge sorter. Cycle `c` presents group
/// `c mod k` sorted at the external outputs; after `k` cycles the
/// concatenated stream is a k-sorted sequence (Definition 4), ready for
/// the combinational k-merger back end.
///
/// With `opts` set, the per-cycle checks of [`harden`] guard the shared
/// sorter (monotonicity of the sorted group; conservation against the
/// *selected* group, i.e. the multiplexer's output; duplicate-and-compare
/// of the shared sorter) and the rail is exported as one extra external
/// output checked every cycle.
pub fn streaming_sorter(n: usize, k: usize, opts: Option<&HardenOptions>) -> StreamingSorter {
    match try_streaming_sorter(n, k, opts) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    }
}

/// Ripple up-counter increment: `(state + 1, wrap carry)`. The wrap
/// carry is high exactly when `state` is all-ones — the last cycle of a
/// schedule — which arms the heartbeat register.
fn ripple_increment(b: &mut Builder, state: &[Wire]) -> (Vec<Wire>, Wire) {
    let mut carry = b.constant(true);
    let mut next = Vec::with_capacity(state.len());
    for &s in state {
        let sum = b.xor(s, carry);
        carry = b.and(s, carry);
        next.push(sum);
    }
    (next, carry)
}

/// Checked [`streaming_sorter`]: rejects bad `(n, k)` configurations and
/// empty check sets with a typed [`ClockedBuildError`] instead of
/// panicking, so a long-running service can refuse a request without
/// dying.
pub fn try_streaming_sorter(
    n: usize,
    k: usize,
    opts: Option<&HardenOptions>,
) -> Result<StreamingSorter, ClockedBuildError> {
    if k < 2 || !k.is_power_of_two() || n % k != 0 {
        return Err(ClockedBuildError::BadConfig {
            what: "streaming_sorter: k must be a power of two ≥ 2 dividing n",
        });
    }
    let group = n / k;
    if !group.is_power_of_two() {
        return Err(ClockedBuildError::BadConfig {
            what: "streaming_sorter: group width n/k must be a power of two",
        });
    }
    if let Some(o) = opts {
        if !(o.monotonicity || o.conservation || o.duplicate || o.control) {
            return Err(ClockedBuildError::BadConfig {
                what: "streaming_sorter: at least one check must be enabled",
            });
        }
    }
    let kbits = k.trailing_zeros() as usize;
    let control = opts.is_some_and(|o| o.control);

    let mut b = Builder::new();
    let lines = b.input_bus(n);
    let state = b.input_bus(kbits); // primary counter register (little-endian)

    // Control-hardening registers ride behind the primary counter in the
    // state vector: a shadow copy of the counter, a parity bit shadowing
    // the count LSB, and the end-of-schedule heartbeat.
    let (shadow, parity, heartbeat) = if control {
        (b.input_bus(kbits), Some(b.input()), Some(b.input()))
    } else {
        (Vec::new(), None, None)
    };

    let sel_msb_first: Vec<_> = state.iter().rev().copied().collect();
    let selected = b.scoped("stream/mux", |b| {
        group_multiplexer(b, &sel_msb_first, &lines, group)
    });

    let sorter = muxmerge::build(group);
    b.push_scope("stream/sorter");
    let (map, _) = b.append_circuit(&sorter, &selected);
    b.pop_scope();
    let sorted: Vec<Wire> = (0..group)
        .map(|i| map[sorter.output_wire(i).index()])
        .collect();

    // Steering-counter increment (only the primary drives the mux). The
    // shadow counter is an independent second copy whose agreement the
    // checker enforces; its wrap carry arms the heartbeat.
    b.push_scope("ctl");
    let (next, _wrap) = b.scoped("counter", |b| ripple_increment(b, &state));
    let ctl_next = if control {
        let (shadow_next, shadow_wrap) = b.scoped("shadow", |b| ripple_increment(b, &shadow));
        let parity_next = b.scoped("parity", |b| {
            let p = parity.expect("control implies parity register");
            b.not(p)
        });
        Some((shadow_next, parity_next, shadow_wrap))
    } else {
        None
    };
    b.pop_scope();

    let rail = opts.map(|o| {
        let mut alarms: Vec<Wire> = Vec::new();
        b.push_scope("checker");
        if o.monotonicity {
            let mut v = b.scoped("mono", |b| mono_violations(b, &sorted));
            alarms.append(&mut v);
        }
        if o.conservation {
            let m = b.scoped("conservation", |b| {
                conservation_mismatch(b, &selected, &sorted)
            });
            alarms.push(m);
        }
        if o.duplicate {
            let m = b.scoped("duplicate", |b| {
                let (dup_map, _) = b.append_circuit(&sorter, &selected);
                let diffs: Vec<Wire> = (0..group)
                    .map(|i| {
                        let d = dup_map[sorter.output_wire(i).index()];
                        b.xor(sorted[i], d)
                    })
                    .collect();
                or_tree(b, &diffs)
            });
            alarms.push(m);
        }
        if let Some((shadow_next, _, _)) = &ctl_next {
            let mut v = b.scoped("control", |b| {
                let mut viols: Vec<Wire> = Vec::new();
                // Duplicate-and-compare on the *current* registers:
                // catches latched corruption (upset state bits, stuck
                // state pins) the cycle it becomes visible.
                for (&a, &sh) in state.iter().zip(&shadow) {
                    viols.push(b.xor(a, sh));
                }
                // …and on the freshly computed *next* state: catches
                // increment-logic faults in the same cycle they occur,
                // before the corrupt count ever steers a group.
                for (&a, &sh) in next.iter().zip(shadow_next) {
                    viols.push(b.xor(a, sh));
                }
                // Parity: the parity register toggles every cycle from
                // zero, so it must always equal the count LSB.
                let p = parity.expect("control implies parity register");
                viols.push(b.xor(p, state[0]));
                // Heartbeat: must pulse exactly on schedule-start cycles
                // (count == 0); a skipped or spurious schedule boundary
                // raises the rail.
                let nz = or_tree(b, &state);
                let is_zero = b.not(nz);
                let hb = heartbeat.expect("control implies heartbeat register");
                viols.push(b.xor(is_zero, hb));
                viols
            });
            alarms.append(&mut v);
        }
        let rail = or_tree(&mut b, &alarms);
        b.pop_scope();
        rail
    });

    let mut outs = sorted;
    if let Some(r) = rail {
        outs.push(r);
    }
    let n_ext_out = outs.len();
    outs.extend(next);
    let mut reset = vec![false; kbits];
    if let Some((shadow_next, parity_next, hb_next)) = ctl_next {
        outs.extend(shadow_next);
        outs.push(parity_next);
        outs.push(hb_next);
        reset.extend(vec![false; kbits]); // shadow counter resets with the primary
        reset.push(false); // parity of count 0
        reset.push(true); // cycle 0 is a schedule start
    }
    b.outputs(&outs);

    Ok(StreamingSorter {
        machine: ClockedCircuit::try_new(b.finish(), n, n_ext_out, reset)?,
        k,
        group,
        has_rail: opts.is_some(),
        hardened_control: control,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_circuit::faulty::FaultyEvaluator;
    use absort_core::lang;

    fn eval_hardened(h: &HardenedSorter, input: &[bool]) -> (Vec<bool>, bool) {
        let out = h.circuit.eval(input);
        (out[..h.n_data].to_vec(), out[h.n_data])
    }

    #[test]
    fn hardened_preserves_data_and_stays_quiet_fault_free() {
        let base = muxmerge::build(8);
        for opts in [
            HardenOptions::default(),
            HardenOptions {
                duplicate: true,
                ..Default::default()
            },
        ] {
            let h = harden(&base, &opts);
            assert_eq!(h.circuit.validate(), Ok(()));
            assert_eq!(h.circuit.n_outputs(), 9);
            for input in lang::all_sequences(8) {
                let (data, rail) = eval_hardened(&h, &input);
                assert_eq!(data, base.eval(&input), "data outputs must be untouched");
                assert!(!rail, "rail must stay low fault-free on {input:?}");
            }
        }
    }

    #[test]
    fn mono_check_fires_on_disordered_output() {
        let base = muxmerge::build(4);
        let h = harden(
            &base,
            &HardenOptions {
                monotonicity: true,
                conservation: false,
                duplicate: false,
                control: false,
            },
        );
        // stuck-at-1 on the base's first (minimum) output: input 0000
        // comes out 1000 — disordered, the zero-one check must fire.
        let fault = WireFault::StuckAt {
            wire: h.wire(base.output_wire(0)),
            value: true,
        };
        let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&h.circuit, &[fault]);
        let out = ev.run(&[false; 4]);
        assert!(out[0], "fault landed");
        assert!(out[h.rail_index()], "rail must flag the disorder");
    }

    #[test]
    fn conservation_catches_what_mono_misses() {
        let base = muxmerge::build(4);
        // stuck-at-1 on the *last* (maximum) output: 0000 → 0001, which
        // is perfectly sorted — only token conservation can see it.
        let site = |h: &HardenedSorter| WireFault::StuckAt {
            wire: h.wire(base.output_wire(3)),
            value: true,
        };

        let mono_only = harden(
            &base,
            &HardenOptions {
                monotonicity: true,
                conservation: false,
                duplicate: false,
                control: false,
            },
        );
        let mut ev: FaultyEvaluator<'_, bool> =
            FaultyEvaluator::new(&mono_only.circuit, &[site(&mono_only)]);
        let out = ev.run(&[false; 4]);
        assert!(!out[mono_only.rail_index()], "sorted output: mono is blind");

        let with_cons = harden(&base, &HardenOptions::default());
        let mut ev: FaultyEvaluator<'_, bool> =
            FaultyEvaluator::new(&with_cons.circuit, &[site(&with_cons)]);
        let out = ev.run(&[false; 4]);
        assert!(out[with_cons.rail_index()], "popcount mismatch must fire");
    }

    #[test]
    fn duplicate_compare_flags_core_divergence() {
        let base = muxmerge::build(4);
        let h = harden(
            &base,
            &HardenOptions {
                monotonicity: false,
                conservation: false,
                duplicate: true,
                control: false,
            },
        );
        // Fault an internal wire of the *primary* copy only: the
        // duplicate disagrees and the comparator fires on some input.
        let fault = WireFault::StuckAt {
            wire: h.wire(base.output_wire(1)),
            value: true,
        };
        let mut fired = false;
        for input in lang::all_sequences(4) {
            let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&h.circuit, &[fault]);
            let out = ev.run(&input);
            let clean = base.eval(&input);
            if out[..4] != clean[..] {
                assert!(out[h.rail_index()], "divergence unflagged on {input:?}");
                fired = true;
            }
        }
        assert!(fired, "the stuck output must diverge somewhere");
    }

    #[test]
    fn input_pin_faults_are_invisible_by_principle() {
        // A stuck primary input is just a different valid sorting
        // problem to the checker: data sorted, tokens conserved w.r.t.
        // what the checker saw. The rail must stay low even though the
        // output differs from the true input's sort.
        let base = muxmerge::build(4);
        let h = harden(&base, &HardenOptions::default());
        let fault = WireFault::StuckAt {
            wire: h.circuit.input_wire(0),
            value: true,
        };
        for input in lang::all_sequences(4) {
            let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&h.circuit, &[fault]);
            let out = ev.run(&input);
            assert!(!out[h.rail_index()], "input-pin fault flagged on {input:?}");
        }
    }

    #[test]
    fn checker_cost_is_attributed_and_modest() {
        let base = muxmerge::build(8);
        let h = harden(&base, &HardenOptions::default());
        let total = h.circuit.cost().total;
        let checker = h.circuit.try_cost_of_scope("checker").unwrap().total;
        let core = h.circuit.try_cost_of_scope("core").unwrap().total;
        assert_eq!(core, base.cost().total);
        assert_eq!(total, core + checker);
        // The checker is Θ(n): a mono rail (~2n) plus two popcounts
        // (≤ 9n each) plus the comparison — audit the constant so it
        // stays asymptotically cheaper than any Θ(n lg n) sorter body.
        for exp in [3u32, 4, 5, 6] {
            let n = 1usize << exp;
            let hb = harden(&muxmerge::build(n), &HardenOptions::default());
            let checker = hb.circuit.try_cost_of_scope("checker").unwrap().total;
            assert!(checker <= 22 * n as u64, "n={n}: checker cost {checker}");
        }
    }

    #[test]
    fn streaming_sorter_streams_sorted_groups() {
        let (n, k) = (16usize, 4usize);
        let s = streaming_sorter(n, k, Some(&HardenOptions::default()));
        assert_eq!(s.machine.n_inputs(), n);
        assert_eq!(s.machine.n_outputs(), n / k + 1);
        let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let mut sim = s.machine.power_on();
        let mut streamed = Vec::new();
        for cycle in 0..k {
            let out = sim.step(&bits);
            assert!(!out[s.group], "rail low fault-free at cycle {cycle}");
            streamed.extend_from_slice(&out[..s.group]);
        }
        let expect: Vec<bool> = bits.chunks(n / k).flat_map(muxmerge::sort).collect();
        assert_eq!(streamed, expect);
        assert!(lang::is_k_sorted(&streamed, k));

        // bare machine: no rail output
        let bare = streaming_sorter(n, k, None);
        assert_eq!(bare.machine.n_outputs(), n / k);
        assert!(!bare.has_rail);
        assert!(!bare.hardened_control);
    }

    #[test]
    fn control_hardening_adds_shadow_parity_heartbeat_state() {
        let (n, k) = (16usize, 4usize);
        let s = streaming_sorter(n, k, Some(&HardenOptions::default()));
        assert!(s.hardened_control);
        // state = [counter kbits][shadow kbits][parity][heartbeat]
        assert_eq!(s.machine.n_state(), 2 * 2 + 2);
        // external interface unchanged: sorted group + rail
        assert_eq!(s.machine.n_outputs(), n / k + 1);
        // the control logic is attributed to its own scopes
        let comb = s.machine.comb();
        for scope in ["ctl/counter", "ctl/shadow", "ctl/parity", "checker/control"] {
            let c = comb
                .try_cost_of_scope(scope)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(c.total > 0, "{scope} must place gates");
        }
        // fault-free: rail low across several back-to-back schedules
        let bits: Vec<bool> = (0..n).map(|i| i % 5 == 0).collect();
        let mut sim = s.machine.power_on();
        for cycle in 0..3 * k {
            let out = sim.step(&bits);
            assert!(
                !out[s.group],
                "rail must stay low fault-free at cycle {cycle}"
            );
        }
    }

    #[test]
    fn control_faults_raise_the_rail_within_one_schedule() {
        let (n, k) = (8usize, 4usize);
        let s = streaming_sorter(n, k, Some(&HardenOptions::default()));
        let comb = s.machine.comb();
        let bits: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        // Runs two back-to-back schedules and reports whether the fault
        // perturbed anything observable (data outputs or final machine
        // state) and whether the rail fired. Faults latched on the last
        // cycle of a schedule surface one cycle later, at the start of
        // the next — hence the two-schedule window.
        let observe = |fault: WireFault| -> (bool, bool) {
            let mut clean = s.machine.power_on();
            let mut faulty = s.machine.power_on_faulty(&[fault]);
            let (mut perturbed, mut rail) = (false, false);
            for _ in 0..2 * k {
                let c = clean.step(&bits);
                let f = faulty.step(&bits);
                perturbed |= c[..s.group] != f[..s.group];
                rail |= f[s.group];
            }
            perturbed |= clean.state() != faulty.state();
            (perturbed, rail)
        };
        let fires_in_first_schedule = |fault: WireFault| -> bool {
            let mut sim = s.machine.power_on_faulty(&[fault]);
            (0..k).any(|_| sim.step(&bits)[s.group])
        };

        // Every output wire of every primary-counter and shadow-counter
        // gate, stuck both ways: any fault that perturbs the machine
        // must raise the rail within the window.
        let (mut swept, mut flagged) = (0usize, 0usize);
        for scope in ["ctl/counter", "ctl/shadow"] {
            for ci in comb.try_components_in_scope(scope).unwrap() {
                for w in comb.component_output_wires(ci) {
                    for value in [false, true] {
                        let fault = WireFault::StuckAt { wire: w, value };
                        let (perturbed, rail) = observe(fault);
                        swept += 1;
                        if perturbed {
                            assert!(
                                rail,
                                "unflagged control fault: {scope} comp {ci} wire {w:?} stuck-{value}"
                            );
                            flagged += 1;
                        }
                    }
                }
            }
        }
        assert!(
            flagged >= swept / 2,
            "control sweep must be non-vacuous: {flagged}/{swept} flagged"
        );

        // Stuck state *pins* — invisible for the data inputs by
        // principle, but the control registers are compared against
        // their shadows, so a stuck counter pin must flag.
        let kbits = 2;
        for i in 0..kbits {
            let pin = comb.input_wire(n + i);
            assert!(
                fires_in_first_schedule(WireFault::StuckAt {
                    wire: pin,
                    value: true
                }),
                "stuck-1 counter pin {i} must flag"
            );
        }
        // parity and heartbeat pins likewise self-check
        let parity_pin = comb.input_wire(n + 2 * kbits);
        let hb_pin = comb.input_wire(n + 2 * kbits + 1);
        assert!(fires_in_first_schedule(WireFault::StuckAt {
            wire: parity_pin,
            value: true
        }));
        assert!(fires_in_first_schedule(WireFault::StuckAt {
            wire: hb_pin,
            value: false
        }));
    }

    #[test]
    fn stream_tenants_round_robin_matches_solo_runs() {
        let (n, k) = (16usize, 4usize);
        let s = streaming_sorter(n, k, Some(&HardenOptions::default()));
        let tenants: Vec<Vec<bool>> = (0..5)
            .map(|t| (0..n).map(|i| (i * 7 + t * 3) % 4 == 0).collect())
            .collect();
        let results = s.stream_tenants(&tenants);
        assert_eq!(results.len(), tenants.len());
        for (tenant, (stream, rail)) in tenants.iter().zip(&results) {
            assert!(!rail, "fault-free tenants never trip the rail");
            let expect: Vec<bool> = tenant.chunks(n / k).flat_map(muxmerge::sort).collect();
            assert_eq!(stream, &expect, "shared machine must sort each tenant");
            assert!(lang::is_k_sorted(stream, k));
        }
    }

    #[test]
    fn try_streaming_sorter_rejects_bad_configs() {
        use absort_circuit::clocked::ClockedBuildError;
        let bad = |what: &str, r: Result<StreamingSorter, ClockedBuildError>| match r {
            Err(ClockedBuildError::BadConfig { what: w }) => assert!(w.contains(what), "{w}"),
            other => panic!("expected BadConfig, got {:?}", other.err()),
        };
        bad("power of two", try_streaming_sorter(12, 3, None));
        bad("power of two", try_streaming_sorter(8, 1, None));
        bad("dividing n", try_streaming_sorter(10, 4, None));
        bad(
            "at least one check",
            try_streaming_sorter(
                16,
                4,
                Some(&HardenOptions {
                    monotonicity: false,
                    conservation: false,
                    duplicate: false,
                    control: false,
                }),
            ),
        );
        assert!(try_streaming_sorter(16, 4, None).is_ok());
    }
}
