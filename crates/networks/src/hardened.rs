//! Self-checking sorter hardening (concurrent error detection).
//!
//! The zero-one principle that proves every sorter in the paper correct
//! also yields a near-free *runtime* checker: a binary sorter's output
//! must be monotone (all zeros, then all ones), and monotonicity of an
//! `n`-bit vector is checkable with `n − 1` comparator-grade gate pairs.
//! [`harden`] wraps any binary sorter with that checker plus an
//! input-conservation (popcount) check — a sorter permutes its input, so
//! the output's token count must equal the input's — and optionally a
//! full duplicate-and-compare copy. The checks are OR-ed onto a single
//! **error rail** appended after the data outputs; the data outputs
//! themselves are untouched, so a hardened sorter drops into any socket
//! the original fits.
//!
//! What the rail can and cannot see:
//!
//! * an internal fault that disorders an output or destroys/creates a
//!   token fires the rail on the same input that exposes it — this is
//!   exactly the offline oracle condition, evaluated in hardware;
//! * a fault on a *primary input pin* is invisible in principle: the
//!   checker observes the already-faulted input, which is just a
//!   different (valid) sorting problem. No concurrent checker placed
//!   after the pins can flag it; campaigns report those separately.
//!
//! [`streaming_sorter`] applies the same idea to the paper's Model B
//! resource sharing: a `lg k`-bit counter steers an `(n, n/k)` group
//! multiplexer into **one** shared `n/k`-input mux-merge sorter, sorting
//! one group per cycle — `k` cycles stream out a k-sorted sequence ready
//! for a combinational k-merger. The optional rail rides along as an
//! extra external output checked every cycle.

use absort_blocks::mux::group_multiplexer;
use absort_blocks::popcount::popcount;
use absort_circuit::clocked::ClockedCircuit;
use absort_circuit::{assert_pow2, Builder, Circuit, Wire, WireFault};
use absort_core::muxmerge;

/// Which concurrent checks [`harden`] wires onto the error rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardenOptions {
    /// Monotonicity (zero-one) check over the data outputs: `n − 1`
    /// adjacent-pair stages plus an OR rail.
    pub monotonicity: bool,
    /// Input-conservation check: `popcount(outputs) == popcount(inputs)`,
    /// reusing the prefix popcount block.
    pub conservation: bool,
    /// Duplicate-and-compare: a second copy of the whole sorter on the
    /// same inputs, with any output mismatch raising the rail. Costly
    /// (doubles the core) but catches faults the cheap checks mask.
    pub duplicate: bool,
}

impl Default for HardenOptions {
    fn default() -> Self {
        HardenOptions {
            monotonicity: true,
            conservation: true,
            duplicate: false,
        }
    }
}

/// A sorter wrapped with concurrent checkers by [`harden`].
///
/// The wrapped circuit's outputs are the base sorter's `n_data` outputs
/// in order, followed by the error rail at index `n_data`. The maps
/// translate fault sites enumerated on the *base* netlist into this one,
/// so a campaign can inject exactly the base circuit's fault universe —
/// no checker-cone sites — and still read the rail.
pub struct HardenedSorter {
    /// The self-checking circuit: `n_data + 1` outputs, rail last.
    pub circuit: Circuit,
    /// `wire_map[w]` is the hardened wire carrying base wire `w`.
    pub wire_map: Vec<Wire>,
    /// Base component `ci` lives at `comp_base + ci` in the hardened
    /// netlist.
    pub comp_base: usize,
    /// Number of data outputs (the base sorter's output count).
    pub n_data: usize,
}

impl HardenedSorter {
    /// Output index of the error rail.
    pub fn rail_index(&self) -> usize {
        self.n_data
    }

    /// Translates a base-circuit wire into the hardened netlist.
    pub fn wire(&self, w: Wire) -> Wire {
        self.wire_map[w.index()]
    }

    /// Translates a base-circuit component index into the hardened
    /// netlist.
    pub fn component(&self, ci: usize) -> usize {
        self.comp_base + ci
    }

    /// Translates a base-circuit [`WireFault`] into the hardened netlist.
    pub fn fault(&self, f: WireFault) -> WireFault {
        match f {
            WireFault::StuckAt { wire, value } => WireFault::StuckAt {
                wire: self.wire(wire),
                value,
            },
            WireFault::BridgeOr { a, b } => WireFault::BridgeOr {
                a: self.wire(a),
                b: self.wire(b),
            },
            WireFault::TransientFlip { wire, vector } => WireFault::TransientFlip {
                wire: self.wire(wire),
                vector,
            },
        }
    }
}

/// OR-reduces `wires` onto one rail (constant 0 when empty).
fn or_tree(b: &mut Builder, wires: &[Wire]) -> Wire {
    match wires {
        [] => b.constant(false),
        [w] => *w,
        _ => {
            let mid = wires.len() / 2;
            let lo = or_tree(b, &wires[..mid]);
            let hi = or_tree(b, &wires[mid..]);
            b.or(lo, hi)
        }
    }
}

/// Monotonicity violations of `outs` (ascending zero-one order): one
/// wire per adjacent pair, high when `outs[i] > outs[i+1]`.
fn mono_violations(b: &mut Builder, outs: &[Wire]) -> Vec<Wire> {
    outs.windows(2)
        .map(|w| {
            let not_next = b.not(w[1]);
            b.and(w[0], not_next)
        })
        .collect()
}

/// Popcount-equality mismatch: high when the two buses' token counts
/// differ. Both buses must have the same power-of-two width.
fn conservation_mismatch(b: &mut Builder, ins: &[Wire], outs: &[Wire]) -> Wire {
    let cin = popcount(b, ins);
    let cout = popcount(b, outs);
    let diffs: Vec<Wire> = cin.iter().zip(&cout).map(|(&x, &y)| b.xor(x, y)).collect();
    or_tree(b, &diffs)
}

/// Wraps `base` (a binary sorter: equal input and output counts, power
/// of two) with the concurrent checks selected in `opts`. At least one
/// check must be enabled.
pub fn harden(base: &Circuit, opts: &HardenOptions) -> HardenedSorter {
    assert!(
        opts.monotonicity || opts.conservation || opts.duplicate,
        "harden: at least one check must be enabled"
    );
    let n = base.n_inputs();
    assert_eq!(
        n,
        base.n_outputs(),
        "harden wraps sorters: input and output counts must match"
    );
    assert_pow2(n, "harden");

    let mut b = Builder::new();
    let ins = b.input_bus(n);
    b.push_scope("core");
    let (wire_map, comp_base) = b.append_circuit(base, &ins);
    b.pop_scope();
    let data: Vec<Wire> = (0..n)
        .map(|i| wire_map[base.output_wire(i).index()])
        .collect();

    let mut alarms: Vec<Wire> = Vec::new();
    b.push_scope("checker");
    if opts.monotonicity {
        let mut v = b.scoped("mono", |b| mono_violations(b, &data));
        alarms.append(&mut v);
    }
    if opts.conservation {
        let m = b.scoped("conservation", |b| conservation_mismatch(b, &ins, &data));
        alarms.push(m);
    }
    if opts.duplicate {
        let mism = b.scoped("duplicate", |b| {
            let (dup_map, _) = b.append_circuit(base, &ins);
            let diffs: Vec<Wire> = (0..n)
                .map(|i| {
                    let d = dup_map[base.output_wire(i).index()];
                    b.xor(data[i], d)
                })
                .collect();
            or_tree(b, &diffs)
        });
        alarms.push(mism);
    }
    let rail = or_tree(&mut b, &alarms);
    b.pop_scope();

    let mut outs = data;
    outs.push(rail);
    b.outputs(&outs);

    HardenedSorter {
        circuit: b.finish(),
        wire_map,
        comp_base,
        n_data: n,
    }
}

/// A Model B time-multiplexed sorter built by [`streaming_sorter`].
pub struct StreamingSorter {
    /// The clocked machine. External inputs: the full `n` lines (held
    /// stable by the source for `k` cycles). External outputs: the sorted
    /// group of `n/k` lines for this cycle, then the error rail when
    /// `has_rail`.
    pub machine: ClockedCircuit,
    /// Number of groups (one sorted per cycle).
    pub k: usize,
    /// Group width `n/k`.
    pub group: usize,
    /// Whether the rail output is present (ext output index `group`).
    pub has_rail: bool,
}

/// Builds the paper's Model B shared-sorter streamer: a `lg k`-bit
/// counter register steers an `(n, n/k)` group multiplexer into one
/// shared `n/k`-input mux-merge sorter. Cycle `c` presents group
/// `c mod k` sorted at the external outputs; after `k` cycles the
/// concatenated stream is a k-sorted sequence (Definition 4), ready for
/// the combinational k-merger back end.
///
/// With `opts` set, the per-cycle checks of [`harden`] guard the shared
/// sorter (monotonicity of the sorted group; conservation against the
/// *selected* group, i.e. the multiplexer's output; duplicate-and-compare
/// of the shared sorter) and the rail is exported as one extra external
/// output checked every cycle.
pub fn streaming_sorter(n: usize, k: usize, opts: Option<&HardenOptions>) -> StreamingSorter {
    assert!(
        k >= 2 && k.is_power_of_two() && n % k == 0,
        "streaming_sorter: k must be a power of two ≥ 2 dividing n"
    );
    let group = n / k;
    assert_pow2(group, "streaming_sorter group width");
    if let Some(o) = opts {
        assert!(
            o.monotonicity || o.conservation || o.duplicate,
            "streaming_sorter: at least one check must be enabled"
        );
    }
    let kbits = k.trailing_zeros() as usize;

    let mut b = Builder::new();
    let lines = b.input_bus(n);
    let state = b.input_bus(kbits); // counter register (little-endian)
    let sel_msb_first: Vec<_> = state.iter().rev().copied().collect();
    let selected = b.scoped("stream/mux", |b| {
        group_multiplexer(b, &sel_msb_first, &lines, group)
    });

    let sorter = muxmerge::build(group);
    b.push_scope("stream/sorter");
    let (map, _) = b.append_circuit(&sorter, &selected);
    b.pop_scope();
    let sorted: Vec<Wire> = (0..group)
        .map(|i| map[sorter.output_wire(i).index()])
        .collect();

    let rail = opts.map(|o| {
        let mut alarms: Vec<Wire> = Vec::new();
        b.push_scope("checker");
        if o.monotonicity {
            let mut v = b.scoped("mono", |b| mono_violations(b, &sorted));
            alarms.append(&mut v);
        }
        if o.conservation {
            let m = b.scoped("conservation", |b| {
                conservation_mismatch(b, &selected, &sorted)
            });
            alarms.push(m);
        }
        if o.duplicate {
            let m = b.scoped("duplicate", |b| {
                let (dup_map, _) = b.append_circuit(&sorter, &selected);
                let diffs: Vec<Wire> = (0..group)
                    .map(|i| {
                        let d = dup_map[sorter.output_wire(i).index()];
                        b.xor(sorted[i], d)
                    })
                    .collect();
                or_tree(b, &diffs)
            });
            alarms.push(m);
        }
        let rail = or_tree(&mut b, &alarms);
        b.pop_scope();
        rail
    });

    // counter increment (ripple)
    let mut carry = b.constant(true);
    let mut next = Vec::with_capacity(kbits);
    for &s in &state {
        let sum = b.xor(s, carry);
        carry = b.and(s, carry);
        next.push(sum);
    }

    let mut outs = sorted;
    if let Some(r) = rail {
        outs.push(r);
    }
    let n_ext_out = outs.len();
    outs.extend(next);
    b.outputs(&outs);

    StreamingSorter {
        machine: ClockedCircuit::new(b.finish(), n, n_ext_out, vec![false; kbits]),
        k,
        group,
        has_rail: opts.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_circuit::faulty::FaultyEvaluator;
    use absort_core::lang;

    fn eval_hardened(h: &HardenedSorter, input: &[bool]) -> (Vec<bool>, bool) {
        let out = h.circuit.eval(input);
        (out[..h.n_data].to_vec(), out[h.n_data])
    }

    #[test]
    fn hardened_preserves_data_and_stays_quiet_fault_free() {
        let base = muxmerge::build(8);
        for opts in [
            HardenOptions::default(),
            HardenOptions {
                duplicate: true,
                ..Default::default()
            },
        ] {
            let h = harden(&base, &opts);
            assert_eq!(h.circuit.validate(), Ok(()));
            assert_eq!(h.circuit.n_outputs(), 9);
            for input in lang::all_sequences(8) {
                let (data, rail) = eval_hardened(&h, &input);
                assert_eq!(data, base.eval(&input), "data outputs must be untouched");
                assert!(!rail, "rail must stay low fault-free on {input:?}");
            }
        }
    }

    #[test]
    fn mono_check_fires_on_disordered_output() {
        let base = muxmerge::build(4);
        let h = harden(
            &base,
            &HardenOptions {
                monotonicity: true,
                conservation: false,
                duplicate: false,
            },
        );
        // stuck-at-1 on the base's first (minimum) output: input 0000
        // comes out 1000 — disordered, the zero-one check must fire.
        let fault = WireFault::StuckAt {
            wire: h.wire(base.output_wire(0)),
            value: true,
        };
        let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&h.circuit, &[fault]);
        let out = ev.run(&[false; 4]);
        assert!(out[0], "fault landed");
        assert!(out[h.rail_index()], "rail must flag the disorder");
    }

    #[test]
    fn conservation_catches_what_mono_misses() {
        let base = muxmerge::build(4);
        // stuck-at-1 on the *last* (maximum) output: 0000 → 0001, which
        // is perfectly sorted — only token conservation can see it.
        let site = |h: &HardenedSorter| WireFault::StuckAt {
            wire: h.wire(base.output_wire(3)),
            value: true,
        };

        let mono_only = harden(
            &base,
            &HardenOptions {
                monotonicity: true,
                conservation: false,
                duplicate: false,
            },
        );
        let mut ev: FaultyEvaluator<'_, bool> =
            FaultyEvaluator::new(&mono_only.circuit, &[site(&mono_only)]);
        let out = ev.run(&[false; 4]);
        assert!(!out[mono_only.rail_index()], "sorted output: mono is blind");

        let with_cons = harden(&base, &HardenOptions::default());
        let mut ev: FaultyEvaluator<'_, bool> =
            FaultyEvaluator::new(&with_cons.circuit, &[site(&with_cons)]);
        let out = ev.run(&[false; 4]);
        assert!(out[with_cons.rail_index()], "popcount mismatch must fire");
    }

    #[test]
    fn duplicate_compare_flags_core_divergence() {
        let base = muxmerge::build(4);
        let h = harden(
            &base,
            &HardenOptions {
                monotonicity: false,
                conservation: false,
                duplicate: true,
            },
        );
        // Fault an internal wire of the *primary* copy only: the
        // duplicate disagrees and the comparator fires on some input.
        let fault = WireFault::StuckAt {
            wire: h.wire(base.output_wire(1)),
            value: true,
        };
        let mut fired = false;
        for input in lang::all_sequences(4) {
            let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&h.circuit, &[fault]);
            let out = ev.run(&input);
            let clean = base.eval(&input);
            if out[..4] != clean[..] {
                assert!(out[h.rail_index()], "divergence unflagged on {input:?}");
                fired = true;
            }
        }
        assert!(fired, "the stuck output must diverge somewhere");
    }

    #[test]
    fn input_pin_faults_are_invisible_by_principle() {
        // A stuck primary input is just a different valid sorting
        // problem to the checker: data sorted, tokens conserved w.r.t.
        // what the checker saw. The rail must stay low even though the
        // output differs from the true input's sort.
        let base = muxmerge::build(4);
        let h = harden(&base, &HardenOptions::default());
        let fault = WireFault::StuckAt {
            wire: h.circuit.input_wire(0),
            value: true,
        };
        for input in lang::all_sequences(4) {
            let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&h.circuit, &[fault]);
            let out = ev.run(&input);
            assert!(!out[h.rail_index()], "input-pin fault flagged on {input:?}");
        }
    }

    #[test]
    fn checker_cost_is_attributed_and_modest() {
        let base = muxmerge::build(8);
        let h = harden(&base, &HardenOptions::default());
        let total = h.circuit.cost().total;
        let checker = h.circuit.cost_of_scope("checker").unwrap().total;
        let core = h.circuit.cost_of_scope("core").unwrap().total;
        assert_eq!(core, base.cost().total);
        assert_eq!(total, core + checker);
        // The checker is Θ(n): a mono rail (~2n) plus two popcounts
        // (≤ 9n each) plus the comparison — audit the constant so it
        // stays asymptotically cheaper than any Θ(n lg n) sorter body.
        for exp in [3u32, 4, 5, 6] {
            let n = 1usize << exp;
            let hb = harden(&muxmerge::build(n), &HardenOptions::default());
            let checker = hb.circuit.cost_of_scope("checker").unwrap().total;
            assert!(checker <= 22 * n as u64, "n={n}: checker cost {checker}");
        }
    }

    #[test]
    fn streaming_sorter_streams_sorted_groups() {
        let (n, k) = (16usize, 4usize);
        let s = streaming_sorter(n, k, Some(&HardenOptions::default()));
        assert_eq!(s.machine.n_inputs(), n);
        assert_eq!(s.machine.n_outputs(), n / k + 1);
        let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let mut sim = s.machine.power_on();
        let mut streamed = Vec::new();
        for cycle in 0..k {
            let out = sim.step(&bits);
            assert!(!out[s.group], "rail low fault-free at cycle {cycle}");
            streamed.extend_from_slice(&out[..s.group]);
        }
        let expect: Vec<bool> = bits.chunks(n / k).flat_map(muxmerge::sort).collect();
        assert_eq!(streamed, expect);
        assert!(lang::is_k_sorted(&streamed, k));

        // bare machine: no rail output
        let bare = streaming_sorter(n, k, None);
        assert_eq!(bare.machine.n_outputs(), n / k);
        assert!(!bare.has_rail);
    }
}
