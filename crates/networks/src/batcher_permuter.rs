//! Permutation switching with Batcher's network (the Table II "[3]" row,
//! live).
//!
//! "Batcher's sorting networks [3] … can also be used for permutation
//! switching, but they require `O(n lg³ n)` cost and `O(lg³ n)`
//! permutation time in bit-level" (Section IV). The mechanism: each
//! packet carries its `lg n`-bit destination address; one pass of a
//! word-level sorting network on the addresses delivers every packet to
//! its destination in a single sweep — self-routing, no set-up phase —
//! but every comparator must compare `lg n`-bit addresses, which is the
//! extra `lg n` bit-level factor against the paper's sorter-based
//! permuters.

use absort_baselines::batcher_bits;
use absort_cmpnet::{batcher, Network, Stage};

/// An n-input Batcher permutation switch.
#[derive(Debug, Clone)]
pub struct BatcherPermuter {
    net: Network,
    n: usize,
}

impl BatcherPermuter {
    /// Builds the n-input switch (`n = 2^k`) over Batcher's odd-even
    /// merge network.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "Batcher permuter needs n = 2^k");
        BatcherPermuter {
            net: batcher::odd_even_merge_sort(n),
            n,
        }
    }

    /// Input width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Routes `packets[i] = (dest_i, payload_i)`; destinations must form
    /// a permutation. One pass of word-level sorting by destination.
    pub fn route<T: Clone>(
        &self,
        packets: &[(usize, T)],
    ) -> Result<Vec<T>, crate::permuter::PermuteError> {
        use crate::permuter::PermuteError;
        if packets.len() != self.n {
            return Err(PermuteError::WrongWidth {
                got: packets.len(),
                expected: self.n,
            });
        }
        let mut seen = vec![false; self.n];
        for &(d, _) in packets {
            if d >= self.n || seen[d] {
                return Err(PermuteError::NotAPermutation { dest: d });
            }
            seen[d] = true;
        }
        let mut lines: Vec<(usize, T)> = packets.to_vec();
        for stage in self.net.stages() {
            match stage {
                Stage::Compare(pairs) => {
                    for &(i, j) in pairs {
                        let (i, j) = (i as usize, j as usize);
                        if lines[i].0 > lines[j].0 {
                            lines.swap(i, j);
                        }
                    }
                }
                Stage::Permute(perm) => {
                    let old = lines.clone();
                    for (t, &p) in perm.iter().enumerate() {
                        lines[t] = old[p as usize].clone();
                    }
                }
            }
        }
        Ok(lines.into_iter().map(|(_, p)| p).collect())
    }

    /// Bit-level cost: comparators × `lg n`-bit address comparators —
    /// the Table II `O(n lg³ n)` entry.
    pub fn cost(&self) -> u64 {
        batcher_bits::permutation_cost(self.n)
    }

    /// Bit-level permutation time: network depth × per-comparator
    /// `lg n` bit delay — `O(lg³ n)`. Self-routing: no set-up phase.
    pub fn time(&self) -> u64 {
        batcher_bits::permutation_time(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permuter::RadixPermuter;
    use absort_core::sorter::SorterKind;
    use rand::prelude::*;

    #[test]
    fn routes_random_permutations() {
        let mut rng = StdRng::seed_from_u64(91);
        for n in [8usize, 64, 256] {
            let bp = BatcherPermuter::new(n);
            for _ in 0..10 {
                let mut perm: Vec<usize> = (0..n).collect();
                perm.shuffle(&mut rng);
                let packets: Vec<(usize, usize)> =
                    perm.iter().enumerate().map(|(i, &d)| (d, i)).collect();
                let out = bp.route(&packets).unwrap();
                for (slot, &src) in out.iter().enumerate() {
                    assert_eq!(perm[src], slot, "n={n}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_radix_permuter() {
        let mut rng = StdRng::seed_from_u64(92);
        let n = 128;
        let bp = BatcherPermuter::new(n);
        let rp = RadixPermuter::new(SorterKind::MuxMerger, n);
        for _ in 0..10 {
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let packets: Vec<(usize, u16)> = perm
                .iter()
                .enumerate()
                .map(|(i, &d)| (d, i as u16))
                .collect();
            assert_eq!(bp.route(&packets).unwrap(), rp.route(&packets).unwrap());
        }
    }

    #[test]
    fn rejects_bad_destinations() {
        let bp = BatcherPermuter::new(8);
        let dup: Vec<(usize, ())> = (0..8).map(|i| (i / 2, ())).collect();
        assert!(bp.route(&dup).is_err());
    }

    #[test]
    fn table2_cost_ordering_vs_sorter_permuters() {
        // O(n lg³ n) must exceed both radix-permuter variants at scale.
        let n = 1usize << 14;
        let bp = BatcherPermuter::new(n);
        let fish = RadixPermuter::new(SorterKind::Fish { k: None }, n);
        let mux = RadixPermuter::new(SorterKind::MuxMerger, n);
        assert!(bp.cost() > mux.cost());
        assert!(bp.cost() > fish.cost());
        // but self-routing time is competitive (the paper's Table II
        // shows O(lg³ n) for both [3] and this paper)
        let t_ratio = bp.time() as f64 / fish.time() as f64;
        assert!(t_ratio < 10.0 && t_ratio > 0.1);
    }
}
