//! `(n, m)`-concentrators from binary sorters.
//!
//! "An (n,m)-concentrator is a network with n inputs and m outputs,
//! m ≤ n, that can map any r ≤ m of its inputs to some r distinct
//! outputs. … a binary sorter does form an (n,n)-concentrator. All that
//! is needed is to tag the inputs to be concentrated with 0's and tag the
//! remaining inputs with 1's." (Section IV.)
//!
//! Tagging active packets 0 sorts them to the *first* outputs; an
//! `(n,m)`-concentrator simply keeps the first `m` output lines. The
//! paper's cost/time table for concentrators (experiment E14):
//!
//! | construction | cost | concentration time |
//! |---|---|---|
//! | expander-based [2,10,16,21,22] | O(n) | unknown |
//! | ranking trees [11,13] | O(n lg² n) | O(lg n)-ish |
//! | prefix / mux-merger sorter | O(n lg n) | O(lg² n) |
//! | fish sorter (time-multiplexed) | O(n) | O(lg² n) |

use absort_core::packet::Keyed;
use absort_core::sorter::SorterKind;

/// A packet presented to the concentrator: `Some(payload)` wants through,
/// `None` is idle.
pub type Request<T> = Option<T>;

/// An `(n, m)`-concentrator built from an adaptive binary sorter.
///
/// ```
/// use absort_core::SorterKind;
/// use absort_networks::concentrator::Concentrator;
///
/// let conc = Concentrator::new(SorterKind::Fish { k: None }, 8, 4);
/// let requests = [None, Some("a"), None, None, Some("b"), None, Some("c"), None];
/// let out = conc.concentrate(&requests).unwrap();
/// // the three packets land on the first three of the four trunk lines
/// assert_eq!(out.iter().filter(|o| o.is_some()).count(), 3);
/// assert!(out[3].is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Concentrator {
    sorter: SorterKind,
    n: usize,
    m: usize,
}

/// Errors from concentration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConcentrateError {
    /// More than `m` active requests were presented.
    Overloaded {
        /// Number of active requests.
        active: usize,
        /// Capacity `m`.
        capacity: usize,
    },
    /// Wrong number of input lines.
    WrongWidth {
        /// Lines presented.
        got: usize,
        /// Lines expected (`n`).
        expected: usize,
    },
}

impl std::fmt::Display for ConcentrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConcentrateError::Overloaded { active, capacity } => {
                write!(
                    f,
                    "{active} active requests exceed concentrator capacity {capacity}"
                )
            }
            ConcentrateError::WrongWidth { got, expected } => {
                write!(f, "expected {expected} input lines, got {got}")
            }
        }
    }
}

impl std::error::Error for ConcentrateError {}

/// A keyed wrapper so idle lines (key 1) sort below active ones (key 0).
#[derive(Clone)]
struct Line<T: Clone>(Option<T>);

impl<T: Clone> Keyed for Line<T> {
    fn key(&self) -> bool {
        self.0.is_none()
    }
}

impl Concentrator {
    /// Creates an `(n, m)`-concentrator over the given sorter kind.
    pub fn new(sorter: SorterKind, n: usize, m: usize) -> Self {
        assert!(n.is_power_of_two(), "concentrator needs n = 2^k");
        assert!(m <= n && m > 0, "need 0 < m <= n");
        Concentrator { sorter, n, m }
    }

    /// Input width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Output width.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Routes the active requests to the first outputs. On success the
    /// returned vector has length `m`, its first `r` entries are the `r`
    /// active payloads (in some order), and the rest are `None`.
    pub fn concentrate<T: Clone>(
        &self,
        requests: &[Request<T>],
    ) -> Result<Vec<Request<T>>, ConcentrateError> {
        if requests.len() != self.n {
            return Err(ConcentrateError::WrongWidth {
                got: requests.len(),
                expected: self.n,
            });
        }
        let active = requests.iter().filter(|r| r.is_some()).count();
        if active > self.m {
            return Err(ConcentrateError::Overloaded {
                active,
                capacity: self.m,
            });
        }
        let lines: Vec<Line<T>> = requests.iter().cloned().map(Line).collect();
        let sorted = self.sorter.sort(&lines);
        Ok(sorted.into_iter().take(self.m).map(|l| l.0).collect())
    }

    /// Bit-level cost of this concentrator (its sorter).
    pub fn cost(&self) -> u64 {
        self.sorter.cost(self.n)
    }

    /// Concentration time: the sorter's depth (combinational kinds) or
    /// pipelined sorting time (fish).
    pub fn time(&self) -> u64 {
        self.sorter.depth(self.n)
    }
}

/// The equivalence the paper cites from Cormen [6]: concentration and
/// binary sorting are the same problem. The forward direction is this
/// module's construction (sorter ⇒ concentrator); this function is the
/// converse — **any** `(n,n)`-concentrator sorts binary sequences: tag
/// the 0-positions as requests, concentrate, and read occupied outputs
/// as 0s.
pub fn sort_binary_with_concentrator(
    conc: &Concentrator,
    bits: &[bool],
) -> Result<Vec<bool>, ConcentrateError> {
    assert_eq!(conc.m(), conc.n(), "needs a full (n,n)-concentrator");
    let requests: Vec<Request<()>> = bits.iter().map(|&b| (!b).then_some(())).collect();
    let out = conc.concentrate(&requests)?;
    Ok(out.into_iter().map(|slot| slot.is_none()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_core::sorter::ALL_KINDS;
    use rand::prelude::*;

    fn check_concentration<T: Clone + Eq + std::fmt::Debug + Ord>(
        input: &[Request<T>],
        output: &[Request<T>],
        m: usize,
    ) {
        assert_eq!(output.len(), m);
        let mut want: Vec<&T> = input.iter().flatten().collect();
        let r = want.len();
        let mut got: Vec<&T> = output[..r].iter().map(|o| o.as_ref().unwrap()).collect();
        assert!(
            output[r..].iter().all(|o| o.is_none()),
            "idle tail expected"
        );
        want.sort();
        got.sort();
        assert_eq!(got, want, "active payloads must be exactly preserved");
    }

    #[test]
    fn concentrates_all_loads_all_sorters() {
        let n = 64;
        let mut rng = StdRng::seed_from_u64(8);
        for kind in ALL_KINDS {
            let c = Concentrator::new(kind, n, n);
            for load in [0usize, 1, 7, 32, 63, 64] {
                let mut req: Vec<Request<u32>> = (0..n).map(|i| Some(i as u32)).collect();
                // deactivate all but `load` random positions
                let mut idx: Vec<usize> = (0..n).collect();
                idx.shuffle(&mut rng);
                for &i in &idx[load..] {
                    req[i] = None;
                }
                let out = c.concentrate(&req).expect("within capacity");
                check_concentration(&req, &out, n);
            }
        }
    }

    #[test]
    fn narrow_output_rejects_overload() {
        let c = Concentrator::new(SorterKind::MuxMerger, 16, 4);
        let req: Vec<Request<u8>> = (0..16).map(|i| (i < 5).then_some(i as u8)).collect();
        assert_eq!(
            c.concentrate(&req),
            Err(ConcentrateError::Overloaded {
                active: 5,
                capacity: 4
            })
        );
        let ok: Vec<Request<u8>> = (0..16).map(|i| (i % 4 == 0).then_some(i as u8)).collect();
        let out = c.concentrate(&ok).unwrap();
        check_concentration(&ok, &out, 4);
    }

    #[test]
    fn wrong_width_rejected() {
        let c = Concentrator::new(SorterKind::Prefix, 16, 16);
        let req: Vec<Request<u8>> = vec![None; 8];
        assert!(matches!(
            c.concentrate(&req),
            Err(ConcentrateError::WrongWidth {
                got: 8,
                expected: 16
            })
        ));
    }

    #[test]
    fn concentration_is_equivalent_to_binary_sorting() {
        // Cormen [6] / paper Section IV: the converse direction — a
        // concentrator used as a binary sorter — exhaustively at n = 16.
        use absort_core::lang::{all_sequences, sorted_oracle};
        for kind in ALL_KINDS {
            let conc = Concentrator::new(kind, 16, 16);
            for s in all_sequences(16).step_by(7) {
                assert_eq!(
                    sort_binary_with_concentrator(&conc, &s).unwrap(),
                    sorted_oracle(&s),
                    "{}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn fish_concentrator_is_linear_cost() {
        let n = 1 << 16;
        let fish = Concentrator::new(SorterKind::Fish { k: None }, n, n);
        let mux = Concentrator::new(SorterKind::MuxMerger, n, n);
        assert!(fish.cost() < 18 * n as u64);
        assert!(mux.cost() > 3 * n as u64 * 16);
        // both concentrate in O(lg² n) time
        assert!(fish.time() < 10 * 16 * 16);
        assert!(mux.time() < 4 * 16 * 16);
    }
}
