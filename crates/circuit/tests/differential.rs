//! Differential testing of the evaluation engines: random circuits
//! evaluated with the scalar path, the 64-lane packed path, the
//! multi-threaded batch path, and the compiled micro-op tape must agree
//! bit-for-bit, and depth/cost analyses must be invariant across
//! evaluations.

use absort_circuit::{Builder, Circuit, GateOp, Wire};
use proptest::prelude::*;
use rand::prelude::*;

/// Generates a random DAG circuit from a seed: `n_inputs` inputs,
/// `n_comps` components drawn uniformly from all primitive kinds, inputs
/// of each component drawn from all existing wires.
fn random_circuit(seed: u64, n_inputs: usize, n_comps: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Builder::new();
    let mut wires: Vec<Wire> = b.input_bus(n_inputs);
    wires.push(b.constant(false));
    wires.push(b.constant(true));
    for _ in 0..n_comps {
        let pick = |rng: &mut StdRng, wires: &[Wire]| wires[rng.gen_range(0..wires.len())];
        match rng.gen_range(0..7) {
            0 => {
                let a = pick(&mut rng, &wires);
                wires.push(b.not(a));
            }
            1 => {
                let ops = [
                    GateOp::And,
                    GateOp::Or,
                    GateOp::Xor,
                    GateOp::Nand,
                    GateOp::Nor,
                    GateOp::Xnor,
                ];
                let op = ops[rng.gen_range(0..ops.len())];
                let (a, c) = (pick(&mut rng, &wires), pick(&mut rng, &wires));
                wires.push(b.gate(op, a, c));
            }
            2 => {
                let (s, a0, a1) = (
                    pick(&mut rng, &wires),
                    pick(&mut rng, &wires),
                    pick(&mut rng, &wires),
                );
                wires.push(b.mux2(s, a0, a1));
            }
            3 => {
                let (s, x) = (pick(&mut rng, &wires), pick(&mut rng, &wires));
                let (o0, o1) = b.demux2(s, x);
                wires.push(o0);
                wires.push(o1);
            }
            4 => {
                let (c, x, y) = (
                    pick(&mut rng, &wires),
                    pick(&mut rng, &wires),
                    pick(&mut rng, &wires),
                );
                let (oa, ob) = b.switch2(c, x, y);
                wires.push(oa);
                wires.push(ob);
            }
            5 => {
                let (x, y) = (pick(&mut rng, &wires), pick(&mut rng, &wires));
                let (lo, hi) = b.bit_compare(x, y);
                wires.push(lo);
                wires.push(hi);
            }
            _ => {
                let s1 = pick(&mut rng, &wires);
                let s0 = pick(&mut rng, &wires);
                let ins = [
                    pick(&mut rng, &wires),
                    pick(&mut rng, &wires),
                    pick(&mut rng, &wires),
                    pick(&mut rng, &wires),
                ];
                let mut perms = [[0u8, 1, 2, 3]; 4];
                for p in &mut perms {
                    for i in (1..4).rev() {
                        p.swap(i, rng.gen_range(0..=i));
                    }
                }
                let outs = b.switch4(s1, s0, ins, perms);
                wires.extend_from_slice(&outs);
            }
        }
    }
    // Pick a random subset of wires as outputs (at least one).
    let n_out = rng.gen_range(1..=8.min(wires.len()));
    let outs: Vec<Wire> = (0..n_out)
        .map(|_| wires[rng.gen_range(0..wires.len())])
        .collect();
    b.outputs(&outs);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scalar, lane-packed, and threaded evaluation agree on random
    /// circuits and random input batches.
    #[test]
    fn engines_agree(seed in any::<u64>(), n_inputs in 1usize..10, n_comps in 1usize..120) {
        let circuit = random_circuit(seed, n_inputs, n_comps);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let vectors: Vec<Vec<bool>> = (0..130)
            .map(|_| (0..n_inputs).map(|_| rng.gen()).collect())
            .collect();
        let scalar: Vec<Vec<bool>> = vectors.iter().map(|v| circuit.eval(v)).collect();
        let packed = circuit.eval_batch_parallel(&vectors, 1);
        let threaded = circuit.eval_batch_parallel(&vectors, 4);
        prop_assert_eq!(&scalar, &packed);
        prop_assert_eq!(&scalar, &threaded);
    }

    /// The compiled micro-op tape agrees with the interpreter on random
    /// circuits — scalar path, compiled batch path, and the regalloc
    /// invariant (the slot buffer never exceeds the wire buffer).
    #[test]
    fn compiled_tape_agrees(seed in any::<u64>(), n_inputs in 1usize..10, n_comps in 1usize..120) {
        let circuit = random_circuit(seed, n_inputs, n_comps);
        let compiled = circuit.compile();
        prop_assert!(compiled.n_slots() <= circuit.n_wires());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let vectors: Vec<Vec<bool>> = (0..130)
            .map(|_| (0..n_inputs).map(|_| rng.gen()).collect())
            .collect();
        let scalar: Vec<Vec<bool>> = vectors.iter().map(|v| circuit.eval(v)).collect();
        let comp_scalar: Vec<Vec<bool>> = vectors.iter().map(|v| compiled.eval(v)).collect();
        prop_assert_eq!(&scalar, &comp_scalar);
        let comp_batch = compiled.eval_batch_parallel(&vectors, 3);
        prop_assert_eq!(&scalar, &comp_batch);
    }

    /// Analyses are pure: repeated cost/depth calls agree, and depth
    /// never exceeds component count.
    #[test]
    fn analyses_are_consistent(seed in any::<u64>(), n_comps in 1usize..200) {
        let circuit = random_circuit(seed, 6, n_comps);
        let c1 = circuit.cost();
        let c2 = circuit.cost();
        prop_assert_eq!(c1, c2);
        let d = circuit.depth();
        prop_assert_eq!(d, circuit.depth());
        prop_assert!(d <= circuit.n_components());
        prop_assert!(c1.total >= circuit.n_components() as u64);
        let depths = circuit.output_depths();
        prop_assert_eq!(depths.iter().copied().max().unwrap_or(0), d);
    }

    /// The stats pass agrees with the independent depth/cost analyses.
    #[test]
    fn stats_agree_with_analyses(seed in any::<u64>(), n_comps in 1usize..150) {
        let circuit = random_circuit(seed, 5, n_comps);
        let stats = circuit.stats();
        prop_assert_eq!(stats.depth, circuit.depth());
        prop_assert_eq!(stats.cost, circuit.cost());
        let total: u32 = stats.components_per_level.iter().sum();
        prop_assert_eq!(total as usize, circuit.n_components());
    }
}
