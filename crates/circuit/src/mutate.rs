//! Netlist fault injection.
//!
//! Generates single-fault mutants of a circuit — a flipped comparator, a
//! stuck select, a swapped mux arm — so the workspace's verifiers can be
//! *scored*: a checker that accepts faulty sorters proves nothing. Used
//! by the gate-level mutation tests (`tests/mutation.rs` handles the
//! word-level networks; this module covers the Model A netlists).

use crate::circuit::Circuit;
use crate::component::{Component, GateOp};
use crate::wire::Wire;

/// A single-fault mutation applied to one component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Swap a comparator's min/max outputs (or a switch's two outputs),
    /// exchange a mux's arms, invert a gate.
    InvertBehaviour,
    /// Tie the component's select/control line to constant 0.
    StuckSelectLow,
    /// Tie the component's select/control line to constant 1 — the dual
    /// short; a fabric line stuck at power instead of ground.
    StuckSelectHigh,
}

impl Fault {
    /// All netlist-rewriting fault kinds, in campaign-sweep order.
    pub const ALL: [Fault; 3] = [
        Fault::InvertBehaviour,
        Fault::StuckSelectLow,
        Fault::StuckSelectHigh,
    ];

    /// Stable short name, used in report keys and telemetry paths.
    pub fn name(self) -> &'static str {
        match self {
            Fault::InvertBehaviour => "invert",
            Fault::StuckSelectLow => "stuck_select_low",
            Fault::StuckSelectHigh => "stuck_select_high",
        }
    }
}

/// Component indices of `circuit` where `fault` applies, in topological
/// order. Multi-fault campaigns draw their component atoms from this
/// list.
pub fn applicable(circuit: &Circuit, fault: Fault) -> Vec<usize> {
    // Probe with a dummy tie wire: applicability depends only on the
    // (fault, component-kind) pair, never on the tie's identity.
    let probe = Some(Wire::from_index(0));
    circuit
        .components()
        .iter()
        .enumerate()
        .filter(|(_, p)| mutate_component(&p.comp, fault, probe).is_some())
        .map(|(ci, _)| ci)
        .collect()
}

/// Applies `fault` to component `ci` alone, returning the mutated
/// circuit, or `None` when the fault does not apply to that component.
///
/// Mutants preserve the interface (inputs/outputs/wire table), so they
/// can be run through any checker built for the original.
pub fn apply(circuit: &Circuit, ci: usize, fault: Fault) -> Option<Circuit> {
    apply_set(circuit, &[(ci, fault)])
}

/// Applies a *set* of component faults at once — a k-fault mutant. Each
/// entry names a component index and the fault to inject there. Returns
/// `None` if any entry does not apply (out-of-range index or inapplicable
/// fault kind); entries are applied in order, so listing the same
/// component twice composes the two rewrites.
///
/// Stuck-select faults tie a line to a constant; if the circuit has no
/// constant of the needed polarity, the mutant gets a fresh tied-off wire
/// appended to the wire table (defined before the component scan, so
/// topological evaluation is unaffected).
pub fn apply_set(circuit: &Circuit, set: &[(usize, Fault)]) -> Option<Circuit> {
    let mut comps = circuit.components().to_vec();
    let mut consts = circuit.const_wires().to_vec();
    let mut n_wires = circuit.n_wires();
    let mut ties: [Option<Wire>; 2] = [None, None];
    for &(ci, fault) in set {
        let needed = match fault {
            Fault::StuckSelectLow => Some(false),
            Fault::StuckSelectHigh => Some(true),
            Fault::InvertBehaviour => None,
        };
        let tie = match needed {
            Some(polarity) => {
                let slot = polarity as usize;
                if ties[slot].is_none() {
                    ties[slot] = consts
                        .iter()
                        .find(|&&(_, v)| v == polarity)
                        .map(|&(w, _)| w)
                        .or_else(|| {
                            let w = Wire::from_index(n_wires);
                            n_wires += 1;
                            consts.push((w, polarity));
                            Some(w)
                        });
                }
                ties[slot]
            }
            None => None,
        };
        let p = comps.get(ci)?;
        let mutated = mutate_component(&p.comp, fault, tie)?;
        comps[ci].comp = mutated;
    }
    Some(Circuit::from_parts(
        comps,
        n_wires,
        circuit.input_wires().to_vec(),
        circuit.output_wires().to_vec(),
        consts,
        circuit.scopes().clone(),
    ))
}

/// Enumerates the mutants of `circuit` under `fault`: one mutant per
/// applicable component, as `(component index, mutated circuit)`.
pub fn mutants(circuit: &Circuit, fault: Fault) -> Vec<(usize, Circuit)> {
    applicable(circuit, fault)
        .into_iter()
        .filter_map(|ci| apply(circuit, ci, fault).map(|m| (ci, m)))
        .collect()
}

fn mutate_component(c: &Component, fault: Fault, tie: Option<Wire>) -> Option<Component> {
    match (fault, c) {
        (Fault::InvertBehaviour, Component::BitCompare { a, b }) => {
            // A comparator is exactly a 2×2 switch steered by its own
            // upper input (ctrl = a ⇒ (min, max)); the classic wiring
            // fault is steering by the *lower* input instead, which
            // mis-routes exactly the (1,0) and (0,0)… cases where the
            // pair straddles: with ctrl = b the cell emits (1,0) on input
            // (1,0) — an unsorted pair a real comparator can never emit.
            Some(Component::Switch2 {
                ctrl: *b,
                a: *a,
                b: *b,
            })
        }
        (Fault::InvertBehaviour, Component::Gate { op, a, b }) => {
            let flipped = match op {
                GateOp::And => GateOp::Nand,
                GateOp::Or => GateOp::Nor,
                GateOp::Xor => GateOp::Xnor,
                GateOp::Nand => GateOp::And,
                GateOp::Nor => GateOp::Or,
                GateOp::Xnor => GateOp::Xor,
            };
            Some(Component::Gate {
                op: flipped,
                a: *a,
                b: *b,
            })
        }
        (Fault::InvertBehaviour, Component::Mux2 { sel, a0, a1 }) => Some(Component::Mux2 {
            sel: *sel,
            a0: *a1,
            a1: *a0,
        }),
        (Fault::InvertBehaviour, Component::Switch2 { ctrl, a, b }) => {
            // pass/cross polarity inverted == swap data operands
            Some(Component::Switch2 {
                ctrl: *ctrl,
                a: *b,
                b: *a,
            })
        }
        (Fault::InvertBehaviour, Component::Switch4 { s1, s0, ins, perms }) => {
            // select decode scrambled: the permutation table reversed
            Some(Component::Switch4 {
                s1: *s1,
                s0: *s0,
                ins: *ins,
                perms: [perms[3], perms[2], perms[1], perms[0]],
            })
        }
        (Fault::StuckSelectLow | Fault::StuckSelectHigh, Component::Mux2 { a0, a1, .. }) => {
            Some(Component::Mux2 {
                sel: tie?,
                a0: *a0,
                a1: *a1,
            })
        }
        (Fault::StuckSelectLow | Fault::StuckSelectHigh, Component::Switch2 { a, b, .. }) => {
            Some(Component::Switch2 {
                ctrl: tie?,
                a: *a,
                b: *b,
            })
        }
        (Fault::StuckSelectLow | Fault::StuckSelectHigh, Component::Demux2 { x, .. }) => {
            Some(Component::Demux2 { sel: tie?, x: *x })
        }
        (
            Fault::StuckSelectLow | Fault::StuckSelectHigh,
            Component::Switch4 { s1, ins, perms, .. },
        ) => Some(Component::Switch4 {
            s1: *s1,
            s0: tie?,
            ins: *ins,
            perms: *perms,
        }),
        _ => None,
    }
}

/// Runs `kill` on every mutant and returns `(killed, total)`: the
/// mutation score of whatever check `kill` encodes.
pub fn mutation_score(
    circuit: &Circuit,
    fault: Fault,
    mut kill: impl FnMut(&Circuit) -> bool,
) -> (usize, usize) {
    let ms = mutants(circuit, fault);
    let total = ms.len();
    let killed = ms.iter().filter(|(_, m)| kill(m)).count();
    (killed, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn two_sorter() -> Circuit {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let (lo, hi) = b.bit_compare(x, y);
        b.outputs(&[lo, hi]);
        b.finish()
    }

    #[test]
    fn comparator_mutant_misbehaves() {
        let c = two_sorter();
        let ms = mutants(&c, Fault::InvertBehaviour);
        assert_eq!(ms.len(), 1);
        let (_, m) = &ms[0];
        // original sorts (1,0) → (0,1); some input must now differ
        let mut differs = false;
        for v in 0..4u8 {
            let input = vec![v & 1 == 1, v >> 1 & 1 == 1];
            if m.eval(&input) != c.eval(&input) {
                differs = true;
            }
        }
        assert!(differs, "mutant must be behaviourally distinct");
    }

    #[test]
    fn stuck_select_synthesizes_a_tie_off() {
        // circuit without const0: the mutant gets a fresh tied-off wire
        let mut b = Builder::new();
        let s = b.input();
        let x = b.input();
        let y = b.input();
        let o = b.mux2(s, x, y);
        b.outputs(&[o]);
        let c = b.finish();
        let ms = mutants(&c, Fault::StuckSelectLow);
        assert_eq!(ms.len(), 1);
        let (_, m) = &ms[0];
        // sel stuck low: output always x regardless of s
        assert_eq!(m.eval(&[true, false, true]), vec![false]);
        assert_eq!(m.eval(&[false, false, true]), vec![false]);
        assert_eq!(c.eval(&[true, false, true]), vec![true]);
    }

    #[test]
    fn stuck_select_reuses_existing_constant() {
        let mut b = Builder::new();
        let s = b.input();
        let x = b.input();
        let y = b.input();
        let z = b.constant(false);
        let t = b.or(y, z);
        let o = b.mux2(s, x, t);
        b.outputs(&[o]);
        let c = b.finish();
        let before = c.n_wires();
        let ms = mutants(&c, Fault::StuckSelectLow);
        assert_eq!(ms.len(), 1);
        assert_eq!(
            ms[0].1.n_wires(),
            before,
            "no extra wire when const0 exists"
        );
        assert_eq!(ms[0].1.eval(&[true, false, true]), vec![false]);
    }

    #[test]
    fn stuck_select_high_is_the_dual() {
        let mut b = Builder::new();
        let s = b.input();
        let x = b.input();
        let y = b.input();
        let o = b.mux2(s, x, y);
        b.outputs(&[o]);
        let c = b.finish();
        let ms = mutants(&c, Fault::StuckSelectHigh);
        assert_eq!(ms.len(), 1);
        let (_, m) = &ms[0];
        // sel stuck high: output always y regardless of s
        assert_eq!(m.eval(&[false, false, true]), vec![true]);
        assert_eq!(m.eval(&[true, false, true]), vec![true]);
        // synthesized tie-off keeps the netlist structurally sound
        assert_eq!(m.validate(), Ok(()));
    }

    #[test]
    fn applicable_matches_mutants_and_apply_agrees() {
        let c = two_sorter();
        for fault in Fault::ALL {
            let idxs = applicable(&c, fault);
            let ms = mutants(&c, fault);
            assert_eq!(
                idxs,
                ms.iter().map(|(ci, _)| *ci).collect::<Vec<_>>(),
                "{}",
                fault.name()
            );
            for (ci, m) in &ms {
                let direct = apply(&c, *ci, fault).expect("applicable");
                for v in 0..4u8 {
                    let input = vec![v & 1 == 1, v >> 1 & 1 == 1];
                    assert_eq!(direct.eval(&input), m.eval(&input));
                }
            }
        }
        assert!(apply(&c, 99, Fault::InvertBehaviour).is_none());
    }

    #[test]
    fn apply_set_composes_two_faults() {
        // two independent muxes; stuck both selects at opposite rails
        let mut b = Builder::new();
        let s = b.input();
        let x = b.input();
        let y = b.input();
        let m0 = b.mux2(s, x, y);
        let m1 = b.mux2(s, y, x);
        b.outputs(&[m0, m1]);
        let c = b.finish();
        let m = apply_set(
            &c,
            &[(0, Fault::StuckSelectLow), (1, Fault::StuckSelectHigh)],
        )
        .expect("both apply");
        assert_eq!(m.validate(), Ok(()));
        // m0 always x (sel low), m1 always x (sel high picks arm a1 = x)
        assert_eq!(m.eval(&[true, true, false]), vec![true, true]);
        assert_eq!(m.eval(&[false, true, false]), vec![true, true]);
        // single inapplicable member poisons the whole set
        assert!(apply_set(
            &c,
            &[(0, Fault::StuckSelectLow), (7, Fault::InvertBehaviour)]
        )
        .is_none());
    }

    #[test]
    fn fault_names_are_stable() {
        assert_eq!(Fault::ALL.len(), 3);
        assert_eq!(Fault::InvertBehaviour.name(), "invert");
        assert_eq!(Fault::StuckSelectHigh.name(), "stuck_select_high");
    }

    #[test]
    fn gate_inversion_roundtrips() {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let o = b.and(x, y);
        b.outputs(&[o]);
        let c = b.finish();
        let ms = mutants(&c, Fault::InvertBehaviour);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].1.eval(&[true, true]), vec![false], "AND → NAND");
    }
}
