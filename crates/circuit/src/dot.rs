//! Graphviz DOT export for small circuits.
//!
//! The paper communicates its constructions as figures; for inspecting a
//! built instance (e.g. the 16-input prefix sorter of Fig. 5), a DOT
//! rendering of the netlist is the closest executable analogue. Intended
//! for small `n` — a 16-input sorter has a few hundred nodes and renders
//! fine; exporting a 2¹⁶-input sorter is refused.

use crate::circuit::Circuit;
use crate::component::Component;
use std::fmt::Write as _;

/// Maximum number of components for which DOT export is permitted.
pub const DOT_COMPONENT_LIMIT: usize = 20_000;

/// Renders the circuit as a Graphviz digraph. Inputs are plaintext
/// sources, components are boxes labelled with their primitive kind (and
/// grouped visually by depth via `rank=same`).
///
/// # Panics
///
/// Panics when the circuit exceeds [`DOT_COMPONENT_LIMIT`] components —
/// a rendering that size is unreadable and the string would be huge.
pub fn to_dot(circuit: &Circuit, title: &str) -> String {
    assert!(
        circuit.n_components() <= DOT_COMPONENT_LIMIT,
        "refusing to render {} components as DOT (limit {DOT_COMPONENT_LIMIT})",
        circuit.n_components()
    );
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");

    // wire -> producing node name
    let mut producer: Vec<String> = vec![String::new(); circuit.n_wires()];
    for (i, w) in circuit.input_wires().iter().enumerate() {
        let name = format!("in{i}");
        let _ = writeln!(out, "  {name} [shape=plaintext,label=\"x{i}\"];");
        producer[w.index()] = name;
    }
    for (w, v) in circuit.const_wires() {
        let name = format!("const{}", w.index());
        let _ = writeln!(
            out,
            "  {name} [shape=plaintext,label=\"{}\"];",
            u8::from(*v)
        );
        producer[w.index()] = name;
    }

    for (ci, p) in circuit.components().iter().enumerate() {
        let name = format!("c{ci}");
        let label = match &p.comp {
            Component::Not { .. } => "NOT",
            Component::Gate { op, .. } => match op {
                crate::component::GateOp::And => "AND",
                crate::component::GateOp::Or => "OR",
                crate::component::GateOp::Xor => "XOR",
                crate::component::GateOp::Nand => "NAND",
                crate::component::GateOp::Nor => "NOR",
                crate::component::GateOp::Xnor => "XNOR",
            },
            Component::Mux2 { .. } => "MUX",
            Component::Demux2 { .. } => "DEMUX",
            Component::Switch2 { .. } => "SW2",
            Component::BitCompare { .. } => "CMP",
            Component::Switch4 { .. } => "SW4",
        };
        let _ = writeln!(out, "  {name} [shape=box,label=\"{label}\"];");
        p.comp.for_each_input(|w| {
            let src = &producer[w.index()];
            let _ = writeln!(out, "  {src} -> {name};");
        });
        for k in 0..p.comp.n_outputs() {
            producer[p.out_base as usize + k] = name.clone();
        }
    }

    for (i, w) in circuit.output_wires().iter().enumerate() {
        let name = format!("out{i}");
        let _ = writeln!(out, "  {name} [shape=plaintext,label=\"y{i}\"];");
        let _ = writeln!(out, "  {} -> {name};", producer[w.index()]);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn half_adder() -> Circuit {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let s = b.xor(x, y);
        let c = b.and(x, y);
        b.outputs(&[s, c]);
        b.finish()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let c = half_adder();
        let dot = to_dot(&c, "half-adder");
        assert!(dot.contains("digraph \"half-adder\""));
        assert!(dot.contains("XOR"));
        assert!(dot.contains("AND"));
        assert!(dot.contains("in0 -> c0"));
        assert!(dot.contains("-> out0"));
        assert!(dot.contains("-> out1"));
        // 2 inputs + 2 gates + 2 outputs declared
        assert_eq!(dot.matches("shape=plaintext").count(), 4);
        assert_eq!(dot.matches("shape=box").count(), 2);
    }

    #[test]
    fn dot_renders_constants() {
        let mut b = Builder::new();
        let x = b.input();
        let one = b.constant(true);
        let o = b.or(x, one);
        b.outputs(&[o]);
        let dot = to_dot(&b.finish(), "c");
        assert!(dot.contains("label=\"1\""));
    }

    #[test]
    #[should_panic(expected = "refusing to render")]
    fn size_limit_enforced() {
        let mut b = Builder::new();
        let x = b.input();
        let mut acc = x;
        for _ in 0..DOT_COMPONENT_LIMIT + 1 {
            acc = b.not(acc);
        }
        b.outputs(&[acc]);
        let _ = to_dot(&b.finish(), "big");
    }
}
