//! Sampled tape profiling (feature `profile`): executions and wall-clock
//! attributed per micro-op kind and per depth level.
//!
//! The profiled run path ([`crate::CompiledEvaluator::run_into_profiled`])
//! is a *separate* dispatch loop from the hot `run_into` — the production
//! tape replay carries zero profiling branches, and drivers sample (e.g.
//! profile every k-th pass) rather than instrument every pass. Per-op
//! attribution reads the monotonic clock between ops, so absolute
//! nanoseconds include clock overhead (~tens of ns per op); the numbers
//! are for *ranking* kinds and levels against each other, which is what
//! the superinstruction work needs.

use crate::compile::MicroOp;

/// Executions and attributed time for one micro-op kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStat {
    /// Micro-ops of this kind executed.
    pub executions: u64,
    /// Wall-clock attributed to this kind, nanoseconds.
    pub total_ns: u64,
}

/// Executions and attributed time for one depth level of the tape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStat {
    /// Micro-ops executed in this level.
    pub executions: u64,
    /// Wall-clock attributed to this level, nanoseconds.
    pub total_ns: u64,
}

/// Accumulated profile over any number of profiled passes of one tape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TapeProfile {
    /// Per-kind totals, indexed by [`MicroOp::kind_index`].
    pub kinds: [KindStat; MicroOp::NUM_KINDS],
    /// Per-level totals, index 0 = constant prologue, index `l + 1` =
    /// depth level `l` of [`crate::CompiledCircuit::level_ranges`].
    pub levels: Vec<LevelStat>,
    /// Adjacent-pair census: `pairs[prev * NUM_KINDS + cur]` counts how
    /// often an op of kind `cur` directly followed one of kind `prev`
    /// *within the same depth level* (pairs never straddle a level
    /// boundary, matching the fuse pass's legality rule). Empty until
    /// the first profiled pass.
    pub pairs: Vec<u64>,
    /// Profiled passes folded in.
    pub passes: u64,
}

impl TapeProfile {
    /// An empty profile.
    pub fn new() -> TapeProfile {
        TapeProfile::default()
    }

    /// Grows the level table to `n` entries (prologue + levels).
    pub(crate) fn ensure_levels(&mut self, n: usize) {
        if self.levels.len() < n {
            self.levels.resize(n, LevelStat::default());
        }
    }

    /// Records one same-level adjacency of kinds `(prev, cur)`.
    pub(crate) fn record_pair(&mut self, prev: usize, cur: usize) {
        if self.pairs.is_empty() {
            self.pairs = vec![0; MicroOp::NUM_KINDS * MicroOp::NUM_KINDS];
        }
        self.pairs[prev * MicroOp::NUM_KINDS + cur] += 1;
    }

    /// Total micro-ops executed across all profiled passes.
    pub fn total_executions(&self) -> u64 {
        self.kinds.iter().map(|k| k.executions).sum()
    }

    /// Total attributed nanoseconds across all profiled passes.
    pub fn total_ns(&self) -> u64 {
        self.kinds.iter().map(|k| k.total_ns).sum()
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &TapeProfile) {
        for (s, o) in self.kinds.iter_mut().zip(&other.kinds) {
            s.executions += o.executions;
            s.total_ns += o.total_ns;
        }
        self.ensure_levels(other.levels.len());
        for (s, o) in self.levels.iter_mut().zip(&other.levels) {
            s.executions += o.executions;
            s.total_ns += o.total_ns;
        }
        if !other.pairs.is_empty() {
            if self.pairs.is_empty() {
                self.pairs = vec![0; MicroOp::NUM_KINDS * MicroOp::NUM_KINDS];
            }
            for (s, o) in self.pairs.iter_mut().zip(&other.pairs) {
                *s += o;
            }
        }
        self.passes += other.passes;
    }

    /// `(kind_name, stat)` rows with at least one execution, hottest
    /// (most attributed time) first.
    pub fn hot_kinds(&self) -> Vec<(&'static str, KindStat)> {
        let mut rows: Vec<(&'static str, KindStat)> = self
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.executions > 0)
            .map(|(i, k)| (MicroOp::kind_name(i), *k))
            .collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        rows
    }

    /// `((prev_kind, cur_kind), count)` rows with at least one observed
    /// same-level adjacency, most frequent first. This is the table the
    /// `fuse` pass's superinstruction menu is justified against (see
    /// `absort inspect --profile`).
    pub fn hot_pairs(&self) -> Vec<((&'static str, &'static str), u64)> {
        let k = MicroOp::NUM_KINDS;
        let mut rows: Vec<((&'static str, &'static str), u64)> = self
            .pairs
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| ((MicroOp::kind_name(i / k), MicroOp::kind_name(i % k)), c))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_kinds_levels_and_passes() {
        let mut a = TapeProfile::new();
        a.kinds[0] = KindStat {
            executions: 2,
            total_ns: 10,
        };
        a.ensure_levels(1);
        a.levels[0] = LevelStat {
            executions: 2,
            total_ns: 10,
        };
        a.passes = 1;
        let mut b = TapeProfile::new();
        b.kinds[0] = KindStat {
            executions: 3,
            total_ns: 5,
        };
        b.kinds[13] = KindStat {
            executions: 1,
            total_ns: 7,
        };
        b.ensure_levels(2);
        b.levels[1] = LevelStat {
            executions: 4,
            total_ns: 12,
        };
        b.passes = 2;
        a.merge(&b);
        assert_eq!(a.passes, 3);
        assert_eq!(a.kinds[0].executions, 5);
        assert_eq!(a.kinds[0].total_ns, 15);
        assert_eq!(a.levels.len(), 2);
        assert_eq!(a.levels[1].executions, 4);
        assert_eq!(a.total_executions(), 6);
        let hot = a.hot_kinds();
        assert_eq!(hot[0].0, MicroOp::kind_name(0));
        assert_eq!(hot[1].0, MicroOp::kind_name(13));
    }
}
