//! `CompileIr`: the SSA-like mid-level representation of the compiler
//! pipeline `Circuit → lower → passes → regalloc → CompiledCircuit`.
//!
//! The IR is a flat, topologically-ordered op list over *value ids*
//! (`ValId`). Primary inputs own the first `n_inputs` ids; every op
//! defines fresh ids for its outputs (SSA discipline — an id is defined
//! exactly once and never rebound). Passes rewrite the list in place by
//! substituting uses, deleting ops, and recording what happened to each
//! source component in [`CompileIr::comp_fate`]; the topological-order
//! invariant (defs strictly before uses) is preserved by every pass, so
//! each stage can be checked against the interpreter by a single forward
//! scan ([`CompileIr::eval_lanes`]).
//!
//! Provenance is first-class: every op lowered from a netlist component
//! carries that component's index in [`IrOp::comp`], and the fate array
//! says whether the component is still patchable in place
//! ([`CompFate::Live`]), was proven unobservable ([`CompFate::Dead`]),
//! or was folded/merged away so fault campaigns must fall back to a
//! per-mutant recompile ([`CompFate::Folded`]). See `DESIGN.md` for the
//! soundness argument.

use crate::circuit::Circuit;
use crate::component::{Component, GateOp, Perm4};

/// Identifier of one single-bit value in the IR. Inputs are
/// `0..n_inputs`; op definitions follow in lowering order.
pub type ValId = u32;

/// Sentinel for [`IrOp::comp`]: the op was synthesized by the compiler
/// (a constant splat) and has no source component.
pub const NO_COMP: u32 = u32::MAX;

/// The operation an [`IrOp`] performs. Operands are [`ValId`]s; the
/// op's definitions live in [`IrOp::defs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrKind {
    /// A constant value (scheduled into the tape prologue).
    Const {
        /// The constant.
        v: bool,
    },
    /// `defs[0] = !a`.
    Not {
        /// Operand.
        a: ValId,
    },
    /// `defs[0] = op(a, b)`.
    Gate {
        /// The gate operation.
        op: GateOp,
        /// First operand.
        a: ValId,
        /// Second operand.
        b: ValId,
    },
    /// `defs[0] = s ? a1 : a0`.
    Mux {
        /// Select.
        s: ValId,
        /// Taken when `s = 1`.
        a1: ValId,
        /// Taken when `s = 0`.
        a0: ValId,
    },
    /// `defs[0] = !s & x`, `defs[1] = s & x`.
    Demux {
        /// Select.
        s: ValId,
        /// Data.
        x: ValId,
    },
    /// `defs[0] = s ? b : a`, `defs[1] = s ? a : b`.
    Switch2 {
        /// Control.
        s: ValId,
        /// Upper input.
        a: ValId,
        /// Lower input.
        b: ValId,
    },
    /// `defs[0] = a & b` (min), `defs[1] = a | b` (max).
    BitCompare {
        /// First operand.
        a: ValId,
        /// Second operand.
        b: ValId,
    },
    /// 4×4 switch: `defs[j] = ins[perms[2*s1 + s0][j]]`.
    Switch4 {
        /// High select bit.
        s1: ValId,
        /// Low select bit.
        s0: ValId,
        /// The four data inputs.
        ins: [ValId; 4],
        /// Permutation per select value.
        perms: [Perm4; 4],
    },
}

impl IrKind {
    /// Number of values this op defines (prefix of [`IrOp::defs`]).
    #[inline]
    pub fn n_defs(&self) -> usize {
        match self {
            IrKind::Const { .. }
            | IrKind::Not { .. }
            | IrKind::Gate { .. }
            | IrKind::Mux { .. } => 1,
            IrKind::Demux { .. } | IrKind::Switch2 { .. } | IrKind::BitCompare { .. } => 2,
            IrKind::Switch4 { .. } => 4,
        }
    }

    /// Visits every operand value.
    pub fn for_each_use(&self, mut f: impl FnMut(ValId)) {
        match *self {
            IrKind::Const { .. } => {}
            IrKind::Not { a } => f(a),
            IrKind::Gate { a, b, .. } | IrKind::BitCompare { a, b } => {
                f(a);
                f(b);
            }
            IrKind::Mux { s, a1, a0 } => {
                f(s);
                f(a1);
                f(a0);
            }
            IrKind::Demux { s, x } => {
                f(s);
                f(x);
            }
            IrKind::Switch2 { s, a, b } => {
                f(s);
                f(a);
                f(b);
            }
            IrKind::Switch4 { s1, s0, ins, .. } => {
                f(s1);
                f(s0);
                for v in ins {
                    f(v);
                }
            }
        }
    }

    /// Rewrites every operand value through `f` (used to apply a pass's
    /// substitution map).
    pub fn map_uses(&mut self, mut f: impl FnMut(ValId) -> ValId) {
        match self {
            IrKind::Const { .. } => {}
            IrKind::Not { a } => *a = f(*a),
            IrKind::Gate { a, b, .. } | IrKind::BitCompare { a, b } => {
                *a = f(*a);
                *b = f(*b);
            }
            IrKind::Mux { s, a1, a0 } => {
                *s = f(*s);
                *a1 = f(*a1);
                *a0 = f(*a0);
            }
            IrKind::Demux { s, x } => {
                *s = f(*s);
                *x = f(*x);
            }
            IrKind::Switch2 { s, a, b } => {
                *s = f(*s);
                *a = f(*a);
                *b = f(*b);
            }
            IrKind::Switch4 { s1, s0, ins, .. } => {
                *s1 = f(*s1);
                *s0 = f(*s0);
                for v in ins.iter_mut() {
                    *v = f(*v);
                }
            }
        }
    }
}

/// One IR op: an [`IrKind`] plus its definitions and provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrOp {
    /// The operation and its operands.
    pub kind: IrKind,
    /// Defined values; the first [`IrKind::n_defs`] entries are valid.
    pub defs: [ValId; 4],
    /// Source component index, or [`NO_COMP`] for synthesized ops.
    pub comp: u32,
    /// Set by CSE on a surviving op that now stands for more than one
    /// source component: patching it would fault all of them at once,
    /// so it is non-patchable-by-sharing.
    pub shared: bool,
    /// Set by the mask-reuse pass: this 4×4 switch may reuse the select
    /// masks computed by the (identical-control) switch directly before
    /// it on the scheduled tape.
    pub reuse_masks: bool,
    /// Depth level assigned by the schedule stage (constants are 0 and
    /// go to the prologue; component ops start at 1).
    pub level: u32,
}

impl IrOp {
    /// The valid prefix of [`IrOp::defs`].
    #[inline]
    pub fn defs(&self) -> &[ValId] {
        &self.defs[..self.kind.n_defs()]
    }
}

/// What the pipeline did with one source component — the provenance
/// contract [`crate::CompiledCircuit::mutant_tape`] relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompFate {
    /// Still represented by exactly one op carrying its index; faults
    /// can be patched on the tape in place.
    #[default]
    Live,
    /// Removed because no output observes it (dead code). A mutant of
    /// this component is output-equivalent to the base circuit.
    Dead,
    /// Folded, rewritten, or merged by an optimization: the tape holds
    /// no faithful image of the component, so fault campaigns must
    /// recompile the rewritten netlist for mutants at this site —
    /// unless the per-site [`FoldHint`] proves a given fault *kind*
    /// output-equivalent to the base.
    Folded,
}

/// Why a [`CompFate::Folded`] component's tape image went away.
///
/// Recorded by the folding passes alongside the fate and consulted by
/// `CompiledCircuit::mutant_tape`: some fold reasons prove that specific
/// fault kinds at the site cannot change any output, so those mutants
/// score as dead in place instead of forcing a per-mutant recompile.
/// Every hint's equivalence is *pointwise* (it holds for all values of
/// the live operands), which also keeps it valid inside multi-fault
/// sets: any other fault able to disturb a hint's premise necessarily
/// sits on a folded site itself, where it is either a no-op too or
/// forces the whole set onto the recompile fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FoldHint {
    /// No kind-level knowledge (CSE merges, gate/constant folds): every
    /// fault at the site falls back to a recompile.
    #[default]
    None,
    /// The line a stuck-select fault would tie (the sole select of a
    /// mux/demux/2×2 switch, `s0` of a 4×4 switch) is the compile-time
    /// constant `v` on every input vector. Tying it to the same polarity
    /// is a no-op; the opposite polarity or an inverted behaviour still
    /// needs the recompile fallback.
    SelectKnown(bool),
    /// Every output of the component provably equals its base value
    /// under *any* applicable fault kind (operand-equality folds such as
    /// a mux with identical arms, or a folded op later deleted outright
    /// by DCE): all mutants at the site are dead.
    Equivalent,
    /// Folded with live aliases baked into downstream uses (the demux
    /// with a constant-1 data input, whose `d1` becomes an alias of the
    /// select): a surviving rewrite op underestimates the component's
    /// fanout, so this is never upgraded by DCE and always recompiles.
    Rewritten,
}

/// The IR for one circuit as it flows through the pass pipeline.
#[derive(Debug, Clone)]
pub struct CompileIr {
    /// Ops in topological order (defs strictly before uses).
    pub ops: Vec<IrOp>,
    /// Total value ids allocated (substitutions may leave some unused).
    pub n_vals: u32,
    /// Number of primary inputs; they own value ids `0..n_inputs`.
    pub n_inputs: u32,
    /// Designated output values, in output order.
    pub outputs: Vec<ValId>,
    /// Canonical constant-`false` value (always defined by an op).
    pub const_false: ValId,
    /// Canonical constant-`true` value (always defined by an op).
    pub const_true: ValId,
    /// Fate of each source component, indexed by component.
    pub comp_fate: Vec<CompFate>,
    /// Fold reason of each source component (meaningful only where the
    /// fate is [`CompFate::Folded`]), indexed by component.
    pub fold_hint: Vec<FoldHint>,
    /// Wire count of the source circuit (for slot-savings reporting).
    pub source_wires: u32,
    /// Per-rule application counts recorded by the `rewrite` pass
    /// (rule name → number of sites rewritten), surfaced by
    /// `CompiledCircuit::rewrite_hits` and `absort inspect`.
    pub rewrite_hits: Vec<(String, u32)>,
}

/// Lowers a netlist into the IR: two canonical constant ops first (so
/// constant-propagation always has a `false`/`true` value to alias to;
/// DCE drops them when unused), then the circuit's constant wires, then
/// every component in builder (topological) order.
pub fn lower(c: &Circuit) -> CompileIr {
    let n_inputs = c.n_inputs() as u32;
    let mut next_val = n_inputs;
    let mut fresh = |n: usize| {
        let v = next_val;
        next_val += n as u32;
        v
    };

    let mut wire_val = vec![NO_COMP; c.n_wires()];
    for (i, w) in c.input_wires().iter().enumerate() {
        wire_val[w.index()] = i as u32;
    }

    let comps = c.components();
    let mut ops = Vec::with_capacity(comps.len() + c.const_wires().len() + 2);

    let push_const = |ops: &mut Vec<IrOp>, v: bool, def: ValId| {
        ops.push(IrOp {
            kind: IrKind::Const { v },
            defs: [def, 0, 0, 0],
            comp: NO_COMP,
            shared: false,
            reuse_masks: false,
            level: 0,
        });
    };

    let const_false = fresh(1);
    push_const(&mut ops, false, const_false);
    let const_true = fresh(1);
    push_const(&mut ops, true, const_true);

    for &(w, v) in c.const_wires() {
        let def = fresh(1);
        wire_val[w.index()] = def;
        push_const(&mut ops, v, def);
    }

    for (ci, p) in comps.iter().enumerate() {
        let n_out = p.comp.n_outputs();
        let base = fresh(n_out);
        let mut defs = [0u32; 4];
        for (k, d) in defs.iter_mut().enumerate().take(n_out) {
            *d = base + k as u32;
            wire_val[p.out_base as usize + k] = *d;
        }
        let v = |w: &crate::wire::Wire| wire_val[w.index()];
        let kind = match &p.comp {
            Component::Not { a } => IrKind::Not { a: v(a) },
            Component::Gate { op, a, b } => IrKind::Gate {
                op: *op,
                a: v(a),
                b: v(b),
            },
            Component::Mux2 { sel, a0, a1 } => IrKind::Mux {
                s: v(sel),
                a1: v(a1),
                a0: v(a0),
            },
            Component::Demux2 { sel, x } => IrKind::Demux { s: v(sel), x: v(x) },
            Component::Switch2 { ctrl, a, b } => IrKind::Switch2 {
                s: v(ctrl),
                a: v(a),
                b: v(b),
            },
            Component::BitCompare { a, b } => IrKind::BitCompare { a: v(a), b: v(b) },
            Component::Switch4 { s1, s0, ins, perms } => IrKind::Switch4 {
                s1: v(s1),
                s0: v(s0),
                ins: [v(&ins[0]), v(&ins[1]), v(&ins[2]), v(&ins[3])],
                perms: *perms,
            },
        };
        ops.push(IrOp {
            kind,
            defs,
            comp: ci as u32,
            shared: false,
            reuse_masks: false,
            level: 0,
        });
    }

    let outputs = c
        .output_wires()
        .iter()
        .map(|w| wire_val[w.index()])
        .collect();

    CompileIr {
        ops,
        n_vals: next_val,
        n_inputs,
        outputs,
        const_false,
        const_true,
        comp_fate: vec![CompFate::Live; comps.len()],
        fold_hint: vec![FoldHint::None; comps.len()],
        source_wires: c.n_wires() as u32,
        rewrite_hits: Vec::new(),
    }
}

impl CompileIr {
    /// Number of source components.
    #[inline]
    pub fn source_components(&self) -> usize {
        self.comp_fate.len()
    }

    /// Marks a component folded (never downgrades `Folded`; upgrades
    /// `Dead` to `Folded` is impossible because folding passes run
    /// before DCE). Leaves any previously recorded [`FoldHint`]
    /// untouched. No-op for [`NO_COMP`].
    pub fn fold_comp(&mut self, comp: u32) {
        if comp != NO_COMP {
            self.comp_fate[comp as usize] = CompFate::Folded;
        }
    }

    /// [`CompileIr::fold_comp`] plus the reason: records why the tape
    /// image went away so `mutant_tape` can skip recompiles for fault
    /// kinds the fold provably masks. No-op for [`NO_COMP`].
    pub fn fold_comp_hinted(&mut self, comp: u32, hint: FoldHint) {
        if comp != NO_COMP {
            self.comp_fate[comp as usize] = CompFate::Folded;
            self.fold_hint[comp as usize] = hint;
        }
    }

    /// Drops every op whose `keep` flag is false, preserving order.
    pub fn retain_ops(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.ops.len());
        let mut i = 0;
        self.ops.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    /// Evaluates the IR on 64 packed input vectors (bit `j` of
    /// `inputs[i]` is input `i` of vector `j`) by one forward scan —
    /// the reference executor the per-pass differential check compares
    /// against the interpreter.
    pub fn eval_lanes(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.n_inputs as usize, "input arity");
        let mut vals = vec![0u64; self.n_vals as usize];
        vals[..inputs.len()].copy_from_slice(inputs);
        for op in &self.ops {
            let d = op.defs;
            match op.kind {
                IrKind::Const { v } => vals[d[0] as usize] = if v { !0 } else { 0 },
                IrKind::Not { a } => vals[d[0] as usize] = !vals[a as usize],
                IrKind::Gate { op: g, a, b } => {
                    let (x, y) = (vals[a as usize], vals[b as usize]);
                    vals[d[0] as usize] = match g {
                        GateOp::And => x & y,
                        GateOp::Or => x | y,
                        GateOp::Xor => x ^ y,
                        GateOp::Nand => !(x & y),
                        GateOp::Nor => !(x | y),
                        GateOp::Xnor => !(x ^ y),
                    };
                }
                IrKind::Mux { s, a1, a0 } => {
                    let sv = vals[s as usize];
                    vals[d[0] as usize] = (sv & vals[a1 as usize]) | (!sv & vals[a0 as usize]);
                }
                IrKind::Demux { s, x } => {
                    let (sv, xv) = (vals[s as usize], vals[x as usize]);
                    vals[d[0] as usize] = !sv & xv;
                    vals[d[1] as usize] = sv & xv;
                }
                IrKind::Switch2 { s, a, b } => {
                    let (sv, av, bv) = (vals[s as usize], vals[a as usize], vals[b as usize]);
                    vals[d[0] as usize] = (sv & bv) | (!sv & av);
                    vals[d[1] as usize] = (sv & av) | (!sv & bv);
                }
                IrKind::BitCompare { a, b } => {
                    let (av, bv) = (vals[a as usize], vals[b as usize]);
                    vals[d[0] as usize] = av & bv;
                    vals[d[1] as usize] = av | bv;
                }
                IrKind::Switch4 { s1, s0, ins, perms } => {
                    let (v1, v0) = (vals[s1 as usize], vals[s0 as usize]);
                    let m = [!v1 & !v0, !v1 & v0, v1 & !v0, v1 & v0];
                    let iv = [
                        vals[ins[0] as usize],
                        vals[ins[1] as usize],
                        vals[ins[2] as usize],
                        vals[ins[3] as usize],
                    ];
                    for j in 0..4 {
                        vals[d[j] as usize] = (m[0] & iv[perms[0][j] as usize])
                            | (m[1] & iv[perms[1][j] as usize])
                            | (m[2] & iv[perms[2][j] as usize])
                            | (m[3] & iv[perms[3][j] as usize]);
                    }
                }
            }
        }
        self.outputs.iter().map(|&o| vals[o as usize]).collect()
    }

    /// Checks the structural invariants passes must preserve: value ids
    /// in range, defs strictly before uses, SSA single-definition, and
    /// outputs defined. Used by debug assertions in the pass manager.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut defined = vec![false; self.n_vals as usize];
        for v in 0..self.n_inputs {
            defined[v as usize] = true;
        }
        for (i, op) in self.ops.iter().enumerate() {
            let mut err = None;
            op.kind.for_each_use(|v| {
                if err.is_none() {
                    if v >= self.n_vals {
                        err = Some(format!("op {i}: use {v} out of range"));
                    } else if !defined[v as usize] {
                        err = Some(format!("op {i}: use {v} before definition"));
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            for &d in op.defs() {
                if d >= self.n_vals {
                    return Err(format!("op {i}: def {d} out of range"));
                }
                if defined[d as usize] {
                    return Err(format!("op {i}: value {d} defined twice"));
                }
                defined[d as usize] = true;
            }
        }
        for (k, &o) in self.outputs.iter().enumerate() {
            if o >= self.n_vals || !defined[o as usize] {
                return Err(format!("output {k}: value {o} undefined"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn sample() -> Circuit {
        let mut b = Builder::new();
        let ins = b.input_bus(3);
        let t = b.constant(true);
        let g = b.and(ins[0], ins[1]);
        let m = b.mux2(ins[2], g, t);
        b.outputs(&[m, g]);
        b.finish()
    }

    #[test]
    fn lower_preserves_structure() {
        let c = sample();
        let ir = lower(&c);
        assert_eq!(ir.n_inputs, 3);
        // 2 canonical consts + 1 circuit const + 2 components.
        assert_eq!(ir.ops.len(), 5);
        assert_eq!(ir.source_components(), 2);
        assert!(ir.check_invariants().is_ok());
    }

    #[test]
    fn ir_eval_matches_interpreter() {
        let c = sample();
        let ir = lower(&c);
        let n = c.n_inputs();
        let mut packed = vec![0u64; n];
        for v in 0..1u64 << n {
            for (i, p) in packed.iter_mut().enumerate() {
                if v >> i & 1 == 1 {
                    *p |= 1 << v;
                }
            }
        }
        assert_eq!(ir.eval_lanes(&packed), c.eval_lanes(&packed));
    }
}
