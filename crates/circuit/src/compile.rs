//! Compiled levelized evaluation: the [`MicroOp`] tape, its evaluator,
//! and in-place mutant patching.
//!
//! The enum-dispatch interpreter in [`crate::eval`] walks the component
//! list and indexes a wire buffer that is as wide as the netlist — for a
//! mux-merger at `n = 1024` that is hundreds of kilobytes touched per
//! pass, far beyond L1. The paper's Model A networks are pure
//! feed-forward bit-level circuits, which makes them ideal one-time
//! compilation targets (compare the explicit depth-staged forms used for
//! sorting-network verification in Bundala & Závodný, arXiv:1310.6271,
//! and Théry, arXiv:2203.01579).
//!
//! [`CompiledCircuit::compile`] runs the staged pipeline
//! `Circuit → CompileIr → PassManager → regalloc → CompiledCircuit`:
//! lowering lives in [`crate::ir`], every transform (constant prologue,
//! constant propagation, CSE, DCE, select-mask reuse) is a named pass
//! in [`crate::passes`], and slot allocation plus tape emission live in
//! [`crate::regalloc`]. [`CompiledCircuit::compile_with`] exposes the
//! pass set (`--opt-level` / `--passes` on the CLI); per-pass op counts
//! land in [`CompiledCircuit::pass_stats`]. The tape properties:
//!
//! * **fused micro-ops** — every primitive becomes a single opcode with
//!   `u32` slot operands (`Nand`/`Nor`/`Xnor` are single ops, not
//!   gate-plus-inverter; the 4×4 switch computes its four select masks
//!   once and drives all four outputs in one op, and consecutive
//!   switches sharing a control pair — one swapper column — skip the
//!   mask computation entirely via [`REUSE_MASKS`]);
//! * **register allocation by last-use liveness** — values live in
//!   *slots* that are freed at their last read and reused, so the working
//!   buffer shrinks from `n_wires` entries to the peak live-slot count.
//!   This is the real win at `n = 256+`: the hot buffer drops back into
//!   L1/L2 and stays there for the whole sweep;
//! * **levelization** — ops are emitted grouped by bit-level depth stage
//!   ([`CompiledCircuit::level_ranges`]), the substrate for future
//!   intra-vector parallelism and for depth-staged batch sharding.
//!
//! [`CompiledEvaluator`] then replays the tape with the same `run` /
//! `run_into` / `try_*` surface as [`crate::Evaluator`], over any
//! [`Lane`] type, and [`CompiledCircuit::eval_batch_parallel`] shards
//! packed 64-lane groups across threads exactly like the interpreter's
//! batch path. Equivalence with the interpreter is enforced by the
//! differential suites (`crates/circuit/tests/differential.rs`, the
//! workspace-level `tests/compiled_differential.rs` and
//! `tests/pass_pipeline.rs`) plus the pass manager's own per-pass
//! differential check.

use crate::circuit::Circuit;
use crate::component::Perm4;
use crate::eval::EvalError;
use crate::ir::FoldHint;
use crate::lane::Lane;
use crate::mutate::Fault;
use crate::passes::{CompileOptions, PassManager, PassStats};
use crate::regalloc::intern_perms;

/// Which evaluation engine a driver should use. Sweep drivers (exhaustive
/// verification, fault campaigns, batch sorting) default to
/// [`Engine::Compiled`]; the interpreter remains available for
/// differential testing and for one-shot evaluations where the lowering
/// pass would not amortize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The enum-dispatch interpreter ([`crate::Evaluator`]).
    Interp,
    /// The compiled micro-op tape ([`CompiledEvaluator`]).
    #[default]
    Compiled,
}

impl Engine {
    /// Both engines, in differential-test order.
    pub const ALL: [Engine; 2] = [Engine::Interp, Engine::Compiled];

    /// Stable name used by CLIs, reports, and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Interp => "interp",
            Engine::Compiled => "compiled",
        }
    }

    /// Parses a CLI `--engine` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Engine> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interp" | "interpreter" => Some(Engine::Interp),
            "compiled" | "compile" => Some(Engine::Compiled),
            _ => None,
        }
    }

    /// The accepted `--engine` spellings, for CLI error messages.
    pub const VALID: &'static str = "interp, interpreter, compiled, compile";
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fused instruction of the compiled tape. All operands are *slot*
/// indices into the evaluator's working buffer (not wire indices — slots
/// are reused once their value is dead). Destination fields are named
/// `d`/`d0`/`d1`; a destination may legally alias a source slot, because
/// every op reads all of its sources before writing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Prologue splat of a constant into a slot.
    Const {
        /// Destination slot.
        d: u32,
        /// The constant value.
        v: bool,
    },
    /// `d = !a`.
    Not {
        /// Destination slot.
        d: u32,
        /// Source slot.
        a: u32,
    },
    /// `d = a & b`.
    And {
        /// Destination slot.
        d: u32,
        /// First source slot.
        a: u32,
        /// Second source slot.
        b: u32,
    },
    /// `d = a | b`.
    Or {
        /// Destination slot.
        d: u32,
        /// First source slot.
        a: u32,
        /// Second source slot.
        b: u32,
    },
    /// `d = a ^ b`.
    Xor {
        /// Destination slot.
        d: u32,
        /// First source slot.
        a: u32,
        /// Second source slot.
        b: u32,
    },
    /// `d = !(a & b)` — fused, no separate inverter op.
    Nand {
        /// Destination slot.
        d: u32,
        /// First source slot.
        a: u32,
        /// Second source slot.
        b: u32,
    },
    /// `d = !(a | b)` — fused.
    Nor {
        /// Destination slot.
        d: u32,
        /// First source slot.
        a: u32,
        /// Second source slot.
        b: u32,
    },
    /// `d = !(a ^ b)` — fused.
    Xnor {
        /// Destination slot.
        d: u32,
        /// First source slot.
        a: u32,
        /// Second source slot.
        b: u32,
    },
    /// `d = s ? a1 : a0` (per lane).
    Mux {
        /// Destination slot.
        d: u32,
        /// Select slot.
        s: u32,
        /// Taken when the select lane is 1.
        a1: u32,
        /// Taken when the select lane is 0.
        a0: u32,
    },
    /// `d0 = !s & x`, `d1 = s & x`.
    Demux {
        /// Slot for the `sel = 0` branch.
        d0: u32,
        /// Slot for the `sel = 1` branch.
        d1: u32,
        /// Select slot.
        s: u32,
        /// Data slot.
        x: u32,
    },
    /// `d0 = s ? b : a`, `d1 = s ? a : b`.
    Switch2 {
        /// Upper output slot.
        d0: u32,
        /// Lower output slot.
        d1: u32,
        /// Control slot.
        s: u32,
        /// Upper input slot.
        a: u32,
        /// Lower input slot.
        b: u32,
    },
    /// `d0 = a`, `d1 = b` — a fixed two-way route. Lowering never emits
    /// this; [`CompiledCircuit::mutant_tape`] uses it to express a 2×2
    /// switch whose control line is stuck at a constant.
    Route2 {
        /// Upper output slot.
        d0: u32,
        /// Lower output slot.
        d1: u32,
        /// Slot routed to `d0`.
        a: u32,
        /// Slot routed to `d1`.
        b: u32,
    },
    /// `d0 = a & b` (min), `d1 = a | b` (max) — both halves in one op.
    BitCompare {
        /// Min output slot.
        d0: u32,
        /// Max output slot.
        d1: u32,
        /// First source slot.
        a: u32,
        /// Second source slot.
        b: u32,
    },
    /// Fused 4×4 switch. The four select masks are computed once and
    /// reused across all four outputs — and, when [`REUSE_MASKS`] is set,
    /// carried over from the previous op entirely (consecutive switches
    /// of one swapper column share a control pair; the compiler proves
    /// statically that the control slots are unchanged in between).
    Switch4 {
        /// The four destination slots.
        d: [u32; 4],
        /// The four data-input slots.
        ins: [u32; 4],
        /// High select-bit slot.
        s1: u32,
        /// Low select-bit slot.
        s0: u32,
        /// Index into [`CompiledCircuit::perm_sets`] (circuits draw from
        /// a handful of distinct permutation sets, so the table stays
        /// cache-resident), with [`REUSE_MASKS`] or-ed into the high bit.
        pidx: u32,
    },
    /// Superinstruction: two simple ops executed by a single dispatch.
    /// `idx` indexes [`CompiledCircuit::fused_pairs`], which holds the
    /// original encodings. Created only by the post-regalloc `fuse`
    /// pass ([`crate::fuse`]); fused source components are marked
    /// [`COMP_FOLDED`] with [`FoldHint::Rewritten`], so fault campaigns
    /// recompile instead of patching through the fused encoding.
    Pair2 {
        /// Index into [`CompiledCircuit::fused_pairs`].
        idx: u32,
    },
    /// Superinstruction: a run of 4×4 switches steered by one shared
    /// control pair (the runs the mask-reuse pass flags) executed by a
    /// single dispatch — the select masks are computed once and kept in
    /// registers across the whole run. `idx` indexes
    /// [`CompiledCircuit::s4_chains`]. Same provenance contract as
    /// [`MicroOp::Pair2`].
    S4Chain {
        /// Index into [`CompiledCircuit::s4_chains`].
        idx: u32,
    },
}

/// Side-table entry of one fused 4×4-switch chain: the shared control
/// slots plus a range of [`S4Item`]s in [`CompiledCircuit::s4_items`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct S4ChainData {
    /// High select-bit slot (shared by every switch in the chain).
    pub s1: u32,
    /// Low select-bit slot.
    pub s0: u32,
    /// First item index in [`CompiledCircuit::s4_items`].
    pub start: u32,
    /// Number of switches in the chain (≥ 2).
    pub len: u32,
}

/// One 4×4 switch of a fused chain (controls live in the owning
/// [`S4ChainData`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct S4Item {
    /// The four destination slots.
    pub d: [u32; 4],
    /// The four data-input slots.
    pub ins: [u32; 4],
    /// Index into [`CompiledCircuit::perm_sets`] (no [`REUSE_MASKS`]
    /// bit — reuse is implied by chain membership).
    pub pidx: u32,
}

/// High bit of [`MicroOp::Switch4::pidx`]: the select masks of the
/// previous tape op (also a `Switch4`, over the same still-live control
/// slots) are valid for this op and need not be recomputed.
pub const REUSE_MASKS: u32 = 1 << 31;

impl MicroOp {
    /// Number of distinct profiling kinds: the 16 variants, with
    /// mask-reusing `Switch4` split from mask-computing `Switch4`
    /// (their dispatch cost differs by the whole mask computation).
    pub const NUM_KINDS: usize = 17;

    /// Dense stable index of this op's kind, `0..NUM_KINDS`.
    pub fn kind_index(&self) -> usize {
        match self {
            MicroOp::Const { .. } => 0,
            MicroOp::Not { .. } => 1,
            MicroOp::And { .. } => 2,
            MicroOp::Or { .. } => 3,
            MicroOp::Xor { .. } => 4,
            MicroOp::Nand { .. } => 5,
            MicroOp::Nor { .. } => 6,
            MicroOp::Xnor { .. } => 7,
            MicroOp::Mux { .. } => 8,
            MicroOp::Demux { .. } => 9,
            MicroOp::Switch2 { .. } => 10,
            MicroOp::Route2 { .. } => 11,
            MicroOp::BitCompare { .. } => 12,
            MicroOp::Switch4 { pidx, .. } => {
                if pidx & REUSE_MASKS != 0 {
                    14
                } else {
                    13
                }
            }
            MicroOp::Pair2 { .. } => 15,
            MicroOp::S4Chain { .. } => 16,
        }
    }

    /// Display name of kind `idx` (inverse of [`MicroOp::kind_index`]).
    pub fn kind_name(idx: usize) -> &'static str {
        match idx {
            0 => "const",
            1 => "not",
            2 => "and",
            3 => "or",
            4 => "xor",
            5 => "nand",
            6 => "nor",
            7 => "xnor",
            8 => "mux",
            9 => "demux",
            10 => "switch2",
            11 => "route2",
            12 => "bitcompare",
            13 => "switch4",
            14 => "switch4+reuse",
            15 => "pair2",
            16 => "s4chain",
            _ => "?",
        }
    }
}

/// A circuit lowered to a register-allocated, levelized micro-op tape.
/// Produced once by [`CompiledCircuit::compile`] (or
/// [`Circuit::compile`]) and evaluated any number of times by
/// [`CompiledEvaluator`].
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    pub(crate) tape: Vec<MicroOp>,
    /// Deduplicated 4×4-switch permutation sets, indexed by
    /// [`MicroOp::Switch4::pidx`].
    pub(crate) perm_sets: Vec<[Perm4; 4]>,
    pub(crate) n_slots: u32,
    pub(crate) input_slots: Vec<u32>,
    pub(crate) output_slots: Vec<u32>,
    pub(crate) prologue_len: u32,
    /// `(start, end)` tape index ranges, one per non-empty depth level
    /// (the prologue is not part of any level).
    pub(crate) level_ranges: Vec<(u32, u32)>,
    /// Tape position of each source component, or a fate sentinel:
    /// [`COMP_DEAD`] when the component was eliminated as dead code
    /// (mutants of it are output-equivalent to the base circuit),
    /// [`COMP_FOLDED`] when an optimization folded or merged it away so
    /// no faithful tape image exists (mutants need a recompile). Lets
    /// [`CompiledCircuit::mutant_tape`] patch single-component faults in
    /// place instead of re-lowering the whole netlist per mutant.
    pub(crate) comp_pos: Vec<u32>,
    /// Per-component fold reason (meaningful at [`COMP_FOLDED`] sites):
    /// lets `mutant_tape` report fault kinds a fold provably masks as
    /// dead instead of falling back to a recompile.
    pub(crate) fold_hint: Vec<FoldHint>,
    /// Wire count of the source circuit, kept for slot-savings reporting.
    pub(crate) source_wires: u32,
    /// Component count of the source circuit (tape length differs once
    /// dead components are eliminated).
    pub(crate) source_components: u32,
    /// Per-pass before/after op counts recorded by the pass manager.
    pub(crate) pass_stats: Vec<PassStats>,
    /// Per-rule application counts recorded by the `rewrite` pass
    /// (rule name → hits), empty when the pass did not run or matched
    /// nothing. Surfaced by `absort inspect` and telemetry.
    pub(crate) rewrite_hits: Vec<(String, u32)>,
    /// Original encodings of [`MicroOp::Pair2`] superinstructions
    /// (empty unless the `fuse` pass ran).
    pub(crate) fused_pairs: Vec<[MicroOp; 2]>,
    /// Chain descriptors of [`MicroOp::S4Chain`] superinstructions.
    pub(crate) s4_chains: Vec<S4ChainData>,
    /// Flat item storage for every [`S4ChainData`] range.
    pub(crate) s4_items: Vec<S4Item>,
}

/// [`CompiledCircuit::comp_pos`] sentinel: component eliminated as dead
/// code — a mutant of it cannot change any output.
pub(crate) const COMP_DEAD: u32 = u32::MAX;
/// [`CompiledCircuit::comp_pos`] sentinel: component folded, rewritten,
/// or CSE-merged — in-place patching is unsound, recompile instead.
pub(crate) const COMP_FOLDED: u32 = u32::MAX - 1;

/// Outcome of [`CompiledCircuit::mutant_tape`].
pub enum MutantTape<'a> {
    /// The tape is patched in place; dropping the guard restores the
    /// base tape (and permutation table) exactly.
    Patched(PatchGuard<'a>),
    /// The faulted component was eliminated as dead code, so the mutant
    /// is output-equivalent to the base circuit: no evaluation needed.
    Dead,
    /// No in-place encoding exists for this `(component, fault)` pair;
    /// callers fall back to compiling the rewritten netlist.
    Unsupported,
}

/// Outcome of [`CompiledCircuit::mutant_tape_multi`]: the k-fault
/// analogue of [`MutantTape`].
pub enum MultiMutantTape<'a> {
    /// All live patches applied; dropping the guard restores the base
    /// tape exactly.
    Patched(MultiPatchGuard<'a>),
    /// Every faulted component was eliminated as dead code (or the patch
    /// set was empty), so the mutant is output-equivalent to the base.
    Dead,
    /// At least one `(component, fault)` pair has no in-place encoding;
    /// any patches already applied were rolled back. Callers fall back to
    /// compiling the rewritten netlist.
    Unsupported,
}

/// Everything needed to undo one in-place tape patch.
struct PatchRecord {
    pos: usize,
    saved: MicroOp,
    /// `(tape index, original pidx)` of a following 4×4 switch whose
    /// mask-reuse flag the patch had to clear.
    saved_next: Option<(usize, u32)>,
    /// Permutation-table length before the patch; sets the patch
    /// interned are dropped on restore.
    perm_len: usize,
}

fn undo_patch(cc: &mut CompiledCircuit, rec: &PatchRecord) {
    cc.tape[rec.pos] = rec.saved;
    if let Some((i, pidx)) = rec.saved_next {
        if let MicroOp::Switch4 { pidx: slot, .. } = &mut cc.tape[i] {
            *slot = pidx;
        }
    }
    cc.perm_sets.truncate(rec.perm_len);
}

/// Outcome of one patch attempt, before it is wrapped in a guard.
enum PatchStep {
    Applied(PatchRecord),
    Dead,
    Unsupported,
}

/// RAII view of a [`CompiledCircuit`] with one mutant patch applied.
/// Dereferences to the patched circuit for evaluation; restores the
/// original op (and any cleared mask-reuse flag) on drop.
pub struct PatchGuard<'a> {
    cc: &'a mut CompiledCircuit,
    rec: PatchRecord,
}

impl std::ops::Deref for PatchGuard<'_> {
    type Target = CompiledCircuit;
    fn deref(&self) -> &CompiledCircuit {
        self.cc
    }
}

impl Drop for PatchGuard<'_> {
    fn drop(&mut self) {
        undo_patch(self.cc, &self.rec);
    }
}

/// RAII view of a [`CompiledCircuit`] with a *set* of mutant patches
/// applied. Restores the original tape on drop by undoing the patches in
/// reverse application order — required for correctness when two patches
/// touch adjacent ops (a stuck-select patch may clear the mask-reuse flag
/// of the very op a later patch then rewrites).
pub struct MultiPatchGuard<'a> {
    cc: &'a mut CompiledCircuit,
    recs: Vec<PatchRecord>,
}

impl MultiPatchGuard<'_> {
    /// Number of live patches applied (dead-code components inject
    /// nothing and are not counted).
    pub fn n_patches(&self) -> usize {
        self.recs.len()
    }
}

impl std::ops::Deref for MultiPatchGuard<'_> {
    type Target = CompiledCircuit;
    fn deref(&self) -> &CompiledCircuit {
        self.cc
    }
}

impl Drop for MultiPatchGuard<'_> {
    fn drop(&mut self) {
        for rec in self.recs.iter().rev() {
            undo_patch(self.cc, rec);
        }
    }
}

impl CompiledCircuit {
    /// Compiles a circuit at the default optimization level
    /// ([`crate::passes::OptLevel::O2`] — every pass enabled). One-time
    /// cost, linear in the netlist.
    pub fn compile(c: &Circuit) -> CompiledCircuit {
        CompiledCircuit::compile_with(c, &CompileOptions::default())
    }

    /// Compiles a circuit through the staged pipeline
    /// `lower → passes → schedule → regalloc` with an explicit pass
    /// set. In debug builds (or with [`CompileOptions::verify`]) the
    /// pass manager re-checks IR-vs-interpreter equivalence after every
    /// stage.
    pub fn compile_with(c: &Circuit, opts: &CompileOptions) -> CompiledCircuit {
        #[cfg(feature = "telemetry")]
        let _span = absort_telemetry::span("compile/lower");

        let mut ir = crate::ir::lower(c);
        let stats = PassManager::new(*opts).run(c, &mut ir);
        let mut cc = crate::regalloc::allocate_with(&ir, opts.par_safe);
        cc.pass_stats = stats;
        if opts.fuse {
            crate::fuse::fuse(&mut cc);
        }

        #[cfg(feature = "telemetry")]
        absort_telemetry::counter_add_many(&[
            ("compile.circuits", 1),
            ("compile.tape_ops", cc.tape.len() as u64),
            ("compile.levels", cc.level_ranges.len() as u64),
            ("compile.slots", u64::from(cc.n_slots)),
            ("compile.slots_saved", cc.slots_saved()),
            (
                "compile.dead_ops",
                cc.comp_pos.iter().filter(|&&p| p >= COMP_FOLDED).count() as u64,
            ),
        ]);

        cc
    }

    /// Expresses the single-component netlist mutant `(component, fault)`
    /// (the mutants enumerated by [`crate::mutate::mutants`]) as an
    /// in-place patch of this tape, avoiding a full re-lowering per
    /// mutant — the dominant cost of compiled fault campaigns at small
    /// `n`, where a mutant is evaluated for only a handful of passes.
    ///
    /// This is sound because the netlist rewrites preserve the component
    /// list, the wire table, and every data dependency: behaviour
    /// inversions permute an op's existing operands or flip its opcode,
    /// and stuck selects *remove* a dependency (the faulted op reads a
    /// subset of its old sources). Levelization, liveness, and the slot
    /// assignment of the base tape therefore remain valid; only the one
    /// op's encoding changes. Mask-reuse flags are the single cross-op
    /// coupling, and the patch clears them where the controls change.
    pub fn mutant_tape(&mut self, component: usize, fault: Fault) -> MutantTape<'_> {
        match self.patch_one(component, fault) {
            PatchStep::Applied(rec) => MutantTape::Patched(PatchGuard { cc: self, rec }),
            PatchStep::Dead => MutantTape::Dead,
            PatchStep::Unsupported => MutantTape::Unsupported,
        }
    }

    /// The k-fault generalisation of [`CompiledCircuit::mutant_tape`]:
    /// applies every `(component, fault)` patch in order and returns one
    /// guard restoring all of them. Dead-code components are skipped (they
    /// cannot affect outputs); if *any* pair is unsupported the patches
    /// already applied are rolled back and the whole set reports
    /// [`MultiMutantTape::Unsupported`], so callers re-lower the rewritten
    /// netlist exactly as in the single-fault path.
    pub fn mutant_tape_multi(&mut self, patches: &[(usize, Fault)]) -> MultiMutantTape<'_> {
        let mut recs: Vec<PatchRecord> = Vec::with_capacity(patches.len());
        for &(ci, fault) in patches {
            match self.patch_one(ci, fault) {
                PatchStep::Applied(rec) => recs.push(rec),
                PatchStep::Dead => {}
                PatchStep::Unsupported => {
                    for rec in recs.iter().rev() {
                        undo_patch(self, rec);
                    }
                    return MultiMutantTape::Unsupported;
                }
            }
        }
        if recs.is_empty() {
            return MultiMutantTape::Dead;
        }
        MultiMutantTape::Patched(MultiPatchGuard { cc: self, recs })
    }

    fn patch_one(&mut self, component: usize, fault: Fault) -> PatchStep {
        let pos = match self.comp_pos.get(component).copied() {
            // Dead code: no output observes the component, so the mutant
            // is output-equivalent to the base circuit.
            Some(COMP_DEAD) => return PatchStep::Dead,
            // Folded or CSE-merged: the tape holds no faithful image of
            // the component, so patching would apply the wrong fault
            // semantics (or fault several components at once). The fold
            // hint can still prove specific kinds output-equivalent to
            // the base (a stuck select tied to the polarity the select
            // already had, or a fold whose outputs no mutant can move);
            // everything else falls back to recompiling the rewritten
            // netlist.
            Some(COMP_FOLDED) => {
                return match self.fold_hint.get(component).copied() {
                    Some(FoldHint::Equivalent) => PatchStep::Dead,
                    Some(FoldHint::SelectKnown(v)) => match fault {
                        Fault::StuckSelectLow if !v => PatchStep::Dead,
                        Fault::StuckSelectHigh if v => PatchStep::Dead,
                        _ => PatchStep::Unsupported,
                    },
                    _ => PatchStep::Unsupported,
                }
            }
            Some(p) => p as usize,
            None => return PatchStep::Unsupported,
        };
        let perm_len = self.perm_sets.len();
        let saved = self.tape[pos];
        let mut saved_next = None;
        let patched = match (fault, saved) {
            // A comparator steered by its lower input instead of its
            // upper one — mirrors `mutate_component` on `BitCompare`.
            (Fault::InvertBehaviour, MicroOp::BitCompare { d0, d1, a, b }) => {
                MicroOp::Switch2 { d0, d1, s: b, a, b }
            }
            (Fault::InvertBehaviour, MicroOp::And { d, a, b }) => MicroOp::Nand { d, a, b },
            (Fault::InvertBehaviour, MicroOp::Nand { d, a, b }) => MicroOp::And { d, a, b },
            (Fault::InvertBehaviour, MicroOp::Or { d, a, b }) => MicroOp::Nor { d, a, b },
            (Fault::InvertBehaviour, MicroOp::Nor { d, a, b }) => MicroOp::Or { d, a, b },
            (Fault::InvertBehaviour, MicroOp::Xor { d, a, b }) => MicroOp::Xnor { d, a, b },
            (Fault::InvertBehaviour, MicroOp::Xnor { d, a, b }) => MicroOp::Xor { d, a, b },
            (Fault::InvertBehaviour, MicroOp::Mux { d, s, a1, a0 }) => MicroOp::Mux {
                d,
                s,
                a1: a0,
                a0: a1,
            },
            (Fault::InvertBehaviour, MicroOp::Switch2 { d0, d1, s, a, b }) => MicroOp::Switch2 {
                d0,
                d1,
                s,
                a: b,
                b: a,
            },
            (
                Fault::InvertBehaviour,
                MicroOp::Switch4 {
                    d,
                    ins,
                    s1,
                    s0,
                    pidx,
                },
            ) => {
                // Select decode scrambled: permutation table reversed.
                // Controls (and therefore the select masks) are
                // unchanged, so reuse flags stay valid.
                let p = self.perm_sets[(pidx & !REUSE_MASKS) as usize];
                let pid = intern_perms(&mut self.perm_sets, [p[3], p[2], p[1], p[0]]);
                MicroOp::Switch4 {
                    d,
                    ins,
                    s1,
                    s0,
                    pidx: pid | (pidx & REUSE_MASKS),
                }
            }
            (Fault::StuckSelectLow, MicroOp::Mux { d, a0, .. }) => MicroOp::Or { d, a: a0, b: a0 },
            (Fault::StuckSelectHigh, MicroOp::Mux { d, a1, .. }) => MicroOp::Or { d, a: a1, b: a1 },
            // `d0 = s ? b : a, d1 = s ? a : b` with `s` tied.
            (Fault::StuckSelectLow, MicroOp::Switch2 { d0, d1, a, b, .. }) => {
                MicroOp::Route2 { d0, d1, a, b }
            }
            (Fault::StuckSelectHigh, MicroOp::Switch2 { d0, d1, a, b, .. }) => {
                MicroOp::Route2 { d0, d1, a: b, b: a }
            }
            (
                Fault::StuckSelectLow | Fault::StuckSelectHigh,
                MicroOp::Switch4 {
                    d, ins, s1, pidx, ..
                },
            ) => {
                // `s0` tied to a constant: rewire `s0 := s1` so only the
                // equal-controls decodes (mask indices 0 and 3) remain
                // reachable, and route them to the perms the tied decode
                // selects (`s1·2 + tie`).
                let p = self.perm_sets[(pidx & !REUSE_MASKS) as usize];
                let q = match fault {
                    Fault::StuckSelectLow => [p[0], p[0], p[2], p[2]],
                    _ => [p[1], p[1], p[3], p[3]],
                };
                let pid = intern_perms(&mut self.perm_sets, q);
                // The controls changed: recompute masks here (no reuse
                // flag on the patched op), and stop the next op from
                // reusing masks computed from the old controls.
                if let Some(&MicroOp::Switch4 { pidx: np, .. }) = self.tape.get(pos + 1) {
                    if np & REUSE_MASKS != 0 {
                        saved_next = Some((pos + 1, np));
                        if let MicroOp::Switch4 { pidx: slot, .. } = &mut self.tape[pos + 1] {
                            *slot = np & !REUSE_MASKS;
                        }
                    }
                }
                MicroOp::Switch4 {
                    d,
                    ins,
                    s1,
                    s0: s1,
                    pidx: pid,
                }
            }
            // Remaining pairs (e.g. a stuck demultiplexer select, which
            // would need a constant-zero source): fall back to lowering
            // the rewritten netlist.
            _ => return PatchStep::Unsupported,
        };
        self.tape[pos] = patched;
        PatchStep::Applied(PatchRecord {
            pos,
            saved,
            saved_next,
            perm_len,
        })
    }

    /// Number of primary inputs.
    #[inline]
    pub fn n_inputs(&self) -> usize {
        self.input_slots.len()
    }

    /// Number of designated outputs.
    #[inline]
    pub fn n_outputs(&self) -> usize {
        self.output_slots.len()
    }

    /// Size of the working buffer in slots — the peak live-value count,
    /// at most the source circuit's wire count and typically far less.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.n_slots as usize
    }

    /// Total micro-ops on the tape (constant prologue included).
    #[inline]
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// Length of the constant prologue at the head of the tape.
    #[inline]
    pub fn prologue_len(&self) -> usize {
        self.prologue_len as usize
    }

    /// Number of non-empty depth levels the component ops are grouped in.
    #[inline]
    pub fn n_levels(&self) -> usize {
        self.level_ranges.len()
    }

    /// `(start, end)` tape ranges of each depth level, in stage order.
    /// Every component op belongs to exactly one range; the prologue
    /// (`0..prologue_len`) precedes the first.
    #[inline]
    pub fn level_ranges(&self) -> &[(u32, u32)] {
        &self.level_ranges
    }

    /// Working-buffer entries saved by register allocation relative to
    /// the interpreter's full-width wire buffer. Saturating: at
    /// opt-level 0 the two canonical constants the pipeline always
    /// lowers can cost one scratch slot beyond the wire count.
    #[inline]
    pub fn slots_saved(&self) -> u64 {
        u64::from(self.source_wires).saturating_sub(u64::from(self.n_slots))
    }

    /// Per-pass before/after op counts recorded by the pass manager, in
    /// pipeline order (empty at opt-level 0).
    #[inline]
    pub fn pass_stats(&self) -> &[PassStats] {
        &self.pass_stats
    }

    /// Per-rule hit counts from the `rewrite` pass (rule name → number
    /// of applications), in first-fired order. Empty when the pass was
    /// disabled or matched nothing.
    #[inline]
    pub fn rewrite_hits(&self) -> &[(String, u32)] {
        &self.rewrite_hits
    }

    /// Wire count of the source circuit.
    #[inline]
    pub fn source_wires(&self) -> usize {
        self.source_wires as usize
    }

    /// Component count of the source circuit (before dead-code
    /// elimination).
    #[inline]
    pub fn source_components(&self) -> usize {
        self.source_components as usize
    }

    /// The micro-op tape (read-only; for tests and introspection).
    #[inline]
    pub fn tape(&self) -> &[MicroOp] {
        &self.tape
    }

    /// The deduplicated 4×4-switch permutation sets (read-only).
    #[inline]
    pub fn perm_sets(&self) -> &[[Perm4; 4]] {
        &self.perm_sets
    }

    /// Original encodings of [`MicroOp::Pair2`] superinstructions, by
    /// index (empty unless the `fuse` pass ran).
    #[inline]
    pub fn fused_pairs(&self) -> &[[MicroOp; 2]] {
        &self.fused_pairs
    }

    /// Chain descriptors of [`MicroOp::S4Chain`] superinstructions.
    #[inline]
    pub fn s4_chains(&self) -> &[S4ChainData] {
        &self.s4_chains
    }

    /// Flat item storage backing [`CompiledCircuit::s4_chains`] ranges.
    #[inline]
    pub fn s4_items(&self) -> &[S4Item] {
        &self.s4_items
    }

    /// Slot each primary input is loaded into.
    #[inline]
    pub fn input_slots(&self) -> &[u32] {
        &self.input_slots
    }

    /// Slot each designated output is read from.
    #[inline]
    pub fn output_slots(&self) -> &[u32] {
        &self.output_slots
    }

    /// Evaluates on one input vector (scalar path). For repeated
    /// evaluation prefer a [`CompiledEvaluator`], which reuses its slot
    /// buffer.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        CompiledEvaluator::new(self).run(inputs)
    }

    /// Evaluates 64 packed vectors at once (bit `j` of `inputs[i]` is
    /// input `i` of test vector `j`).
    pub fn eval_lanes(&self, inputs: &[u64]) -> Vec<u64> {
        CompiledEvaluator::new(self).run(inputs)
    }

    /// Multi-threaded batch evaluation over the compiled tape: packs
    /// vectors into lane groups and deals groups to `threads` workers in
    /// interleaved strides (see [`Circuit::eval_batch_parallel`] for the
    /// interpreter twin). Large batches walk the tape with `[u64; 4]`
    /// wide lanes — 256 vectors per pass — which the register-allocated
    /// slot buffer keeps cache-resident; small or highly-threaded
    /// batches fall back to 64-lane groups so every worker stays fed.
    pub fn eval_batch_parallel(&self, vectors: &[Vec<bool>], threads: usize) -> Vec<Vec<bool>> {
        match self.try_eval_batch_parallel(vectors, threads) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked [`CompiledCircuit::eval_batch_parallel`] with the same
    /// worker-panic isolation contract as
    /// [`Circuit::try_eval_batch_parallel`].
    pub fn try_eval_batch_parallel(
        &self,
        vectors: &[Vec<bool>],
        threads: usize,
    ) -> Result<Vec<Vec<bool>>, EvalError> {
        #[cfg(feature = "telemetry")]
        let _span = absort_telemetry::span("eval/batch_compiled");
        let n_inputs = self.n_inputs();
        // Wide walks only when every worker still gets at least two
        // 256-vector groups' worth of work; otherwise 64-lane groups
        // give finer sharding.
        if vectors.len() >= 128 * threads.max(1) {
            crate::eval::try_batch_parallel_with(n_inputs, vectors, 256, threads, &|| {
                let mut ev: CompiledEvaluator<'_, [u64; 4]> = CompiledEvaluator::new(self);
                let mut out = vec![[0u64; 4]; self.n_outputs()];
                move |g: &[Vec<bool>]| {
                    let packed = crate::eval::pack_lanes_wide::<4>(g, n_inputs);
                    ev.run_into(&packed, &mut out);
                    crate::eval::unpack_lanes_wide(&out, g.len())
                }
            })
        } else {
            crate::eval::try_batch_parallel_with(n_inputs, vectors, 64, threads, &|| {
                let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(self);
                let mut out = vec![0u64; self.n_outputs()];
                move |g: &[Vec<bool>]| {
                    let packed = crate::eval::pack_lanes(g, n_inputs);
                    ev.run_into(&packed, &mut out);
                    crate::eval::unpack_lanes(&out, g.len())
                }
            })
        }
    }
}

/// A reusable evaluation context for one compiled circuit and one lane
/// type — the compiled twin of [`crate::Evaluator`].
///
/// ```
/// use absort_circuit::{Builder, CompiledEvaluator};
///
/// let mut b = Builder::new();
/// let x = b.input();
/// let y = b.input();
/// let o = b.and(x, y);
/// b.outputs(&[o]);
/// let c = b.finish();
/// let cc = c.compile();
///
/// let mut ev: CompiledEvaluator<'_, bool> = CompiledEvaluator::new(&cc);
/// assert_eq!(ev.run(&[true, true]), vec![true]);
/// assert_eq!(ev.run(&[true, false]), vec![false]);
/// ```
pub struct CompiledEvaluator<'c, V: Lane> {
    cc: &'c CompiledCircuit,
    /// The tape decoded to threaded form (see [`crate::dispatch`]).
    prog: crate::dispatch::Program<V>,
    slots: Vec<V>,
    #[cfg(feature = "telemetry")]
    tel: absort_telemetry::LocalRecorder,
    #[cfg(feature = "telemetry")]
    tel_passes: u64,
}

#[cfg(feature = "telemetry")]
impl<V: Lane> Drop for CompiledEvaluator<'_, V> {
    fn drop(&mut self) {
        if self.tel_passes != 0 {
            let ops = self.cc.tape.len() as u64;
            self.tel.add("eval.compiled_passes", self.tel_passes);
            self.tel.add("eval.compiled_ops", self.tel_passes * ops);
            self.tel
                .add("eval.compiled_lanes", self.tel_passes * u64::from(V::LANES));
        }
    }
}

impl<'c, V: Lane> CompiledEvaluator<'c, V> {
    /// Creates an evaluator with a zeroed slot buffer. Decodes the tape
    /// into its threaded-dispatch form (see [`crate::dispatch`]) — a
    /// one-time linear cost over the tape.
    pub fn new(cc: &'c CompiledCircuit) -> Self {
        CompiledEvaluator {
            cc,
            prog: crate::dispatch::Program::decode(cc),
            slots: vec![V::ZERO; cc.n_slots()],
            #[cfg(feature = "telemetry")]
            tel: absort_telemetry::LocalRecorder::new(),
            #[cfg(feature = "telemetry")]
            tel_passes: 0,
        }
    }

    /// Evaluates on the given primary-input values and returns the
    /// outputs.
    pub fn run(&mut self, inputs: &[V]) -> Vec<V> {
        let mut out = vec![V::ZERO; self.cc.n_outputs()];
        self.run_into(inputs, &mut out);
        out
    }

    /// Checked [`CompiledEvaluator::run`].
    pub fn try_run(&mut self, inputs: &[V]) -> Result<Vec<V>, EvalError> {
        let mut out = vec![V::ZERO; self.cc.n_outputs()];
        self.try_run_into(inputs, &mut out)?;
        Ok(out)
    }

    /// Checked [`CompiledEvaluator::run_into`]: validates both slice
    /// lengths up front, then takes the same unchecked fast path.
    pub fn try_run_into(&mut self, inputs: &[V], out: &mut [V]) -> Result<(), EvalError> {
        if inputs.len() != self.cc.n_inputs() {
            return Err(EvalError::InputLen {
                expected: self.cc.n_inputs(),
                got: inputs.len(),
            });
        }
        if out.len() != self.cc.n_outputs() {
            return Err(EvalError::OutputLen {
                expected: self.cc.n_outputs(),
                got: out.len(),
            });
        }
        self.run_into(inputs, out);
        Ok(())
    }

    /// Replays the tape into a caller-provided output slice (no
    /// allocation).
    pub fn run_into(&mut self, inputs: &[V], out: &mut [V]) {
        let cc = self.cc;
        assert_eq!(
            inputs.len(),
            cc.n_inputs(),
            "expected {} inputs, got {}",
            cc.n_inputs(),
            inputs.len()
        );
        assert_eq!(out.len(), cc.n_outputs(), "output slice has wrong length");

        // One bool test when telemetry is off; when on, the pass is
        // timed and folded into the per-vector latency histogram below.
        #[cfg(feature = "telemetry")]
        let t0 = self.tel.is_active().then(std::time::Instant::now);

        let w = &mut self.slots;
        for (&s, &v) in cc.input_slots.iter().zip(inputs) {
            w[s as usize] = v;
        }

        // Threaded-code dispatch: the tape was decoded once at evaluator
        // construction (operands resolved, reuse flags folded into the
        // function choice, superinstructions expanded); each instruction
        // is now a single indirect call. See `crate::dispatch`.
        self.prog.exec(w);

        for (o, &s) in out.iter_mut().zip(&cc.output_slots) {
            *o = w[s as usize];
        }

        // The histogram sample is the pass wall-clock divided by lane
        // width: per-*vector* latency, comparable across lane types.
        #[cfg(feature = "telemetry")]
        {
            self.tel_passes += 1;
            if let Some(t0) = t0 {
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.tel
                    .record_ns("eval.compiled.vector_ns", ns / u64::from(V::LANES));
            }
        }
    }
}

#[cfg(feature = "profile")]
impl<V: Lane> CompiledEvaluator<'_, V> {
    /// Replays the tape like [`CompiledEvaluator::run_into`] while
    /// attributing executions and wall-clock per micro-op kind and per
    /// depth level into `prof` (level 0 = constant prologue).
    ///
    /// This is a deliberately *separate* dispatch loop: the production
    /// `run_into` carries no profiling branches, and callers sample
    /// (profile a subset of passes) rather than pay the per-op clock
    /// reads everywhere. Output values are identical to `run_into`.
    pub fn run_into_profiled(
        &mut self,
        inputs: &[V],
        out: &mut [V],
        prof: &mut crate::profile::TapeProfile,
    ) {
        use std::time::Instant;
        let cc = self.cc;
        assert_eq!(
            inputs.len(),
            cc.n_inputs(),
            "expected {} inputs, got {}",
            cc.n_inputs(),
            inputs.len()
        );
        assert_eq!(out.len(), cc.n_outputs(), "output slice has wrong length");
        prof.ensure_levels(cc.level_ranges.len() + 1);

        let w = &mut self.slots;
        for (&s, &v) in cc.input_slots.iter().zip(inputs) {
            w[s as usize] = v;
        }

        let mut m = [V::ZERO; 4];
        // Level segment tracking: ops `0..prologue_len` are segment 0;
        // each level range is the following segment.
        let mut seg = 0usize;
        let mut seg_end = cc.prologue_len as usize;
        let mut prev_kind: Option<usize> = None;
        let mut last = Instant::now();
        for (i, op) in cc.tape.iter().enumerate() {
            while i >= seg_end && seg < cc.level_ranges.len() {
                seg_end = cc.level_ranges[seg].1 as usize;
                seg += 1;
                prev_kind = None;
            }
            match *op {
                MicroOp::Const { d, v } => w[d as usize] = V::splat(v),
                MicroOp::Not { d, a } => {
                    let x = w[a as usize];
                    w[d as usize] = x.not();
                }
                MicroOp::And { d, a, b } => {
                    let (x, y) = (w[a as usize], w[b as usize]);
                    w[d as usize] = x.and(y);
                }
                MicroOp::Or { d, a, b } => {
                    let (x, y) = (w[a as usize], w[b as usize]);
                    w[d as usize] = x.or(y);
                }
                MicroOp::Xor { d, a, b } => {
                    let (x, y) = (w[a as usize], w[b as usize]);
                    w[d as usize] = x.xor(y);
                }
                MicroOp::Nand { d, a, b } => {
                    let (x, y) = (w[a as usize], w[b as usize]);
                    w[d as usize] = x.and(y).not();
                }
                MicroOp::Nor { d, a, b } => {
                    let (x, y) = (w[a as usize], w[b as usize]);
                    w[d as usize] = x.or(y).not();
                }
                MicroOp::Xnor { d, a, b } => {
                    let (x, y) = (w[a as usize], w[b as usize]);
                    w[d as usize] = x.xor(y).not();
                }
                MicroOp::Mux { d, s, a1, a0 } => {
                    let (sv, x1, x0) = (w[s as usize], w[a1 as usize], w[a0 as usize]);
                    w[d as usize] = V::select(sv, x1, x0);
                }
                MicroOp::Demux { d0, d1, s, x } => {
                    let (sv, xv) = (w[s as usize], w[x as usize]);
                    w[d0 as usize] = sv.not().and(xv);
                    w[d1 as usize] = sv.and(xv);
                }
                MicroOp::Switch2 { d0, d1, s, a, b } => {
                    let (sv, av, bv) = (w[s as usize], w[a as usize], w[b as usize]);
                    w[d0 as usize] = V::select(sv, bv, av);
                    w[d1 as usize] = V::select(sv, av, bv);
                }
                MicroOp::Route2 { d0, d1, a, b } => {
                    let (av, bv) = (w[a as usize], w[b as usize]);
                    w[d0 as usize] = av;
                    w[d1 as usize] = bv;
                }
                MicroOp::BitCompare { d0, d1, a, b } => {
                    let (av, bv) = (w[a as usize], w[b as usize]);
                    w[d0 as usize] = av.and(bv);
                    w[d1 as usize] = av.or(bv);
                }
                MicroOp::Switch4 {
                    d,
                    ins,
                    s1,
                    s0,
                    pidx,
                } => {
                    if pidx & REUSE_MASKS == 0 {
                        let (v1, v0) = (w[s1 as usize], w[s0 as usize]);
                        m = [
                            v1.not().and(v0.not()),
                            v1.not().and(v0),
                            v1.and(v0.not()),
                            v1.and(v0),
                        ];
                    }
                    let pm = &cc.perm_sets[(pidx & !REUSE_MASKS) as usize];
                    let iv = [
                        w[ins[0] as usize],
                        w[ins[1] as usize],
                        w[ins[2] as usize],
                        w[ins[3] as usize],
                    ];
                    for j in 0..4 {
                        w[d[j] as usize] = m[0]
                            .and(iv[pm[0][j] as usize])
                            .or(m[1].and(iv[pm[1][j] as usize]))
                            .or(m[2].and(iv[pm[2][j] as usize]))
                            .or(m[3].and(iv[pm[3][j] as usize]));
                    }
                }
                MicroOp::Pair2 { idx } => {
                    for sub in &cc.fused_pairs[idx as usize] {
                        exec_pairable(w, sub);
                    }
                }
                MicroOp::S4Chain { idx } => {
                    let ch = cc.s4_chains[idx as usize];
                    let (v1, v0) = (w[ch.s1 as usize], w[ch.s0 as usize]);
                    m = [
                        v1.not().and(v0.not()),
                        v1.not().and(v0),
                        v1.and(v0.not()),
                        v1.and(v0),
                    ];
                    let items = &cc.s4_items[ch.start as usize..(ch.start + ch.len) as usize];
                    for it in items {
                        let pm = &cc.perm_sets[it.pidx as usize];
                        let iv = [
                            w[it.ins[0] as usize],
                            w[it.ins[1] as usize],
                            w[it.ins[2] as usize],
                            w[it.ins[3] as usize],
                        ];
                        for j in 0..4 {
                            w[it.d[j] as usize] = m[0]
                                .and(iv[pm[0][j] as usize])
                                .or(m[1].and(iv[pm[1][j] as usize]))
                                .or(m[2].and(iv[pm[2][j] as usize]))
                                .or(m[3].and(iv[pm[3][j] as usize]));
                        }
                    }
                }
            }
            let now = Instant::now();
            let ns = u64::try_from((now - last).as_nanos()).unwrap_or(u64::MAX);
            last = now;
            let k = op.kind_index();
            prof.kinds[k].executions += 1;
            prof.kinds[k].total_ns = prof.kinds[k].total_ns.saturating_add(ns);
            prof.levels[seg].executions += 1;
            prof.levels[seg].total_ns = prof.levels[seg].total_ns.saturating_add(ns);
            if let Some(p) = prev_kind {
                prof.record_pair(p, k);
            }
            prev_kind = Some(k);
        }

        for (o, &s) in out.iter_mut().zip(&cc.output_slots) {
            *o = w[s as usize];
        }
        prof.passes += 1;
    }
}

/// Executes one half of a [`MicroOp::Pair2`] superinstruction. Only the
/// pair-fusible kinds (see `crate::dispatch::pair_code`) can appear here;
/// the fuse pass never emits anything else into `fused_pairs`.
#[cfg(feature = "profile")]
fn exec_pairable<V: Lane>(w: &mut [V], op: &MicroOp) {
    match *op {
        MicroOp::And { d, a, b } => w[d as usize] = w[a as usize].and(w[b as usize]),
        MicroOp::Or { d, a, b } => w[d as usize] = w[a as usize].or(w[b as usize]),
        MicroOp::Xor { d, a, b } => w[d as usize] = w[a as usize].xor(w[b as usize]),
        MicroOp::Nand { d, a, b } => w[d as usize] = w[a as usize].and(w[b as usize]).not(),
        MicroOp::Nor { d, a, b } => w[d as usize] = w[a as usize].or(w[b as usize]).not(),
        MicroOp::Xnor { d, a, b } => w[d as usize] = w[a as usize].xor(w[b as usize]).not(),
        MicroOp::Mux { d, s, a1, a0 } => {
            w[d as usize] = V::select(w[s as usize], w[a1 as usize], w[a0 as usize]);
        }
        MicroOp::BitCompare { d0, d1, a, b } => {
            let (av, bv) = (w[a as usize], w[b as usize]);
            w[d0 as usize] = av.and(bv);
            w[d1 as usize] = av.or(bv);
        }
        MicroOp::Switch2 { d0, d1, s, a, b } => {
            let (sv, av, bv) = (w[s as usize], w[a as usize], w[b as usize]);
            w[d0 as usize] = V::select(sv, bv, av);
            w[d1 as usize] = V::select(sv, av, bv);
        }
        ref other => unreachable!("non-fusible op {other:?} inside a fused pair"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::Evaluator;

    /// A circuit exercising every primitive, a shared constant, a dead
    /// component, and a half-dead multi-output component.
    fn kitchen_sink() -> Circuit {
        let mut b = Builder::new();
        let ins = b.input_bus(4);
        let t = b.constant(true);
        let f = b.constant(false);
        let g1 = b.gate(crate::GateOp::Nand, ins[0], ins[1]);
        let g2 = b.gate(crate::GateOp::Xnor, ins[2], t);
        let (lo, hi) = b.bit_compare(g1, g2);
        let m = b.mux2(ins[3], lo, hi);
        let (d0, _d1_unused) = b.demux2(ins[0], m);
        let (s_a, s_b) = b.switch2(ins[1], d0, g2);
        let dead = b.and(ins[2], ins[3]); // never observed
        let _ = dead;
        let outs = b.switch4(
            s_a,
            s_b,
            [ins[0], ins[1], ins[2], f],
            [[0, 1, 2, 3], [1, 0, 3, 2], [3, 2, 1, 0], [2, 3, 0, 1]],
        );
        b.outputs(&[outs[0], outs[3], s_a, m]);
        b.finish()
    }

    fn all_inputs(n: usize) -> impl Iterator<Item = Vec<bool>> + Clone {
        (0..1u64 << n).map(move |v| (0..n).map(|i| v >> i & 1 == 1).collect())
    }

    #[test]
    fn compiled_matches_interpreter_exhaustively() {
        let c = kitchen_sink();
        let cc = c.compile();
        for input in all_inputs(c.n_inputs()) {
            assert_eq!(cc.eval(&input), c.eval(&input), "input {input:?}");
        }
    }

    #[cfg(feature = "profile")]
    #[test]
    fn profiled_run_matches_and_attributes_every_op() {
        let c = kitchen_sink();
        let cc = c.compile();
        let mut prof = crate::profile::TapeProfile::new();
        let mut ev: CompiledEvaluator<'_, bool> = CompiledEvaluator::new(&cc);
        let mut prof_ev: CompiledEvaluator<'_, bool> = CompiledEvaluator::new(&cc);
        let mut passes = 0u64;
        for input in all_inputs(c.n_inputs()) {
            let want = ev.run(&input);
            let mut got = vec![false; cc.n_outputs()];
            prof_ev.run_into_profiled(&input, &mut got, &mut prof);
            assert_eq!(got, want, "input {input:?}");
            passes += 1;
        }
        assert_eq!(prof.passes, passes);
        assert_eq!(prof.total_executions(), passes * cc.tape_len() as u64);
        // Every op lands in exactly one level segment, prologue included.
        let level_execs: u64 = prof.levels.iter().map(|l| l.executions).sum();
        assert_eq!(level_execs, prof.total_executions());
        assert_eq!(prof.levels.len(), cc.n_levels() + 1);
        assert_eq!(
            prof.levels[0].executions,
            passes * cc.prologue_len() as u64,
            "prologue segment holds exactly the prologue ops"
        );
        assert!(!prof.hot_kinds().is_empty());
    }

    #[test]
    fn dead_code_is_eliminated() {
        let c = kitchen_sink();
        let cc = c.compile();
        // The dead AND gate must not be on the tape: component ops =
        // source components minus at least one.
        let comp_ops = cc.tape_len() - cc.prologue_len();
        assert!(
            comp_ops < cc.source_components(),
            "tape has {comp_ops} component ops for {} components",
            cc.source_components()
        );
    }

    #[test]
    fn slot_liveness_invariants() {
        let c = kitchen_sink();
        let cc = c.compile();
        // Peak live slots never exceed the interpreter's buffer.
        assert!(
            cc.n_slots() <= c.n_wires(),
            "allocation must not grow the buffer"
        );
        assert_eq!(cc.slots_saved() as usize, c.n_wires() - cc.n_slots());

        // Replay the tape statically: every source slot must have been
        // written (by an input load, a Const, or an earlier op) before it
        // is read, and all slots stay in range.
        let mut written = vec![false; cc.n_slots()];
        for &s in cc.input_slots() {
            written[s as usize] = true;
        }
        let read = |s: u32, written: &[bool]| {
            assert!((s as usize) < cc.n_slots(), "slot {s} out of range");
            assert!(written[s as usize], "slot {s} read before written");
        };
        let mut prev: Option<MicroOp> = None;
        for op in cc.tape() {
            // A mask-reuse op must directly follow a 4×4 switch over the
            // same control slots, and that op must not have written them.
            if let MicroOp::Switch4 { s1, s0, pidx, .. } = *op {
                if pidx & REUSE_MASKS != 0 {
                    match prev {
                        Some(MicroOp::Switch4 {
                            d, s1: p1, s0: p0, ..
                        }) => {
                            assert_eq!((p1, p0), (s1, s0), "reuse across control change");
                            assert!(
                                !d.contains(&s1) && !d.contains(&s0),
                                "reuse after control slot was clobbered"
                            );
                        }
                        other => panic!("reuse flag after non-switch op {other:?}"),
                    }
                }
            }
            prev = Some(*op);
            match *op {
                MicroOp::Const { d, .. } => written[d as usize] = true,
                MicroOp::Not { d, a } => {
                    read(a, &written);
                    written[d as usize] = true;
                }
                MicroOp::And { d, a, b }
                | MicroOp::Or { d, a, b }
                | MicroOp::Xor { d, a, b }
                | MicroOp::Nand { d, a, b }
                | MicroOp::Nor { d, a, b }
                | MicroOp::Xnor { d, a, b } => {
                    read(a, &written);
                    read(b, &written);
                    written[d as usize] = true;
                }
                MicroOp::Mux { d, s, a1, a0 } => {
                    read(s, &written);
                    read(a1, &written);
                    read(a0, &written);
                    written[d as usize] = true;
                }
                MicroOp::Demux { d0, d1, s, x } => {
                    read(s, &written);
                    read(x, &written);
                    written[d0 as usize] = true;
                    written[d1 as usize] = true;
                }
                MicroOp::Switch2 { d0, d1, s, a, b } => {
                    read(s, &written);
                    read(a, &written);
                    read(b, &written);
                    written[d0 as usize] = true;
                    written[d1 as usize] = true;
                }
                MicroOp::Route2 { d0, d1, a, b } | MicroOp::BitCompare { d0, d1, a, b } => {
                    read(a, &written);
                    read(b, &written);
                    written[d0 as usize] = true;
                    written[d1 as usize] = true;
                }
                MicroOp::Switch4 {
                    d,
                    ins,
                    s1,
                    s0,
                    pidx,
                } => {
                    read(s1, &written);
                    read(s0, &written);
                    assert!(
                        ((pidx & !REUSE_MASKS) as usize) < cc.perm_sets().len(),
                        "perm-set index out of range"
                    );
                    for &i in &ins {
                        read(i, &written);
                    }
                    for &di in &d {
                        written[di as usize] = true;
                    }
                }
                MicroOp::Pair2 { .. } | MicroOp::S4Chain { .. } => {
                    unreachable!("default compile never emits superinstructions")
                }
            }
        }
        // Every output reads a written, in-range slot.
        for &s in cc.output_slots() {
            read(s, &written);
        }
    }

    #[test]
    fn levels_partition_the_component_tape() {
        let c = kitchen_sink();
        let cc = c.compile();
        let ranges = cc.level_ranges();
        assert!(!ranges.is_empty());
        assert_eq!(ranges[0].0 as usize, cc.prologue_len());
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "levels must tile the tape");
            assert!(pair[0].1 > pair[0].0, "levels are non-empty");
        }
        assert_eq!(ranges.last().unwrap().1 as usize, cc.tape_len());
    }

    #[test]
    fn lanes_match_scalar_on_compiled_tape() {
        let c = kitchen_sink();
        let cc = c.compile();
        let n = c.n_inputs();
        let mut packed = vec![0u64; n];
        for v in 0..1u64 << n {
            for (i, p) in packed.iter_mut().enumerate() {
                if v >> i & 1 == 1 {
                    *p |= 1 << v;
                }
            }
        }
        let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&cc);
        let lanes = ev.run(&packed);
        for (v, input) in all_inputs(n).enumerate() {
            let scalar = cc.eval(&input);
            for (o, word) in lanes.iter().enumerate() {
                assert_eq!(word >> v & 1 == 1, scalar[o], "vector {v} output {o}");
            }
        }
    }

    #[test]
    fn passthrough_and_const_outputs() {
        // Outputs that are inputs or constants, with zero components.
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let t = b.constant(true);
        b.outputs(&[y, x, t, y]);
        let c = b.finish();
        let cc = c.compile();
        assert_eq!(cc.tape_len(), cc.prologue_len());
        assert_eq!(cc.eval(&[true, false]), vec![false, true, true, false]);
    }

    #[test]
    fn unused_inputs_share_the_scratch_slot() {
        let mut b = Builder::new();
        let ins = b.input_bus(6);
        let o = b.and(ins[0], ins[5]);
        b.outputs(&[o]);
        let c = b.finish();
        let cc = c.compile();
        // 2 live inputs + 1 result (may reuse) + 1 shared scratch.
        assert!(cc.n_slots() <= 4, "slots: {}", cc.n_slots());
        for input in all_inputs(6) {
            assert_eq!(cc.eval(&input), c.eval(&input));
        }
    }

    #[test]
    fn try_paths_reject_bad_arity() {
        let c = kitchen_sink();
        let cc = c.compile();
        let mut ev: CompiledEvaluator<'_, bool> = CompiledEvaluator::new(&cc);
        assert!(matches!(
            ev.try_run(&[true]),
            Err(EvalError::InputLen {
                expected: 4,
                got: 1
            })
        ));
        let mut short = vec![false; 1];
        assert!(matches!(
            ev.try_run_into(&[false; 4], &mut short),
            Err(EvalError::OutputLen { .. })
        ));
    }

    #[test]
    fn compiled_batch_parallel_matches_interp_batch() {
        let c = kitchen_sink();
        let cc = c.compile();
        let vectors: Vec<Vec<bool>> = all_inputs(4).cycle().take(300).collect();
        for threads in [1, 2, 4] {
            let got = cc.eval_batch_parallel(&vectors, threads);
            let want = c.eval_batch_parallel(&vectors, threads);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn engine_parse_roundtrips() {
        for e in Engine::ALL {
            assert_eq!(Engine::parse(e.name()), Some(e));
            assert_eq!(e.to_string(), e.name());
        }
        assert_eq!(Engine::parse("interpreter"), Some(Engine::Interp));
        assert_eq!(Engine::parse("warp"), None);
        assert_eq!(Engine::default(), Engine::Compiled);
    }

    #[test]
    fn slot_reuse_actually_shrinks_deep_chains() {
        // A long chain keeps only O(1) values live; the compiled buffer
        // must stay tiny while the interpreter's grows with the chain.
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let mut acc = b.xor(x, y);
        for _ in 0..200 {
            acc = b.gate(crate::GateOp::Nand, acc, x);
        }
        b.outputs(&[acc]);
        let c = b.finish();
        let cc = c.compile();
        assert!(c.n_wires() > 200);
        assert!(
            cc.n_slots() <= 4,
            "chain needs O(1) slots, got {}",
            cc.n_slots()
        );
        let mut interp: Evaluator<'_, bool> = Evaluator::new(&c);
        let mut comp: CompiledEvaluator<'_, bool> = CompiledEvaluator::new(&cc);
        for input in all_inputs(2) {
            assert_eq!(comp.run(&input), interp.run(&input));
        }
    }

    /// Two back-to-back 4×4 switches sharing a control pair, so the
    /// second op carries [`REUSE_MASKS`] — the one cross-op coupling a
    /// tape patch has to repair.
    fn dual_switch() -> Circuit {
        let mut b = Builder::new();
        let s1 = b.input();
        let s0 = b.input();
        let ins = b.input_bus(4);
        let a = b.switch4(
            s1,
            s0,
            [ins[0], ins[1], ins[2], ins[3]],
            [[0, 1, 2, 3], [1, 0, 3, 2], [2, 3, 0, 1], [3, 2, 1, 0]],
        );
        let o = b.switch4(
            s1,
            s0,
            a,
            [[1, 2, 3, 0], [0, 3, 2, 1], [3, 0, 1, 2], [2, 1, 0, 3]],
        );
        b.outputs(&o);
        b.finish()
    }

    /// Every mutant expressible as an in-place tape patch must evaluate
    /// exactly like the fully re-lowered mutant netlist, and the patch
    /// guard must restore the base tape bit for bit on drop.
    ///
    /// Pinned to opt-level 1: the pre-pipeline transforms, where every
    /// component is either live or dead — so `InvertBehaviour` is
    /// always patchable. (At O2, constant propagation folds e.g. the
    /// `Xnor(x, const 1)` in `kitchen_sink`, making that site
    /// `Unsupported`; `mutant_tape_contract_at_o2` covers that.)
    #[test]
    fn mutant_tape_matches_recompiled_mutants() {
        let o1 = CompileOptions::for_level(crate::passes::OptLevel::O1);
        for c in [kitchen_sink(), dual_switch()] {
            let mut base = c.compile_with(&o1);
            let baseline_tape = base.tape.clone();
            let baseline_perms = base.perm_sets.clone();
            let inputs: Vec<u64> = {
                // Deterministic pseudo-random lanes (splitmix64).
                let mut s = 0x9E37_79B9_7F4A_7C15u64;
                (0..c.n_inputs())
                    .map(|_| {
                        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        let mut z = s;
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        z ^ (z >> 31)
                    })
                    .collect()
            };
            let base_out = {
                let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&base);
                ev.run(&inputs)
            };
            let mut patched_seen = 0usize;
            for fault in Fault::ALL {
                for (ci, mutant) in crate::mutate::mutants(&c, fault) {
                    let reference = {
                        let cc = mutant.compile();
                        let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&cc);
                        ev.run(&inputs)
                    };
                    match base.mutant_tape(ci, fault) {
                        MutantTape::Patched(patched) => {
                            let mut ev: CompiledEvaluator<'_, u64> =
                                CompiledEvaluator::new(&patched);
                            assert_eq!(ev.run(&inputs), reference, "{fault:?} at component {ci}");
                            patched_seen += 1;
                        }
                        MutantTape::Dead => {
                            assert_eq!(base_out, reference, "dead {fault:?} at {ci} differs");
                        }
                        // The only pair without an in-place encoding is a
                        // stuck demultiplexer select.
                        MutantTape::Unsupported => assert!(
                            !matches!(fault, Fault::InvertBehaviour),
                            "invert at {ci} must be patchable"
                        ),
                    }
                    assert_eq!(
                        base.tape, baseline_tape,
                        "tape not restored after {fault:?}"
                    );
                    assert_eq!(base.perm_sets, baseline_perms, "perm table not restored");
                }
            }
            assert!(patched_seen > 0, "no patched mutants exercised");
        }
    }

    /// The provenance contract at the default level (O2, every pass
    /// on): each single-fault mutant is either patched in place and
    /// matches the recompiled mutant, reported dead and genuinely
    /// output-equivalent to the base, or reported unsupported (folded /
    /// CSE-merged sites included) — never silently wrong. Also checks
    /// that O2 really folds something in `kitchen_sink` (the
    /// `Xnor(x, const 1)`), so the fallback path is exercised.
    #[test]
    fn mutant_tape_contract_at_o2() {
        for (c, expect_folded) in [(kitchen_sink(), true), (dual_switch(), false)] {
            let mut base = c.compile();
            let baseline_tape = base.tape.clone();
            let inputs: Vec<u64> = (0..c.n_inputs())
                .map(|i| 0x0F1E_2D3C_4B5A_6978u64.rotate_left(11 * i as u32))
                .collect();
            let base_out = {
                let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&base);
                ev.run(&inputs)
            };
            let mut unsupported = 0usize;
            for fault in Fault::ALL {
                for (ci, mutant) in crate::mutate::mutants(&c, fault) {
                    let reference = {
                        let cc = mutant.compile();
                        let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&cc);
                        ev.run(&inputs)
                    };
                    match base.mutant_tape(ci, fault) {
                        MutantTape::Patched(patched) => {
                            let mut ev: CompiledEvaluator<'_, u64> =
                                CompiledEvaluator::new(&patched);
                            assert_eq!(ev.run(&inputs), reference, "{fault:?} at component {ci}");
                        }
                        MutantTape::Dead => {
                            assert_eq!(base_out, reference, "dead {fault:?} at {ci} differs");
                        }
                        // Folded sites and stuck demux selects: callers
                        // fall back to the recompiled netlist, which is
                        // `reference` itself — nothing further to check
                        // beyond counting that the path is exercised.
                        MutantTape::Unsupported => unsupported += 1,
                    }
                    assert_eq!(base.tape, baseline_tape, "tape not restored");
                }
            }
            if expect_folded {
                assert!(unsupported > 0, "O2 folding should force fallbacks");
            }
        }
    }

    /// Pass stats: the default pipeline reports every optional pass in
    /// canonical order, and CSE + const-prop shrink `kitchen_sink`'s
    /// IR (it contains a constant-fed XNOR).
    #[test]
    fn pass_stats_report_reductions() {
        let c = kitchen_sink();
        let cc = c.compile();
        let names: Vec<&str> = cc.pass_stats().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "const-prologue",
                "const-prop",
                "cse",
                "rewrite",
                "dce",
                "mask-reuse"
            ]
        );
        let removed_by = |n: &str| {
            cc.pass_stats()
                .iter()
                .find(|s| s.name == n)
                .map(PassStats::removed)
                .unwrap()
        };
        assert!(removed_by("const-prop") > 0, "Xnor(x, 1) should fold");
        assert!(removed_by("dce") > 0, "dead AND + unused consts");
        // O0 reports no pass stats and still evaluates correctly.
        let o0 = c.compile_with(&CompileOptions::for_level(crate::passes::OptLevel::O0));
        assert!(o0.pass_stats().is_empty());
        for input in all_inputs(c.n_inputs()) {
            assert_eq!(o0.eval(&input), c.eval(&input));
        }
    }

    /// Every 2-fault mutant expressible as in-place patches must evaluate
    /// exactly like the fully re-lowered `apply_set` netlist, and the
    /// multi-patch guard must restore the base tape bit for bit on drop —
    /// including the adjacent-op mask-reuse coupling in `dual_switch`.
    #[test]
    fn mutant_tape_multi_matches_recompiled_fault_sets() {
        let o1 = CompileOptions::for_level(crate::passes::OptLevel::O1);
        for c in [kitchen_sink(), dual_switch()] {
            let mut base = c.compile_with(&o1);
            let baseline_tape = base.tape.clone();
            let baseline_perms = base.perm_sets.clone();
            let inputs: Vec<u64> = (0..c.n_inputs())
                .map(|i| 0xA5A5_5A5A_0F0F_F0F0u64.rotate_left(7 * i as u32))
                .collect();
            let base_out = {
                let mut ev: CompiledEvaluator<'_, u64> = CompiledEvaluator::new(&base);
                ev.run(&inputs)
            };
            let mut patched_seen = 0usize;
            for f1 in Fault::ALL {
                for f2 in Fault::ALL {
                    let c1 = crate::mutate::applicable(&c, f1);
                    let c2 = crate::mutate::applicable(&c, f2);
                    for &ci in &c1 {
                        for &cj in &c2 {
                            if cj <= ci {
                                continue;
                            }
                            let set = [(ci, f1), (cj, f2)];
                            let reference = {
                                let m = crate::mutate::apply_set(&c, &set).expect("both apply");
                                let cc = m.compile();
                                let mut ev: CompiledEvaluator<'_, u64> =
                                    CompiledEvaluator::new(&cc);
                                ev.run(&inputs)
                            };
                            match base.mutant_tape_multi(&set) {
                                MultiMutantTape::Patched(patched) => {
                                    assert!(patched.n_patches() >= 1);
                                    let mut ev: CompiledEvaluator<'_, u64> =
                                        CompiledEvaluator::new(&patched);
                                    assert_eq!(
                                        ev.run(&inputs),
                                        reference,
                                        "{f1:?}@{ci} + {f2:?}@{cj}"
                                    );
                                    patched_seen += 1;
                                }
                                MultiMutantTape::Dead => {
                                    assert_eq!(base_out, reference, "dead set {ci},{cj} differs");
                                }
                                MultiMutantTape::Unsupported => {}
                            }
                            assert_eq!(
                                base.tape, baseline_tape,
                                "tape not restored after {f1:?}@{ci}+{f2:?}@{cj}"
                            );
                            assert_eq!(base.perm_sets, baseline_perms, "perm table not restored");
                        }
                    }
                }
            }
            assert!(patched_seen > 0, "no multi-patched mutants exercised");
        }
    }

    /// Fold hints split the recompile fallback per fault *kind*: a
    /// folded site scores `Dead` in place exactly when its fold provably
    /// masks the kind (stuck select at the polarity the select already
    /// had; identical-operand folds; rewrites deleted outright by DCE),
    /// every such verdict is exhaustively output-equivalent to the
    /// base, and the unmasked kinds still report `Unsupported`.
    #[test]
    fn fold_hints_mask_exactly_the_provably_dead_kinds() {
        use crate::mutate::Fault::{InvertBehaviour, StuckSelectHigh, StuckSelectLow};
        // One component per hint source. Component indices follow
        // builder order (constants are wires, not components).
        let mut b = Builder::new();
        let s = b.input();
        let x = b.input();
        let y = b.input();
        let t = b.constant(true);
        let f = b.constant(false);
        let m_hi = b.mux2(t, x, y); // 0: SelectKnown(true)
        let m_lo = b.mux2(f, x, y); // 1: SelectKnown(false)
        let m_eq = b.mux2(s, x, x); // 2: Equivalent (identical arms)
        let (sw_a, sw_b) = b.switch2(t, x, y); // 3: SelectKnown(true)
        let (c_lo, c_hi) = b.bit_compare(x, x); // 4: Equivalent (a == b)
        let (d0, d1) = b.demux2(f, x); // 5: SelectKnown(false)
        let dead_gate = b.gate(crate::GateOp::Nand, y, y); // 6: ToNot, then
        let _ = dead_gate; // deleted by DCE → upgraded to Equivalent
        let live = b.and(s, x); // 7: stays live (patched path)
        b.outputs(&[m_hi, m_lo, m_eq, sw_a, sw_b, c_lo, c_hi, d0, d1, live]);
        let c = b.finish();

        let mut base = c.compile();
        for ci in 0..=6usize {
            assert_eq!(base.comp_pos[ci], COMP_FOLDED, "component {ci} must fold");
        }

        // In sweep order: fault kinds outermost (`Fault::ALL`), then
        // component index.
        let expected_dead: &[(usize, Fault)] = &[
            (2, InvertBehaviour),
            (4, InvertBehaviour),
            (6, InvertBehaviour),
            (1, StuckSelectLow),
            (2, StuckSelectLow),
            (5, StuckSelectLow),
            (0, StuckSelectHigh),
            (2, StuckSelectHigh),
            (3, StuckSelectHigh),
        ];
        let mut dead: Vec<(usize, Fault)> = Vec::new();
        let mut unsupported: Vec<(usize, Fault)> = Vec::new();
        for fault in Fault::ALL {
            for (ci, mutant) in crate::mutate::mutants(&c, fault) {
                match base.mutant_tape(ci, fault) {
                    MutantTape::Dead => {
                        for input in all_inputs(c.n_inputs()) {
                            assert_eq!(
                                mutant.eval(&input),
                                c.eval(&input),
                                "dead {fault:?} at {ci} differs on {input:?}"
                            );
                        }
                        dead.push((ci, fault));
                    }
                    MutantTape::Patched(patched) => {
                        let reference = mutant.compile();
                        for input in all_inputs(c.n_inputs()) {
                            assert_eq!(
                                patched.eval(&input),
                                reference.eval(&input),
                                "patched {fault:?} at {ci} differs on {input:?}"
                            );
                        }
                    }
                    MutantTape::Unsupported => unsupported.push((ci, fault)),
                }
            }
        }
        assert_eq!(dead, expected_dead, "hint-masked kinds");
        // The unmasked polarity of a known select still recompiles.
        assert!(unsupported.contains(&(0, StuckSelectLow)));
        assert!(unsupported.contains(&(1, StuckSelectHigh)));
        assert!(unsupported.contains(&(5, StuckSelectHigh)));
        assert!(unsupported.contains(&(0, InvertBehaviour)));
    }

    /// A CSE survivor whose merged duplicates were all unobserved keeps
    /// `Live` provenance and a real tape position, so fault campaigns
    /// patch it in place (the duplicate scores `Equivalent` / `Dead`).
    /// A survivor with an *observed* duplicate still takes the shared /
    /// recompile fallback.
    #[test]
    fn cse_survivor_stays_patchable_when_duplicates_unobserved() {
        use crate::mutate::Fault::InvertBehaviour;
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let z = b.input();
        let g1 = b.gate(crate::GateOp::And, x, y); // 0: survivor, dup unread
        let _g2 = b.gate(crate::GateOp::And, x, y); // 1: duplicate, never read
        let g3 = b.gate(crate::GateOp::Or, x, z); // 2: survivor, dup observed
        let g4 = b.gate(crate::GateOp::Or, x, z); // 3: duplicate, an output
        b.outputs(&[g1, g3, g4]);
        let c = b.finish();

        let mut base = c.compile();
        assert!(
            base.comp_pos[0] < COMP_FOLDED,
            "survivor of an unobserved duplicate must keep a tape position"
        );
        assert_eq!(base.comp_pos[2], COMP_FOLDED, "observed dup folds survivor");
        assert_eq!(base.comp_pos[3], COMP_FOLDED, "observed dup folds itself");
        // The unobserved duplicate is output-equivalent under any fault.
        assert!(matches!(
            base.mutant_tape(1, InvertBehaviour),
            MutantTape::Dead
        ));
        // The kept-live survivor patches in place, matching a recompile.
        let (_, mutant) = crate::mutate::mutants(&c, InvertBehaviour)
            .into_iter()
            .find(|&(ci, _)| ci == 0)
            .expect("component 0 has an invert mutant");
        let reference = mutant.compile();
        match base.mutant_tape(0, InvertBehaviour) {
            MutantTape::Patched(patched) => {
                for input in all_inputs(c.n_inputs()) {
                    assert_eq!(patched.eval(&input), reference.eval(&input));
                }
            }
            _ => panic!("kept-live CSE survivor must patch in place"),
        };
    }
}
