//! Cost accounting in the paper's units.
//!
//! Section II of the paper fixes the convention: "each of 2×2 switch, 2×1
//! multiplexer, and 1×2 demultiplexer has unit cost and unit depth", logic
//! gates are constant-fanin unit-cost gates, and a 4×4 switch is
//! "normalized to the number of 2×2 switches" (i.e. cost 4). A
//! [`CostReport`] gives the total in those units plus a per-kind breakdown
//! and (via [`crate::Circuit::cost_of_scope`]) per-block attributions.

use std::fmt;

/// Per-primitive-kind component counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Inverters.
    pub not: u64,
    /// Two-input logic gates.
    pub gate: u64,
    /// 2×1 multiplexers.
    pub mux2: u64,
    /// 1×2 demultiplexers.
    pub demux2: u64,
    /// 2×2 switches.
    pub switch2: u64,
    /// Bit comparators.
    pub bit_compare: u64,
    /// 4×4 switches (each costs 4 units).
    pub switch4: u64,
}

impl KindCounts {
    /// Total cost in paper units implied by these counts.
    pub fn total(&self) -> u64 {
        self.not
            + self.gate
            + self.mux2
            + self.demux2
            + self.switch2
            + self.bit_compare
            + 4 * self.switch4
    }

    /// Total number of components (a 4×4 switch counts once here).
    pub fn components(&self) -> u64 {
        self.not
            + self.gate
            + self.mux2
            + self.demux2
            + self.switch2
            + self.bit_compare
            + self.switch4
    }
}

/// The cost of a circuit (or a scope subtree of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostReport {
    /// Total cost in the paper's units (4×4 switches count 4).
    pub total: u64,
    /// Breakdown by primitive kind.
    pub kinds: KindCounts,
}

impl CostReport {
    /// Builds a report from kind counts.
    pub fn from_kinds(kinds: KindCounts) -> Self {
        CostReport {
            total: kinds.total(),
            kinds,
        }
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cost {} (not {}, gate {}, mux {}, demux {}, sw2 {}, cmp {}, sw4 {})",
            self.total,
            self.kinds.not,
            self.kinds.gate,
            self.kinds.mux2,
            self.kinds.demux2,
            self.kinds.switch2,
            self.kinds.bit_compare,
            self.kinds.switch4,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch4_counts_four() {
        let kinds = KindCounts {
            switch4: 3,
            switch2: 2,
            ..Default::default()
        };
        assert_eq!(kinds.total(), 14);
        assert_eq!(kinds.components(), 5);
        let r = CostReport::from_kinds(kinds);
        assert_eq!(r.total, 14);
    }

    #[test]
    fn display_is_stable() {
        let r = CostReport::from_kinds(KindCounts {
            gate: 2,
            ..Default::default()
        });
        let s = r.to_string();
        assert!(s.contains("cost 2"));
        assert!(s.contains("gate 2"));
    }
}
