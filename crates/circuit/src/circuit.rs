//! The finished netlist: cost, depth, and evaluation entry points.

use crate::component::{Component, Placed};
use crate::cost::{CostReport, KindCounts};
use crate::eval::{EvalError, Evaluator};
use crate::scope::ScopeTree;
use crate::validate::ValidateError;
use crate::wire::Wire;

/// An immutable combinational circuit produced by [`crate::Builder`].
///
/// Components are stored in topological order (guaranteed by the builder),
/// so every analysis and evaluation is a single forward scan.
#[derive(Debug, Clone)]
pub struct Circuit {
    comps: Vec<Placed>,
    n_wires: usize,
    inputs: Vec<Wire>,
    outputs: Vec<Wire>,
    consts: Vec<(Wire, bool)>,
    scopes: ScopeTree,
}

impl Circuit {
    pub(crate) fn from_parts(
        comps: Vec<Placed>,
        n_wires: usize,
        inputs: Vec<Wire>,
        outputs: Vec<Wire>,
        consts: Vec<(Wire, bool)>,
        scopes: ScopeTree,
    ) -> Self {
        Circuit {
            comps,
            n_wires,
            inputs,
            outputs,
            consts,
            scopes,
        }
    }

    /// Number of primary inputs.
    #[inline]
    pub fn n_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of designated outputs.
    #[inline]
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of wires (inputs + constants + component outputs).
    #[inline]
    pub fn n_wires(&self) -> usize {
        self.n_wires
    }

    /// Number of components.
    #[inline]
    pub fn n_components(&self) -> usize {
        self.comps.len()
    }

    /// The components in topological order (read-only).
    #[inline]
    pub(crate) fn components(&self) -> &[Placed] {
        &self.comps
    }

    /// Primary input wires in declaration order.
    #[inline]
    pub(crate) fn input_wires(&self) -> &[Wire] {
        &self.inputs
    }

    /// Designated output wires in declaration order.
    #[inline]
    pub(crate) fn output_wires(&self) -> &[Wire] {
        &self.outputs
    }

    /// Constant wires and their values.
    #[inline]
    pub(crate) fn const_wires(&self) -> &[(Wire, bool)] {
        &self.consts
    }

    /// The `i`-th primary input wire (declaration order). Panics if out
    /// of range. Used to name fault sites and probe points from outside
    /// the crate, where `Wire`s cannot be constructed directly.
    #[inline]
    pub fn input_wire(&self, i: usize) -> Wire {
        self.inputs[i]
    }

    /// The `i`-th designated output wire (declaration order). Panics if
    /// out of range.
    #[inline]
    pub fn output_wire(&self, i: usize) -> Wire {
        self.outputs[i]
    }

    /// The scope tree for cost attribution.
    #[inline]
    pub fn scopes(&self) -> &ScopeTree {
        &self.scopes
    }

    // ---- validation ------------------------------------------------------

    /// Checks the structural invariants every evaluation engine relies on
    /// (single drivers, topological order, in-range wire references,
    /// consistent constants, genuine 4×4 permutations, at least one
    /// output) and reports the first violation as a typed
    /// [`ValidateError`]. Builder-produced circuits always pass; use this
    /// on netlists from [`crate::serdes`] or hand-assembled mutants before
    /// handing them to a sweep.
    pub fn validate(&self) -> Result<(), ValidateError> {
        crate::validate::validate(self)
    }

    // ---- cost ----------------------------------------------------------

    fn tally(&self, mut include: impl FnMut(&Placed) -> bool) -> CostReport {
        let mut kinds = KindCounts::default();
        for p in &self.comps {
            if !include(p) {
                continue;
            }
            match p.comp {
                Component::Not { .. } => kinds.not += 1,
                Component::Gate { .. } => kinds.gate += 1,
                Component::Mux2 { .. } => kinds.mux2 += 1,
                Component::Demux2 { .. } => kinds.demux2 += 1,
                Component::Switch2 { .. } => kinds.switch2 += 1,
                Component::BitCompare { .. } => kinds.bit_compare += 1,
                Component::Switch4 { .. } => kinds.switch4 += 1,
            }
        }
        CostReport::from_kinds(kinds)
    }

    /// Total cost in the paper's units, with a per-kind breakdown.
    pub fn cost(&self) -> CostReport {
        self.tally(|_| true)
    }

    /// Cost of the subtree rooted at the scope with the given path, e.g.
    /// `cost_of_scope("patchup/adder")`. Returns `None` for unknown paths.
    pub fn cost_of_scope(&self, path: &str) -> Option<CostReport> {
        let root = self.scopes.lookup(path)?;
        Some(self.tally(|p| self.scopes.is_within(p.scope, root)))
    }

    /// Like [`Circuit::cost_of_scope`], but a miss is a typed
    /// [`MissingScope`] that names the path and the scopes that do
    /// exist — callers get a diagnosable error instead of unwrapping
    /// an anonymous `None`.
    pub fn try_cost_of_scope(&self, path: &str) -> Result<CostReport, MissingScope> {
        self.cost_of_scope(path)
            .ok_or_else(|| self.missing_scope(path))
    }

    fn missing_scope(&self, path: &str) -> MissingScope {
        MissingScope {
            path: path.to_string(),
            known: self.scope_paths(),
        }
    }

    /// All scope paths that exist in this circuit (sorted), useful for
    /// exploring a construction's block structure.
    pub fn scope_paths(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        for p in &self.comps {
            seen.insert(self.scopes.path(p.scope));
        }
        seen.into_iter().collect()
    }

    /// The scope path of component `index` — the block that placed it
    /// during construction. Fault campaigns use this to classify
    /// injection sites by subsystem (for example, every component whose
    /// path starts with `ctl/` belongs to the hardened control logic).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn component_scope_path(&self, index: usize) -> String {
        self.scopes.path(self.comps[index].scope)
    }

    /// Indices of every component placed within the scope named by
    /// `path` (that scope itself or any descendant), in netlist order.
    /// Returns `None` for unknown paths.
    pub fn components_in_scope(&self, path: &str) -> Option<Vec<usize>> {
        let root = self.scopes.lookup(path)?;
        Some(
            (0..self.comps.len())
                .filter(|&i| self.scopes.is_within(self.comps[i].scope, root))
                .collect(),
        )
    }

    /// Like [`Circuit::components_in_scope`], but a miss is a typed
    /// [`MissingScope`] naming the path (see
    /// [`Circuit::try_cost_of_scope`]).
    pub fn try_components_in_scope(&self, path: &str) -> Result<Vec<usize>, MissingScope> {
        self.components_in_scope(path)
            .ok_or_else(|| self.missing_scope(path))
    }

    /// The wires driven by component `index`, in output order. Together
    /// with [`Circuit::components_in_scope`] this lets a campaign map a
    /// wire-level fault site back to the subsystem that owns the driver.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn component_output_wires(&self, index: usize) -> Vec<Wire> {
        let p = &self.comps[index];
        (0..p.comp.n_outputs() as u32)
            .map(|i| Wire(p.out_base + i))
            .collect()
    }

    // ---- depth ---------------------------------------------------------

    /// Bit-level depth: the maximum number of unit-depth primitives on any
    /// path from a primary input (or constant) to a designated output.
    ///
    /// This is exactly the paper's "bit-level depth". All primitives —
    /// including the 4×4 switch — contribute depth 1.
    pub fn depth(&self) -> usize {
        let mut d = vec![0u32; self.n_wires];
        for p in &self.comps {
            let mut m = 0u32;
            p.comp.for_each_input(|w| m = m.max(d[w.index()]));
            let nd = m + 1;
            for k in 0..p.comp.n_outputs() {
                d[p.out_base as usize + k] = nd;
            }
        }
        self.outputs
            .iter()
            .map(|w| d[w.index()] as usize)
            .max()
            .unwrap_or(0)
    }

    /// Per-output depths (same convention as [`Circuit::depth`]).
    pub fn output_depths(&self) -> Vec<usize> {
        let mut d = vec![0u32; self.n_wires];
        for p in &self.comps {
            let mut m = 0u32;
            p.comp.for_each_input(|w| m = m.max(d[w.index()]));
            let nd = m + 1;
            for k in 0..p.comp.n_outputs() {
                d[p.out_base as usize + k] = nd;
            }
        }
        self.outputs.iter().map(|w| d[w.index()] as usize).collect()
    }

    // ---- compilation -----------------------------------------------------

    /// Lowers the netlist to a register-allocated, levelized micro-op
    /// tape (see [`crate::compile`]) at the default optimization level.
    /// A one-time cost that pays for itself after a handful of passes:
    /// sweep drivers should compile once and evaluate with a
    /// [`crate::CompiledEvaluator`].
    pub fn compile(&self) -> crate::compile::CompiledCircuit {
        crate::compile::CompiledCircuit::compile(self)
    }

    /// [`Circuit::compile`] with an explicit pass set (see
    /// [`crate::passes`] for the pipeline and
    /// `CompileOptions::for_level` for the `--opt-level` tiers).
    pub fn compile_with(
        &self,
        opts: &crate::passes::CompileOptions,
    ) -> crate::compile::CompiledCircuit {
        crate::compile::CompiledCircuit::compile_with(self, opts)
    }

    // ---- evaluation ------------------------------------------------------

    /// Evaluates the circuit on one input vector (scalar path).
    ///
    /// `inputs[i]` is the value of the i-th declared primary input; the
    /// result is the designated outputs in order. For repeated evaluation
    /// prefer an [`Evaluator`], which reuses its wire buffer.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        Evaluator::new(self).run(inputs)
    }

    /// Evaluates 64 input vectors at once; bit `j` of `inputs[i]` is the
    /// value of input `i` in test vector `j`, and likewise for outputs.
    pub fn eval_lanes(&self, inputs: &[u64]) -> Vec<u64> {
        Evaluator::new(self).run(inputs)
    }

    /// Evaluates many input vectors, sharding 64-lane packed passes across
    /// `threads` OS threads with `crossbeam::scope`. Each thread owns a
    /// private wire buffer — no shared mutable state.
    ///
    /// `vectors[v][i]` is input `i` of vector `v`; the result has the same
    /// shape with outputs.
    pub fn eval_batch_parallel(&self, vectors: &[Vec<bool>], threads: usize) -> Vec<Vec<bool>> {
        crate::eval::eval_batch_parallel(self, vectors, threads)
    }

    /// Checked [`Circuit::eval`]: rejects a wrong-arity input slice with a
    /// typed [`EvalError`] instead of panicking.
    pub fn try_eval(&self, inputs: &[bool]) -> Result<Vec<bool>, EvalError> {
        Evaluator::new(self).try_run(inputs)
    }

    /// Checked [`Circuit::eval_lanes`].
    pub fn try_eval_lanes(&self, inputs: &[u64]) -> Result<Vec<u64>, EvalError> {
        Evaluator::new(self).try_run(inputs)
    }

    /// Checked [`Circuit::eval_batch_parallel`]: validates vector widths
    /// up front and isolates worker panics — a chunk whose worker panics
    /// is retried once on a fresh worker, and a second panic surfaces as
    /// [`EvalError::WorkerPanicked`] instead of unwinding the caller.
    pub fn try_eval_batch_parallel(
        &self,
        vectors: &[Vec<bool>],
        threads: usize,
    ) -> Result<Vec<Vec<bool>>, EvalError> {
        crate::eval::try_eval_batch_parallel(self, vectors, threads)
    }
}

/// A scope-path query named a scope the circuit does not have. The
/// error carries the requested path and the paths that do exist, so
/// `unwrap`/`expect` failures and propagated errors alike say exactly
/// what was missing and what was available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingScope {
    /// The path that was requested.
    pub path: String,
    /// Every scope path the circuit actually has (sorted).
    pub known: Vec<String>,
}

impl std::fmt::Display for MissingScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no scope `{}` in circuit", self.path)?;
        match self.known.len() {
            0 => write!(f, " (circuit has no scoped components)"),
            1..=8 => write!(f, " (known scopes: {})", self.known.join(", ")),
            more => write!(
                f,
                " (known scopes: {}, ... {} total)",
                self.known[..8].join(", "),
                more
            ),
        }
    }
}

impl std::error::Error for MissingScope {}

#[cfg(test)]
mod tests {
    use crate::builder::Builder;

    /// A 3-level chain to check depth accounting.
    #[test]
    fn depth_counts_longest_path() {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y); // depth 1
        let o = b.or(a, y); // depth 2
        let n = b.not(o); // depth 3
        b.outputs(&[n, a]);
        let c = b.finish();
        assert_eq!(c.depth(), 3);
        assert_eq!(c.output_depths(), vec![3, 1]);
    }

    #[test]
    fn missing_scope_error_names_the_path_and_the_alternatives() {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let a = b.scoped("left", |b| b.and(x, y));
        b.outputs(&[a]);
        let c = b.finish();

        assert!(c.try_cost_of_scope("left").is_ok());
        assert_eq!(
            c.try_components_in_scope("left").unwrap(),
            c.components_in_scope("left").unwrap()
        );

        let err = c.try_cost_of_scope("rigth").unwrap_err();
        assert_eq!(err.path, "rigth");
        let msg = err.to_string();
        assert!(msg.contains("no scope `rigth`"), "{msg}");
        assert!(msg.contains("left"), "{msg}");
        let err2 = c.try_components_in_scope("rigth").unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn scope_cost_attribution() {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let a = b.scoped("left", |b| b.and(x, y));
        let o = b.scoped("right", |b| {
            let t = b.or(x, y);
            b.scoped("inner", |b| b.xor(t, a))
        });
        b.outputs(&[o]);
        let c = b.finish();
        assert_eq!(c.cost().total, 3);
        assert_eq!(c.cost_of_scope("left").unwrap().total, 1);
        assert_eq!(c.cost_of_scope("right").unwrap().total, 2);
        assert_eq!(c.cost_of_scope("right/inner").unwrap().total, 1);
        assert!(c.cost_of_scope("nope").is_none());
        assert_eq!(
            c.scope_paths(),
            vec!["left".to_owned(), "right".into(), "right/inner".into()]
        );
    }

    #[test]
    fn lane_eval_matches_scalar() {
        // xor-chain circuit, compare 64-lane vs scalar on all 16 inputs of
        // 4 input bits (packed into lanes 0..16).
        let mut b = Builder::new();
        let ins = b.input_bus(4);
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = b.xor(acc, i);
        }
        b.outputs(&[acc]);
        let c = b.finish();

        let mut packed = vec![0u64; 4];
        for v in 0..16u64 {
            for (i, p) in packed.iter_mut().enumerate() {
                if v >> i & 1 == 1 {
                    *p |= 1 << v;
                }
            }
        }
        let lanes = c.eval_lanes(&packed);
        for v in 0..16u64 {
            let scalar = c.eval(&[
                v & 1 == 1,
                v >> 1 & 1 == 1,
                v >> 2 & 1 == 1,
                v >> 3 & 1 == 1,
            ]);
            assert_eq!(lanes[0] >> v & 1 == 1, scalar[0], "vector {v}");
        }
    }
}
