//! Post-regalloc superinstruction fusion (the `fuse` pass).
//!
//! Runs on the finished [`CompiledCircuit`] tape — after scheduling and
//! slot allocation, so fusion is pure re-bracketing: the fused tape
//! executes exactly the same slot reads and writes in exactly the same
//! order, it just pays fewer dispatches. Two superinstructions exist,
//! chosen from the `TapeProfile` hot-pair census of the catalog
//! networks (see `absort inspect --profile` and DESIGN.md §3.10):
//!
//! * [`MicroOp::S4Chain`] — a maximal run of 4×4 switches flagged by the
//!   mask-reuse pass (one swapper column steered by a shared control
//!   pair) collapses into one dispatch; the select masks are computed
//!   once and stay in registers for the whole run. On the mux-merger
//!   tapes these runs carry >80% of evaluation time.
//! * [`MicroOp::Pair2`] — two adjacent pair-fusible simple ops (gates,
//!   bit comparators, 2×2 switches, muxes) execute under one dispatch.
//!   This is the dominant shape on the prefix-sorter tapes, which
//!   contain no 4×4 switches at all.
//!
//! Fusion never crosses a depth-level boundary, so
//! [`CompiledCircuit::level_ranges`] still tiles the tape and
//! level-parallel execution (`absort-parwalk`) stays legal. A mask-reuse
//! op left at a level head (its mask source sits in the previous level)
//! has its [`REUSE_MASKS`] flag cleared instead — recomputing the masks
//! is sound because the reuse flag itself certifies the control slots
//! are unchanged. Consequently a fused tape contains **no** standalone
//! mask-reuse ops: every reuse either joined a chain or was dropped.
//!
//! **Provenance:** a component absorbed into a superinstruction loses
//! its patchable tape image, so its [`CompiledCircuit::comp_pos`] entry
//! becomes `COMP_FOLDED` with [`FoldHint::Rewritten`] — fault campaigns
//! recompile mutants at those sites and stay bit-identical with the
//! unfused tape (pinned by `tests/fused_differential.rs`).

use crate::compile::{CompiledCircuit, MicroOp, S4ChainData, S4Item, COMP_FOLDED, REUSE_MASKS};
use crate::dispatch::pair_code;
use crate::ir::FoldHint;
use crate::passes::PassStats;

/// Rewrites `cc`'s tape in place with superinstructions (see the module
/// docs), appending a `"fuse"` row to [`CompiledCircuit::pass_stats`].
/// Enabled by `CompileOptions::fuse`; idempotent in effect (a second run
/// finds no fusible adjacencies among superinstructions) but intended to
/// run once, at the end of [`CompiledCircuit::compile_with`].
pub fn fuse(cc: &mut CompiledCircuit) {
    let ops_before = cc.tape.len();

    // Reverse map: tape position → source component (Live comps only).
    let mut pos2comp: Vec<u32> = vec![u32::MAX; cc.tape.len()];
    for (comp, &pos) in cc.comp_pos.iter().enumerate() {
        if (pos as usize) < cc.tape.len() {
            pos2comp[pos as usize] = comp as u32;
        }
    }

    let old = std::mem::take(&mut cc.tape);
    let mut tape: Vec<MicroOp> = Vec::with_capacity(old.len());
    let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(cc.level_ranges.len());
    let mut fused_pairs: Vec<[MicroOp; 2]> = Vec::new();
    let mut s4_chains: Vec<S4ChainData> = Vec::new();
    let mut s4_items: Vec<S4Item> = Vec::new();
    // (comp, new position) of ops that stayed standalone.
    let mut moved: Vec<(u32, u32)> = Vec::new();
    // Comps absorbed into superinstructions.
    let mut folded: Vec<u32> = Vec::new();

    // The constant prologue keeps its positions verbatim (fusing Const
    // pairs would save a handful of dispatches once per pass and cost
    // the prologue its patchability).
    tape.extend_from_slice(&old[..cc.prologue_len as usize]);

    for &(lstart, lend) in &cc.level_ranges {
        let new_start = tape.len() as u32;
        let (mut i, end) = (lstart as usize, lend as usize);
        while i < end {
            let mut op = old[i];
            if let MicroOp::Switch4 { pidx, .. } = &mut op {
                // A reuse op at a level head computed its masks in the
                // previous level; clear the flag (sound: the flag
                // certifies the control slots are unchanged) so this op
                // heads its own run.
                if i == lstart as usize {
                    *pidx &= !REUSE_MASKS;
                }
            }
            match op {
                MicroOp::Switch4 { s1, s0, pidx, .. } if pidx & REUSE_MASKS == 0 => {
                    // Maximal mask-reuse run headed here.
                    let mut j = i + 1;
                    while j < end
                        && matches!(old[j], MicroOp::Switch4 { pidx, .. }
                            if pidx & REUSE_MASKS != 0)
                    {
                        j += 1;
                    }
                    if j - i >= 2 {
                        let start = s4_items.len() as u32;
                        for (k, run_op) in old[i..j].iter().enumerate() {
                            if let MicroOp::Switch4 { d, ins, pidx, .. } = *run_op {
                                s4_items.push(S4Item {
                                    d,
                                    ins,
                                    pidx: pidx & !REUSE_MASKS,
                                });
                            }
                            if pos2comp[i + k] != u32::MAX {
                                folded.push(pos2comp[i + k]);
                            }
                        }
                        let idx = s4_chains.len() as u32;
                        s4_chains.push(S4ChainData {
                            s1,
                            s0,
                            start,
                            len: (j - i) as u32,
                        });
                        tape.push(MicroOp::S4Chain { idx });
                    } else {
                        if pos2comp[i] != u32::MAX {
                            moved.push((pos2comp[i], tape.len() as u32));
                        }
                        tape.push(op);
                    }
                    i = j;
                }
                MicroOp::Switch4 { .. } => {
                    unreachable!("orphan mask-reuse op at tape position {i}")
                }
                _ if pair_code(&op).is_some()
                    && i + 1 < end
                    && pair_code(&old[i + 1]).is_some() =>
                {
                    for p in [i, i + 1] {
                        if pos2comp[p] != u32::MAX {
                            folded.push(pos2comp[p]);
                        }
                    }
                    let idx = fused_pairs.len() as u32;
                    fused_pairs.push([op, old[i + 1]]);
                    tape.push(MicroOp::Pair2 { idx });
                    i += 2;
                }
                _ => {
                    if pos2comp[i] != u32::MAX {
                        moved.push((pos2comp[i], tape.len() as u32));
                    }
                    tape.push(op);
                    i += 1;
                }
            }
        }
        ranges.push((new_start, tape.len() as u32));
    }

    let ops_after = tape.len();
    cc.tape = tape;
    cc.level_ranges = ranges;
    cc.fused_pairs = fused_pairs;
    cc.s4_chains = s4_chains;
    cc.s4_items = s4_items;
    for (comp, pos) in moved {
        cc.comp_pos[comp as usize] = pos;
    }
    for comp in folded {
        cc.comp_pos[comp as usize] = COMP_FOLDED;
        cc.fold_hint[comp as usize] = FoldHint::Rewritten;
    }
    cc.pass_stats.push(PassStats {
        name: "fuse",
        ops_before,
        ops_after,
    });
    #[cfg(feature = "telemetry")]
    absort_telemetry::counter_add("compile.pass.fuse.fused", (ops_before - ops_after) as u64);
}
