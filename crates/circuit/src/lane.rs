//! Lane abstraction for scalar and bit-parallel evaluation.
//!
//! Every wire carries one value of a [`Lane`] type during evaluation.
//! `bool` gives scalar (one-test-vector) evaluation; `u64` evaluates 64
//! independent test vectors in a single pass — the classic bit-parallel
//! ("bit-sliced") circuit-simulation trick, which is what makes exhaustive
//! verification of the 2^16 inputs of a 16-input sorter circuit cheap.

/// A value type a wire can carry: a single bit or a packed vector of bits
/// combined with bitwise operations.
pub trait Lane: Copy + Send + Sync + 'static {
    /// The all-zeros value.
    const ZERO: Self;
    /// The all-ones value (logical TRUE in every lane).
    const ONES: Self;
    /// How many independent test vectors one value of this type carries
    /// (1 for `bool`); telemetry uses this to report lanes processed.
    const LANES: u32;

    /// Bitwise NOT.
    fn not(self) -> Self;
    /// Bitwise AND.
    fn and(self, other: Self) -> Self;
    /// Bitwise OR.
    fn or(self, other: Self) -> Self;
    /// Bitwise XOR.
    fn xor(self, other: Self) -> Self;

    /// Per-lane select: in each lane, yields `a1` where `sel` is 1 and
    /// `a0` where `sel` is 0.
    #[inline]
    fn select(sel: Self, a1: Self, a0: Self) -> Self {
        sel.and(a1).or(sel.not().and(a0))
    }

    /// Broadcast of a boolean constant into every lane.
    #[inline]
    fn splat(b: bool) -> Self {
        if b {
            Self::ONES
        } else {
            Self::ZERO
        }
    }

    /// A value that is TRUE in lane `lane` and FALSE everywhere else.
    /// Used by the fault-injecting evaluator to flip a single test
    /// vector's bit inside a packed pass. `lane` must be `< LANES`.
    fn lane_mask(lane: u32) -> Self;

    /// The boolean carried by lane 0. For `LANES == 1` types this is
    /// the whole value, which lets single-vector dispatch replace mask
    /// arithmetic with direct indexing (see the compiled evaluator's
    /// scalar 4×4-switch fast path).
    fn first_lane(self) -> bool;
}

impl Lane for bool {
    const ZERO: Self = false;
    const ONES: Self = true;
    const LANES: u32 = 1;

    #[inline]
    fn not(self) -> Self {
        !self
    }
    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }
    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }
    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    #[inline]
    fn lane_mask(lane: u32) -> Self {
        debug_assert!(lane == 0, "bool carries a single lane");
        true
    }
    #[inline]
    fn first_lane(self) -> bool {
        self
    }
}

impl Lane for u64 {
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;
    const LANES: u32 = 64;

    #[inline]
    fn not(self) -> Self {
        !self
    }
    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }
    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }
    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    #[inline]
    fn lane_mask(lane: u32) -> Self {
        1u64 << lane
    }
    #[inline]
    fn first_lane(self) -> bool {
        self & 1 == 1
    }
}

impl Lane for u128 {
    const ZERO: Self = 0;
    const ONES: Self = u128::MAX;
    const LANES: u32 = 128;

    #[inline]
    fn not(self) -> Self {
        !self
    }
    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }
    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }
    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    #[inline]
    fn lane_mask(lane: u32) -> Self {
        1u128 << lane
    }
    #[inline]
    fn first_lane(self) -> bool {
        self & 1 == 1
    }
}

/// Wide lanes: `N` packed 64-lane words evaluated per pass (`[u64; 4]`
/// carries 256 test vectors). Word `k` holds lanes `64k .. 64k+64`.
///
/// Wide walks amortize tape decode, dispatch, and bounds checks over
/// `64 * N` vectors, but multiply the working buffer by `N` — which is
/// why they pay off on the compiled engine (whose register-allocated
/// slot buffer stays cache-resident even at `N = 4`) and not on the
/// interpreter (whose full-width wire buffer already spills L1 at
/// `N = 1`).
impl<const N: usize> Lane for [u64; N] {
    const ZERO: Self = [0; N];
    const ONES: Self = [u64::MAX; N];
    #[allow(clippy::cast_possible_truncation)]
    const LANES: u32 = 64 * N as u32;

    #[inline]
    fn not(self) -> Self {
        let mut r = self;
        for x in &mut r {
            *x = !*x;
        }
        r
    }
    #[inline]
    fn and(self, other: Self) -> Self {
        let mut r = self;
        for (x, y) in r.iter_mut().zip(other) {
            *x &= y;
        }
        r
    }
    #[inline]
    fn or(self, other: Self) -> Self {
        let mut r = self;
        for (x, y) in r.iter_mut().zip(other) {
            *x |= y;
        }
        r
    }
    #[inline]
    fn xor(self, other: Self) -> Self {
        let mut r = self;
        for (x, y) in r.iter_mut().zip(other) {
            *x ^= y;
        }
        r
    }
    #[inline]
    fn lane_mask(lane: u32) -> Self {
        let mut r = [0; N];
        r[(lane / 64) as usize] = 1u64 << (lane % 64);
        r
    }
    #[inline]
    fn first_lane(self) -> bool {
        self[0] & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_select() {
        assert!(bool::select(true, true, false));
        assert!(!bool::select(false, true, false));
        assert!(bool::select(false, false, true));
    }

    #[test]
    fn u64_select_is_per_lane() {
        let sel = 0b1010u64;
        let a1 = 0b1100u64;
        let a0 = 0b0011u64;
        // lane 0: sel=0 -> a0 bit 1; lane 1: sel=1 -> a1 bit 0;
        // lane 2: sel=0 -> a0 bit 0; lane 3: sel=1 -> a1 bit 1.
        assert_eq!(u64::select(sel, a1, a0), 0b1001);
    }

    #[test]
    fn splat() {
        assert_eq!(u64::splat(true), u64::MAX);
        assert_eq!(u64::splat(false), 0);
        assert!(bool::splat(true));
        assert_eq!(u128::splat(true), u128::MAX);
    }

    #[test]
    fn wide_lanes_are_per_word() {
        let sel = [0b1010u64, 0];
        let a1 = [0b1100u64, u64::MAX];
        let a0 = [0b0011u64, 0];
        assert_eq!(<[u64; 2]>::select(sel, a1, a0), [0b1001, 0]);
        assert_eq!(<[u64; 2]>::LANES, 128);
        assert_eq!(<[u64; 4]>::splat(true), [u64::MAX; 4]);
        assert_eq!(<[u64; 2]>::lane_mask(70), [0, 1 << 6]);
    }

    mod wide8_props {
        use super::super::*;
        use proptest::prelude::*;
        use rand::prelude::*;

        fn w8(rng: &mut StdRng) -> [u64; 8] {
            std::array::from_fn(|_| rng.gen())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Every `[u64; 8]` op is exactly eight independent `u64`
            /// ops — no word leaks into its neighbours.
            #[test]
            fn ops_match_per_word_u64(seed in any::<u64>()) {
                let mut rng = StdRng::seed_from_u64(seed);
                let (a, b, s) = (w8(&mut rng), w8(&mut rng), w8(&mut rng));
                for i in 0..8 {
                    prop_assert_eq!(a.not()[i], !a[i]);
                    prop_assert_eq!(a.and(b)[i], a[i] & b[i]);
                    prop_assert_eq!(a.or(b)[i], a[i] | b[i]);
                    prop_assert_eq!(a.xor(b)[i], a[i] ^ b[i]);
                    prop_assert_eq!(
                        <[u64; 8]>::select(s, a, b)[i],
                        u64::select(s[i], a[i], b[i])
                    );
                }
            }

            /// `lane_mask` sets exactly one bit, in the right word, and
            /// `first_lane` extracts lane 0 across all 512 lanes.
            #[test]
            fn lane_mask_splat_and_extract(lane in 0u32..512) {
                let m = <[u64; 8]>::lane_mask(lane);
                for (w, &word) in m.iter().enumerate() {
                    let want = if w as u32 == lane / 64 { 1u64 << (lane % 64) } else { 0 };
                    prop_assert_eq!(word, want, "word {} of lane_mask({})", w, lane);
                }
                prop_assert_eq!(m.first_lane(), lane == 0);
                prop_assert_eq!(<[u64; 8]>::splat(true).and(m), m);
                prop_assert_eq!(<[u64; 8]>::splat(false).or(m), m);
                prop_assert_eq!(<[u64; 8]>::LANES, 512);
            }

            /// Select against splatted constants degenerates to the
            /// operands — the identity the compiled mux fast path relies
            /// on, checked at full width.
            #[test]
            fn select_against_splats(seed in any::<u64>()) {
                let mut rng = StdRng::seed_from_u64(seed);
                let (a, b) = (w8(&mut rng), w8(&mut rng));
                prop_assert_eq!(<[u64; 8]>::select(<[u64; 8]>::splat(true), a, b), a);
                prop_assert_eq!(<[u64; 8]>::select(<[u64; 8]>::splat(false), a, b), b);
                prop_assert_eq!(a.xor(a), <[u64; 8]>::ZERO);
                prop_assert_eq!(a.xor(a.not()), <[u64; 8]>::ONES);
            }
        }
    }

    #[test]
    fn u128_lanes_match_u64_lanes() {
        // 128-lane evaluation halves the pass count of exhaustive sweeps;
        // semantics must match the 64-lane path bit for bit.
        let sel = 0b1010u128;
        let a1 = 0b1100u128;
        let a0 = 0b0011u128;
        assert_eq!(u128::select(sel, a1, a0), 0b1001);
        assert_eq!(
            u64::select(0b1010, 0b1100, 0b0011) as u128,
            u128::select(0b1010, 0b1100, 0b0011)
        );
    }
}
