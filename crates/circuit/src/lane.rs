//! Lane abstraction for scalar and bit-parallel evaluation.
//!
//! Every wire carries one value of a [`Lane`] type during evaluation.
//! `bool` gives scalar (one-test-vector) evaluation; `u64` evaluates 64
//! independent test vectors in a single pass — the classic bit-parallel
//! ("bit-sliced") circuit-simulation trick, which is what makes exhaustive
//! verification of the 2^16 inputs of a 16-input sorter circuit cheap.

/// A value type a wire can carry: a single bit or a packed vector of bits
/// combined with bitwise operations.
pub trait Lane: Copy + Send + Sync + 'static {
    /// The all-zeros value.
    const ZERO: Self;
    /// The all-ones value (logical TRUE in every lane).
    const ONES: Self;
    /// How many independent test vectors one value of this type carries
    /// (1 for `bool`); telemetry uses this to report lanes processed.
    const LANES: u32;

    /// Bitwise NOT.
    fn not(self) -> Self;
    /// Bitwise AND.
    fn and(self, other: Self) -> Self;
    /// Bitwise OR.
    fn or(self, other: Self) -> Self;
    /// Bitwise XOR.
    fn xor(self, other: Self) -> Self;

    /// Per-lane select: in each lane, yields `a1` where `sel` is 1 and
    /// `a0` where `sel` is 0.
    #[inline]
    fn select(sel: Self, a1: Self, a0: Self) -> Self {
        sel.and(a1).or(sel.not().and(a0))
    }

    /// Broadcast of a boolean constant into every lane.
    #[inline]
    fn splat(b: bool) -> Self {
        if b {
            Self::ONES
        } else {
            Self::ZERO
        }
    }

    /// A value that is TRUE in lane `lane` and FALSE everywhere else.
    /// Used by the fault-injecting evaluator to flip a single test
    /// vector's bit inside a packed pass. `lane` must be `< LANES`.
    fn lane_mask(lane: u32) -> Self;
}

impl Lane for bool {
    const ZERO: Self = false;
    const ONES: Self = true;
    const LANES: u32 = 1;

    #[inline]
    fn not(self) -> Self {
        !self
    }
    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }
    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }
    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    #[inline]
    fn lane_mask(lane: u32) -> Self {
        debug_assert!(lane == 0, "bool carries a single lane");
        true
    }
}

impl Lane for u64 {
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;
    const LANES: u32 = 64;

    #[inline]
    fn not(self) -> Self {
        !self
    }
    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }
    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }
    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    #[inline]
    fn lane_mask(lane: u32) -> Self {
        1u64 << lane
    }
}

impl Lane for u128 {
    const ZERO: Self = 0;
    const ONES: Self = u128::MAX;
    const LANES: u32 = 128;

    #[inline]
    fn not(self) -> Self {
        !self
    }
    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }
    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }
    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }
    #[inline]
    fn lane_mask(lane: u32) -> Self {
        1u128 << lane
    }
}

/// Wide lanes: `N` packed 64-lane words evaluated per pass (`[u64; 4]`
/// carries 256 test vectors). Word `k` holds lanes `64k .. 64k+64`.
///
/// Wide walks amortize tape decode, dispatch, and bounds checks over
/// `64 * N` vectors, but multiply the working buffer by `N` — which is
/// why they pay off on the compiled engine (whose register-allocated
/// slot buffer stays cache-resident even at `N = 4`) and not on the
/// interpreter (whose full-width wire buffer already spills L1 at
/// `N = 1`).
impl<const N: usize> Lane for [u64; N] {
    const ZERO: Self = [0; N];
    const ONES: Self = [u64::MAX; N];
    #[allow(clippy::cast_possible_truncation)]
    const LANES: u32 = 64 * N as u32;

    #[inline]
    fn not(self) -> Self {
        let mut r = self;
        for x in &mut r {
            *x = !*x;
        }
        r
    }
    #[inline]
    fn and(self, other: Self) -> Self {
        let mut r = self;
        for (x, y) in r.iter_mut().zip(other) {
            *x &= y;
        }
        r
    }
    #[inline]
    fn or(self, other: Self) -> Self {
        let mut r = self;
        for (x, y) in r.iter_mut().zip(other) {
            *x |= y;
        }
        r
    }
    #[inline]
    fn xor(self, other: Self) -> Self {
        let mut r = self;
        for (x, y) in r.iter_mut().zip(other) {
            *x ^= y;
        }
        r
    }
    #[inline]
    fn lane_mask(lane: u32) -> Self {
        let mut r = [0; N];
        r[(lane / 64) as usize] = 1u64 << (lane % 64);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_select() {
        assert!(bool::select(true, true, false));
        assert!(!bool::select(false, true, false));
        assert!(bool::select(false, false, true));
    }

    #[test]
    fn u64_select_is_per_lane() {
        let sel = 0b1010u64;
        let a1 = 0b1100u64;
        let a0 = 0b0011u64;
        // lane 0: sel=0 -> a0 bit 1; lane 1: sel=1 -> a1 bit 0;
        // lane 2: sel=0 -> a0 bit 0; lane 3: sel=1 -> a1 bit 1.
        assert_eq!(u64::select(sel, a1, a0), 0b1001);
    }

    #[test]
    fn splat() {
        assert_eq!(u64::splat(true), u64::MAX);
        assert_eq!(u64::splat(false), 0);
        assert!(bool::splat(true));
        assert_eq!(u128::splat(true), u128::MAX);
    }

    #[test]
    fn wide_lanes_are_per_word() {
        let sel = [0b1010u64, 0];
        let a1 = [0b1100u64, u64::MAX];
        let a0 = [0b0011u64, 0];
        assert_eq!(<[u64; 2]>::select(sel, a1, a0), [0b1001, 0]);
        assert_eq!(<[u64; 2]>::LANES, 128);
        assert_eq!(<[u64; 4]>::splat(true), [u64::MAX; 4]);
        assert_eq!(<[u64; 2]>::lane_mask(70), [0, 1 << 6]);
    }

    #[test]
    fn u128_lanes_match_u64_lanes() {
        // 128-lane evaluation halves the pass count of exhaustive sweeps;
        // semantics must match the 64-lane path bit for bit.
        let sel = 0b1010u128;
        let a1 = 0b1100u128;
        let a0 = 0b0011u128;
        assert_eq!(u128::select(sel, a1, a0), 0b1001);
        assert_eq!(
            u64::select(0b1010, 0b1100, 0b0011) as u128,
            u128::select(0b1010, 0b1100, 0b0011)
        );
    }
}
