//! Wire-level fault injection at evaluation time.
//!
//! [`crate::mutate`] covers faults that are expressible as netlist
//! rewrites (a flipped comparator, a stuck select line). Physical fabrics
//! also degrade in ways a rewrite cannot express without changing the
//! wire table: a wire shorted to power or ground (stuck-at-0/1), two
//! adjacent outputs bridged into a wired-OR, or a *transient* upset that
//! flips one bit on one evaluation and is gone the next. This module
//! injects those during evaluation instead: [`FaultyEvaluator`] runs the
//! same forward scan as [`crate::Evaluator`] — scalar or 64-lane packed —
//! and applies a small set of [`WireFault`]s as wire values are produced.
//!
//! The semantics are *forward-settled*: a fault takes effect from the
//! moment its wire is driven (inputs and constants at load time,
//! component outputs when the component evaluates), so every downstream
//! reader observes the faulty value. For the wired-OR bridge, both wires
//! take the OR of the two driven values from the point the *later* driver
//! has run; in a combinational DAG every reader of either wire evaluates
//! after both drivers, so this matches the settled hardware behaviour.
//!
//! [`permanent_fault_sites`] enumerates the stuck-at and bridge faults
//! worth injecting into a circuit: sites are restricted to the output
//! cone (a fault on a wire no output observes is vacuous by construction)
//! and to wires that actually take the opposing value on some vector of
//! the workload (a stuck-at-0 on an always-0 wire changes nothing). The
//! fault campaign in `absort-analysis` sweeps these sites and scores
//! whether the workspace's checkers notice each one.

use crate::circuit::Circuit;
use crate::eval::eval_component;
use crate::lane::Lane;
use crate::wire::Wire;

/// A single wire-level fault, injected at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The wire reads as `value` no matter what drives it.
    StuckAt {
        /// The faulty wire.
        wire: Wire,
        /// The stuck value (`false` = stuck-at-0, `true` = stuck-at-1).
        value: bool,
    },
    /// Wires `a` and `b` are shorted into a wired-OR: once both are
    /// driven, each reads as `a OR b`.
    BridgeOr {
        /// First bridged wire.
        a: Wire,
        /// Second bridged wire.
        b: Wire,
    },
    /// A single-event upset: the wire's value is inverted on exactly one
    /// evaluation (test vector `vector`, counted across the evaluator's
    /// lifetime) and behaves normally on every other.
    TransientFlip {
        /// The upset wire.
        wire: Wire,
        /// Zero-based index of the affected test vector.
        vector: u64,
    },
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFault::StuckAt { wire, value } => {
                write!(f, "w{}:stuck{}", wire.index(), u8::from(*value))
            }
            WireFault::BridgeOr { a, b } => write!(f, "w{}~w{}:bridge", a.index(), b.index()),
            WireFault::TransientFlip { wire, vector } => {
                write!(f, "w{}:flip@v{vector}", wire.index())
            }
        }
    }
}

/// Per-wire fault bookkeeping, indexed for O(1) lookup in the scan.
#[derive(Clone, Copy, Default)]
struct WireEffect {
    stuck: Option<bool>,
    /// Transient flip at this wire for the given absolute vector index.
    flip_at: Option<u64>,
}

/// An evaluator that injects a set of [`WireFault`]s while running the
/// standard forward scan.
///
/// ```
/// use absort_circuit::{Builder, faulty::{FaultyEvaluator, WireFault}};
///
/// let mut b = Builder::new();
/// let x = b.input();
/// let y = b.input();
/// let (lo, hi) = b.bit_compare(x, y);
/// b.outputs(&[lo, hi]);
/// let c = b.finish();
///
/// // stuck-at-1 on the min output: the "sorted" pair (0,1) comes out (1,1)
/// let fault = WireFault::StuckAt { wire: c.output_wire(0), value: true };
/// let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&c, &[fault]);
/// assert_eq!(ev.run(&[true, false]), vec![true, true]);
/// ```
pub struct FaultyEvaluator<'c, V: Lane> {
    circuit: &'c Circuit,
    wires: Vec<V>,
    effects: Vec<WireEffect>,
    /// Bridges as `(a, b, apply_after)`: the OR is applied after the
    /// component with index `apply_after` runs (`None` = at input load,
    /// when both wires are inputs/constants).
    bridges: Vec<(Wire, Wire, Option<usize>)>,
    /// Test vectors consumed so far (advances by `V::LANES` per pass).
    vectors_done: u64,
}

impl<'c, V: Lane> FaultyEvaluator<'c, V> {
    /// Creates an evaluator injecting `faults` into `circuit`.
    pub fn new(circuit: &'c Circuit, faults: &[WireFault]) -> Self {
        let mut effects = vec![WireEffect::default(); circuit.n_wires()];
        let mut bridges = Vec::new();
        // Map each wire to the component driving it, to place bridges.
        let mut driver: Vec<Option<usize>> = vec![None; circuit.n_wires()];
        for (ci, p) in circuit.components().iter().enumerate() {
            for k in 0..p.comp.n_outputs() {
                driver[p.out_base as usize + k] = Some(ci);
            }
        }
        for f in faults {
            match *f {
                WireFault::StuckAt { wire, value } => {
                    effects[wire.index()].stuck = Some(value);
                }
                WireFault::TransientFlip { wire, vector } => {
                    effects[wire.index()].flip_at = Some(vector);
                }
                WireFault::BridgeOr { a, b } => {
                    let apply_after = driver[a.index()].max(driver[b.index()]);
                    bridges.push((a, b, apply_after));
                }
            }
        }
        FaultyEvaluator {
            circuit,
            wires: vec![V::ZERO; circuit.n_wires()],
            effects,
            bridges,
            vectors_done: 0,
        }
    }

    /// Applies stuck/transient effects to one just-driven wire.
    #[inline]
    fn touch(&mut self, wire: usize) {
        let e = self.effects[wire];
        if let Some(v) = e.stuck {
            self.wires[wire] = V::splat(v);
        }
        if let Some(at) = e.flip_at {
            if at >= self.vectors_done && at < self.vectors_done + u64::from(V::LANES) {
                let mask = V::lane_mask((at - self.vectors_done) as u32);
                self.wires[wire] = self.wires[wire].xor(mask);
            }
        }
    }

    /// Applies the bridges scheduled for position `pos` (`None` = load).
    fn apply_bridges(&mut self, pos: Option<usize>) {
        for bi in 0..self.bridges.len() {
            let (a, b, after) = self.bridges[bi];
            if after == pos {
                let or = self.wires[a.index()].or(self.wires[b.index()]);
                self.wires[a.index()] = or;
                self.wires[b.index()] = or;
                // A stuck fault composed on a bridged wire wins again.
                self.touch(a.index());
                self.touch(b.index());
            }
        }
    }

    /// Evaluates one (possibly packed) pass under the injected faults and
    /// returns the outputs. Counts `V::LANES` test vectors per call for
    /// transient-fault bookkeeping.
    pub fn run(&mut self, inputs: &[V]) -> Vec<V> {
        let mut out = vec![V::ZERO; self.circuit.n_outputs()];
        self.run_into(inputs, &mut out);
        out
    }

    /// Allocation-free [`FaultyEvaluator::run`]: evaluates into a
    /// caller-provided output slice so sweep drivers can reuse one buffer
    /// across thousands of fault sites. Advances the transient-fault
    /// vector counter exactly like `run`, so chunks must still be fed in
    /// workload order.
    pub fn run_into(&mut self, inputs: &[V], out: &mut [V]) {
        let c = self.circuit;
        assert_eq!(
            inputs.len(),
            c.n_inputs(),
            "expected {} inputs, got {}",
            c.n_inputs(),
            inputs.len()
        );
        assert_eq!(out.len(), c.n_outputs(), "output slice has wrong length");
        for (wire, &v) in c.input_wires().iter().zip(inputs) {
            self.wires[wire.index()] = v;
            self.touch(wire.index());
        }
        for &(wire, v) in c.const_wires() {
            self.wires[wire.index()] = V::splat(v);
            self.touch(wire.index());
        }
        self.apply_bridges(None);

        for ci in 0..c.components().len() {
            let p = &c.components()[ci];
            eval_component(p, &mut self.wires);
            let base = p.out_base as usize;
            for k in 0..p.comp.n_outputs() {
                self.touch(base + k);
            }
            self.apply_bridges(Some(ci));
        }

        for (o, w) in out.iter_mut().zip(c.output_wires()) {
            *o = self.wires[w.index()];
        }
        self.vectors_done += u64::from(V::LANES);
    }

    /// Test vectors consumed so far across all passes.
    pub fn vectors_done(&self) -> u64 {
        self.vectors_done
    }
}

// ---------------------------------------------------------------------------
// Fault-site enumeration
// ---------------------------------------------------------------------------

/// Per-wire observations from a fault-free sweep: did the wire ever take
/// 0 / 1, and did each sibling-output pair ever differ.
struct SweepProfile {
    saw0: Vec<bool>,
    saw1: Vec<bool>,
    /// `(a, b)` sibling output pairs of multi-output components, with a
    /// flag set when the two wires differed on some vector.
    sibling_pairs: Vec<(Wire, Wire, bool)>,
}

fn sweep_profile(circuit: &Circuit, vectors: &[Vec<bool>]) -> SweepProfile {
    let n_wires = circuit.n_wires();
    let mut ones = vec![0u64; n_wires];
    let mut zeros = vec![0u64; n_wires];
    let mut pairs: Vec<(Wire, Wire, u64)> = Vec::new();
    for p in circuit.components() {
        let n_out = p.comp.n_outputs();
        for k in (0..n_out).step_by(2) {
            if k + 1 < n_out {
                let a = Wire::from_index(p.out_base as usize + k);
                let b = Wire::from_index(p.out_base as usize + k + 1);
                pairs.push((a, b, 0));
            }
        }
    }

    let mut w = vec![0u64; n_wires];
    for chunk in vectors.chunks(64) {
        let valid: u64 = if chunk.len() == 64 {
            u64::MAX
        } else {
            (1u64 << chunk.len()) - 1
        };
        let packed = crate::eval::pack_lanes(chunk, circuit.n_inputs());
        for (wire, &v) in circuit.input_wires().iter().zip(&packed) {
            w[wire.index()] = v;
        }
        for &(wire, v) in circuit.const_wires() {
            w[wire.index()] = u64::splat(v);
        }
        for p in circuit.components() {
            eval_component(p, &mut w);
        }
        for i in 0..n_wires {
            ones[i] |= w[i] & valid;
            zeros[i] |= !w[i] & valid;
        }
        for (a, b, diff) in pairs.iter_mut() {
            *diff |= (w[a.index()] ^ w[b.index()]) & valid;
        }
    }

    SweepProfile {
        saw0: zeros.iter().map(|&z| z != 0).collect(),
        saw1: ones.iter().map(|&o| o != 0).collect(),
        sibling_pairs: pairs.into_iter().map(|(a, b, d)| (a, b, d != 0)).collect(),
    }
}

/// Wires inside the output cone: every wire with a forward path to a
/// designated output (the only wires whose faults can ever be observed).
pub fn observable_wires(circuit: &Circuit) -> Vec<Wire> {
    let mut in_cone = vec![false; circuit.n_wires()];
    for w in circuit.output_wires() {
        in_cone[w.index()] = true;
    }
    for p in circuit.components().iter().rev() {
        let base = p.out_base as usize;
        if (0..p.comp.n_outputs()).any(|k| in_cone[base + k]) {
            p.comp.for_each_input(|w| in_cone[w.index()] = true);
        }
    }
    in_cone
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c)
        .map(|(i, _)| Wire::from_index(i))
        .collect()
}

/// Enumerates the permanent single-fault sites worth injecting for the
/// given workload: stuck-at-0/1 on every output-cone wire that takes the
/// opposing value on some vector, plus wired-OR bridges between sibling
/// outputs of multi-output components (both in the cone) whose values
/// differ on some vector. Faults outside this set provably cannot change
/// any wire value on the workload, so injecting them would only dilute
/// detection statistics with vacuous sites.
pub fn permanent_fault_sites(circuit: &Circuit, vectors: &[Vec<bool>]) -> Vec<WireFault> {
    let profile = sweep_profile(circuit, vectors);
    let mut in_cone = vec![false; circuit.n_wires()];
    for w in observable_wires(circuit) {
        in_cone[w.index()] = true;
    }

    let mut out = Vec::new();
    for (i, &cone) in in_cone.iter().enumerate() {
        if !cone {
            continue;
        }
        let wire = Wire::from_index(i);
        if profile.saw1[i] {
            out.push(WireFault::StuckAt { wire, value: false });
        }
        if profile.saw0[i] {
            out.push(WireFault::StuckAt { wire, value: true });
        }
    }
    for &(a, b, differs) in &profile.sibling_pairs {
        if differs && in_cone[a.index()] && in_cone[b.index()] {
            out.push(WireFault::BridgeOr { a, b });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::eval::{pack_lanes, unpack_lanes};

    fn two_sorter() -> Circuit {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let (lo, hi) = b.bit_compare(x, y);
        b.outputs(&[lo, hi]);
        b.finish()
    }

    #[test]
    fn stuck_at_forces_the_wire() {
        let c = two_sorter();
        let min_wire = c.output_wire(0);
        let f = [WireFault::StuckAt {
            wire: min_wire,
            value: true,
        }];
        let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&c, &f);
        assert_eq!(ev.run(&[false, false]), vec![true, false]);
        assert_eq!(ev.run(&[true, false]), vec![true, true]);
    }

    #[test]
    fn stuck_input_propagates() {
        let c = two_sorter();
        let in0 = c.input_wire(0);
        let f = [WireFault::StuckAt {
            wire: in0,
            value: true,
        }];
        let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&c, &f);
        // input (0,0) behaves as (1,0) -> sorted (0,1)
        assert_eq!(ev.run(&[false, false]), vec![false, true]);
    }

    #[test]
    fn transient_hits_exactly_one_vector_scalar() {
        let c = two_sorter();
        let f = [WireFault::TransientFlip {
            wire: c.output_wire(1),
            vector: 2,
        }];
        let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&c, &f);
        let input = [true, false]; // sorts to (0,1)
        assert_eq!(ev.run(&input), vec![false, true]); // vector 0
        assert_eq!(ev.run(&input), vec![false, true]); // vector 1
        assert_eq!(ev.run(&input), vec![false, false], "vector 2 is upset");
        assert_eq!(ev.run(&input), vec![false, true]); // vector 3
    }

    #[test]
    fn transient_hits_exactly_one_lane_packed() {
        let c = two_sorter();
        let f = [WireFault::TransientFlip {
            wire: c.output_wire(1),
            vector: 65, // second lane of the second pass
        }];
        let mut ev: FaultyEvaluator<'_, u64> = FaultyEvaluator::new(&c, &f);
        let vectors: Vec<Vec<bool>> = (0..64).map(|_| vec![true, false]).collect();
        let packed = pack_lanes(&vectors, 2);
        let first = ev.run(&packed);
        assert_eq!(unpack_lanes(&first, 64), {
            let mut ok = Vec::new();
            for _ in 0..64 {
                ok.push(vec![false, true]);
            }
            ok
        });
        let second = ev.run(&packed);
        let outs = unpack_lanes(&second, 64);
        for (v, o) in outs.iter().enumerate() {
            if v == 1 {
                assert_eq!(o, &vec![false, false], "lane 1 of pass 2 is vector 65");
            } else {
                assert_eq!(o, &vec![false, true], "lane {v}");
            }
        }
    }

    #[test]
    fn bridge_ors_sibling_outputs() {
        let c = two_sorter();
        let f = [WireFault::BridgeOr {
            a: c.output_wire(0),
            b: c.output_wire(1),
        }];
        let mut ev: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&c, &f);
        // (1,0): min=0, max=1, bridged -> both 1
        assert_eq!(ev.run(&[true, false]), vec![true, true]);
        // (0,0): both 0, bridge is invisible
        assert_eq!(ev.run(&[false, false]), vec![false, false]);
    }

    #[test]
    fn scalar_and_packed_agree_under_faults() {
        // a deeper circuit: 4-input sorter slice
        let mut b = Builder::new();
        let ins = b.input_bus(4);
        let (a0, a1) = b.bit_compare(ins[0], ins[1]);
        let (b0, b1) = b.bit_compare(ins[2], ins[3]);
        let (lo, m1) = b.bit_compare(a0, b0);
        let (m2, hi) = b.bit_compare(a1, b1);
        let (mid_lo, mid_hi) = b.bit_compare(m1, m2);
        b.outputs(&[lo, mid_lo, mid_hi, hi]);
        let c = b.finish();

        for fault in permanent_fault_sites(&c, &all_vectors(4)) {
            let vectors = all_vectors(4);
            let mut scalar: FaultyEvaluator<'_, bool> = FaultyEvaluator::new(&c, &[fault]);
            let scalar_outs: Vec<Vec<bool>> = vectors.iter().map(|v| scalar.run(v)).collect();
            let mut packed: FaultyEvaluator<'_, u64> = FaultyEvaluator::new(&c, &[fault]);
            let words = pack_lanes(&vectors, 4);
            let packed_outs = unpack_lanes(&packed.run(&words), vectors.len());
            assert_eq!(scalar_outs, packed_outs, "fault {fault}");
        }
    }

    fn all_vectors(n: usize) -> Vec<Vec<bool>> {
        (0..1u64 << n)
            .map(|v| (0..n).map(|i| v >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn sites_exclude_vacuous_and_dead_wires() {
        // A circuit with an unobserved component: its wires must not be
        // fault sites.
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let o = b.and(x, y);
        let dead = b.or(x, y); // never designated
        let _ = dead;
        b.outputs(&[o]);
        let c = b.finish();
        let sites = permanent_fault_sites(&c, &all_vectors(2));
        for s in &sites {
            if let WireFault::StuckAt { wire, .. } = s {
                assert_ne!(wire.index(), dead.index(), "dead wire enumerated");
            }
        }
        // Constant wires in the cone get only the flip that changes them.
        let mut b = Builder::new();
        let x = b.input();
        let z = b.constant(false);
        let o = b.or(x, z);
        b.outputs(&[o]);
        let c = b.finish();
        let sites = permanent_fault_sites(&c, &all_vectors(1));
        assert!(
            sites.iter().all(|s| !matches!(
                s,
                WireFault::StuckAt { wire, value: false } if wire.index() == z.index()
            )),
            "stuck-at-0 on an always-0 constant is vacuous"
        );
        assert!(
            sites.iter().any(|s| matches!(
                s,
                WireFault::StuckAt { wire, value: true } if wire.index() == z.index()
            )),
            "stuck-at-1 on a const-0 wire in the cone is a real site"
        );
    }

    #[test]
    fn display_names_sites() {
        let f = WireFault::StuckAt {
            wire: Wire::from_index(7),
            value: true,
        };
        assert_eq!(f.to_string(), "w7:stuck1");
        let f = WireFault::BridgeOr {
            a: Wire::from_index(1),
            b: Wire::from_index(2),
        };
        assert_eq!(f.to_string(), "w1~w2:bridge");
        let f = WireFault::TransientFlip {
            wire: Wire::from_index(3),
            vector: 9,
        };
        assert_eq!(f.to_string(), "w3:flip@v9");
    }
}
