//! Select-mask reuse between adjacent 4×4 switches (post-schedule).
//!
//! Consecutive switches of one swapper column share a control pair; the
//! second can reuse the four select masks the first computed instead of
//! recomputing them (`REUSE_MASKS` on the tape). In SSA form the
//! criterion is simply *value identity* of the control pair: defs are
//! always fresh values, so the preceding op can never clobber a control
//! it shares with its successor, and regalloc keeps a value in one slot
//! for its whole live range — which covers the old slot-level check
//! exactly.
//!
//! Must run after [`crate::passes::schedule`]: adjacency is a property
//! of the final tape order.

use crate::ir::{CompileIr, IrKind};
use crate::passes::Pass;

/// See the module docs.
pub struct MaskReuse;

impl Pass for MaskReuse {
    fn name(&self) -> &'static str {
        "mask-reuse"
    }

    fn run(&self, ir: &mut CompileIr) {
        for i in 1..ir.ops.len() {
            let prev = match ir.ops[i - 1].kind {
                IrKind::Switch4 { s1, s0, .. } => Some((s1, s0)),
                _ => None,
            };
            let op = &mut ir.ops[i];
            if let IrKind::Switch4 { s1, s0, .. } = op.kind {
                op.reuse_masks = prev == Some((s1, s0));
            }
        }
    }
}
