//! The schedule stage (always on): levelize the IR and stable-sort ops
//! so constants form the prologue and component ops are grouped by
//! depth level — the layout regalloc turns into
//! `CompiledCircuit::level_ranges`.
//!
//! Levels follow the paper's unit-depth convention: inputs and
//! constants sit at level 0, and every op lands one past its deepest
//! operand. A stable sort by level keeps the original topological
//! order *within* each level, so defs still strictly precede uses.

use crate::ir::{CompileIr, IrKind};

/// Assigns [`crate::ir::IrOp::level`] and reorders `ir.ops` by level
/// (stable). Constants get level 0 and sort to the front.
pub fn schedule(ir: &mut CompileIr) {
    let mut val_level = vec![0u32; ir.n_vals as usize];
    for op in &mut ir.ops {
        let mut m = 0u32;
        op.kind.for_each_use(|v| m = m.max(val_level[v as usize]));
        op.level = if matches!(op.kind, IrKind::Const { .. }) {
            0
        } else {
            m + 1
        };
        for &d in op.defs() {
            val_level[d as usize] = op.level;
        }
    }
    ir.ops.sort_by_key(|op| op.level);
}
