//! Constant-prologue folding: deduplicate every constant op onto the
//! two canonical `false`/`true` values created by lowering.
//!
//! This is the pass-pipeline form of the old monolithic compiler's
//! "constants fold into the prologue" step. Constant wires carry no
//! component provenance (they are not components), so this pass never
//! touches the fate table.

use crate::ir::{CompileIr, IrKind, ValId};
use crate::passes::Pass;

/// See the module docs.
pub struct ConstPrologue;

impl Pass for ConstPrologue {
    fn name(&self) -> &'static str {
        "const-prologue"
    }

    fn run(&self, ir: &mut CompileIr) {
        let mut subst: Vec<ValId> = (0..ir.n_vals).collect();
        let mut keep = vec![true; ir.ops.len()];
        let mut canon: [Option<ValId>; 2] = [None, None];
        for (i, op) in ir.ops.iter_mut().enumerate() {
            op.kind.map_uses(|v| subst[v as usize]);
            if let IrKind::Const { v } = op.kind {
                let slot = &mut canon[usize::from(v)];
                match *slot {
                    None => *slot = Some(op.defs[0]),
                    Some(c) => {
                        subst[op.defs[0] as usize] = c;
                        keep[i] = false;
                    }
                }
            }
        }
        for o in &mut ir.outputs {
            *o = subst[*o as usize];
        }
        ir.retain_ops(&keep);
    }
}
