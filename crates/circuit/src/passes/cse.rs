//! Structural hashing / common-subexpression elimination.
//!
//! Sorting networks assembled from repeated merger blocks (and the
//! self-checking wrappers around them) recompute identical functions of
//! identical values — e.g. two control decoders fed the same select
//! pair. One forward scan hashes every op by `(kind, operands)` —
//! sorting the operand pair *in the key only* for commutative ops, so
//! the surviving op's operand order (which fault patches rely on, e.g.
//! the comparator's `InvertBehaviour` encoding) is never disturbed —
//! and replaces later duplicates with the first occurrence.
//!
//! Provenance: merging two ops with distinct source components leaves
//! the tape with one op standing for both. Patching it would fault both
//! components at once, which no single-site netlist mutant does, so the
//! survivor is flagged [`crate::ir::IrOp::shared`] and **both**
//! components are marked [`crate::ir::CompFate::Folded`] — fault
//! campaigns fall back to per-mutant recompiles for exactly those
//! sites.

use std::collections::HashMap;

use crate::component::{GateOp, Perm4};
use crate::ir::{CompileIr, FoldHint, IrKind, ValId};
use crate::passes::Pass;

/// Hash key of one op: the function it computes of its (substituted)
/// operand values. Commutative operand pairs are stored sorted.
#[derive(Hash, PartialEq, Eq)]
enum Key {
    Const(bool),
    Not(ValId),
    Gate(GateOp, ValId, ValId),
    Mux(ValId, ValId, ValId),
    Demux(ValId, ValId),
    Switch2(ValId, ValId, ValId),
    BitCompare(ValId, ValId),
    Switch4(ValId, ValId, [ValId; 4], [Perm4; 4]),
}

fn sorted(a: ValId, b: ValId) -> (ValId, ValId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn key_of(kind: &IrKind) -> Key {
    match *kind {
        IrKind::Const { v } => Key::Const(v),
        IrKind::Not { a } => Key::Not(a),
        // Every two-input gate op is commutative.
        IrKind::Gate { op, a, b } => {
            let (a, b) = sorted(a, b);
            Key::Gate(op, a, b)
        }
        IrKind::Mux { s, a1, a0 } => Key::Mux(s, a1, a0),
        IrKind::Demux { s, x } => Key::Demux(s, x),
        IrKind::Switch2 { s, a, b } => Key::Switch2(s, a, b),
        IrKind::BitCompare { a, b } => {
            let (a, b) = sorted(a, b);
            Key::BitCompare(a, b)
        }
        IrKind::Switch4 { s1, s0, ins, perms } => Key::Switch4(s1, s0, ins, perms),
    }
}

/// See the module docs.
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, ir: &mut CompileIr) {
        // Pre-substitution observation census: how many ops (or outputs)
        // reference each value *on entry*. A merged op none of whose defs
        // is observed here is unobservable in the source netlist too
        // (earlier passes only drop uses that are pointwise-insensitive
        // to the value), so any mutant of its component is
        // output-equivalent to the base: those sites get
        // [`FoldHint::Equivalent`] and skip the per-mutant recompile.
        let mut observed = vec![false; ir.n_vals as usize];
        for op in &ir.ops {
            op.kind.for_each_use(|v| observed[v as usize] = true);
        }
        for &o in &ir.outputs {
            observed[o as usize] = true;
        }

        let mut subst: Vec<ValId> = (0..ir.n_vals).collect();
        let mut keep = vec![true; ir.ops.len()];
        // Key → (op index, defs) of the first occurrence.
        let mut seen: HashMap<Key, (usize, [ValId; 4])> = HashMap::new();
        let mut folded: Vec<(u32, bool)> = Vec::new();
        // Survivor op index → were ALL duplicates merged into it
        // unobserved on entry?
        let mut survivors: HashMap<usize, bool> = HashMap::new();
        for (i, op) in ir.ops.iter_mut().enumerate() {
            op.kind.map_uses(|v| subst[v as usize]);
            match seen.entry(key_of(&op.kind)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((i, op.defs));
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let (survivor, sdefs) = *e.get();
                    let unobserved = op.defs().iter().all(|&d| !observed[d as usize]);
                    for (k, &def) in op.defs().iter().enumerate() {
                        subst[def as usize] = sdefs[k];
                    }
                    keep[i] = false;
                    folded.push((op.comp, unobserved));
                    survivors
                        .entry(survivor)
                        .and_modify(|all| *all &= unobserved)
                        .or_insert(unobserved);
                }
            }
        }
        // Survivor sites. When every duplicate merged into a survivor
        // was unobserved, the merge did not change the survivor's
        // observable fanout: its tape image still represents exactly its
        // own component, so it stays `Live` and unshared — fault
        // campaigns patch it in place instead of recompiling. Any
        // observed duplicate makes the survivor stand for two components
        // at once, which keeps the recompile fallback.
        let mut kept_live: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (&si, &all_unobserved) in &survivors {
            let comp = ir.ops[si].comp;
            if all_unobserved
                && comp != crate::ir::NO_COMP
                && ir.comp_fate[comp as usize] == crate::ir::CompFate::Live
            {
                kept_live.insert(comp);
                continue;
            }
            ir.ops[si].shared = true;
            ir.fold_comp(comp);
        }
        for (comp, unobserved) in folded {
            // The upgrade is only sound for comps the pipeline had not
            // touched yet: an op surviving an earlier fold (a `ToNot`
            // rewrite) can under-represent its component's fanout via
            // aliases baked into downstream uses, so "defs unobserved"
            // would not imply "component unobservable" there. A comp
            // with a kept-live survivor op is still observable through
            // that op, so it must not be declared `Equivalent` either.
            if unobserved
                && comp != crate::ir::NO_COMP
                && !kept_live.contains(&comp)
                && ir.comp_fate[comp as usize] == crate::ir::CompFate::Live
            {
                ir.fold_comp_hinted(comp, FoldHint::Equivalent);
            } else {
                ir.fold_comp(comp);
            }
        }
        for o in &mut ir.outputs {
            *o = subst[*o as usize];
        }
        ir.retain_ops(&keep);
    }
}
