//! Dead-code elimination: drop every op no designated output observes.
//!
//! One backward scan marks the output cone; everything else is deleted.
//! A component removed here is marked [`crate::ir::CompFate::Dead`] —
//! a fault in it is output-equivalent to the base circuit, so fault
//! campaigns skip evaluating it entirely. Components already folded by
//! an earlier pass keep their [`crate::ir::CompFate::Folded`] fate (a
//! folded component is *not* unobservable in the source netlist; see
//! `DESIGN.md`) — but when the deleted op is an unshared single-def
//! rewrite (a gate const-prop turned into a `Not`), the component's
//! whole image is now unobserved, so its [`crate::ir::FoldHint`] is
//! upgraded to `Equivalent`: any mutant there is dead too.

use crate::ir::{CompFate, CompileIr, FoldHint, IrKind, NO_COMP};
use crate::passes::Pass;

/// See the module docs.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, ir: &mut CompileIr) {
        let mut used = vec![false; ir.n_vals as usize];
        for &o in &ir.outputs {
            used[o as usize] = true;
        }
        let mut keep = vec![true; ir.ops.len()];
        for (i, op) in ir.ops.iter().enumerate().rev() {
            let live = op.defs().iter().any(|&d| used[d as usize]);
            if live {
                op.kind.for_each_use(|v| used[v as usize] = true);
            } else {
                keep[i] = false;
                if op.comp != NO_COMP {
                    let comp = op.comp as usize;
                    match ir.comp_fate[comp] {
                        CompFate::Live => ir.comp_fate[comp] = CompFate::Dead,
                        // A deleted `ToNot` gate rewrite was the only
                        // remaining image of its component (single def,
                        // no baked-in aliases — `Rewritten` sites and
                        // CSE survivors are excluded), so no output can
                        // observe any mutant of it.
                        CompFate::Folded
                            if !op.shared
                                && matches!(op.kind, IrKind::Not { .. })
                                && ir.fold_hint[comp] == FoldHint::None =>
                        {
                            ir.fold_hint[comp] = FoldHint::Equivalent;
                        }
                        _ => {}
                    }
                }
            }
        }
        ir.retain_ops(&keep);
    }
}
