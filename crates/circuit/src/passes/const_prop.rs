//! Constant propagation through gates, muxes, and switches.
//!
//! A single forward scan (topological order makes one scan a fixpoint)
//! tracks which values are known constants and folds every op whose
//! result is forced: a switch with a known select lowers to plain
//! wires, a gate with a constant operand collapses to an alias, a
//! constant, or an inverter. Each fold is valid *pointwise* — it holds
//! for every value of the remaining non-constant operands — which is
//! what keeps downstream dead-code elimination sound for fault
//! campaigns (see `DESIGN.md`).
//!
//! Every component this pass removes **or rewrites** is marked
//! [`crate::ir::CompFate::Folded`]: the tape no longer carries a
//! faithful image of the component, so in-place fault patching must
//! not touch it (e.g. patching an `Or` that used to be a `Mux` would
//! apply the wrong fault semantics). Each fold also records a
//! [`FoldHint`] saying *why* the image went away — select-known and
//! operand-equality folds prove specific fault kinds output-equivalent
//! to the base, letting `mutant_tape` skip the recompile fallback for
//! exactly those kinds.

use crate::component::GateOp;
use crate::ir::{CompileIr, FoldHint, IrKind, ValId};
use crate::passes::Pass;

/// See the module docs.
pub struct ConstProp;

impl Pass for ConstProp {
    fn name(&self) -> &'static str {
        "const-prop"
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, ir: &mut CompileIr) {
        let mut subst: Vec<ValId> = (0..ir.n_vals).collect();
        let mut cv: Vec<Option<bool>> = vec![None; ir.n_vals as usize];
        let mut keep = vec![true; ir.ops.len()];
        let (cf, ct) = (ir.const_false, ir.const_true);
        let cval = |v: bool| if v { ct } else { cf };

        let mut folded: Vec<(u32, FoldHint)> = Vec::new();
        for (i, op) in ir.ops.iter_mut().enumerate() {
            op.kind.map_uses(|v| subst[v as usize]);
            let d = op.defs;
            // The fold decision for this op: aliases for each def
            // (None = op survives unchanged), or an in-place rewrite.
            // Each fold carries the `FoldHint` recorded for the site.
            enum Act {
                Keep,
                /// Delete the op; def `k` becomes alias `alias[k]`.
                Alias([ValId; 4], FoldHint),
                /// Rewrite in place to `defs[0] = !a` (single def); the
                /// remaining defs (if any) become the given aliases.
                ToNot(ValId, [Option<ValId>; 4], FoldHint),
            }
            let act = match op.kind {
                IrKind::Const { v } => {
                    cv[d[0] as usize] = Some(v);
                    Act::Keep
                }
                IrKind::Not { a } => match cv[a as usize] {
                    Some(x) => Act::Alias([cval(!x), 0, 0, 0], FoldHint::None),
                    None => Act::Keep,
                },
                IrKind::Gate { op: g, a, b } => {
                    // Gate folds never earn a kind hint: the only gate
                    // fault is `InvertBehaviour`, which changes the
                    // folded value in general (Nand(a,a) ≠ And(a,a)).
                    // DCE may still upgrade a surviving `ToNot` rewrite
                    // to `Equivalent` if nothing observes it.
                    let (ca, cb) = (cv[a as usize], cv[b as usize]);
                    if let (Some(x), Some(y)) = (ca, cb) {
                        Act::Alias([cval(g.apply(x, y)), 0, 0, 0], FoldHint::None)
                    } else if a == b {
                        match g {
                            GateOp::And | GateOp::Or => Act::Alias([a, 0, 0, 0], FoldHint::None),
                            GateOp::Xor => Act::Alias([cf, 0, 0, 0], FoldHint::None),
                            GateOp::Xnor => Act::Alias([ct, 0, 0, 0], FoldHint::None),
                            GateOp::Nand | GateOp::Nor => Act::ToNot(a, [None; 4], FoldHint::None),
                        }
                    } else if let Some((c, other)) = match (ca, cb) {
                        (Some(x), None) => Some((x, b)),
                        (None, Some(y)) => Some((y, a)),
                        _ => None,
                    } {
                        match (g, c) {
                            (GateOp::And, true) | (GateOp::Or | GateOp::Xor, false) => {
                                Act::Alias([other, 0, 0, 0], FoldHint::None)
                            }
                            (GateOp::And, false) | (GateOp::Nor, true) => {
                                Act::Alias([cf, 0, 0, 0], FoldHint::None)
                            }
                            (GateOp::Or, true) | (GateOp::Nand, false) => {
                                Act::Alias([ct, 0, 0, 0], FoldHint::None)
                            }
                            (GateOp::Xnor, true) => Act::Alias([other, 0, 0, 0], FoldHint::None),
                            (GateOp::Xor | GateOp::Nand, true)
                            | (GateOp::Nor | GateOp::Xnor, false) => {
                                Act::ToNot(other, [None; 4], FoldHint::None)
                            }
                        }
                    } else {
                        Act::Keep
                    }
                }
                IrKind::Mux { s, a1, a0 } => match cv[s as usize] {
                    Some(v) => {
                        Act::Alias([if v { a1 } else { a0 }, 0, 0, 0], FoldHint::SelectKnown(v))
                    }
                    // Identical arms: every mux fault (swapped arms or a
                    // stuck select) still emits the same value.
                    None if a1 == a0 => Act::Alias([a1, 0, 0, 0], FoldHint::Equivalent),
                    None => Act::Keep,
                },
                IrKind::Demux { s, x } => match (cv[s as usize], cv[x as usize]) {
                    (Some(false), _) => Act::Alias([x, cf, 0, 0], FoldHint::SelectKnown(false)),
                    (Some(true), _) => Act::Alias([cf, x, 0, 0], FoldHint::SelectKnown(true)),
                    // x ≡ 0: both outputs are 0 under any stuck select
                    // (the only demux fault kinds).
                    (None, Some(false)) => Act::Alias([cf, cf, 0, 0], FoldHint::Equivalent),
                    // d0 = !s, d1 = s: the inverter keeps def 0, but d1
                    // aliases the select — the surviving op no longer
                    // accounts for the whole component, so the site is
                    // pinned to the recompile fallback.
                    (None, Some(true)) => {
                        Act::ToNot(s, [None, Some(s), None, None], FoldHint::Rewritten)
                    }
                    (None, None) => Act::Keep,
                },
                IrKind::Switch2 { s, a, b } => match cv[s as usize] {
                    Some(v) => Act::Alias(
                        if v { [b, a, 0, 0] } else { [a, b, 0, 0] },
                        FoldHint::SelectKnown(v),
                    ),
                    // Equal operands: pass and cross are the same
                    // routing, so swapped outputs or a stuck control
                    // still emit (a, a).
                    None if a == b => Act::Alias([a, a, 0, 0], FoldHint::Equivalent),
                    None => Act::Keep,
                },
                IrKind::BitCompare { a, b } => {
                    let (ca, cb) = (cv[a as usize], cv[b as usize]);
                    if a == b {
                        // min = max = a; the mis-steered comparator
                        // (its only fault kind) also routes (a, a).
                        Act::Alias([a, a, 0, 0], FoldHint::Equivalent)
                    } else if let (Some(x), Some(y)) = (ca, cb) {
                        Act::Alias([cval(x & y), cval(x | y), 0, 0], FoldHint::None)
                    } else if let Some((c, other)) = match (ca, cb) {
                        (Some(x), None) => Some((x, b)),
                        (None, Some(y)) => Some((y, a)),
                        _ => None,
                    } {
                        if c {
                            // min = other, max = 1.
                            Act::Alias([other, ct, 0, 0], FoldHint::None)
                        } else {
                            // min = 0, max = other.
                            Act::Alias([cf, other, 0, 0], FoldHint::None)
                        }
                    } else {
                        Act::Keep
                    }
                }
                IrKind::Switch4 { s1, s0, ins, perms } => {
                    match (cv[s1 as usize], cv[s0 as usize]) {
                        (Some(h), Some(l)) => {
                            let sel = usize::from(h) * 2 + usize::from(l);
                            let p = perms[sel];
                            // Stuck-select faults tie `s0` only, so the
                            // hint records the low select's constant.
                            Act::Alias(
                                [
                                    ins[p[0] as usize],
                                    ins[p[1] as usize],
                                    ins[p[2] as usize],
                                    ins[p[3] as usize],
                                ],
                                FoldHint::SelectKnown(l),
                            )
                        }
                        _ => Act::Keep,
                    }
                }
            };
            match act {
                Act::Keep => {}
                Act::Alias(alias, hint) => {
                    for (k, &def) in op.defs().iter().enumerate() {
                        subst[def as usize] = alias[k];
                        cv[def as usize] = cv[alias[k] as usize];
                    }
                    keep[i] = false;
                    folded.push((op.comp, hint));
                }
                Act::ToNot(a, extra, hint) => {
                    for (k, &def) in op.defs().iter().enumerate() {
                        if let Some(t) = extra[k] {
                            subst[def as usize] = t;
                            cv[def as usize] = cv[t as usize];
                        }
                    }
                    op.kind = IrKind::Not { a };
                    op.defs = [d[0], 0, 0, 0];
                    folded.push((op.comp, hint));
                }
            }
        }
        for (comp, hint) in folded {
            ir.fold_comp_hinted(comp, hint);
        }
        for o in &mut ir.outputs {
            *o = subst[*o as usize];
        }
        ir.retain_ops(&keep);
    }
}
