//! The declarative fixpoint `rewrite` pass.
//!
//! Matches the committed ruleset (see [`crate::pattern`] and
//! `crates/circuit/rules/absort.rules`) against the IR and applies
//! profitable rewrites until a fixpoint. The pass subsumes the compile
//! pipeline's remaining ad-hoc peepholes: constant-select switch
//! collapses are declarative rules (inert at O2 where const-prop runs
//! first — behavior there is pinned), the parametric Switch4 rewrites
//! (constant-select collapse and same-control composition, whose
//! permutations are op attributes no fixed term can spell) are named
//! `builtin` rules, and the synthesized section carries the
//! op-count wins — chiefly gate-pair fusion into Switch4-as-dual-LUT
//! ops (`(and x y), (xor x y)` → one 4×4 switch, see
//! [`crate::pattern::lut2_switch4`]).
//!
//! **Profit gating.** A match is applied only when it strictly shrinks
//! the op list: ops freed (deleted roots plus interior ops whose every
//! use dies with them) must exceed ops created. This both guarantees
//! termination of the fixpoint (each applied batch strictly decreases a
//! bounded measure) and keeps the tape monotone across opt levels.
//!
//! **Provenance contract.** *Every* op an applied match touched — the
//! deleted roots *and* every interior/companion op whose structure
//! justified the rewrite — gets its source component marked
//! [`CompFate::Folded`] with [`FoldHint::Rewritten`]. Interiors must be
//! folded too: a fault on an interior component breaks the premise the
//! rewrite was justified by, so patching it in place on the rewritten
//! tape (or letting DCE score an orphaned interior as `Dead`, i.e.
//! output-equivalent) would be unsound. `Rewritten` always takes the
//! per-mutant recompile fallback, which is ground truth — fault
//! campaigns therefore stay bit-identical across opt levels.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::OnceLock;

use crate::component::{GateOp, Perm4};
use crate::ir::{CompileIr, FoldHint, IrKind, IrOp, ValId, NO_COMP};
use crate::pattern::{lut2_switch4, PatNode, PatRef, Pattern, Rule, RuleSet};

use super::Pass;

/// Builtin (programmatic) rule names the pass implements; the ruleset
/// file enables them by name and `absort rules check` validates against
/// this list.
pub const BUILTINS: [&str; 2] = ["sw4-const-select", "sw4-compose"];

/// Safety cap on fixpoint rounds (each applied round strictly shrinks
/// the op list, so this is never reached in practice).
const MAX_ROUNDS: usize = 64;

/// The default (committed, embedded) ruleset the pass runs with.
pub fn default_ruleset() -> &'static RuleSet {
    static SET: OnceLock<RuleSet> = OnceLock::new();
    SET.get_or_init(|| {
        RuleSet::parse(include_str!("../../rules/absort.rules"))
            .expect("embedded ruleset rules/absort.rules is invalid")
    })
}

/// The `rewrite` pass (default ruleset). See the module docs.
pub struct Rewrite;

impl Pass for Rewrite {
    fn name(&self) -> &'static str {
        "rewrite"
    }

    fn run(&self, ir: &mut CompileIr) {
        let hits = rewrite_ir(ir, default_ruleset());
        #[cfg(feature = "telemetry")]
        {
            let mut total = 0u64;
            for (name, n) in &hits {
                absort_telemetry::counter_add(
                    &format!("compile.pass.rewrite.rule.{name}"),
                    u64::from(*n),
                );
                total += u64::from(*n);
            }
            absort_telemetry::counter_add("compile.pass.rewrite.applied", total);
        }
        let _ = &hits;
    }
}

/// Runs the fixpoint rewrite with an explicit ruleset; returns the
/// per-rule application counts (also merged into
/// [`CompileIr::rewrite_hits`]).
pub fn rewrite_ir(ir: &mut CompileIr, set: &RuleSet) -> Vec<(String, u32)> {
    let mut totals: BTreeMap<String, u32> = BTreeMap::new();
    for _ in 0..MAX_ROUNDS {
        let (apps, next_val) = scan_round(ir, set);
        if apps.is_empty() {
            break;
        }
        for a in &apps {
            *totals.entry(a.rule.clone()).or_insert(0) += 1;
        }
        apply_round(ir, apps, next_val);
    }
    let hits: Vec<(String, u32)> = totals.into_iter().collect();
    for (name, n) in &hits {
        match ir.rewrite_hits.iter_mut().find(|(r, _)| r == name) {
            Some((_, c)) => *c += n,
            None => ir.rewrite_hits.push((name.clone(), *n)),
        }
    }
    hits
}

// --- per-round IR index -------------------------------------------------

/// Structural key of one op, operands sorted for commutative kinds —
/// the same canonicalization CSE uses, reused here for ground-term
/// (companion) lookup and RHS hash-consing against existing ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKey {
    Not(ValId),
    Gate(GateOp, ValId, ValId),
    Mux(ValId, ValId, ValId),
    Demux(ValId, ValId),
    Switch2(ValId, ValId, ValId),
    BitCompare(ValId, ValId),
    Switch4(ValId, ValId, [ValId; 4], [Perm4; 4]),
}

fn op_key(kind: &IrKind) -> Option<OpKey> {
    let sorted = |a: ValId, b: ValId| if a <= b { (a, b) } else { (b, a) };
    Some(match *kind {
        IrKind::Const { .. } => return None,
        IrKind::Not { a } => OpKey::Not(a),
        IrKind::Gate { op, a, b } => {
            let (a, b) = sorted(a, b);
            OpKey::Gate(op, a, b)
        }
        IrKind::Mux { s, a1, a0 } => OpKey::Mux(s, a1, a0),
        IrKind::Demux { s, x } => OpKey::Demux(s, x),
        IrKind::Switch2 { s, a, b } => OpKey::Switch2(s, a, b),
        IrKind::BitCompare { a, b } => {
            let (a, b) = sorted(a, b);
            OpKey::BitCompare(a, b)
        }
        IrKind::Switch4 { s1, s0, ins, perms } => OpKey::Switch4(s1, s0, ins, perms),
    })
}

struct Index {
    /// val → (op index, output leg).
    def_site: Vec<Option<(u32, u8)>>,
    /// val → known constant value.
    const_of: Vec<Option<bool>>,
    /// val → number of uses (op operands plus designated outputs).
    use_count: Vec<u32>,
    /// op index → observed by some output (backward reachability).
    /// Rewrites anchor only on live ops: consuming a dead op is never
    /// profitable (DCE removes it for free on every pipeline), and
    /// crediting dead interiors would overstate a match's net gain.
    live_op: Vec<bool>,
    /// Structural key → earliest op index computing it.
    keys: HashMap<OpKey, u32>,
}

impl Index {
    fn build(ir: &CompileIr) -> Index {
        let n = ir.n_vals as usize;
        let mut idx = Index {
            def_site: vec![None; n],
            const_of: vec![None; n],
            use_count: vec![0; n],
            live_op: vec![false; ir.ops.len()],
            keys: HashMap::with_capacity(ir.ops.len()),
        };
        for (i, op) in ir.ops.iter().enumerate() {
            for (leg, &d) in op.defs().iter().enumerate() {
                idx.def_site[d as usize] = Some((i as u32, leg as u8));
            }
            if let IrKind::Const { v } = op.kind {
                idx.const_of[op.defs[0] as usize] = Some(v);
            }
            op.kind.for_each_use(|v| idx.use_count[v as usize] += 1);
            if let Some(k) = op_key(&op.kind) {
                idx.keys.entry(k).or_insert(i as u32);
            }
        }
        for &o in &ir.outputs {
            idx.use_count[o as usize] += 1;
        }
        let mut needed = vec![false; n];
        for &o in &ir.outputs {
            needed[o as usize] = true;
        }
        for (i, op) in ir.ops.iter().enumerate().rev() {
            let live = op.defs().iter().any(|&d| needed[d as usize]);
            idx.live_op[i] = live;
            if live {
                op.kind.for_each_use(|v| needed[v as usize] = true);
            }
        }
        idx
    }

    /// Whether `v`'s definition is strictly before op index `pos`
    /// (inputs count as always-before).
    fn defined_before(&self, v: ValId, pos: u32, n_inputs: u32) -> bool {
        if v < n_inputs {
            return true;
        }
        match self.def_site.get(v as usize).copied().flatten() {
            Some((i, _)) => i < pos,
            // Fresh vals pending in this batch are inserted before
            // their consumers at the same insert point.
            None => true,
        }
    }
}

// --- one application ----------------------------------------------------

/// One applied match, recorded against the *pre-batch* IR; batched per
/// round and applied in one rebuild.
struct App {
    rule: String,
    /// Every op the match touched (roots, companions, interiors):
    /// their components all get `Folded`/`Rewritten` provenance.
    matched: Vec<u32>,
    /// Root ops to delete (all their defs are substituted or unused).
    deleted: Vec<u32>,
    /// Old root-leg value → replacement value.
    subst: Vec<(ValId, ValId)>,
    /// Ops to insert (fresh defs already allocated), defs-before-uses
    /// among themselves.
    new_ops: Vec<IrOp>,
    /// Op index to insert `new_ops` before (the earliest deleted root).
    insert_at: u32,
    /// Net ops this match frees (freed − created, ≥ 1 by the profit
    /// gate) — summed per round against constant-revival cost.
    net: usize,
}

fn scan_round(ir: &CompileIr, set: &RuleSet) -> (Vec<App>, u32) {
    let idx = Index::build(ir);
    let mut apps: Vec<App> = Vec::new();
    // Root ops already claimed for deletion/substitution this round: a
    // later match may reuse them as interiors (sound — both rewrites
    // preserve each substituted value's function) but not as roots
    // (that would substitute the same value twice).
    let mut consumed: HashSet<u32> = HashSet::new();
    let mut next_val = ir.n_vals;
    let ctx = Ctx { ir, idx: &idx };
    for i in 0..ir.ops.len() as u32 {
        if consumed.contains(&i) {
            continue;
        }
        for rule in &set.rules {
            if let Some(app) = ctx.try_rule(i, rule, &consumed, &mut next_val) {
                consumed.extend(app.deleted.iter().copied());
                apps.push(app);
                break;
            }
        }
    }
    for b in &set.builtins {
        match b.as_str() {
            "sw4-const-select" => ctx.builtin_const_select(&mut apps, &mut consumed),
            "sw4-compose" => ctx.builtin_compose(&mut apps, &mut consumed, &mut next_val),
            other => panic!("unknown builtin rule `{other}` (known: {BUILTINS:?})"),
        }
    }
    // Round-level net check: new ops referencing a currently-*unused*
    // canonical constant revive its prologue slot (DCE can no longer
    // drop it), a cost no single match sees. If the round would not
    // strictly shrink the tape, drop the constant-reviving matches —
    // keeps the tape monotone across opt levels even when only one
    // LUT-pair match exists in the whole circuit.
    let revived = |apps: &[App]| {
        let mut set: HashSet<ValId> = HashSet::new();
        for a in apps {
            for op in &a.new_ops {
                op.kind.for_each_use(|v| {
                    if (v == ir.const_false || v == ir.const_true) && idx.use_count[v as usize] == 0
                    {
                        set.insert(v);
                    }
                });
            }
        }
        set
    };
    let cost = revived(&apps).len();
    let gain: usize = apps.iter().map(|a| a.net).sum();
    if gain <= cost {
        apps.retain(|a| {
            a.new_ops.iter().all(|op| {
                let mut ok = true;
                op.kind.for_each_use(|v| {
                    ok &= !((v == ir.const_false || v == ir.const_true)
                        && idx.use_count[v as usize] == 0)
                });
                ok
            })
        });
        debug_assert!(revived(&apps).is_empty());
    }
    (apps, next_val)
}

struct Ctx<'a> {
    ir: &'a CompileIr,
    idx: &'a Index,
}

impl Ctx<'_> {
    /// Output leg a leg-term denotes (single-def kinds are leg 0).
    fn root_leg(node: &PatNode) -> u8 {
        match *node {
            PatNode::DemuxLeg(l, ..)
            | PatNode::Switch2Leg(l, ..)
            | PatNode::BitCompareLeg(l, ..)
            | PatNode::Lut2Leg(l, ..) => l,
            _ => 0,
        }
    }

    /// Matches `pat[r]` against the producer of `val`, extending the
    /// bindings and recording every op index visited.
    fn match_term(
        &self,
        pat: &Pattern,
        r: PatRef,
        val: ValId,
        b: &mut Vec<Option<ValId>>,
        matched: &mut Vec<u32>,
    ) -> bool {
        match pat.nodes[r as usize] {
            PatNode::Var(i) => match b[i as usize] {
                Some(v) => v == val,
                None => {
                    b[i as usize] = Some(val);
                    true
                }
            },
            PatNode::Const(v) => self.idx.const_of[val as usize] == Some(v),
            node => {
                let Some((i, leg)) = self.idx.def_site[val as usize] else {
                    return false; // primary input: no structure to match
                };
                if leg != Self::root_leg(&node) {
                    return false;
                }
                let op = &self.ir.ops[i as usize];
                let two = |this: &Self,
                           pa: PatRef,
                           pb: PatRef,
                           a: ValId,
                           bb: ValId,
                           b: &mut Vec<Option<ValId>>,
                           matched: &mut Vec<u32>| {
                    this.match_term(pat, pa, a, b, matched)
                        && this.match_term(pat, pb, bb, b, matched)
                };
                let ok = match (node, op.kind) {
                    (PatNode::Not(pa), IrKind::Not { a }) => {
                        self.match_term(pat, pa, a, b, matched)
                    }
                    (PatNode::Gate(pg, pa, pb), IrKind::Gate { op: g, a, b: bb }) if pg == g => {
                        // Every GateOp is commutative: try both operand
                        // orders, backtracking the bindings in between.
                        let save_b = b.clone();
                        let save_m = matched.len();
                        if two(self, pa, pb, a, bb, b, matched) {
                            true
                        } else {
                            *b = save_b;
                            matched.truncate(save_m);
                            two(self, pa, pb, bb, a, b, matched)
                        }
                    }
                    (PatNode::Mux(ps, pa1, pa0), IrKind::Mux { s, a1, a0 }) => {
                        self.match_term(pat, ps, s, b, matched)
                            && self.match_term(pat, pa1, a1, b, matched)
                            && self.match_term(pat, pa0, a0, b, matched)
                    }
                    (PatNode::DemuxLeg(_, ps, px), IrKind::Demux { s, x }) => {
                        two(self, ps, px, s, x, b, matched)
                    }
                    (PatNode::Switch2Leg(_, ps, pa, pb), IrKind::Switch2 { s, a, b: bb }) => {
                        self.match_term(pat, ps, s, b, matched)
                            && self.match_term(pat, pa, a, b, matched)
                            && self.match_term(pat, pb, bb, b, matched)
                    }
                    (PatNode::BitCompareLeg(_, pa, pb), IrKind::BitCompare { a, b: bb }) => {
                        let save_b = b.clone();
                        let save_m = matched.len();
                        if two(self, pa, pb, a, bb, b, matched) {
                            true
                        } else {
                            *b = save_b;
                            matched.truncate(save_m);
                            two(self, pa, pb, bb, a, b, matched)
                        }
                    }
                    _ => false,
                };
                if ok {
                    matched.push(i);
                }
                ok
            }
        }
    }

    /// Resolves a *ground* term (all variables bound) to an existing IR
    /// value via the structural key map, recording the ops it rests on.
    fn resolve_ground(
        &self,
        pat: &Pattern,
        r: PatRef,
        b: &[Option<ValId>],
        matched: &mut Vec<u32>,
    ) -> Option<ValId> {
        let node = pat.nodes[r as usize];
        match node {
            PatNode::Var(i) => b[i as usize],
            PatNode::Const(v) => Some(if v {
                self.ir.const_true
            } else {
                self.ir.const_false
            }),
            PatNode::Lut2Leg(..) => None, // lhs-only path; luts are rhs-only
            _ => {
                let kids = node.children();
                let mut vals = [0 as ValId; 3];
                for (k, &c) in kids.iter().enumerate() {
                    vals[k] = self.resolve_ground(pat, c, b, matched)?;
                }
                let kind = match node {
                    PatNode::Not(_) => IrKind::Not { a: vals[0] },
                    PatNode::Gate(g, ..) => IrKind::Gate {
                        op: g,
                        a: vals[0],
                        b: vals[1],
                    },
                    PatNode::Mux(..) => IrKind::Mux {
                        s: vals[0],
                        a1: vals[1],
                        a0: vals[2],
                    },
                    PatNode::DemuxLeg(..) => IrKind::Demux {
                        s: vals[0],
                        x: vals[1],
                    },
                    PatNode::Switch2Leg(..) => IrKind::Switch2 {
                        s: vals[0],
                        a: vals[1],
                        b: vals[2],
                    },
                    PatNode::BitCompareLeg(..) => IrKind::BitCompare {
                        a: vals[0],
                        b: vals[1],
                    },
                    _ => unreachable!(),
                };
                let i = *self.idx.keys.get(&op_key(&kind)?)?;
                matched.push(i);
                let leg = Self::root_leg(&node) as usize;
                let op = &self.ir.ops[i as usize];
                (leg < op.kind.n_defs()).then(|| op.defs[leg])
            }
        }
    }

    /// Attempts `rule` with its first LHS root anchored at op `i`.
    fn try_rule(
        &self,
        i: u32,
        rule: &Rule,
        consumed: &HashSet<u32>,
        next_val: &mut u32,
    ) -> Option<App> {
        let ir = self.ir;
        let r0 = rule.lhs.roots[0];
        let node0 = rule.lhs.nodes[r0 as usize];
        let leg0 = Self::root_leg(&node0) as usize;
        let op0 = &ir.ops[i as usize];
        if leg0 >= op0.kind.n_defs() {
            return None;
        }
        // Cheap anchor-kind gate before allocating any match state.
        let kind_ok = match (node0, op0.kind) {
            (PatNode::Not(_), IrKind::Not { .. })
            | (PatNode::Mux(..), IrKind::Mux { .. })
            | (PatNode::DemuxLeg(..), IrKind::Demux { .. })
            | (PatNode::Switch2Leg(..), IrKind::Switch2 { .. })
            | (PatNode::BitCompareLeg(..), IrKind::BitCompare { .. }) => true,
            (PatNode::Gate(pg, ..), IrKind::Gate { op: g, .. }) => pg == g,
            _ => false,
        };
        if !kind_ok {
            return None;
        }
        let anchor = op0.defs[leg0];
        let mut b: Vec<Option<ValId>> = vec![None; rule.lhs.n_vars() as usize];
        let mut matched: Vec<u32> = Vec::new();
        if !self.match_term(&rule.lhs, r0, anchor, &mut b, &mut matched) {
            return None;
        }
        // Companion roots resolve as ground terms (every variable
        // appears in root 0 by rule validation).
        let mut root_vals = vec![anchor];
        for &r in &rule.lhs.roots[1..] {
            root_vals.push(self.resolve_ground(&rule.lhs, r, &b, &mut matched)?);
        }
        // Root ops (producers of the substituted values) with their
        // covered legs; none may already be claimed by another match.
        let mut root_ops: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
        for &v in &root_vals {
            let (oi, leg) = self.idx.def_site[v as usize]?;
            if consumed.contains(&oi) || !self.idx.live_op[oi as usize] {
                return None;
            }
            root_ops.entry(oi).or_default().push(leg);
        }
        let insert_at = *root_ops.keys().next().unwrap();
        // Build the RHS: hash-cons against existing ops (when defined
        // early enough) and within the match; allocate fresh defs.
        let mut builder = RhsBuilder {
            ctx: self,
            consumed,
            local: HashMap::new(),
            new_ops: Vec::new(),
            insert_at,
            next_val: *next_val,
        };
        let mut rhs_vals = Vec::with_capacity(rule.rhs.roots.len());
        for &r in &rule.rhs.roots {
            rhs_vals.push(builder.build(&rule.rhs, r, &b)?);
        }
        // Deletion: a root op goes away iff every leg is substituted or
        // already unused.
        let mut deleted = Vec::new();
        for (&oi, covered) in &root_ops {
            let op = &ir.ops[oi as usize];
            let all =
                op.defs().iter().enumerate().all(|(l, &d)| {
                    covered.contains(&(l as u8)) || self.idx.use_count[d as usize] == 0
                });
            if all {
                deleted.push(oi);
            }
        }
        let subst: Vec<(ValId, ValId)> = root_vals
            .iter()
            .copied()
            .zip(rhs_vals.iter().copied())
            .filter(|(o, n)| o != n)
            .collect();
        if subst.is_empty() {
            return None;
        }
        // Values that stay externally referenced after the rewrite
        // (substitution targets and new-op operands): interiors whose
        // defs land here are *not* dying, even if all their old uses do.
        let mut ext: HashSet<ValId> = rhs_vals.iter().copied().collect();
        for op in &builder.new_ops {
            op.kind.for_each_use(|v| {
                ext.insert(v);
            });
        }
        let freed = deleted.len() + self.dying_interiors(&matched, &deleted, &ext);
        if freed < builder.new_ops.len() + 1 {
            return None; // not profitable: would not shrink the op list
        }
        let net = freed - builder.new_ops.len();
        *next_val = builder.next_val;
        matched.sort_unstable();
        matched.dedup();
        Some(App {
            rule: rule.name.clone(),
            matched,
            deleted,
            subst,
            new_ops: builder.new_ops,
            insert_at,
            net,
        })
    }

    /// Counts matched interior ops whose every use dies with the
    /// deleted set (cascading), i.e. ops DCE will remove after this
    /// match lands. Outputs count as external uses, so output-feeding
    /// interiors never qualify; neither do ops the rewrite itself keeps
    /// referenced (`ext`: substitution targets and new-op operands).
    fn dying_interiors(&self, matched: &[u32], deleted: &[u32], ext: &HashSet<ValId>) -> usize {
        let mut dead: HashSet<u32> = deleted.iter().copied().collect();
        loop {
            let mut uses_in_dead: HashMap<ValId, u32> = HashMap::new();
            for &oi in &dead {
                self.ir.ops[oi as usize]
                    .kind
                    .for_each_use(|v| *uses_in_dead.entry(v).or_insert(0) += 1);
            }
            let mut changed = false;
            for &oi in matched {
                if dead.contains(&oi) || !self.idx.live_op[oi as usize] {
                    continue; // dead interiors are DCE's win, not ours
                }
                let op = &self.ir.ops[oi as usize];
                let gone = op.defs().iter().all(|&d| {
                    !ext.contains(&d)
                        && self.idx.use_count[d as usize]
                            == uses_in_dead.get(&d).copied().unwrap_or(0)
                });
                if gone {
                    dead.insert(oi);
                    changed = true;
                }
            }
            if !changed {
                return dead.len() - deleted.len();
            }
        }
    }

    /// Builtin: a 4×4 switch whose both selects are known constants
    /// collapses to wires through the selected permutation. (At O2
    /// const-prop runs first and owns these sites, so this fires only
    /// in pipelines without const-prop — output there stays correct,
    /// with conservative `Rewritten` provenance.)
    fn builtin_const_select(&self, apps: &mut Vec<App>, consumed: &mut HashSet<u32>) {
        for (i, op) in self.ir.ops.iter().enumerate() {
            if !self.idx.live_op[i] {
                continue;
            }
            let i = i as u32;
            if consumed.contains(&i) {
                continue;
            }
            let IrKind::Switch4 { s1, s0, ins, perms } = op.kind else {
                continue;
            };
            let (Some(b1), Some(b0)) = (
                self.idx.const_of[s1 as usize],
                self.idx.const_of[s0 as usize],
            ) else {
                continue;
            };
            let combo = (usize::from(b1) << 1) | usize::from(b0);
            let subst: Vec<(ValId, ValId)> = op
                .defs()
                .iter()
                .enumerate()
                .map(|(j, &d)| (d, ins[perms[combo][j] as usize]))
                .filter(|(o, n)| o != n)
                .collect();
            if subst.is_empty() {
                continue;
            }
            consumed.insert(i);
            apps.push(App {
                rule: "sw4-const-select".to_owned(),
                matched: vec![i],
                deleted: vec![i],
                subst,
                new_ops: Vec::new(),
                insert_at: i,
                net: 1,
            });
        }
    }

    /// Builtin: two 4×4 switches in series under the *same* control
    /// pair compose into one switch with multiplied permutation rows —
    /// applied only when the inner switch dies with the outer one, so
    /// the batch strictly shrinks.
    fn builtin_compose(
        &self,
        apps: &mut Vec<App>,
        consumed: &mut HashSet<u32>,
        next_val: &mut u32,
    ) {
        'outer: for (i, op) in self.ir.ops.iter().enumerate() {
            if !self.idx.live_op[i] {
                continue;
            }
            let i = i as u32;
            if consumed.contains(&i) {
                continue;
            }
            let IrKind::Switch4 { s1, s0, ins, perms } = op.kind else {
                continue;
            };
            // All four inputs must be the four distinct legs of one
            // inner switch with the same controls.
            let mut src = [0u8; 4];
            let mut inner = None;
            for (j, &v) in ins.iter().enumerate() {
                let Some((ai, leg)) = self.idx.def_site[v as usize] else {
                    continue 'outer;
                };
                if *inner.get_or_insert(ai) != ai {
                    continue 'outer;
                }
                src[j] = leg;
            }
            let ai = inner.unwrap();
            if ai == i || consumed.contains(&ai) {
                continue;
            }
            let IrKind::Switch4 {
                s1: t1,
                s0: t0,
                ins: a_ins,
                perms: a_perms,
            } = self.ir.ops[ai as usize].kind
            else {
                continue;
            };
            if t1 != s1 || t0 != s0 {
                continue;
            }
            let mut seen = [false; 4];
            for &l in &src {
                if std::mem::replace(&mut seen[l as usize], true) {
                    continue 'outer; // legs reused: composition not a permutation
                }
            }
            // The inner switch must die: each of its legs is used only
            // by this op's inputs (outputs count as uses).
            let a_op = &self.ir.ops[ai as usize];
            for &d in a_op.defs() {
                let feeds = ins.iter().filter(|&&v| v == d).count() as u32;
                if self.idx.use_count[d as usize] != feeds {
                    continue 'outer;
                }
            }
            // The inner op's operands all precede it (and hence the
            // insert point at the outer op's index), so the composed
            // op can slot in where the outer op was.
            let mut composed = [[0u8; 4]; 4];
            for k in 0..4 {
                for j in 0..4 {
                    composed[k][j] = a_perms[k][src[perms[k][j] as usize] as usize];
                }
            }
            let mut defs = [0 as ValId; 4];
            for d in defs.iter_mut() {
                *d = *next_val;
                *next_val += 1;
            }
            let subst = op
                .defs()
                .iter()
                .enumerate()
                .map(|(j, &d)| (d, defs[j]))
                .collect();
            apps.push(App {
                rule: "sw4-compose".to_owned(),
                matched: vec![ai, i],
                deleted: vec![i],
                subst,
                new_ops: vec![IrOp {
                    kind: IrKind::Switch4 {
                        s1,
                        s0,
                        ins: a_ins,
                        perms: composed,
                    },
                    defs,
                    comp: NO_COMP,
                    shared: false,
                    reuse_masks: false,
                    level: 0,
                }],
                insert_at: i,
                // Outer deleted now, inner dies in DCE, one created.
                net: 1,
            });
            consumed.insert(i);
            consumed.insert(ai);
        }
    }
}

/// RHS construction for one match: resolves terms bottom-up, reusing
/// existing ops (hash-consing against the IR when their definition
/// precedes the insert point) and nodes already built for this match
/// (so the two legs of a LUT pair become one Switch4 op).
struct RhsBuilder<'a, 'b> {
    ctx: &'a Ctx<'a>,
    consumed: &'b HashSet<u32>,
    local: HashMap<OpKey, [ValId; 4]>,
    new_ops: Vec<IrOp>,
    insert_at: u32,
    next_val: u32,
}

impl RhsBuilder<'_, '_> {
    fn build(&mut self, pat: &Pattern, r: PatRef, b: &[Option<ValId>]) -> Option<ValId> {
        let ir = self.ctx.ir;
        let node = pat.nodes[r as usize];
        match node {
            PatNode::Var(i) => b[i as usize],
            PatNode::Const(v) => Some(if v { ir.const_true } else { ir.const_false }),
            _ => {
                let kids = node.children();
                let mut vals = [0 as ValId; 3];
                for (k, &c) in kids.iter().enumerate() {
                    vals[k] = self.build(pat, c, b)?;
                }
                let (kind, leg) = match node {
                    PatNode::Not(_) => (IrKind::Not { a: vals[0] }, 0u8),
                    PatNode::Gate(g, ..) => (
                        IrKind::Gate {
                            op: g,
                            a: vals[0],
                            b: vals[1],
                        },
                        0,
                    ),
                    PatNode::Mux(..) => (
                        IrKind::Mux {
                            s: vals[0],
                            a1: vals[1],
                            a0: vals[2],
                        },
                        0,
                    ),
                    PatNode::DemuxLeg(l, ..) => (
                        IrKind::Demux {
                            s: vals[0],
                            x: vals[1],
                        },
                        l,
                    ),
                    PatNode::Switch2Leg(l, ..) => (
                        IrKind::Switch2 {
                            s: vals[0],
                            a: vals[1],
                            b: vals[2],
                        },
                        l,
                    ),
                    PatNode::BitCompareLeg(l, ..) => (
                        IrKind::BitCompare {
                            a: vals[0],
                            b: vals[1],
                        },
                        l,
                    ),
                    PatNode::Lut2Leg(l, tts, ..) => {
                        let perms = lut2_switch4(&tts).ok()?;
                        let (cf, ct) = (ir.const_false, ir.const_true);
                        (
                            IrKind::Switch4 {
                                s1: vals[0],
                                s0: vals[1],
                                ins: [cf, ct, cf, ct],
                                perms,
                            },
                            l,
                        )
                    }
                    PatNode::Var(_) | PatNode::Const(_) => unreachable!(),
                };
                let key = op_key(&kind)?;
                // Reuse an identical existing op when it is live,
                // defined before the insert point, and not being
                // deleted (reviving a dead op would hand DCE's win to
                // the rewrite's cost column unaccounted).
                if let Some(&j) = self.ctx.idx.keys.get(&key) {
                    if j < self.insert_at
                        && !self.consumed.contains(&j)
                        && self.ctx.idx.live_op[j as usize]
                    {
                        let op = &ir.ops[j as usize];
                        if (leg as usize) < op.kind.n_defs() {
                            return Some(op.defs[leg as usize]);
                        }
                    }
                }
                // Reuse a node already built for this match.
                if let Some(defs) = self.local.get(&key) {
                    return Some(defs[leg as usize]);
                }
                // Create: every original-val operand must be defined
                // before the insert point (fresh operands are inserted
                // just ahead of us in `new_ops` order).
                let mut ok = true;
                kind.for_each_use(|v| {
                    ok &= self.ctx.idx.defined_before(v, self.insert_at, ir.n_inputs);
                });
                if !ok {
                    return None;
                }
                let n_defs = kind.n_defs();
                let mut defs = [0 as ValId; 4];
                for d in defs.iter_mut().take(n_defs) {
                    *d = self.next_val;
                    self.next_val += 1;
                }
                self.local.insert(key, defs);
                self.new_ops.push(IrOp {
                    kind,
                    defs,
                    comp: NO_COMP,
                    shared: false,
                    reuse_masks: false,
                    level: 0,
                });
                Some(defs[leg as usize])
            }
        }
    }
}

// --- batch application --------------------------------------------------

fn apply_round(ir: &mut CompileIr, apps: Vec<App>, next_val: u32) {
    debug_assert!(next_val >= ir.n_vals);
    ir.n_vals = next_val;

    // Provenance first: every matched op's component is now Rewritten.
    for a in &apps {
        for &oi in &a.matched {
            let comp = ir.ops[oi as usize].comp;
            ir.fold_comp_hinted(comp, FoldHint::Rewritten);
        }
    }

    let deleted: HashSet<u32> = apps
        .iter()
        .flat_map(|a| a.deleted.iter().copied())
        .collect();
    let mut subst: HashMap<ValId, ValId> = HashMap::new();
    for a in &apps {
        for &(o, n) in &a.subst {
            let prev = subst.insert(o, n);
            debug_assert!(prev.is_none(), "value {o} substituted twice in one round");
        }
    }
    let mut pending: HashMap<u32, Vec<IrOp>> = HashMap::new();
    for a in apps {
        pending.entry(a.insert_at).or_default().extend(a.new_ops);
    }

    let old_ops = std::mem::take(&mut ir.ops);
    let mut out = Vec::with_capacity(old_ops.len());
    for (i, op) in old_ops.into_iter().enumerate() {
        if let Some(list) = pending.remove(&(i as u32)) {
            out.extend(list);
        }
        if !deleted.contains(&(i as u32)) {
            out.push(op);
        }
    }
    debug_assert!(pending.is_empty(), "insert point past end of op list");

    // Substitute uses and outputs, resolving chains (a match may bind a
    // variable to a value another match substitutes).
    let resolve = |mut v: ValId| {
        let mut steps = 0usize;
        while let Some(&n) = subst.get(&v) {
            v = n;
            steps += 1;
            assert!(steps <= subst.len(), "substitution cycle at value {v}");
        }
        v
    };
    for op in &mut out {
        op.kind.map_uses(resolve);
    }
    for o in &mut ir.outputs {
        *o = resolve(*o);
    }
    ir.ops = out;
}
