//! The compiler pass pipeline: named, individually-toggleable IR
//! transforms behind the [`Pass`] trait, driven by [`PassManager`].
//!
//! The pipeline has three parts:
//!
//! 1. **optional IR passes**, run in canonical order when enabled by the
//!    [`PassSet`]: [`PassName::ConstPrologue`] (constant dedup),
//!    [`PassName::ConstProp`] (constant propagation through gates and
//!    switches — a switch with a known select lowers to wires),
//!    [`PassName::Cse`] (structural hashing / common-subexpression
//!    elimination), [`PassName::Rewrite`] (declarative fixpoint term
//!    rewriting driven by the committed ruleset — see
//!    [`crate::pattern`] and `rewrite`), [`PassName::Dce`] (dead-code
//!    elimination);
//! 2. the **schedule** stage (always on): levelize and stable-sort ops
//!    so constants form the prologue and component ops are grouped by
//!    depth level;
//! 3. [`PassName::MaskReuse`] (optional, post-schedule): flag adjacent
//!    4×4 switches sharing a control pair so the evaluator reuses the
//!    select masks.
//!
//! Every optional pass records before/after op counts in a
//! [`PassStats`] row (surfaced by `CompiledCircuit::pass_stats`, the
//! `absort inspect` command, and `compile.pass.*` telemetry counters),
//! and — in debug builds or when [`CompileOptions::verify`] is set —
//! the manager re-checks IR-vs-interpreter equivalence after every
//! stage on deterministic pseudo-random lanes.

pub mod const_prologue;
pub mod const_prop;
pub mod cse;
pub mod dce;
pub mod mask_reuse;
pub mod rewrite;
pub mod schedule;

use crate::circuit::Circuit;
use crate::ir::CompileIr;

/// One named IR transform. Implementations must preserve the IR
/// invariants ([`CompileIr::check_invariants`]) and the provenance
/// contract: any op they delete or rewrite gets its source component
/// marked [`crate::ir::CompFate::Dead`] (unobservable) or
/// [`crate::ir::CompFate::Folded`] (needs recompile fallback).
pub trait Pass {
    /// Stable name used by the CLI, telemetry, and [`PassStats`].
    fn name(&self) -> &'static str;
    /// Transforms the IR in place.
    fn run(&self, ir: &mut CompileIr);
}

/// Identifier of one optional pass, in canonical run order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassName {
    /// Deduplicate constant ops onto the canonical `false`/`true`.
    ConstPrologue,
    /// Propagate constants through gates, muxes, and switches.
    ConstProp,
    /// Structural hashing: merge ops computing the same function of
    /// the same values.
    Cse,
    /// Declarative fixpoint term rewriting over the committed ruleset
    /// (profit-gated: a rule only fires when it strictly shrinks the
    /// op list).
    Rewrite,
    /// Drop ops no output observes.
    Dce,
    /// Flag select-mask reuse between adjacent 4×4 switches
    /// (post-schedule).
    MaskReuse,
}

impl PassName {
    /// Every pass, in canonical run order.
    pub const ALL: [PassName; 6] = [
        PassName::ConstPrologue,
        PassName::ConstProp,
        PassName::Cse,
        PassName::Rewrite,
        PassName::Dce,
        PassName::MaskReuse,
    ];

    /// Stable name used by `--passes`, telemetry, and reports.
    pub fn name(self) -> &'static str {
        match self {
            PassName::ConstPrologue => "const-prologue",
            PassName::ConstProp => "const-prop",
            PassName::Cse => "cse",
            PassName::Rewrite => "rewrite",
            PassName::Dce => "dce",
            PassName::MaskReuse => "mask-reuse",
        }
    }

    /// Parses a pass name, case-insensitively.
    pub fn parse(s: &str) -> Option<PassName> {
        let s = s.trim().to_ascii_lowercase();
        PassName::ALL.into_iter().find(|p| p.name() == s)
    }

    fn bit(self) -> u8 {
        match self {
            PassName::ConstPrologue => 1,
            PassName::ConstProp => 1 << 1,
            PassName::Cse => 1 << 2,
            PassName::Rewrite => 1 << 5,
            PassName::Dce => 1 << 3,
            PassName::MaskReuse => 1 << 4,
        }
    }
}

impl std::fmt::Display for PassName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of enabled passes (always run in canonical order, regardless
/// of how the set was written down). `Copy` so it can ride inside
/// campaign configs and fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PassSet(u8);

impl PassSet {
    /// No passes (opt-level 0).
    pub const EMPTY: PassSet = PassSet(0);

    /// Every pass (opt-level 2).
    pub const ALL: PassSet = PassSet(0b11_1111);

    /// Whether `p` is enabled.
    #[inline]
    pub fn contains(self, p: PassName) -> bool {
        self.0 & p.bit() != 0
    }

    /// This set with `p` enabled.
    #[must_use]
    pub fn with(self, p: PassName) -> PassSet {
        PassSet(self.0 | p.bit())
    }

    /// This set with `p` disabled.
    #[must_use]
    pub fn without(self, p: PassName) -> PassSet {
        PassSet(self.0 & !p.bit())
    }

    /// True when no pass is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The enabled passes, in canonical order.
    pub fn passes(self) -> Vec<PassName> {
        PassName::ALL
            .into_iter()
            .filter(|&p| self.contains(p))
            .collect()
    }

    /// Parses a comma-separated pass list (case-insensitive); `"none"`
    /// is the empty set. On error returns the offending token.
    pub fn parse_list(s: &str) -> Result<PassSet, String> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("none") {
            return Ok(PassSet::EMPTY);
        }
        let mut set = PassSet::EMPTY;
        for tok in s.split(',') {
            match PassName::parse(tok) {
                Some(p) => set = set.with(p),
                None => return Err(tok.trim().to_owned()),
            }
        }
        Ok(set)
    }

    /// Compact stable encoding for fingerprints (`"-"` when empty).
    pub fn fingerprint(self) -> String {
        if self.is_empty() {
            return "-".to_owned();
        }
        self.passes()
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join("+")
    }
}

impl std::fmt::Display for PassSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.fingerprint())
    }
}

/// CLI-level optimization tier mapping onto a [`PassSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// No optional passes: straight lowering plus schedule + regalloc.
    O0,
    /// The transforms the pre-pipeline compiler performed: constant
    /// prologue, DCE, and select-mask reuse.
    O1,
    /// Everything, including CSE and constant propagation (default).
    #[default]
    O2,
}

impl OptLevel {
    /// All levels, ascending.
    pub const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

    /// The passes this level enables.
    pub fn passes(self) -> PassSet {
        match self {
            OptLevel::O0 => PassSet::EMPTY,
            OptLevel::O1 => PassSet::EMPTY
                .with(PassName::ConstPrologue)
                .with(PassName::Dce)
                .with(PassName::MaskReuse),
            OptLevel::O2 => PassSet::ALL,
        }
    }

    /// Numeric level (`0`, `1`, `2`).
    pub fn level(self) -> u32 {
        match self {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
            OptLevel::O2 => 2,
        }
    }

    /// Parses a CLI `--opt-level` value.
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s.trim() {
            "0" | "O0" | "o0" => Some(OptLevel::O0),
            "1" | "O1" | "o1" => Some(OptLevel::O1),
            "2" | "O2" | "o2" => Some(OptLevel::O2),
            _ => None,
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.level())
    }
}

/// Options steering one compilation. `Copy`, so sweep configs can embed
/// it without losing their own `Copy`-ability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Which optional passes run (default: [`OptLevel::O2`]'s set).
    pub passes: PassSet,
    /// Force the per-pass IR-vs-interpreter differential check even in
    /// release builds (it is always on under `debug_assertions`).
    pub verify: bool,
    /// Run the post-regalloc superinstruction pass (`crate::fuse`):
    /// fuse 4×4-switch mask-reuse runs into single-dispatch chains and
    /// frequent adjacent simple-op pairs into `Pair2` ops. Off by
    /// default — fused sites lose in-place mutant patching (they fall
    /// back to recompile), so sweep drivers opt in explicitly.
    pub fuse: bool,
    /// Allocate slots so that ops within one depth level never reuse a
    /// slot freed earlier in the *same* level (frees are parked until
    /// the level boundary). Costs a few extra slots; makes every op in
    /// a level independent, the precondition for level-parallel
    /// execution (`absort-parwalk`).
    pub par_safe: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            passes: OptLevel::default().passes(),
            verify: false,
            fuse: false,
            par_safe: false,
        }
    }
}

impl CompileOptions {
    /// Options for one optimization tier.
    pub fn for_level(level: OptLevel) -> CompileOptions {
        CompileOptions {
            passes: level.passes(),
            ..CompileOptions::default()
        }
    }

    /// This option set with the superinstruction fuse pass enabled.
    #[must_use]
    pub fn with_fuse(mut self) -> CompileOptions {
        self.fuse = true;
        self
    }

    /// This option set with parallel-safe slot allocation enabled.
    #[must_use]
    pub fn with_par_safe(mut self) -> CompileOptions {
        self.par_safe = true;
        self
    }
}

/// Before/after op counts of one pass run, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// The pass name (see [`PassName::name`]).
    pub name: &'static str,
    /// IR op count before the pass.
    pub ops_before: usize,
    /// IR op count after the pass.
    pub ops_after: usize,
}

impl PassStats {
    /// Ops removed by the pass (0 for flag-only passes).
    pub fn removed(&self) -> usize {
        self.ops_before.saturating_sub(self.ops_after)
    }
}

fn pass_impl(p: PassName) -> &'static dyn Pass {
    match p {
        PassName::ConstPrologue => &const_prologue::ConstPrologue,
        PassName::ConstProp => &const_prop::ConstProp,
        PassName::Cse => &cse::Cse,
        PassName::Rewrite => &rewrite::Rewrite,
        PassName::Dce => &dce::Dce,
        PassName::MaskReuse => &mask_reuse::MaskReuse,
    }
}

/// Drives the pass pipeline over one circuit's IR.
pub struct PassManager {
    opts: CompileOptions,
}

impl PassManager {
    /// A manager for the given options.
    pub fn new(opts: CompileOptions) -> PassManager {
        PassManager { opts }
    }

    /// Runs the enabled passes (canonical order), the schedule stage,
    /// and the post-schedule passes; returns one [`PassStats`] row per
    /// optional pass run. `circuit` is only consulted by the
    /// differential check.
    pub fn run(&self, circuit: &Circuit, ir: &mut CompileIr) -> Vec<PassStats> {
        let verify = self.opts.verify || cfg!(debug_assertions);
        let mut stats = Vec::new();
        #[cfg(feature = "telemetry")]
        absort_telemetry::counter_add(
            "compile.pass.enabled",
            self.opts.passes.passes().len() as u64,
        );
        if verify {
            self.check(circuit, ir, "lower");
        }
        for p in PassName::ALL {
            if p == PassName::MaskReuse || !self.opts.passes.contains(p) {
                continue;
            }
            self.run_one(p, circuit, ir, verify, &mut stats);
        }
        {
            #[cfg(feature = "telemetry")]
            let _span = absort_telemetry::span("compile/schedule");
            schedule::schedule(ir);
        }
        if verify {
            self.check(circuit, ir, "schedule");
        }
        if self.opts.passes.contains(PassName::MaskReuse) {
            self.run_one(PassName::MaskReuse, circuit, ir, verify, &mut stats);
        }
        stats
    }

    fn run_one(
        &self,
        p: PassName,
        circuit: &Circuit,
        ir: &mut CompileIr,
        verify: bool,
        stats: &mut Vec<PassStats>,
    ) {
        let pass = pass_impl(p);
        #[cfg(feature = "telemetry")]
        let _span = absort_telemetry::span(&format!("compile/pass/{}", pass.name()));
        #[cfg(feature = "telemetry")]
        let t0 = absort_telemetry::enabled().then(std::time::Instant::now);
        let ops_before = ir.ops.len();
        pass.run(ir);
        let ops_after = ir.ops.len();
        #[cfg(feature = "telemetry")]
        {
            // Compilation is cold-path: record straight into the global
            // histogram (one sample per pass run, all passes pooled —
            // the per-pass split lives in the `compile/pass/*` spans).
            if let Some(t0) = t0 {
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                absort_telemetry::hist_record("compile.pass_ns", ns);
            }
            absort_telemetry::counter_add_many(&[
                ("compile.pass.runs", 1),
                (
                    &format!("compile.pass.{}.removed", pass.name()),
                    (ops_before - ops_after) as u64,
                ),
            ]);
        }
        if verify {
            self.check(circuit, ir, pass.name());
        }
        stats.push(PassStats {
            name: pass.name(),
            ops_before,
            ops_after,
        });
    }

    /// The differential check: IR invariants plus IR-vs-interpreter
    /// equivalence on deterministic splitmix64 lanes.
    fn check(&self, circuit: &Circuit, ir: &CompileIr, after: &str) {
        if let Err(e) = ir.check_invariants() {
            panic!("IR invariant broken after pass `{after}`: {e}");
        }
        let inputs = splitmix_lanes(circuit.n_inputs());
        let want = circuit.eval_lanes(&inputs);
        let got = ir.eval_lanes(&inputs);
        assert_eq!(
            got, want,
            "IR diverges from the interpreter after pass `{after}`"
        );
    }
}

/// Deterministic pseudo-random 64-bit lanes (splitmix64 stream).
fn splitmix_lanes(n: usize) -> Vec<u64> {
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_set_roundtrips() {
        assert_eq!(PassSet::parse_list("none"), Ok(PassSet::EMPTY));
        assert_eq!(
            PassSet::parse_list("CSE, dce"),
            Ok(PassSet::EMPTY.with(PassName::Cse).with(PassName::Dce))
        );
        assert_eq!(PassSet::parse_list("cse,warp"), Err("warp".to_owned()));
        for p in PassName::ALL {
            assert_eq!(PassName::parse(p.name()), Some(p));
            assert_eq!(PassName::parse(&p.name().to_ascii_uppercase()), Some(p));
            assert!(PassSet::ALL.contains(p));
            assert!(!PassSet::EMPTY.contains(p));
            assert!(!PassSet::ALL.without(p).contains(p));
        }
    }

    #[test]
    fn opt_levels_nest() {
        assert_eq!(OptLevel::parse("0"), Some(OptLevel::O0));
        assert_eq!(OptLevel::parse("O2"), Some(OptLevel::O2));
        assert_eq!(OptLevel::parse("3"), None);
        assert_eq!(OptLevel::default(), OptLevel::O2);
        assert!(OptLevel::O0.passes().is_empty());
        // O1 ⊂ O2.
        for p in OptLevel::O1.passes().passes() {
            assert!(OptLevel::O2.passes().contains(p));
        }
        assert!(OptLevel::O2.passes().contains(PassName::Cse));
        assert!(!OptLevel::O1.passes().contains(PassName::Cse));
    }
}
