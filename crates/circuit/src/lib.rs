//! # absort-circuit — bit-level network substrate
//!
//! The component-level netlist substrate underlying every network in the
//! paper *Adaptive Binary Sorting Schemes and Associated Interconnection
//! Networks* (Chien & Oruç). Networks in the paper's **Model A** are
//! combinational circuits built from a small set of constant-fanin
//! primitives, each of **unit cost and unit depth**:
//!
//! * 2×2 switches (pass/cross under a control signal),
//! * 2×1 multiplexers and 1×2 demultiplexers,
//! * two-input comparators specialised to bits (an AND/OR pair),
//! * ordinary constant-fanin logic gates,
//! * 4×4 switches, normalised to the cost of four 2×2 switches.
//!
//! This crate provides:
//!
//! * [`Builder`] — a netlist builder whose API makes cycles unrepresentable
//!   (a component may only reference wires that already exist), so the
//!   stored component list is always in topological order;
//! * [`Circuit`] — the finished netlist with exact [`Circuit::cost`] and
//!   [`Circuit::depth`] reports in the paper's accounting units;
//! * evaluation engines: scalar, 64-lane bit-parallel ([`Lane`] over
//!   `u64`), and a crossbeam-sharded parallel batch evaluator
//!   ([`Circuit::eval_batch_parallel`]);
//! * hierarchical [`scope`]s so cost can be attributed to sub-blocks
//!   (e.g. "how many gates does the patch-up network at level 3 use?"),
//!   which is how the per-block closed forms of the paper are audited.
//!
//! Higher layers (`absort-blocks`, `absort-core`, `absort-networks`) build
//! the paper's swappers, multiplexers, prefix adders and full sorting
//! networks on top of this substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod circuit;
pub mod clocked;
pub mod compile;
pub mod component;
pub mod cost;
pub(crate) mod dispatch;
pub mod dot;
pub mod emit;
pub mod equiv;
pub mod eval;
pub mod faulty;
pub mod fuse;
pub mod ir;
pub mod lane;
pub mod mutate;
pub mod passes;
pub mod pattern;
pub mod pipeline;
#[cfg(feature = "profile")]
pub mod profile;
pub mod regalloc;
pub mod scope;
pub mod serdes;
pub mod stats;
pub mod validate;
pub mod wire;

pub use builder::Builder;
pub use circuit::{Circuit, MissingScope};
pub use compile::{CompiledCircuit, CompiledEvaluator, Engine, MultiMutantTape, MutantTape};
pub use component::{Component, GateOp, Perm4};
pub use cost::{CostReport, KindCounts};
pub use eval::{EvalError, Evaluator};
pub use faulty::{FaultyEvaluator, WireFault};
pub use lane::Lane;
pub use passes::{CompileOptions, OptLevel, PassManager, PassName, PassSet, PassStats};
#[cfg(feature = "profile")]
pub use profile::TapeProfile;
pub use scope::{ScopeId, ScopeTree};
pub use stats::Stats;
pub use validate::ValidateError;
pub use wire::Wire;

/// Convenience: number of bits needed to address `n` items; `lg(n)` for
/// powers of two. Panics if `n == 0`.
///
/// The paper writes `lg n` for the base-2 logarithm throughout; all of its
/// networks assume power-of-two input sizes, and so do ours.
#[inline]
pub fn lg(n: usize) -> u32 {
    assert!(n > 0, "lg(0) is undefined");
    n.trailing_zeros()
}

/// Returns true if `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Asserts that `n` is a power of two, with a readable message.
///
/// Every construction in the paper assumes power-of-two input sizes
/// ("with no loss of generality"); builders call this at entry so misuse
/// fails fast with a clear message instead of a mid-construction panic.
#[track_caller]
pub fn assert_pow2(n: usize, what: &str) {
    assert!(is_pow2(n), "{what} requires a power-of-two size, got {n}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lg_of_powers() {
        assert_eq!(lg(1), 0);
        assert_eq!(lg(2), 1);
        assert_eq!(lg(1024), 10);
    }

    #[test]
    #[should_panic]
    fn lg_zero_panics() {
        let _ = lg(0);
    }

    #[test]
    fn pow2_checks() {
        assert!(is_pow2(1));
        assert!(is_pow2(65536));
        assert!(!is_pow2(0));
        assert!(!is_pow2(12));
    }
}
