//! Netlist builder.
//!
//! [`Builder`] constructs circuits by appending components; every component
//! may only reference wires that already exist, so the component list is in
//! topological order by construction and the finished [`crate::Circuit`]
//! can be evaluated by a single forward scan — no cycle check, no sort.

use crate::circuit::Circuit;
use crate::component::{Component, GateOp, Perm4, Placed};
use crate::scope::{ScopeId, ScopeTree};
use crate::wire::Wire;

/// Builds a combinational circuit out of the paper's Model A primitives.
///
/// # Example
///
/// A half-adder:
///
/// ```
/// use absort_circuit::Builder;
///
/// let mut b = Builder::new();
/// let a = b.input();
/// let c = b.input();
/// let sum = b.xor(a, c);
/// let carry = b.and(a, c);
/// b.outputs(&[sum, carry]);
/// let circuit = b.finish();
///
/// assert_eq!(circuit.eval(&[true, true]), vec![false, true]);
/// assert_eq!(circuit.cost().total, 2);
/// assert_eq!(circuit.depth(), 1);
/// ```
#[derive(Debug)]
pub struct Builder {
    comps: Vec<Placed>,
    n_wires: u32,
    inputs: Vec<Wire>,
    outputs: Vec<Wire>,
    consts: Vec<(Wire, bool)>,
    scopes: ScopeTree,
    scope_stack: Vec<ScopeId>,
    const0: Option<Wire>,
    const1: Option<Wire>,
    /// Telemetry spans mirroring `scope_stack`, so wall-clock time spent
    /// constructing each scope shows up in the profiler tree. Beyond the
    /// telemetry span-depth cap these are no-op guards, which keeps
    /// deeply recursive sorter constructions cheap to profile.
    #[cfg(feature = "telemetry")]
    tel_spans: Vec<absort_telemetry::Span>,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Builder {
            comps: Vec::new(),
            n_wires: 0,
            inputs: Vec::new(),
            outputs: Vec::new(),
            consts: Vec::new(),
            scopes: ScopeTree::new(),
            scope_stack: vec![ScopeId::ROOT],
            const0: None,
            const1: None,
            #[cfg(feature = "telemetry")]
            tel_spans: Vec::new(),
        }
    }

    #[inline]
    fn fresh_wire(&mut self) -> Wire {
        let w = Wire::from_index(self.n_wires as usize);
        self.n_wires = self
            .n_wires
            .checked_add(1)
            .expect("circuit exceeds u32::MAX wires");
        w
    }

    #[inline]
    fn check(&self, w: Wire) {
        debug_assert!(
            w.0 < self.n_wires,
            "wire {} does not exist yet (only {} wires created)",
            w.0,
            self.n_wires
        );
    }

    #[inline]
    fn cur_scope(&self) -> ScopeId {
        *self.scope_stack.last().expect("scope stack never empty")
    }

    fn place(&mut self, comp: Component) -> u32 {
        comp.for_each_input(|w| self.check(w));
        let n_out = comp.n_outputs();
        let out_base = self.n_wires;
        for _ in 0..n_out {
            self.fresh_wire();
        }
        let scope = self.cur_scope();
        self.comps.push(Placed {
            comp,
            out_base,
            scope,
        });
        out_base
    }

    // ---- scopes ------------------------------------------------------

    /// Enters a named scope; components created until the matching
    /// [`Builder::pop_scope`] are attributed to it in cost reports.
    pub fn push_scope(&mut self, name: &str) {
        let parent = self.cur_scope();
        let id = self.scopes.child(parent, name);
        self.scope_stack.push(id);
        #[cfg(feature = "telemetry")]
        self.tel_spans.push(absort_telemetry::span(name));
    }

    /// Leaves the innermost scope. Panics if called at the root.
    pub fn pop_scope(&mut self) {
        assert!(
            self.scope_stack.len() > 1,
            "pop_scope called with no scope open"
        );
        self.scope_stack.pop();
        #[cfg(feature = "telemetry")]
        self.tel_spans.pop();
    }

    /// Runs `f` inside the named scope (push/pop handled for you).
    pub fn scoped<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        self.push_scope(name);
        let out = f(self);
        self.pop_scope();
        out
    }

    // ---- wires -------------------------------------------------------

    /// Declares one primary input and returns its wire.
    pub fn input(&mut self) -> Wire {
        let w = self.fresh_wire();
        self.inputs.push(w);
        w
    }

    /// Declares `n` primary inputs and returns their wires in order.
    pub fn input_bus(&mut self, n: usize) -> Vec<Wire> {
        (0..n).map(|_| self.input()).collect()
    }

    /// A constant wire. Constants are free (no component, no cost) — they
    /// model tied-off lines, not logic.
    pub fn constant(&mut self, v: bool) -> Wire {
        let cached = if v { self.const1 } else { self.const0 };
        if let Some(w) = cached {
            return w;
        }
        let w = self.fresh_wire();
        self.consts.push((w, v));
        if v {
            self.const1 = Some(w);
        } else {
            self.const0 = Some(w);
        }
        w
    }

    /// Designates the circuit's outputs, in order. May be called multiple
    /// times; later calls append.
    pub fn outputs(&mut self, outs: &[Wire]) {
        for &w in outs {
            self.check(w);
            self.outputs.push(w);
        }
    }

    // ---- primitives ----------------------------------------------------

    /// Inverter.
    pub fn not(&mut self, a: Wire) -> Wire {
        Wire(self.place(Component::Not { a }))
    }

    /// Two-input gate.
    pub fn gate(&mut self, op: GateOp, a: Wire, b: Wire) -> Wire {
        Wire(self.place(Component::Gate { op, a, b }))
    }

    /// AND gate.
    pub fn and(&mut self, a: Wire, b: Wire) -> Wire {
        self.gate(GateOp::And, a, b)
    }

    /// OR gate.
    pub fn or(&mut self, a: Wire, b: Wire) -> Wire {
        self.gate(GateOp::Or, a, b)
    }

    /// XOR gate.
    pub fn xor(&mut self, a: Wire, b: Wire) -> Wire {
        self.gate(GateOp::Xor, a, b)
    }

    /// 2×1 multiplexer: `sel ? a1 : a0`.
    pub fn mux2(&mut self, sel: Wire, a0: Wire, a1: Wire) -> Wire {
        Wire(self.place(Component::Mux2 { sel, a0, a1 }))
    }

    /// 1×2 demultiplexer; returns `(out0, out1)`.
    pub fn demux2(&mut self, sel: Wire, x: Wire) -> (Wire, Wire) {
        let base = self.place(Component::Demux2 { sel, x });
        (Wire(base), Wire(base + 1))
    }

    /// 2×2 switch; returns `(out_a, out_b)`; crossed when `ctrl = 1`.
    pub fn switch2(&mut self, ctrl: Wire, a: Wire, b: Wire) -> (Wire, Wire) {
        let base = self.place(Component::Switch2 { ctrl, a, b });
        (Wire(base), Wire(base + 1))
    }

    /// Bit comparator (ascending 2-sorter); returns `(min, max)`.
    pub fn bit_compare(&mut self, a: Wire, b: Wire) -> (Wire, Wire) {
        let base = self.place(Component::BitCompare { a, b });
        (Wire(base), Wire(base + 1))
    }

    /// 4×4 switch applying `perms[2*s1 + s0]`; returns its four outputs.
    pub fn switch4(&mut self, s1: Wire, s0: Wire, ins: [Wire; 4], perms: [Perm4; 4]) -> [Wire; 4] {
        for p in &perms {
            let mut seen = [false; 4];
            for &i in p {
                assert!(
                    (i as usize) < 4 && !seen[i as usize],
                    "Perm4 {p:?} is not a permutation of 0..4"
                );
                seen[i as usize] = true;
            }
        }
        let base = self.place(Component::Switch4 { s1, s0, ins, perms });
        [Wire(base), Wire(base + 1), Wire(base + 2), Wire(base + 3)]
    }

    // ---- composition ---------------------------------------------------

    /// Splices a finished circuit into this builder, driving its primary
    /// inputs from `inputs` (one host wire per embedded input, in
    /// declaration order). The embedded components are re-placed in the
    /// builder's current scope, preserving their relative order.
    ///
    /// Returns `(wire_map, comp_base)`:
    /// * `wire_map[w]` is the host wire carrying the embedded circuit's
    ///   wire `w` — so fault sites enumerated on the embedded circuit can
    ///   be translated into the host netlist;
    /// * `comp_base` is the host index of the embedded circuit's first
    ///   component, so component index `ci` of the embedded circuit lands
    ///   at `comp_base + ci` in the host.
    ///
    /// The embedded circuit's designated outputs are *not* auto-forwarded;
    /// read them off through the wire map:
    /// `wire_map[c.output_wire(i).index()]`.
    pub fn append_circuit(&mut self, c: &Circuit, inputs: &[Wire]) -> (Vec<Wire>, usize) {
        assert_eq!(
            inputs.len(),
            c.n_inputs(),
            "append_circuit: embedded circuit wants {} inputs, got {}",
            c.n_inputs(),
            inputs.len()
        );
        for &w in inputs {
            self.check(w);
        }
        let comp_base = self.comps.len();
        let mut map = vec![Wire::from_index(0); c.n_wires()];
        for (i, &w) in c.input_wires().iter().enumerate() {
            map[w.index()] = inputs[i];
        }
        for &(w, v) in c.const_wires() {
            map[w.index()] = self.constant(v);
        }
        for p in c.components() {
            let comp = p.comp.map_wires(|w| map[w.index()]);
            let n_out = comp.n_outputs();
            let out_base = self.place(comp);
            for k in 0..n_out {
                map[p.out_base as usize + k] = Wire(out_base + k as u32);
            }
        }
        (map, comp_base)
    }

    // ---- finish --------------------------------------------------------

    /// Number of components placed so far.
    pub fn n_components(&self) -> usize {
        self.comps.len()
    }

    /// Finalises the circuit. Panics if no outputs were designated or a
    /// scope is still open (both are construction bugs worth failing loudly
    /// on).
    pub fn finish(self) -> Circuit {
        assert!(
            !self.outputs.is_empty(),
            "circuit finished without any designated outputs"
        );
        assert!(
            self.scope_stack.len() == 1,
            "circuit finished with {} scope(s) still open",
            self.scope_stack.len() - 1
        );
        #[cfg(feature = "telemetry")]
        absort_telemetry::counter_add_many(&[
            ("build.circuits", 1),
            ("build.components", self.comps.len() as u64),
            ("build.wires", u64::from(self.n_wires)),
        ]);
        Circuit::from_parts(
            self.comps,
            self.n_wires as usize,
            self.inputs,
            self.outputs,
            self.consts,
            self.scopes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_interned_and_free() {
        let mut b = Builder::new();
        let i = b.input();
        let z1 = b.constant(false);
        let z2 = b.constant(false);
        let o1 = b.constant(true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
        let out = b.or(i, z1);
        b.outputs(&[out]);
        let c = b.finish();
        assert_eq!(c.cost().total, 1, "constants must not add cost");
    }

    #[test]
    fn switch2_semantics() {
        let mut b = Builder::new();
        let ctrl = b.input();
        let a = b.input();
        let bb = b.input();
        let (x, y) = b.switch2(ctrl, a, bb);
        b.outputs(&[x, y]);
        let c = b.finish();
        assert_eq!(c.eval(&[false, true, false]), vec![true, false]);
        assert_eq!(c.eval(&[true, true, false]), vec![false, true]);
    }

    #[test]
    fn demux_routes_and_zeros() {
        let mut b = Builder::new();
        let sel = b.input();
        let x = b.input();
        let (o0, o1) = b.demux2(sel, x);
        b.outputs(&[o0, o1]);
        let c = b.finish();
        assert_eq!(c.eval(&[false, true]), vec![true, false]);
        assert_eq!(c.eval(&[true, true]), vec![false, true]);
        assert_eq!(c.eval(&[true, false]), vec![false, false]);
    }

    #[test]
    fn bit_compare_sorts_two_bits() {
        let mut b = Builder::new();
        let a = b.input();
        let x = b.input();
        let (lo, hi) = b.bit_compare(a, x);
        b.outputs(&[lo, hi]);
        let c = b.finish();
        assert_eq!(c.eval(&[true, false]), vec![false, true]);
        assert_eq!(c.eval(&[false, true]), vec![false, true]);
        assert_eq!(c.eval(&[true, true]), vec![true, true]);
    }

    #[test]
    fn switch4_applies_selected_permutation() {
        let mut b = Builder::new();
        let s1 = b.input();
        let s0 = b.input();
        let ins: Vec<_> = (0..4).map(|_| b.input()).collect();
        let perms: [Perm4; 4] = [
            [0, 1, 2, 3], // identity
            [1, 0, 3, 2], // swap pairs
            [2, 3, 0, 1], // swap halves
            [3, 2, 1, 0], // reverse
        ];
        let outs = b.switch4(s1, s0, [ins[0], ins[1], ins[2], ins[3]], perms);
        b.outputs(&outs);
        let c = b.finish();
        // data = (1,0,0,0): marker on line 0.
        let data = [true, false, false, false];
        let run = |s1v: bool, s0v: bool| {
            let mut inp = vec![s1v, s0v];
            inp.extend_from_slice(&data);
            c.eval(&inp)
        };
        assert_eq!(run(false, false), vec![true, false, false, false]);
        assert_eq!(run(false, true), vec![false, true, false, false]);
        assert_eq!(run(true, false), vec![false, false, true, false]);
        assert_eq!(run(true, true), vec![false, false, false, true]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn switch4_rejects_non_permutation() {
        let mut b = Builder::new();
        let s1 = b.input();
        let s0 = b.input();
        let i = b.input();
        let _ = b.switch4(s1, s0, [i; 4], [[0, 0, 1, 2]; 4]);
    }

    #[test]
    fn append_circuit_preserves_behaviour_and_maps_wires() {
        // inner: half adder
        let mut ib = Builder::new();
        let a = ib.input();
        let c = ib.input();
        let sum = ib.xor(a, c);
        let carry = ib.and(a, c);
        ib.outputs(&[sum, carry]);
        let inner = ib.finish();

        // host: invert one input before feeding the embedded adder
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let ny = b.not(y);
        let (map, comp_base) = b.append_circuit(&inner, &[x, ny]);
        assert_eq!(comp_base, 1, "one host component (the NOT) precedes");
        let s = map[inner.output_wire(0).index()];
        let k = map[inner.output_wire(1).index()];
        b.outputs(&[s, k]);
        let host = b.finish();
        for v in 0..4u8 {
            let (xv, yv) = (v & 1 == 1, v >> 1 & 1 == 1);
            assert_eq!(host.eval(&[xv, yv]), inner.eval(&[xv, !yv]), "v={v}");
        }
        assert_eq!(host.n_components(), 1 + inner.n_components());
    }

    #[test]
    fn append_circuit_reinterns_constants() {
        let mut ib = Builder::new();
        let a = ib.input();
        let one = ib.constant(true);
        let o = ib.and(a, one);
        ib.outputs(&[o]);
        let inner = ib.finish();

        let mut b = Builder::new();
        let host_one = b.constant(true);
        let x = b.input();
        let (map, _) = b.append_circuit(&inner, &[x]);
        let o = map[inner.output_wire(0).index()];
        let o2 = b.and(o, host_one);
        b.outputs(&[o2]);
        let host = b.finish();
        assert_eq!(host.eval(&[true]), vec![true]);
        assert_eq!(host.cost().total, 2, "shared constant adds no cost");
    }

    #[test]
    #[should_panic(expected = "without any designated outputs")]
    fn finish_requires_outputs() {
        let mut b = Builder::new();
        let _ = b.input();
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "scope(s) still open")]
    fn finish_rejects_open_scope() {
        let mut b = Builder::new();
        let i = b.input();
        b.push_scope("oops");
        b.outputs(&[i]);
        let _ = b.finish();
    }
}
