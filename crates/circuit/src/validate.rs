//! Structural netlist validation.
//!
//! [`crate::Builder`] makes most malformed netlists unrepresentable, but
//! circuits also arrive from other sources — [`crate::serdes::from_text`]
//! parses external netlists, and the fault-injection machinery in
//! [`crate::mutate`] rewrites component lists wholesale. A structural bug
//! in any of those shows up, until now, as an index panic deep inside an
//! evaluation sweep. [`crate::Circuit::validate`] checks the invariants
//! up front and reports the first violation as a typed
//! [`ValidateError`], so campaign runners and loaders can reject a bad
//! netlist with a message instead of poisoning a worker thread.
//!
//! Checked invariants:
//!
//! * every wire reference (component inputs and outputs, primary inputs,
//!   constants, designated outputs) is inside the wire table;
//! * every wire has **exactly one** driver (a primary input, a constant,
//!   or one component output) — no dangling reads, no contention;
//! * components are in topological order: a component reads only wires
//!   driven before it (the evaluation engines rely on this for their
//!   single forward scan);
//! * constants are consistent: a wire is tied to at most one value and is
//!   not simultaneously a primary input or a component output;
//! * every 4×4 switch's permutation tables are genuine permutations of
//!   its four inputs — a non-permutation row would give some output a
//!   fanin of two (or zero), breaching Model A's constant-fanin bound;
//! * at least one output is designated.

use crate::circuit::Circuit;
use crate::component::Component;

/// A structural defect found by [`Circuit::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A wire reference points past the end of the wire table.
    WireOutOfRange {
        /// The offending wire index.
        wire: usize,
        /// Size of the wire table.
        n_wires: usize,
        /// Where the reference appeared (e.g. `"component 3 input"`).
        context: &'static str,
    },
    /// A wire is driven by more than one source (two component outputs,
    /// or a component output colliding with a primary input).
    MultipleDrivers {
        /// The contested wire index.
        wire: usize,
    },
    /// A wire is read (by a component or a designated output) but has no
    /// driver at all.
    Dangling {
        /// The undriven wire index.
        wire: usize,
    },
    /// A component reads a wire that is only driven by a *later*
    /// component — the list is not in topological order.
    UseBeforeDef {
        /// The wire read too early.
        wire: usize,
        /// Index of the offending (reading) component.
        component: usize,
    },
    /// A constant wire is tied inconsistently: listed twice, or also a
    /// primary input / component output.
    ConstConflict {
        /// The conflicted wire index.
        wire: usize,
    },
    /// A 4×4 switch's permutation table row is not a permutation of
    /// `0..4`, so some output would have fanin ≠ 1.
    BadPerm {
        /// Index of the offending component.
        component: usize,
    },
    /// The circuit designates no outputs.
    NoOutputs,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::WireOutOfRange {
                wire,
                n_wires,
                context,
            } => write!(
                f,
                "wire {wire} ({context}) is out of range: wire table has {n_wires} entries"
            ),
            ValidateError::MultipleDrivers { wire } => {
                write!(f, "wire {wire} has multiple drivers")
            }
            ValidateError::Dangling { wire } => {
                write!(f, "wire {wire} is read but never driven")
            }
            ValidateError::UseBeforeDef { wire, component } => write!(
                f,
                "component {component} reads wire {wire} before it is driven (topological order violated)"
            ),
            ValidateError::ConstConflict { wire } => {
                write!(f, "constant wire {wire} is tied inconsistently")
            }
            ValidateError::BadPerm { component } => write!(
                f,
                "component {component}: 4×4 switch permutation row is not a permutation of 0..4"
            ),
            ValidateError::NoOutputs => write!(f, "circuit designates no outputs"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Driver bookkeeping: who defines each wire, and at which topological
/// position (`0` = primary input / constant, `i + 1` = component `i`).
#[derive(Clone, Copy, PartialEq)]
enum Driver {
    None,
    Input,
    Const,
    Component(usize),
}

pub(crate) fn validate(c: &Circuit) -> Result<(), ValidateError> {
    let n_wires = c.n_wires();
    let oob = |wire: usize, context: &'static str| ValidateError::WireOutOfRange {
        wire,
        n_wires,
        context,
    };

    if c.output_wires().is_empty() {
        return Err(ValidateError::NoOutputs);
    }

    let mut driver = vec![Driver::None; n_wires];
    for w in c.input_wires() {
        if w.index() >= n_wires {
            return Err(oob(w.index(), "primary input"));
        }
        if driver[w.index()] != Driver::None {
            return Err(ValidateError::MultipleDrivers { wire: w.index() });
        }
        driver[w.index()] = Driver::Input;
    }
    for &(w, _) in c.const_wires() {
        if w.index() >= n_wires {
            return Err(oob(w.index(), "constant"));
        }
        // A constant colliding with anything — an input, a component
        // output (checked below), or another constant — is a tie-off
        // conflict rather than plain driver contention.
        if driver[w.index()] != Driver::None {
            return Err(ValidateError::ConstConflict { wire: w.index() });
        }
        driver[w.index()] = Driver::Const;
    }

    // First pass: claim every component's output range.
    for (ci, p) in c.components().iter().enumerate() {
        let base = p.out_base as usize;
        for k in 0..p.comp.n_outputs() {
            let w = base + k;
            if w >= n_wires {
                return Err(oob(w, "component output"));
            }
            match driver[w] {
                Driver::None => driver[w] = Driver::Component(ci),
                Driver::Const => return Err(ValidateError::ConstConflict { wire: w }),
                _ => return Err(ValidateError::MultipleDrivers { wire: w }),
            }
        }
        if let Component::Switch4 { perms, .. } = &p.comp {
            for row in perms {
                let mut seen = [false; 4];
                for &i in row {
                    if i as usize >= 4 || seen[i as usize] {
                        return Err(ValidateError::BadPerm { component: ci });
                    }
                    seen[i as usize] = true;
                }
            }
        }
    }

    // Second pass: every read must hit an earlier driver.
    for (ci, p) in c.components().iter().enumerate() {
        let mut err = None;
        p.comp.for_each_input(|w| {
            if err.is_some() {
                return;
            }
            if w.index() >= n_wires {
                err = Some(oob(w.index(), "component input"));
                return;
            }
            match driver[w.index()] {
                Driver::None => err = Some(ValidateError::Dangling { wire: w.index() }),
                Driver::Component(di) if di >= ci => {
                    err = Some(ValidateError::UseBeforeDef {
                        wire: w.index(),
                        component: ci,
                    })
                }
                _ => {}
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }

    for w in c.output_wires() {
        if w.index() >= n_wires {
            return Err(oob(w.index(), "designated output"));
        }
        if driver[w.index()] == Driver::None {
            return Err(ValidateError::Dangling { wire: w.index() });
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::component::{Component, Placed};
    use crate::scope::{ScopeId, ScopeTree};
    use crate::wire::Wire;

    fn placed(comp: Component, out_base: u32) -> Placed {
        Placed {
            comp,
            out_base,
            scope: ScopeId::ROOT,
        }
    }

    /// `from_parts` with default scope tree, mirroring what a buggy loader
    /// or mutation pass could hand the evaluator.
    fn raw(
        comps: Vec<Placed>,
        n_wires: usize,
        inputs: Vec<usize>,
        outputs: Vec<usize>,
        consts: Vec<(usize, bool)>,
    ) -> Circuit {
        Circuit::from_parts(
            comps,
            n_wires,
            inputs.into_iter().map(Wire::from_index).collect(),
            outputs.into_iter().map(Wire::from_index).collect(),
            consts
                .into_iter()
                .map(|(w, v)| (Wire::from_index(w), v))
                .collect(),
            ScopeTree::new(),
        )
    }

    fn gate(a: usize, b: usize) -> Component {
        Component::Gate {
            op: crate::component::GateOp::And,
            a: Wire::from_index(a),
            b: Wire::from_index(b),
        }
    }

    #[test]
    fn builder_output_validates() {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let (lo, hi) = b.bit_compare(x, y);
        b.outputs(&[lo, hi]);
        assert_eq!(b.finish().validate(), Ok(()));
    }

    #[test]
    fn wire_out_of_range_component_input() {
        let c = raw(vec![placed(gate(0, 9), 2)], 3, vec![0, 1], vec![2], vec![]);
        assert_eq!(
            c.validate(),
            Err(ValidateError::WireOutOfRange {
                wire: 9,
                n_wires: 3,
                context: "component input",
            })
        );
    }

    #[test]
    fn wire_out_of_range_output_range() {
        // component output range runs past the wire table
        let c = raw(vec![placed(gate(0, 1), 2)], 2, vec![0, 1], vec![1], vec![]);
        assert_eq!(
            c.validate(),
            Err(ValidateError::WireOutOfRange {
                wire: 2,
                n_wires: 2,
                context: "component output",
            })
        );
    }

    #[test]
    fn multiple_drivers_detected() {
        // two gates both claim wire 2
        let c = raw(
            vec![placed(gate(0, 1), 2), placed(gate(0, 1), 2)],
            3,
            vec![0, 1],
            vec![2],
            vec![],
        );
        assert_eq!(
            c.validate(),
            Err(ValidateError::MultipleDrivers { wire: 2 })
        );
    }

    #[test]
    fn component_driving_an_input_is_contention() {
        let c = raw(vec![placed(gate(0, 1), 1)], 2, vec![0, 1], vec![1], vec![]);
        assert_eq!(
            c.validate(),
            Err(ValidateError::MultipleDrivers { wire: 1 })
        );
    }

    #[test]
    fn dangling_read_detected() {
        // wire 2 exists in the table but nothing drives it
        let c = raw(vec![placed(gate(0, 2), 3)], 4, vec![0, 1], vec![3], vec![]);
        assert_eq!(c.validate(), Err(ValidateError::Dangling { wire: 2 }));
    }

    #[test]
    fn dangling_designated_output_detected() {
        let c = raw(vec![], 2, vec![0], vec![1], vec![]);
        assert_eq!(c.validate(), Err(ValidateError::Dangling { wire: 1 }));
    }

    #[test]
    fn use_before_def_detected() {
        // first gate reads wire 3, which the *second* gate drives
        let c = raw(
            vec![placed(gate(0, 3), 2), placed(gate(0, 1), 3)],
            4,
            vec![0, 1],
            vec![2],
            vec![],
        );
        assert_eq!(
            c.validate(),
            Err(ValidateError::UseBeforeDef {
                wire: 3,
                component: 0,
            })
        );
    }

    #[test]
    fn self_loop_is_use_before_def() {
        let c = raw(vec![placed(gate(0, 1), 1)], 2, vec![0], vec![1], vec![]);
        assert_eq!(
            c.validate(),
            Err(ValidateError::UseBeforeDef {
                wire: 1,
                component: 0,
            })
        );
    }

    #[test]
    fn const_conflicts_detected() {
        // doubly tied constant
        let c = raw(vec![], 2, vec![0], vec![0], vec![(1, false), (1, true)]);
        assert_eq!(c.validate(), Err(ValidateError::ConstConflict { wire: 1 }));
        // constant colliding with a primary input
        let c = raw(vec![], 1, vec![0], vec![0], vec![(0, false)]);
        assert_eq!(c.validate(), Err(ValidateError::ConstConflict { wire: 0 }));
        // constant colliding with a component output
        let c = raw(
            vec![placed(gate(0, 1), 2)],
            3,
            vec![0, 1],
            vec![2],
            vec![(2, true)],
        );
        assert_eq!(c.validate(), Err(ValidateError::ConstConflict { wire: 2 }));
    }

    #[test]
    fn bad_perm_detected() {
        let w = Wire::from_index(0);
        let c = raw(
            vec![placed(
                Component::Switch4 {
                    s1: w,
                    s0: w,
                    ins: [w; 4],
                    perms: [[0, 0, 1, 2]; 4],
                },
                1,
            )],
            5,
            vec![0],
            vec![1],
            vec![],
        );
        assert_eq!(c.validate(), Err(ValidateError::BadPerm { component: 0 }));
    }

    #[test]
    fn no_outputs_detected() {
        let c = raw(vec![], 1, vec![0], vec![], vec![]);
        assert_eq!(c.validate(), Err(ValidateError::NoOutputs));
    }

    #[test]
    fn errors_render_messages() {
        let e = ValidateError::UseBeforeDef {
            wire: 7,
            component: 3,
        };
        assert!(e.to_string().contains("component 3"));
        assert!(e.to_string().contains("wire 7"));
        assert!(ValidateError::NoOutputs.to_string().contains("no outputs"));
    }
}
