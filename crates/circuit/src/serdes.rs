//! Plain-text netlist serialization.
//!
//! A stable, line-oriented format so constructions can be saved, diffed,
//! version-controlled, and reloaded (the CLI's `dot` export draws; this
//! round-trips). One line per element:
//!
//! ```text
//! absort-netlist v1
//! inputs 4
//! const 0
//! const 1
//! cmp w0 w1            # BitCompare: outputs are the next two wires
//! sw2 w8 w2 w3         # Switch2 ctrl a b
//! mux w4 w5 w6         # Mux2 sel a0 a1
//! demux w4 w5          # Demux2 sel x
//! gate and w0 w2       # two-input gate
//! not w3
//! sw4 w1 w0 w2 w3 w4 w5 p0123 p1032 p2301 p3210
//! outputs w9 w10
//! ```
//!
//! Wires are named `w<index>` in creation order (inputs first, then
//! constants, then component outputs). The parser validates the
//! topological discipline the builder enforces, so a hand-edited file
//! cannot smuggle in a cycle.

use crate::builder::Builder;
use crate::circuit::Circuit;
use crate::component::{Component, GateOp};
use crate::wire::Wire;
use std::fmt::Write as _;

/// Serializes a circuit to the v1 text format.
pub fn to_text(circuit: &Circuit) -> String {
    let mut out = String::from("absort-netlist v1\n");
    let _ = writeln!(out, "inputs {}", circuit.n_inputs());
    for &(_, v) in circuit.const_wires() {
        let _ = writeln!(out, "const {}", u8::from(v));
    }
    let w = |wire: Wire| format!("w{}", wire.index());
    for p in circuit.components() {
        match &p.comp {
            Component::Not { a } => {
                let _ = writeln!(out, "not {}", w(*a));
            }
            Component::Gate { op, a, b } => {
                let name = match op {
                    GateOp::And => "and",
                    GateOp::Or => "or",
                    GateOp::Xor => "xor",
                    GateOp::Nand => "nand",
                    GateOp::Nor => "nor",
                    GateOp::Xnor => "xnor",
                };
                let _ = writeln!(out, "gate {name} {} {}", w(*a), w(*b));
            }
            Component::Mux2 { sel, a0, a1 } => {
                let _ = writeln!(out, "mux {} {} {}", w(*sel), w(*a0), w(*a1));
            }
            Component::Demux2 { sel, x } => {
                let _ = writeln!(out, "demux {} {}", w(*sel), w(*x));
            }
            Component::Switch2 { ctrl, a, b } => {
                let _ = writeln!(out, "sw2 {} {} {}", w(*ctrl), w(*a), w(*b));
            }
            Component::BitCompare { a, b } => {
                let _ = writeln!(out, "cmp {} {}", w(*a), w(*b));
            }
            Component::Switch4 { s1, s0, ins, perms } => {
                let mut line = format!("sw4 {} {}", w(*s1), w(*s0));
                for i in ins {
                    let _ = write!(line, " {}", w(*i));
                }
                for p in perms {
                    let _ = write!(line, " p{}{}{}{}", p[0], p[1], p[2], p[3]);
                }
                let _ = writeln!(out, "{line}");
            }
        }
    }
    let outs: Vec<String> = circuit.output_wires().iter().map(|&o| w(o)).collect();
    let _ = writeln!(out, "outputs {}", outs.join(" "));
    out
}

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the v1 text format back into a circuit.
pub fn from_text(text: &str) -> Result<Circuit, ParseError> {
    let err = |line: usize, message: &str| ParseError {
        line,
        message: message.to_string(),
    };
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());
    let (ln, header) = lines.next().ok_or_else(|| err(1, "empty netlist"))?;
    if header != "absort-netlist v1" {
        return Err(err(ln, "bad header (expected `absort-netlist v1`)"));
    }

    let mut b = Builder::new();
    let mut wires: Vec<Wire> = Vec::new();
    let parse_wire = |tok: &str, wires: &[Wire], ln: usize| -> Result<Wire, ParseError> {
        let idx: usize = tok
            .strip_prefix('w')
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(ln, &format!("bad wire token {tok:?}")))?;
        wires
            .get(idx)
            .copied()
            .ok_or_else(|| err(ln, &format!("wire w{idx} not defined yet")))
    };

    let mut saw_outputs = false;
    for (ln, line) in lines {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "inputs" => {
                let n: usize = toks
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(ln, "inputs needs a count"))?;
                for _ in 0..n {
                    wires.push(b.input());
                }
            }
            "const" => {
                let v = match toks.get(1) {
                    Some(&"0") => false,
                    Some(&"1") => true,
                    _ => return Err(err(ln, "const needs 0 or 1")),
                };
                wires.push(b.constant(v));
            }
            "not" => {
                let a = parse_wire(
                    toks.get(1).ok_or_else(|| err(ln, "not needs 1 arg"))?,
                    &wires,
                    ln,
                )?;
                wires.push(b.not(a));
            }
            "gate" => {
                if toks.len() != 4 {
                    return Err(err(ln, "gate needs op + 2 wires"));
                }
                let op = match toks[1] {
                    "and" => GateOp::And,
                    "or" => GateOp::Or,
                    "xor" => GateOp::Xor,
                    "nand" => GateOp::Nand,
                    "nor" => GateOp::Nor,
                    "xnor" => GateOp::Xnor,
                    other => return Err(err(ln, &format!("unknown gate {other:?}"))),
                };
                let a = parse_wire(toks[2], &wires, ln)?;
                let c = parse_wire(toks[3], &wires, ln)?;
                wires.push(b.gate(op, a, c));
            }
            "mux" => {
                if toks.len() != 4 {
                    return Err(err(ln, "mux needs 3 wires"));
                }
                let s = parse_wire(toks[1], &wires, ln)?;
                let a0 = parse_wire(toks[2], &wires, ln)?;
                let a1 = parse_wire(toks[3], &wires, ln)?;
                wires.push(b.mux2(s, a0, a1));
            }
            "demux" => {
                if toks.len() != 3 {
                    return Err(err(ln, "demux needs 2 wires"));
                }
                let s = parse_wire(toks[1], &wires, ln)?;
                let x = parse_wire(toks[2], &wires, ln)?;
                let (o0, o1) = b.demux2(s, x);
                wires.push(o0);
                wires.push(o1);
            }
            "sw2" => {
                if toks.len() != 4 {
                    return Err(err(ln, "sw2 needs 3 wires"));
                }
                let c = parse_wire(toks[1], &wires, ln)?;
                let a = parse_wire(toks[2], &wires, ln)?;
                let d = parse_wire(toks[3], &wires, ln)?;
                let (oa, ob) = b.switch2(c, a, d);
                wires.push(oa);
                wires.push(ob);
            }
            "cmp" => {
                if toks.len() != 3 {
                    return Err(err(ln, "cmp needs 2 wires"));
                }
                let a = parse_wire(toks[1], &wires, ln)?;
                let c = parse_wire(toks[2], &wires, ln)?;
                let (lo, hi) = b.bit_compare(a, c);
                wires.push(lo);
                wires.push(hi);
            }
            "sw4" => {
                if toks.len() != 11 {
                    return Err(err(ln, "sw4 needs 2 selects, 4 wires, 4 perms"));
                }
                let s1 = parse_wire(toks[1], &wires, ln)?;
                let s0 = parse_wire(toks[2], &wires, ln)?;
                let mut ins = [s1; 4];
                for (i, slot) in ins.iter_mut().enumerate() {
                    *slot = parse_wire(toks[3 + i], &wires, ln)?;
                }
                let mut perms = [[0u8; 4]; 4];
                for (pi, perm) in perms.iter_mut().enumerate() {
                    let t = toks[7 + pi]
                        .strip_prefix('p')
                        .ok_or_else(|| err(ln, "perm must start with p"))?;
                    if t.len() != 4 {
                        return Err(err(ln, "perm needs 4 digits"));
                    }
                    for (d, ch) in perm.iter_mut().zip(t.chars()) {
                        *d = ch
                            .to_digit(4)
                            .ok_or_else(|| err(ln, "perm digits must be 0-3"))?
                            as u8;
                    }
                }
                let outs = b.switch4(s1, s0, ins, perms);
                wires.extend_from_slice(&outs);
            }
            "outputs" => {
                let outs: Result<Vec<Wire>, ParseError> = toks[1..]
                    .iter()
                    .map(|t| parse_wire(t, &wires, ln))
                    .collect();
                b.outputs(&outs?);
                saw_outputs = true;
            }
            other => return Err(err(ln, &format!("unknown directive {other:?}"))),
        }
    }
    if !saw_outputs {
        return Err(err(0, "netlist has no outputs line"));
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::{check_exhaustive, Equivalence};

    #[test]
    fn roundtrip_mixed_circuit() {
        let mut b = Builder::new();
        let ins = b.input_bus(4);
        let z = b.constant(false);
        let (lo, hi) = b.bit_compare(ins[0], ins[1]);
        let m = b.mux2(ins[2], lo, z);
        let (s0, s1) = b.switch2(ins[3], m, hi);
        let g = b.gate(GateOp::Xnor, s0, s1);
        let n = b.not(g);
        let (d0, d1) = b.demux2(ins[0], n);
        let outs = b.switch4(
            ins[1],
            ins[2],
            [d0, d1, m, g],
            [[0, 1, 2, 3], [1, 0, 3, 2], [3, 2, 1, 0], [2, 3, 0, 1]],
        );
        b.outputs(&outs);
        let original = b.finish();

        let text = to_text(&original);
        let parsed = from_text(&text).expect("parse");
        assert_eq!(parsed.cost(), original.cost());
        assert_eq!(parsed.depth(), original.depth());
        assert_eq!(
            check_exhaustive(&original, &parsed),
            Equivalence::EqualExhaustive
        );
        // idempotence of the textual form
        assert_eq!(to_text(&parsed), text);
    }

    #[test]
    fn parse_rejects_forward_references() {
        let text = "absort-netlist v1\ninputs 1\nnot w5\noutputs w0\n";
        let e = from_text(text).unwrap_err();
        assert!(e.message.contains("not defined yet"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_text("hello").is_err());
        assert!(from_text("absort-netlist v1\nfrobnicate w0\n").is_err());
        assert!(
            from_text("absort-netlist v1\ninputs 1\n").is_err(),
            "no outputs"
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text =
            "absort-netlist v1\n\n# a comment\ninputs 2  # two lines\ncmp w0 w1\noutputs w2 w3\n";
        let c = from_text(text).expect("parse");
        assert_eq!(c.eval(&[true, false]), vec![false, true]);
    }

    #[test]
    fn roundtrip_a_real_sorter() {
        // serialize/parse a generated 8-input sorter-ish circuit: the
        // balanced first stage plus adjacent stage
        let mut b = Builder::new();
        let ins = b.input_bus(8);
        let mut y = ins.clone();
        for i in 0..4 {
            let (lo, hi) = b.bit_compare(y[i], y[7 - i]);
            y[i] = lo;
            y[7 - i] = hi;
        }
        b.outputs(&y);
        let c = b.finish();
        let rt = from_text(&to_text(&c)).unwrap();
        assert_eq!(check_exhaustive(&c, &rt), Equivalence::EqualExhaustive);
    }
}
