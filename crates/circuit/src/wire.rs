//! Wire handles.
//!
//! A [`Wire`] is an index into a circuit's wire table. Wires are created
//! only by [`crate::Builder`] methods (as primary inputs, constants, or
//! component outputs), which is what guarantees the netlist stays a DAG in
//! topological order: a component can only name wires that already exist.

/// A handle to a single-bit wire in a circuit under construction.
///
/// `Wire`s are plain indices and are only meaningful for the builder (and
/// later the circuit) that created them. They are deliberately `Copy` and
/// cheap: the sorting-network builders pass around `Vec<Wire>` bundles the
/// way the paper's figures pass around bundles of lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Wire(pub(crate) u32);

impl Wire {
    /// The raw index of this wire in the circuit's wire table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a wire from a raw index. Intended for the builder and for
    /// tests; using an out-of-range index with a circuit panics at use.
    #[inline]
    pub(crate) fn from_index(i: usize) -> Self {
        assert!(i <= u32::MAX as usize, "wire index overflow (> u32::MAX)");
        Wire(i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let w = Wire::from_index(42);
        assert_eq!(w.index(), 42);
    }

    #[test]
    fn ordering_matches_creation_order() {
        assert!(Wire::from_index(1) < Wire::from_index(2));
    }
}
