//! Hierarchical scopes for cost attribution.
//!
//! The paper derives its cost bounds block by block ("the cost and depth of
//! a lg n-bit prefix adder are 3 lg n and 2 lg lg n"). To *audit* those
//! closed forms against the constructed circuits rather than trust a
//! hand-count, the builder tags every component with the hierarchical
//! scope it was created under (e.g. `prefix_sorter/level0/patchup/adder`).
//! [`crate::CostReport`] can then aggregate cost per scope subtree.

use std::collections::HashMap;

/// Identifier of a node in a [`ScopeTree`]. Scope 0 is always the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScopeId(pub(crate) u32);

impl ScopeId {
    /// The root scope (components created outside any named scope).
    pub const ROOT: ScopeId = ScopeId(0);

    /// Raw index of this scope.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned tree of scope names.
///
/// Children are interned per `(parent, name)` pair, so re-entering the same
/// scope name under the same parent reuses the node — entering
/// `"comparators"` once per recursion level still yields one node per
/// distinct path.
#[derive(Debug, Clone)]
pub struct ScopeTree {
    names: Vec<String>,
    parents: Vec<ScopeId>,
    children: HashMap<(ScopeId, String), ScopeId>,
}

impl Default for ScopeTree {
    fn default() -> Self {
        Self::new()
    }
}

impl ScopeTree {
    /// Creates a tree containing only the root scope.
    pub fn new() -> Self {
        ScopeTree {
            names: vec![String::new()],
            parents: vec![ScopeId::ROOT],
            children: HashMap::new(),
        }
    }

    /// Interns `name` as a child of `parent`, returning the (possibly
    /// pre-existing) child id.
    pub fn child(&mut self, parent: ScopeId, name: &str) -> ScopeId {
        if let Some(&id) = self.children.get(&(parent, name.to_owned())) {
            return id;
        }
        let id = ScopeId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.parents.push(parent);
        self.children.insert((parent, name.to_owned()), id);
        id
    }

    /// The parent of `id` (the root is its own parent).
    #[inline]
    pub fn parent(&self, id: ScopeId) -> ScopeId {
        self.parents[id.index()]
    }

    /// The full `/`-separated path of `id` from the root, e.g.
    /// `"prefix_sorter/patchup/adder"`. The root's path is `""`.
    pub fn path(&self, id: ScopeId) -> String {
        if id == ScopeId::ROOT {
            return String::new();
        }
        let mut parts = vec![self.names[id.index()].as_str()];
        let mut cur = self.parent(id);
        while cur != ScopeId::ROOT {
            parts.push(self.names[cur.index()].as_str());
            cur = self.parent(cur);
        }
        parts.reverse();
        parts.join("/")
    }

    /// Whether `id` equals `ancestor` or lies in its subtree.
    pub fn is_within(&self, id: ScopeId, ancestor: ScopeId) -> bool {
        let mut cur = id;
        loop {
            if cur == ancestor {
                return true;
            }
            if cur == ScopeId::ROOT {
                return false;
            }
            cur = self.parent(cur);
        }
    }

    /// Number of scopes (including the root).
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when only the root exists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Looks a scope up by its full path, if it exists.
    pub fn lookup(&self, path: &str) -> Option<ScopeId> {
        if path.is_empty() {
            return Some(ScopeId::ROOT);
        }
        let mut cur = ScopeId::ROOT;
        for part in path.split('/') {
            cur = *self.children.get(&(cur, part.to_owned()))?;
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_and_interning() {
        let mut t = ScopeTree::new();
        let a = t.child(ScopeId::ROOT, "sorter");
        let b = t.child(a, "patchup");
        let b2 = t.child(a, "patchup");
        assert_eq!(b, b2, "same (parent, name) must intern to one id");
        assert_eq!(t.path(b), "sorter/patchup");
        assert_eq!(t.path(ScopeId::ROOT), "");
    }

    #[test]
    fn lookup_roundtrip() {
        let mut t = ScopeTree::new();
        let a = t.child(ScopeId::ROOT, "x");
        let b = t.child(a, "y");
        assert_eq!(t.lookup("x/y"), Some(b));
        assert_eq!(t.lookup(""), Some(ScopeId::ROOT));
        assert_eq!(t.lookup("x/z"), None);
    }

    #[test]
    fn subtree_membership() {
        let mut t = ScopeTree::new();
        let a = t.child(ScopeId::ROOT, "a");
        let b = t.child(a, "b");
        let c = t.child(ScopeId::ROOT, "c");
        assert!(t.is_within(b, a));
        assert!(t.is_within(b, ScopeId::ROOT));
        assert!(!t.is_within(c, a));
        assert!(t.is_within(a, a));
    }

    #[test]
    fn distinct_paths_distinct_ids() {
        let mut t = ScopeTree::new();
        let a = t.child(ScopeId::ROOT, "level");
        let aa = t.child(a, "level");
        assert_ne!(a, aa);
        assert_eq!(t.path(aa), "level/level");
    }
}
