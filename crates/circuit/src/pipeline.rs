//! Gate-level pipelining of combinational circuits.
//!
//! Model B's time bounds hinge on the sentence "the sorting network is
//! viewed as a `lg²(n/k)`-segment pipeline, where each segment is a
//! constant fanin, unit delay circuit" (Section III.C). This module makes
//! that view executable: [`Pipelined`] retimes any combinational
//! [`Circuit`] into `depth` register-separated stages (stage `s` holds
//! every component whose ASAP level is `s + 1`) and simulates it cycle by
//! cycle — one new input vector may enter per cycle, each in-flight
//! vector advances one stage per cycle, and results emerge after exactly
//! `depth` cycles. Latency and initiation interval therefore match the
//! paper's model by construction, and the fish sorter's pipelined front
//! end can be validated at the gate level
//! (`absort-core::fish::hardware`).

use crate::circuit::Circuit;
use crate::eval::{eval_component, EvalError};
use crate::lane::Lane;
use crate::validate::ValidateError;

/// A combinational circuit retimed into unit-depth pipeline stages.
///
/// ```
/// use absort_circuit::{Builder, pipeline::Pipelined};
///
/// let mut b = Builder::new();
/// let x = b.input();
/// let y = b.input();
/// let (lo, hi) = b.bit_compare(x, y);
/// b.outputs(&[lo, hi]);
/// let circuit = b.finish();
///
/// let pipe = Pipelined::new(&circuit);
/// assert_eq!(pipe.stages(), 1);
/// // three vectors streamed: latency 1, one result per cycle afterwards
/// let (outs, cycles) = pipe.simulate(&[
///     vec![true, false],
///     vec![false, false],
///     vec![true, true],
/// ]);
/// assert_eq!(cycles, 3); // stages + k − 1
/// assert_eq!(outs[0], vec![false, true]);
/// ```
pub struct Pipelined<'c> {
    circuit: &'c Circuit,
    /// Component indices grouped by stage (stage `s` = ASAP level `s+1`).
    stage_comps: Vec<Vec<u32>>,
}

impl<'c> Pipelined<'c> {
    /// Retimes `circuit` by ASAP levels.
    pub fn new(circuit: &'c Circuit) -> Self {
        let mut level = vec![0u32; circuit.n_wires()];
        let mut stage_comps: Vec<Vec<u32>> = Vec::new();
        for (ci, p) in circuit.components().iter().enumerate() {
            let mut m = 0u32;
            p.comp.for_each_input(|w| m = m.max(level[w.index()]));
            let l = m + 1;
            for k in 0..p.comp.n_outputs() {
                level[p.out_base as usize + k] = l;
            }
            let s = (l - 1) as usize;
            if stage_comps.len() <= s {
                stage_comps.resize_with(s + 1, Vec::new);
            }
            stage_comps[s].push(ci as u32);
        }
        Pipelined {
            circuit,
            stage_comps,
        }
    }

    /// Checked [`Pipelined::new`]: validates the circuit's structural
    /// invariants first (the retiming scan and the per-stage evaluation
    /// both index wires by the component list's own claims) and reports a
    /// malformed netlist as a typed [`ValidateError`] instead of an index
    /// panic mid-simulation.
    pub fn try_new(circuit: &'c Circuit) -> Result<Self, ValidateError> {
        circuit.validate()?;
        Ok(Pipelined::new(circuit))
    }

    /// Number of pipeline stages (= the circuit's depth).
    pub fn stages(&self) -> usize {
        self.stage_comps.len()
    }

    /// Register bits required between stages in a hardware realization:
    /// for each stage boundary, every wire produced at or before the
    /// boundary and consumed after it needs a flip-flop. (An upper bound
    /// used by the cost discussions; the paper's cost accounting does not
    /// price registers, and neither do we elsewhere.)
    pub fn register_bound(&self) -> u64 {
        // Conservative: every wire alive across any boundary counts once
        // per boundary it crosses.
        let c = self.circuit;
        let mut level = vec![0u32; c.n_wires()];
        let mut last_use = vec![0u32; c.n_wires()];
        for p in c.components() {
            let mut m = 0u32;
            p.comp.for_each_input(|w| m = m.max(level[w.index()]));
            let l = m + 1;
            p.comp.for_each_input(|w| {
                last_use[w.index()] = last_use[w.index()].max(l);
            });
            for k in 0..p.comp.n_outputs() {
                level[p.out_base as usize + k] = l;
            }
        }
        for w in c.output_wires() {
            last_use[w.index()] = last_use[w.index()].max(self.stages() as u32 + 1);
        }
        (0..c.n_wires())
            .map(|w| u64::from(last_use[w].saturating_sub(level[w] + 1)))
            .sum()
    }

    /// Simulates the pipeline: `inputs[v]` enters at cycle `v` (one new
    /// vector per cycle — initiation interval 1), and the function
    /// returns `(outputs, total_cycles)` where `outputs[v]` is vector
    /// `v`'s result and `total_cycles = stages + inputs.len() − 1` (the
    /// cycle in which the last result emerges).
    ///
    /// The simulation is value-faithful *per stage*: each in-flight
    /// vector's wires are evaluated stage by stage as it advances, so a
    /// stage's values exist only from the cycle that vector reaches it —
    /// exactly the registered dataflow of the hardware.
    pub fn simulate<V: Lane>(&self, inputs: &[Vec<V>]) -> (Vec<Vec<V>>, u64) {
        let c = self.circuit;
        let n_stages = self.stages();
        #[cfg(feature = "telemetry")]
        let _span = absort_telemetry::span("pipeline/simulate");
        // Occupancy integral: Σ over cycles of vectors in flight at the
        // end of the cycle; divided by `pipeline.cycles` this gives the
        // mean pipeline occupancy of the run.
        #[cfg(feature = "telemetry")]
        let mut occupancy = 0u64;
        // In-flight contexts: wire buffers per vector, plus its stage.
        struct InFlight<V> {
            vector: usize,
            next_stage: usize,
            wires: Vec<V>,
        }
        let mut flying: Vec<InFlight<V>> = Vec::new();
        let mut outputs: Vec<Option<Vec<V>>> = vec![None; inputs.len()];
        let mut admitted = 0usize;
        let mut done = 0usize;
        let mut cycles = 0u64;
        while done < inputs.len() {
            cycles += 1;
            // advance every in-flight vector one stage
            for f in &mut flying {
                for &ci in &self.stage_comps[f.next_stage] {
                    eval_component(&c.components()[ci as usize], &mut f.wires);
                }
                f.next_stage += 1;
            }
            // retire completed vectors
            flying.retain(|f| {
                if f.next_stage == n_stages {
                    outputs[f.vector] = Some(
                        c.output_wires()
                            .iter()
                            .map(|w| f.wires[w.index()])
                            .collect(),
                    );
                    done += 1;
                    false
                } else {
                    true
                }
            });
            // admit the next vector (one per cycle)
            if admitted < inputs.len() {
                let v = &inputs[admitted];
                assert_eq!(v.len(), c.n_inputs(), "vector {admitted} arity");
                let mut wires = vec![V::ZERO; c.n_wires()];
                for (wire, &val) in c.input_wires().iter().zip(v) {
                    wires[wire.index()] = val;
                }
                for &(wire, val) in c.const_wires() {
                    wires[wire.index()] = V::splat(val);
                }
                let mut f = InFlight {
                    vector: admitted,
                    next_stage: 0,
                    wires,
                };
                // stage 0 executes in the admission cycle
                for &ci in &self.stage_comps[0] {
                    eval_component(&c.components()[ci as usize], &mut f.wires);
                }
                f.next_stage = 1;
                if f.next_stage == n_stages {
                    outputs[f.vector] = Some(
                        c.output_wires()
                            .iter()
                            .map(|w| f.wires[w.index()])
                            .collect(),
                    );
                    done += 1;
                } else {
                    flying.push(f);
                }
                admitted += 1;
            }
            #[cfg(feature = "telemetry")]
            {
                occupancy += flying.len() as u64;
            }
        }
        #[cfg(feature = "telemetry")]
        {
            absort_telemetry::counter_add("pipeline.cycles", cycles);
            absort_telemetry::counter_add("pipeline.vectors", inputs.len() as u64);
            absort_telemetry::counter_add("pipeline.in_flight_vector_cycles", occupancy);
        }
        (
            outputs.into_iter().map(|o| o.expect("retired")).collect(),
            cycles,
        )
    }

    /// Checked [`Pipelined::simulate`]: rejects input vectors of the
    /// wrong width with a typed [`EvalError::VectorLen`] up front instead
    /// of asserting mid-stream (by which point earlier vectors have
    /// already been admitted).
    pub fn try_simulate<V: Lane>(
        &self,
        inputs: &[Vec<V>],
    ) -> Result<(Vec<Vec<V>>, u64), EvalError> {
        let expected = self.circuit.n_inputs();
        for (v, vec) in inputs.iter().enumerate() {
            if vec.len() != expected {
                return Err(EvalError::VectorLen {
                    vector: v,
                    expected,
                    got: vec.len(),
                });
            }
        }
        Ok(self.simulate(inputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn chain(n: usize) -> Circuit {
        // depth-n NOT chain
        let mut b = Builder::new();
        let x = b.input();
        let mut acc = x;
        for _ in 0..n {
            acc = b.not(acc);
        }
        b.outputs(&[acc]);
        b.finish()
    }

    #[test]
    fn latency_equals_depth_and_ii_is_one() {
        let c = chain(5);
        let p = Pipelined::new(&c);
        assert_eq!(p.stages(), 5);
        let inputs: Vec<Vec<bool>> = (0..8).map(|v| vec![v % 2 == 0]).collect();
        let (outs, cycles) = p.simulate(&inputs);
        assert_eq!(cycles, 5 + 8 - 1, "stages + k − 1");
        for (v, o) in inputs.iter().zip(&outs) {
            assert_eq!(o[0], !v[0], "odd chain inverts");
        }
    }

    #[test]
    fn pipelined_results_match_combinational() {
        use rand::prelude::*;
        // a non-trivial mixed circuit
        let mut b = Builder::new();
        let ins = b.input_bus(6);
        let (lo, hi) = b.bit_compare(ins[0], ins[5]);
        let m = b.mux2(ins[1], lo, hi);
        let (s0, s1) = b.switch2(ins[2], m, ins[3]);
        let x = b.xor(s0, s1);
        let o = b.or(x, ins[4]);
        b.outputs(&[o, x, m]);
        let c = b.finish();
        let p = Pipelined::new(&c);
        let mut rng = StdRng::seed_from_u64(9);
        let inputs: Vec<Vec<bool>> = (0..50)
            .map(|_| (0..6).map(|_| rng.gen()).collect())
            .collect();
        let (outs, _) = p.simulate(&inputs);
        for (v, o) in inputs.iter().zip(&outs) {
            assert_eq!(o, &c.eval(v));
        }
    }

    #[test]
    fn single_vector_latency() {
        let c = chain(7);
        let p = Pipelined::new(&c);
        let (_, cycles) = p.simulate::<bool>(&[vec![true]]);
        assert_eq!(cycles, 7);
    }

    #[test]
    fn register_bound_positive_for_deep_circuits() {
        let c = chain(4);
        let p = Pipelined::new(&c);
        // a pure chain needs no cross-boundary registers beyond the chain
        // itself; a fan-out circuit does.
        let _ = p.register_bound(); // smoke: no panic, deterministic
        let mut b = Builder::new();
        let x = b.input();
        let a = b.not(x);
        let bb = b.not(a);
        let cc = b.not(bb);
        let o = b.and(x, cc); // x crosses 3 boundaries
        b.outputs(&[o]);
        let fanout = b.finish();
        assert!(Pipelined::new(&fanout).register_bound() >= 3);
    }

    #[test]
    fn try_simulate_rejects_ragged_vectors() {
        let c = chain(2);
        let p = Pipelined::new(&c);
        let err = p
            .try_simulate::<bool>(&[vec![true], vec![true, false]])
            .unwrap_err();
        assert_eq!(
            err,
            EvalError::VectorLen {
                vector: 1,
                expected: 1,
                got: 2,
            }
        );
        let (outs, cycles) = p.try_simulate(&[vec![true]]).unwrap();
        assert_eq!(cycles, 2);
        assert_eq!(outs[0], vec![true]);
    }

    #[test]
    fn try_new_rejects_malformed_netlists() {
        use crate::component::{Component, GateOp, Placed};
        use crate::scope::{ScopeId, ScopeTree};
        use crate::wire::Wire;
        // a gate reading a wire its own output drives (self-loop)
        let comp = Placed {
            comp: Component::Gate {
                op: GateOp::And,
                a: Wire::from_index(0),
                b: Wire::from_index(1),
            },
            out_base: 1,
            scope: ScopeId::ROOT,
        };
        let c = Circuit::from_parts(
            vec![comp],
            2,
            vec![Wire::from_index(0)],
            vec![Wire::from_index(1)],
            vec![],
            ScopeTree::new(),
        );
        assert_eq!(
            Pipelined::try_new(&c).err(),
            Some(ValidateError::UseBeforeDef {
                wire: 1,
                component: 0,
            })
        );
        let good = chain(1);
        assert!(Pipelined::try_new(&good).is_ok());
    }

    #[test]
    fn lane_pipelining_matches_bool() {
        let c = chain(3);
        let p = Pipelined::new(&c);
        let inputs_b: Vec<Vec<bool>> = vec![vec![true], vec![false], vec![true]];
        let inputs_l: Vec<Vec<u64>> = vec![vec![u64::MAX], vec![0], vec![u64::MAX]];
        let (ob, cb) = p.simulate(&inputs_b);
        let (ol, cl) = p.simulate(&inputs_l);
        assert_eq!(cb, cl);
        for (x, y) in ob.iter().zip(&ol) {
            assert_eq!(x[0], y[0] & 1 == 1);
        }
    }
}
