//! Circuit equivalence checking.
//!
//! The ablation experiments repeatedly need "same function, different
//! hardware" claims (prefix vs ripple adders, combinational vs
//! time-multiplexed dispatch). This module provides the two standard
//! checks: exhaustive equivalence for circuits with few inputs (64-lane
//! packed sweep over all `2^i` input vectors) and seeded random
//! differential testing beyond that.

use crate::circuit::Circuit;
use crate::eval::Evaluator;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// Proven equal on every input (exhaustive check).
    EqualExhaustive,
    /// Equal on all sampled inputs (random check; not a proof).
    EqualSampled {
        /// Number of vectors tested.
        trials: usize,
    },
    /// A concrete input on which the circuits differ (little-endian bit
    /// `i` = input `i`).
    Differs {
        /// The distinguishing input vector.
        witness: Vec<bool>,
    },
}

fn interfaces_match(a: &Circuit, b: &Circuit) {
    assert_eq!(a.n_inputs(), b.n_inputs(), "input arity mismatch");
    assert_eq!(a.n_outputs(), b.n_outputs(), "output arity mismatch");
}

/// Exhaustively compares two circuits over all `2^i` inputs
/// (`i = n_inputs ≤ 26`), packed 64 vectors per pass.
///
/// ```
/// use absort_circuit::{Builder, equiv};
///
/// let build = |swap: bool| {
///     let mut b = Builder::new();
///     let x = b.input();
///     let y = b.input();
///     let o = if swap { b.or(y, x) } else { b.or(x, y) };
///     b.outputs(&[o]);
///     b.finish()
/// };
/// assert_eq!(
///     equiv::check_exhaustive(&build(false), &build(true)),
///     equiv::Equivalence::EqualExhaustive
/// );
/// ```
pub fn check_exhaustive(a: &Circuit, b: &Circuit) -> Equivalence {
    interfaces_match(a, b);
    let i = a.n_inputs();
    assert!(
        i <= 26,
        "exhaustive equivalence limited to 26 inputs, got {i}"
    );
    let total = 1u64 << i;
    let mut eva: Evaluator<'_, u64> = Evaluator::new(a);
    let mut evb: Evaluator<'_, u64> = Evaluator::new(b);
    let mut base = 0u64;
    let mut packed = vec![0u64; i];
    while base < total {
        let count = (total - base).min(64);
        for (w, p) in packed.iter_mut().enumerate() {
            *p = 0;
            for v in 0..count {
                if (base + v) >> w & 1 == 1 {
                    *p |= 1 << v;
                }
            }
        }
        let oa = eva.run(&packed);
        let ob = evb.run(&packed);
        let mut diff = 0u64;
        for (x, y) in oa.iter().zip(&ob) {
            diff |= x ^ y;
        }
        if count < 64 {
            diff &= (1u64 << count) - 1;
        }
        if diff != 0 {
            let v = base + diff.trailing_zeros() as u64;
            let witness = (0..i).map(|w| v >> w & 1 == 1).collect();
            return Equivalence::Differs { witness };
        }
        base += count;
    }
    Equivalence::EqualExhaustive
}

/// Compares two circuits on `trials` seeded pseudo-random inputs
/// (splitmix64 stream; deterministic for a given seed).
pub fn check_random(a: &Circuit, b: &Circuit, trials: usize, seed: u64) -> Equivalence {
    interfaces_match(a, b);
    let i = a.n_inputs();
    let mut eva: Evaluator<'_, bool> = Evaluator::new(a);
    let mut evb: Evaluator<'_, bool> = Evaluator::new(b);
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for _ in 0..trials {
        let input: Vec<bool> = (0..i).map(|_| next() & 1 == 1).collect();
        if eva.run(&input) != evb.run(&input) {
            return Equivalence::Differs { witness: input };
        }
    }
    Equivalence::EqualSampled { trials }
}

/// Convenience: exhaustive when feasible (≤ 20 inputs), random otherwise.
pub fn check(a: &Circuit, b: &Circuit, random_trials: usize, seed: u64) -> Equivalence {
    if a.n_inputs() <= 20 {
        check_exhaustive(a, b)
    } else {
        check_random(a, b, random_trials, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::component::GateOp;

    fn xor3(order: [usize; 3]) -> Circuit {
        let mut b = Builder::new();
        let ins = b.input_bus(3);
        let t = b.xor(ins[order[0]], ins[order[1]]);
        let o = b.xor(t, ins[order[2]]);
        b.outputs(&[o]);
        b.finish()
    }

    #[test]
    fn commuted_xor_is_equivalent() {
        let a = xor3([0, 1, 2]);
        let b = xor3([2, 0, 1]);
        assert_eq!(check_exhaustive(&a, &b), Equivalence::EqualExhaustive);
        assert!(matches!(
            check_random(&a, &b, 100, 1),
            Equivalence::EqualSampled { trials: 100 }
        ));
    }

    #[test]
    fn different_gates_produce_witness() {
        let mk = |op| {
            let mut b = Builder::new();
            let x = b.input();
            let y = b.input();
            let o = b.gate(op, x, y);
            b.outputs(&[o]);
            b.finish()
        };
        let a = mk(GateOp::And);
        let o = mk(GateOp::Or);
        match check_exhaustive(&a, &o) {
            Equivalence::Differs { witness } => {
                // AND and OR differ exactly when inputs differ
                assert_ne!(witness[0], witness[1]);
            }
            other => panic!("expected Differs, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "input arity mismatch")]
    fn interface_mismatch_rejected() {
        let a = xor3([0, 1, 2]);
        let mut b = Builder::new();
        let x = b.input();
        b.outputs(&[x]);
        let bc = b.finish();
        let _ = check_exhaustive(&a, &bc);
    }

    #[test]
    fn witness_is_minimal_in_exhaustive_mode() {
        // circuits equal except on input 0b11 (both true)
        let mk = |wrong: bool| {
            let mut b = Builder::new();
            let x = b.input();
            let y = b.input();
            let o = if wrong {
                b.gate(GateOp::Nand, x, y)
            } else {
                let t = b.and(x, y);
                b.not(t)
            };
            b.outputs(&[o]);
            b.finish()
        };
        // NAND == NOT(AND): equal everywhere
        assert_eq!(
            check_exhaustive(&mk(true), &mk(false)),
            Equivalence::EqualExhaustive
        );
    }
}
