//! Pattern/term layer for the declarative `rewrite` pass.
//!
//! A [`Rule`] rewrites a *multi-root* left-hand side — a list of leg
//! terms over shared pattern variables — into a same-arity list of
//! right-hand-side terms. Multi-output ops (demux/2×2 switch/comparator
//! legs) appear as *leg terms* (`(cmp.0 a b)` is the min leg of a bit
//! comparator), so a rule can consume several ops at once and replace
//! them with fewer: the half-adder rule
//!
//! ```text
//! rule pair-and-xor: (and x y), (xor x y) =>
//!     (lut2.0 0001.0110 x y), (lut2.1 0001.0110 x y)
//! ```
//!
//! fuses an AND/XOR pair over the same operands into the two used legs
//! of one 4×4 switch programmed as a dual 2-input LUT (see
//! [`lut2_switch4`]). Rules are stored in a versioned, human-readable
//! ruleset file (`# absort-ruleset v1` header) parsed by
//! [`RuleSet::parse`]; parametric Switch4 rewrites that cannot be
//! written as fixed terms (the permutations are op *attributes*) are
//! named `builtin` lines toggled by the same file and implemented
//! directly by the pass. Synthesis (`absort-rules`) regenerates the
//! `synthesized` section of the committed file; `RuleSet::print` is the
//! exact inverse of the parser so goldens round-trip byte-identically.

use crate::component::{GateOp, Perm4};

/// Index of a [`PatNode`] inside its [`Pattern`] arena.
pub type PatRef = u32;

/// Sentinel truth table for an unspecified (filler) LUT leg.
pub const LUT_UNUSED: u8 = 0xFF;

/// One node of a pattern term. Leg variants carry the output leg index
/// they denote; `Lut2Leg` exists on right-hand sides only (the matcher
/// never matches it) and names one leg of a Switch4-as-dual-LUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatNode {
    /// A pattern variable (binds any value; nonlinear occurrences must
    /// bind the same value).
    Var(u8),
    /// A constant leg.
    Const(bool),
    /// `(not a)`.
    Not(PatRef),
    /// `(and a b)` and friends.
    Gate(GateOp, PatRef, PatRef),
    /// `(mux s a1 a0)` — `s ? a1 : a0`.
    Mux(PatRef, PatRef, PatRef),
    /// `(demux.L s x)` — leg `L` of a demux.
    DemuxLeg(u8, PatRef, PatRef),
    /// `(sw2.L s a b)` — leg `L` of a 2×2 switch.
    Switch2Leg(u8, PatRef, PatRef, PatRef),
    /// `(cmp.L a b)` — leg `L` (0 = min, 1 = max) of a bit comparator.
    BitCompareLeg(u8, PatRef, PatRef),
    /// `(lut2.L t0.t1[.t2[.t3]] x y)` — leg `L` of a 4×4 switch
    /// programmed as up to four 2-input LUTs over `(x, y)`. Each truth
    /// table is 4 bits, bit `2x + y`; unspecified legs are
    /// [`LUT_UNUSED`] and filled by [`lut2_switch4`].
    Lut2Leg(u8, [u8; 4], PatRef, PatRef),
}

impl PatNode {
    /// Operand children, in operand order.
    pub fn children(&self) -> Vec<PatRef> {
        match *self {
            PatNode::Var(_) | PatNode::Const(_) => vec![],
            PatNode::Not(a) => vec![a],
            PatNode::Gate(_, a, b)
            | PatNode::DemuxLeg(_, a, b)
            | PatNode::BitCompareLeg(_, a, b)
            | PatNode::Lut2Leg(_, _, a, b) => vec![a, b],
            PatNode::Mux(s, a1, a0) => vec![s, a1, a0],
            PatNode::Switch2Leg(_, s, a, b) => vec![s, a, b],
        }
    }
}

/// A hash-consed arena of pattern nodes plus the term roots (one per
/// rule leg, left- or right-hand side).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pattern {
    /// Node arena; children always precede parents.
    pub nodes: Vec<PatNode>,
    /// One root per rule leg.
    pub roots: Vec<PatRef>,
}

impl Pattern {
    /// Interns `node`, reusing an existing identical node (hash-consing
    /// keeps shared subterms — e.g. the two legs of a LUT pair — as one
    /// node, which the rewrite pass relies on to build one op).
    pub fn intern(&mut self, node: PatNode) -> PatRef {
        if let Some(i) = self.nodes.iter().position(|n| *n == node) {
            return i as PatRef;
        }
        self.nodes.push(node);
        (self.nodes.len() - 1) as PatRef
    }

    /// Number of distinct variables (max index + 1).
    pub fn n_vars(&self) -> u8 {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                PatNode::Var(i) => Some(i + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The set of variable indices reachable from `root`.
    pub fn vars_of(&self, root: PatRef, out: &mut Vec<u8>) {
        match self.nodes[root as usize] {
            PatNode::Var(i) => {
                if !out.contains(&i) {
                    out.push(i);
                }
            }
            _ => {
                for c in self.nodes[root as usize].children() {
                    self.vars_of(c, out);
                }
            }
        }
    }

    /// Number of *ops* a term tree would take to build (vars and consts
    /// are free; multi-leg nodes over the same op node are hash-consed
    /// so they count once). Used by synthesis to pick representatives
    /// and by profit estimates.
    pub fn op_count(&self) -> usize {
        let mut live = vec![false; self.nodes.len()];
        fn mark(p: &Pattern, r: PatRef, live: &mut [bool]) {
            if live[r as usize] {
                return;
            }
            live[r as usize] = true;
            for c in p.nodes[r as usize].children() {
                mark(p, c, live);
            }
        }
        for &r in &self.roots {
            mark(self, r, &mut live);
        }
        // Legs of one multi-output op share the op: count each
        // (kind-sans-leg, operands) once.
        let mut seen: Vec<PatNode> = Vec::new();
        let mut count = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let canon = match *n {
                PatNode::Var(_) | PatNode::Const(_) => continue,
                PatNode::DemuxLeg(_, s, x) => PatNode::DemuxLeg(0, s, x),
                PatNode::Switch2Leg(_, s, a, b) => PatNode::Switch2Leg(0, s, a, b),
                PatNode::BitCompareLeg(_, a, b) => PatNode::BitCompareLeg(0, a, b),
                PatNode::Lut2Leg(_, t, a, b) => PatNode::Lut2Leg(0, t, a, b),
                other => other,
            };
            if !seen.contains(&canon) {
                seen.push(canon);
                count += 1;
            }
        }
        count
    }
}

/// One rewrite rule: same-arity LHS and RHS leg lists over shared
/// variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Stable name (telemetry counter suffix, hit reporting).
    pub name: String,
    /// Left-hand side (matched against the IR).
    pub lhs: Pattern,
    /// Right-hand side (built into the IR on a match).
    pub rhs: Pattern,
}

/// A parsed ruleset: declarative rules plus named builtin toggles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuleSet {
    /// Declarative rules, in file (= application priority) order.
    pub rules: Vec<Rule>,
    /// Enabled builtin (programmatic) rules, by name.
    pub builtins: Vec<String>,
}

/// The ruleset file format version this crate reads and writes.
pub const RULESET_VERSION: u32 = 1;

impl RuleSet {
    /// Parses the ruleset text format. Errors carry a line number and
    /// reason.
    pub fn parse(text: &str) -> Result<RuleSet, String> {
        let mut saw_header = false;
        let mut set = RuleSet::default();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let at = |m: String| format!("line {}: {m}", ln + 1);
            if !saw_header {
                if line.is_empty() {
                    continue;
                }
                let Some(v) = line.strip_prefix("# absort-ruleset v") else {
                    return Err(at("missing `# absort-ruleset v1` header".into()));
                };
                if v.trim() != RULESET_VERSION.to_string() {
                    return Err(at(format!("unsupported ruleset version `{}`", v.trim())));
                }
                saw_header = true;
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix("builtin ") {
                let name = name.trim();
                if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
                    return Err(at(format!("bad builtin name `{name}`")));
                }
                set.builtins.push(name.to_owned());
                continue;
            }
            let Some(rest) = line.strip_prefix("rule ") else {
                return Err(at(format!(
                    "expected `rule`, `builtin`, or comment: `{line}`"
                )));
            };
            let Some((name, body)) = rest.split_once(':') else {
                return Err(at("missing `:` after rule name".into()));
            };
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
                return Err(at(format!("bad rule name `{name}`")));
            }
            if set.rules.iter().any(|r| r.name == name) {
                return Err(at(format!("duplicate rule name `{name}`")));
            }
            let Some((lhs_s, rhs_s)) = body.split_once("=>") else {
                return Err(at("missing `=>`".into()));
            };
            let mut vars: Vec<String> = Vec::new();
            let lhs = parse_side(lhs_s, &mut vars).map_err(|e| at(format!("lhs: {e}")))?;
            let rhs = parse_side(rhs_s, &mut vars).map_err(|e| at(format!("rhs: {e}")))?;
            let rule = Rule {
                name: name.to_owned(),
                lhs,
                rhs,
            };
            validate_rule(&rule).map_err(at)?;
            set.rules.push(rule);
        }
        if !saw_header {
            return Err("empty ruleset: missing `# absort-ruleset v1` header".into());
        }
        Ok(set)
    }

    /// Prints the ruleset in the exact format [`RuleSet::parse`] reads
    /// (the parser–printer pair round-trips byte-identically, which the
    /// golden test relies on).
    pub fn print(&self) -> String {
        let mut out = format!("# absort-ruleset v{RULESET_VERSION}\n");
        for b in &self.builtins {
            out.push_str(&format!("builtin {b}\n"));
        }
        for r in &self.rules {
            out.push_str(&format!(
                "rule {}: {} => {}\n",
                r.name,
                print_side(&r.lhs),
                print_side(&r.rhs)
            ));
        }
        out
    }
}

/// Validates the structural constraints the matcher and the rewrite
/// pass rely on; returns a reason on violation.
pub fn validate_rule(rule: &Rule) -> Result<(), String> {
    if rule.lhs.roots.is_empty() || rule.lhs.roots.len() != rule.rhs.roots.len() {
        return Err(format!(
            "rule `{}`: lhs and rhs must have the same nonzero arity",
            rule.name
        ));
    }
    // Root 0 anchors the scan, so it must be an op term; every variable
    // must appear in it so companion roots resolve as ground terms.
    let r0 = rule.lhs.roots[0];
    if matches!(
        rule.lhs.nodes[r0 as usize],
        PatNode::Var(_) | PatNode::Const(_)
    ) {
        return Err(format!(
            "rule `{}`: lhs root 0 must be an op term",
            rule.name
        ));
    }
    let mut root0_vars = Vec::new();
    rule.lhs.vars_of(r0, &mut root0_vars);
    let mut all_vars = Vec::new();
    for &r in &rule.lhs.roots {
        rule.lhs.vars_of(r, &mut all_vars);
    }
    for v in &all_vars {
        if !root0_vars.contains(v) {
            return Err(format!(
                "rule `{}`: every lhs variable must appear in root 0",
                rule.name
            ));
        }
    }
    let mut rhs_vars = Vec::new();
    for &r in &rule.rhs.roots {
        rule.rhs.vars_of(r, &mut rhs_vars);
    }
    for v in &rhs_vars {
        if !all_vars.contains(v) {
            return Err(format!(
                "rule `{}`: rhs uses a variable the lhs does not bind",
                rule.name
            ));
        }
    }
    for n in &rule.lhs.nodes {
        if matches!(n, PatNode::Lut2Leg(..)) {
            return Err(format!(
                "rule `{}`: lut2 legs are rhs-only (the matcher cannot match switch attributes)",
                rule.name
            ));
        }
    }
    // Every rhs LUT must be constructible (checked eagerly so bad rules
    // fail at load, not mid-compile).
    for n in &rule.rhs.nodes {
        if let PatNode::Lut2Leg(leg, tts, _, _) = *n {
            if leg > 3 || tts[leg as usize] == LUT_UNUSED {
                return Err(format!(
                    "rule `{}`: lut2 leg {leg} has no truth table",
                    rule.name
                ));
            }
            lut2_switch4(&tts).map_err(|e| format!("rule `{}`: {e}", rule.name))?;
        }
    }
    Ok(())
}

// --- term parsing -------------------------------------------------------

fn parse_side(s: &str, vars: &mut Vec<String>) -> Result<Pattern, String> {
    let mut pat = Pattern::default();
    for term in split_terms(s)? {
        let toks = tokenize(&term)?;
        let mut pos = 0usize;
        let root = parse_term(&toks, &mut pos, &mut pat, vars)?;
        if pos != toks.len() {
            return Err(format!("trailing tokens after term `{term}`"));
        }
        pat.roots.push(root);
    }
    if pat.roots.is_empty() {
        return Err("empty side".into());
    }
    Ok(pat)
}

/// Splits a side into top-level comma-separated terms (commas inside
/// parentheses don't occur in this grammar, but be safe).
fn split_terms(s: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced `)`".into());
                }
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    if depth != 0 {
        return Err("unbalanced `(`".into());
    }
    out.push(cur);
    Ok(out.into_iter().map(|t| t.trim().to_owned()).collect())
}

fn tokenize(s: &str) -> Result<Vec<String>, String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
                toks.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
            }
            c if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' => cur.push(c),
            c => return Err(format!("bad character `{c}`")),
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    Ok(toks)
}

fn parse_term(
    toks: &[String],
    pos: &mut usize,
    pat: &mut Pattern,
    vars: &mut Vec<String>,
) -> Result<PatRef, String> {
    let Some(tok) = toks.get(*pos) else {
        return Err("unexpected end of term".into());
    };
    *pos += 1;
    if tok != "(" {
        // Atom: a constant or a variable.
        return Ok(match tok.as_str() {
            ")" => return Err("unexpected `)`".into()),
            "0" => pat.intern(PatNode::Const(false)),
            "1" => pat.intern(PatNode::Const(true)),
            name => {
                if !name.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
                    return Err(format!("bad atom `{name}`"));
                }
                let idx = match vars.iter().position(|v| v == name) {
                    Some(i) => i,
                    None => {
                        vars.push(name.to_owned());
                        vars.len() - 1
                    }
                };
                let idx =
                    u8::try_from(idx).map_err(|_| "too many distinct variables".to_owned())?;
                pat.intern(PatNode::Var(idx))
            }
        });
    }
    let Some(head) = toks.get(*pos) else {
        return Err("missing op after `(`".into());
    };
    *pos += 1;
    let (op, leg) = match head.split_once('.') {
        Some((op, leg)) => {
            let leg: u8 = leg.parse().map_err(|_| format!("bad leg in `{head}`"))?;
            (op, Some(leg))
        }
        None => (head.as_str(), None),
    };
    let mut args = |n: usize, pos: &mut usize| -> Result<Vec<PatRef>, String> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(parse_term(toks, pos, pat, vars)?);
        }
        out.push(0); // placeholder removed below; keeps borrowck simple
        out.pop();
        Ok(out)
    };
    let gate = |g: GateOp| Some(g);
    let node = match (op, leg) {
        ("not", None) => {
            let a = args(1, pos)?;
            PatNode::Not(a[0])
        }
        ("and", None)
        | ("or", None)
        | ("xor", None)
        | ("nand", None)
        | ("nor", None)
        | ("xnor", None) => {
            let g = match op {
                "and" => gate(GateOp::And),
                "or" => gate(GateOp::Or),
                "xor" => gate(GateOp::Xor),
                "nand" => gate(GateOp::Nand),
                "nor" => gate(GateOp::Nor),
                _ => gate(GateOp::Xnor),
            }
            .unwrap();
            let a = args(2, pos)?;
            PatNode::Gate(g, a[0], a[1])
        }
        ("mux", None) => {
            let a = args(3, pos)?;
            PatNode::Mux(a[0], a[1], a[2])
        }
        ("demux", Some(l @ 0..=1)) => {
            let a = args(2, pos)?;
            PatNode::DemuxLeg(l, a[0], a[1])
        }
        ("sw2", Some(l @ 0..=1)) => {
            let a = args(3, pos)?;
            PatNode::Switch2Leg(l, a[0], a[1], a[2])
        }
        ("cmp", Some(l @ 0..=1)) => {
            let a = args(2, pos)?;
            PatNode::BitCompareLeg(l, a[0], a[1])
        }
        ("lut2", Some(l @ 0..=3)) => {
            let Some(tt_tok) = toks.get(*pos) else {
                return Err("lut2: missing truth tables".into());
            };
            *pos += 1;
            let mut tts = [LUT_UNUSED; 4];
            for (i, part) in tt_tok.split('.').enumerate() {
                if i >= 4 || part.len() != 4 || !part.chars().all(|c| c == '0' || c == '1') {
                    return Err(format!("lut2: bad truth tables `{tt_tok}`"));
                }
                let mut tt = 0u8;
                for (k, c) in part.chars().enumerate() {
                    if c == '1' {
                        tt |= 1 << k;
                    }
                }
                tts[i] = tt;
            }
            let a = args(2, pos)?;
            PatNode::Lut2Leg(l, tts, a[0], a[1])
        }
        _ => return Err(format!("unknown op `{head}`")),
    };
    match toks.get(*pos) {
        Some(t) if t == ")" => {
            *pos += 1;
        }
        _ => return Err(format!("missing `)` after `{head}`")),
    }
    Ok(pat.intern(node))
}

// --- term printing ------------------------------------------------------

/// Variable names used by the printer: `x y z w` then `v4 v5 …`.
pub fn var_name(i: u8) -> String {
    match i {
        0 => "x".into(),
        1 => "y".into(),
        2 => "z".into(),
        3 => "w".into(),
        n => format!("v{n}"),
    }
}

fn print_side(pat: &Pattern) -> String {
    pat.roots
        .iter()
        .map(|&r| print_term(pat, r))
        .collect::<Vec<_>>()
        .join(", ")
}

fn tt_str(tts: &[u8; 4]) -> String {
    let one = |tt: u8| -> String {
        (0..4)
            .map(|k| if tt >> k & 1 == 1 { '1' } else { '0' })
            .collect()
    };
    tts.iter()
        .take_while(|&&t| t != LUT_UNUSED)
        .map(|&t| one(t))
        .collect::<Vec<_>>()
        .join(".")
}

/// Prints one term in the parseable s-expression syntax.
pub fn print_term(pat: &Pattern, r: PatRef) -> String {
    let c = |r: PatRef| print_term(pat, r);
    match pat.nodes[r as usize] {
        PatNode::Var(i) => var_name(i),
        PatNode::Const(v) => if v { "1" } else { "0" }.into(),
        PatNode::Not(a) => format!("(not {})", c(a)),
        PatNode::Gate(g, a, b) => {
            let n = match g {
                GateOp::And => "and",
                GateOp::Or => "or",
                GateOp::Xor => "xor",
                GateOp::Nand => "nand",
                GateOp::Nor => "nor",
                GateOp::Xnor => "xnor",
            };
            format!("({n} {} {})", c(a), c(b))
        }
        PatNode::Mux(s, a1, a0) => format!("(mux {} {} {})", c(s), c(a1), c(a0)),
        PatNode::DemuxLeg(l, s, x) => format!("(demux.{l} {} {})", c(s), c(x)),
        PatNode::Switch2Leg(l, s, a, b) => {
            format!("(sw2.{l} {} {} {})", c(s), c(a), c(b))
        }
        PatNode::BitCompareLeg(l, a, b) => format!("(cmp.{l} {} {})", c(a), c(b)),
        PatNode::Lut2Leg(l, tts, a, b) => {
            format!("(lut2.{l} {} {} {})", tt_str(&tts), c(a), c(b))
        }
    }
}

// --- LUT → Switch4 construction -----------------------------------------

/// Programs a 4×4 switch as up to four independent 2-input LUTs over a
/// shared operand pair `(x, y)`: with data inputs
/// `ins = [false, true, false, true]` (the canonical constants,
/// duplicated so each leg can read a distinct input index) and selects
/// `s1 = x`, `s0 = y`, leg `j` computes `tts[j]` — bit `2x + y` — for
/// every select combination. Returns the four *genuine permutation*
/// rows, or an error when the requested tables need more than two
/// `true` (or `false`) sources at some select value (impossible for
/// ≤ 2 specified legs, i.e. for every pair rule). Filler legs
/// ([`LUT_UNUSED`]) are assigned whatever completes each permutation.
pub fn lut2_switch4(tts: &[u8; 4]) -> Result<[Perm4; 4], String> {
    let mut perms = [[0u8; 4]; 4];
    for combo in 0..4u8 {
        // Desired bit per leg at this select combination.
        let mut want = [false; 4];
        let mut n_true = 0usize;
        let mut fillers = Vec::new();
        for leg in 0..4 {
            if tts[leg] == LUT_UNUSED {
                fillers.push(leg);
            } else {
                want[leg] = tts[leg] >> combo & 1 == 1;
                n_true += usize::from(want[leg]);
            }
        }
        // ins = [F, T, F, T]: exactly two true sources, two false.
        if n_true > 2 || (4 - fillers.len() - n_true) > 2 {
            return Err(format!(
                "lut2 tables need >2 equal sources at select {combo}"
            ));
        }
        for leg in fillers {
            let fill_true = n_true < 2;
            want[leg] = fill_true;
            n_true += usize::from(fill_true);
        }
        // True sources are input indices {1, 3}; false are {0, 2}.
        let (mut next_t, mut next_f) = (1u8, 0u8);
        for leg in 0..4 {
            if want[leg] {
                perms[combo as usize][leg] = next_t;
                next_t += 2;
            } else {
                perms[combo as usize][leg] = next_f;
                next_f += 2;
            }
        }
    }
    Ok(perms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_print_roundtrip() {
        let text = "# absort-ruleset v1\n\
                    builtin sw4-const-select\n\
                    rule not-not: (not (not x)) => x\n\
                    rule pair-and-xor: (and x y), (xor x y) => \
                    (lut2.0 0001.0110 x y), (lut2.1 0001.0110 x y)\n\
                    rule mux-same: (mux s x x) => x\n";
        let set = RuleSet::parse(text).unwrap();
        assert_eq!(set.builtins, vec!["sw4-const-select".to_owned()]);
        assert_eq!(set.rules.len(), 3);
        // Print → parse is the identity on the parsed form.
        let printed = set.print();
        assert_eq!(RuleSet::parse(&printed).unwrap(), set);
        assert_eq!(RuleSet::parse(&set.print()).unwrap().print(), printed);
    }

    #[test]
    fn rejects_malformed() {
        assert!(RuleSet::parse("rule x: a => a").is_err()); // no header
        let hdr = "# absort-ruleset v1\n";
        for bad in [
            "rule r: x => x",                   // root 0 not an op
            "rule r: (not x) => (not y)",       // unbound rhs var
            "rule r: (and x y) => x, y",        // arity mismatch
            "rule r: (not x), (not y) => x, y", // var y missing from root 0
            "rule r: (lut2.0 0110 x y) => x",   // lut on lhs
            "rule r: (warp x) => x",            // unknown op
            "rule r: (not x => x",              // unbalanced
            "rule r (not x) => x",              // missing colon
        ] {
            assert!(
                RuleSet::parse(&format!("{hdr}{bad}\n")).is_err(),
                "should reject: {bad}"
            );
        }
        // Duplicate names rejected.
        assert!(RuleSet::parse(&format!(
            "{hdr}rule r: (not x) => x\nrule r: (not (not x)) => x\n"
        ))
        .is_err());
    }

    #[test]
    fn lut2_rows_are_permutations() {
        for t0 in 0..16u8 {
            for t1 in 0..16u8 {
                let perms = lut2_switch4(&[t0, t1, LUT_UNUSED, LUT_UNUSED]).unwrap();
                for row in perms {
                    let mut seen = [false; 4];
                    for j in row {
                        assert!(!seen[j as usize], "row {row:?} is not a permutation");
                        seen[j as usize] = true;
                    }
                }
                // Check the computed function: ins = [F,T,F,T].
                let ins = [false, true, false, true];
                for combo in 0..4u8 {
                    for (leg, tt) in [(0usize, t0), (1, t1)] {
                        let got = ins[perms[combo as usize][leg] as usize];
                        assert_eq!(got, tt >> combo & 1 == 1, "t0={t0} t1={t1} combo={combo}");
                    }
                }
            }
        }
    }

    #[test]
    fn op_count_shares_legs() {
        let text = "# absort-ruleset v1\n\
                    rule p: (and x y), (xor x y) => \
                    (lut2.0 0001.0110 x y), (lut2.1 0001.0110 x y)\n";
        let set = RuleSet::parse(text).unwrap();
        assert_eq!(set.rules[0].lhs.op_count(), 2);
        assert_eq!(set.rules[0].rhs.op_count(), 1);
    }
}
