//! Evaluation engines: scalar, 64-lane bit-parallel, and multi-threaded
//! batch evaluation.
//!
//! Evaluation is a single forward scan over the topologically ordered
//! component list. The [`Evaluator`] owns a reusable wire buffer so hot
//! loops (exhaustive verification, benchmarks) do one allocation total.
//! The batch evaluator shards packed 64-lane passes across scoped
//! crossbeam threads; each thread owns a private buffer, so there is no
//! shared mutable state and no locking.

use crate::circuit::Circuit;
use crate::component::{Component, Placed};
use crate::lane::Lane;

/// A checked-evaluation failure. The unchecked entry points
/// ([`Evaluator::run`], [`Circuit::eval`]) keep their `assert!`s for the
/// hot paths; the `try_*` variants return this instead so sweep drivers
/// (fault campaigns, netlist loaders) can reject bad calls without
/// panicking a worker thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The input slice does not match the circuit's input arity.
    InputLen {
        /// `Circuit::n_inputs()`.
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// The caller-provided output slice does not match the output arity.
    OutputLen {
        /// `Circuit::n_outputs()`.
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// One vector of a batch has the wrong width.
    VectorLen {
        /// Index of the offending vector in the batch.
        vector: usize,
        /// `Circuit::n_inputs()`.
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// More vectors than lanes were passed to a single packed pass.
    TooManyVectors {
        /// Maximum vectors per pass (64 for `u64` lanes).
        max: usize,
        /// Number supplied.
        got: usize,
    },
    /// A batch-evaluation worker panicked on its stride of 64-vector
    /// groups, and the one retry on a fresh worker panicked again (a
    /// malformed netlist, typically — run [`Circuit::validate`] to find
    /// out what is wrong with it).
    WorkerPanicked {
        /// Index of the poisoned worker stride (groups `chunk`,
        /// `chunk + threads`, `chunk + 2·threads`, …).
        chunk: usize,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::InputLen { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            EvalError::OutputLen { expected, got } => {
                write!(f, "output slice has wrong length: expected {expected}, got {got}")
            }
            EvalError::VectorLen {
                vector,
                expected,
                got,
            } => write!(
                f,
                "vector {vector} has wrong width: expected {expected}, got {got}"
            ),
            EvalError::TooManyVectors { max, got } => {
                write!(f, "at most {max} vectors per packed pass, got {got}")
            }
            EvalError::WorkerPanicked { chunk } => write!(
                f,
                "evaluation worker panicked on chunk {chunk} (retry on a fresh worker also panicked); \
                 run Circuit::validate() on the netlist"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// A reusable evaluation context for one circuit and one lane type.
///
/// ```
/// use absort_circuit::{Builder, Evaluator};
///
/// let mut b = Builder::new();
/// let x = b.input();
/// let y = b.input();
/// let o = b.and(x, y);
/// b.outputs(&[o]);
/// let c = b.finish();
///
/// let mut ev: Evaluator<'_, bool> = Evaluator::new(&c);
/// assert_eq!(ev.run(&[true, true]), vec![true]);
/// assert_eq!(ev.run(&[true, false]), vec![false]);
/// ```
pub struct Evaluator<'c, V: Lane> {
    circuit: &'c Circuit,
    wires: Vec<V>,
    /// Per-evaluator counter batch, merged into the global registry once
    /// when the evaluator drops, so worker threads of the batch engine
    /// never contend on a lock mid-sweep. Inert unless telemetry was
    /// enabled when the evaluator was created.
    #[cfg(feature = "telemetry")]
    tel: absort_telemetry::LocalRecorder,
    /// Pass count for this evaluator's lifetime. A plain increment per
    /// `run_into` keeps the hot loop free of calls; component and lane
    /// totals are derived from it on drop (the circuit is fixed per
    /// evaluator, so per-pass counts are constants).
    #[cfg(feature = "telemetry")]
    tel_passes: u64,
}

#[cfg(feature = "telemetry")]
impl<V: Lane> Drop for Evaluator<'_, V> {
    fn drop(&mut self) {
        if self.tel_passes != 0 {
            let comps = self.circuit.components().len() as u64;
            self.tel.add("eval.passes", self.tel_passes);
            self.tel.add("eval.components", self.tel_passes * comps);
            self.tel
                .add("eval.lanes", self.tel_passes * u64::from(V::LANES));
        }
        // `self.tel`'s own Drop then flushes the batch to the registry.
    }
}

impl<'c, V: Lane> Evaluator<'c, V> {
    /// Creates an evaluator with a zeroed wire buffer.
    pub fn new(circuit: &'c Circuit) -> Self {
        Evaluator {
            circuit,
            wires: vec![V::ZERO; circuit.n_wires()],
            #[cfg(feature = "telemetry")]
            tel: absort_telemetry::LocalRecorder::new(),
            #[cfg(feature = "telemetry")]
            tel_passes: 0,
        }
    }

    /// Evaluates on the given primary-input values and returns the outputs.
    pub fn run(&mut self, inputs: &[V]) -> Vec<V> {
        let mut out = vec![V::ZERO; self.circuit.n_outputs()];
        self.run_into(inputs, &mut out);
        out
    }

    /// Checked [`Evaluator::run`]: rejects a wrong-arity input slice with
    /// a typed error instead of panicking.
    pub fn try_run(&mut self, inputs: &[V]) -> Result<Vec<V>, EvalError> {
        let mut out = vec![V::ZERO; self.circuit.n_outputs()];
        self.try_run_into(inputs, &mut out)?;
        Ok(out)
    }

    /// Checked [`Evaluator::run_into`]: validates both slice lengths up
    /// front, then takes the same unchecked fast path.
    pub fn try_run_into(&mut self, inputs: &[V], out: &mut [V]) -> Result<(), EvalError> {
        if inputs.len() != self.circuit.n_inputs() {
            return Err(EvalError::InputLen {
                expected: self.circuit.n_inputs(),
                got: inputs.len(),
            });
        }
        if out.len() != self.circuit.n_outputs() {
            return Err(EvalError::OutputLen {
                expected: self.circuit.n_outputs(),
                got: out.len(),
            });
        }
        self.run_into(inputs, out);
        Ok(())
    }

    /// Evaluates into a caller-provided output slice (no allocation).
    pub fn run_into(&mut self, inputs: &[V], out: &mut [V]) {
        let c = self.circuit;
        assert_eq!(
            inputs.len(),
            c.n_inputs(),
            "expected {} inputs, got {}",
            c.n_inputs(),
            inputs.len()
        );
        assert_eq!(out.len(), c.n_outputs(), "output slice has wrong length");

        // One bool test when telemetry is off; when on, the pass is
        // timed and folded into the per-vector latency histogram below.
        #[cfg(feature = "telemetry")]
        let t0 = self.tel.is_active().then(std::time::Instant::now);

        let w = &mut self.wires;
        for (wire, &v) in c.input_wires().iter().zip(inputs) {
            w[wire.index()] = v;
        }
        for &(wire, v) in c.const_wires() {
            w[wire.index()] = V::splat(v);
        }

        for p in c.components() {
            let base = p.out_base as usize;
            match p.comp {
                Component::Not { a } => {
                    w[base] = w[a.index()].not();
                }
                Component::Gate { op, a, b } => {
                    let (x, y) = (w[a.index()], w[b.index()]);
                    use crate::component::GateOp::*;
                    w[base] = match op {
                        And => x.and(y),
                        Or => x.or(y),
                        Xor => x.xor(y),
                        Nand => x.and(y).not(),
                        Nor => x.or(y).not(),
                        Xnor => x.xor(y).not(),
                    };
                }
                Component::Mux2 { sel, a0, a1 } => {
                    w[base] = V::select(w[sel.index()], w[a1.index()], w[a0.index()]);
                }
                Component::Demux2 { sel, x } => {
                    let (s, xv) = (w[sel.index()], w[x.index()]);
                    w[base] = s.not().and(xv);
                    w[base + 1] = s.and(xv);
                }
                Component::Switch2 { ctrl, a, b } => {
                    let (s, av, bv) = (w[ctrl.index()], w[a.index()], w[b.index()]);
                    w[base] = V::select(s, bv, av);
                    w[base + 1] = V::select(s, av, bv);
                }
                Component::BitCompare { a, b } => {
                    let (av, bv) = (w[a.index()], w[b.index()]);
                    w[base] = av.and(bv); // min
                    w[base + 1] = av.or(bv); // max
                }
                Component::Switch4 { s1, s0, ins, perms } => {
                    let (v1, v0) = (w[s1.index()], w[s0.index()]);
                    let m = [
                        v1.not().and(v0.not()),
                        v1.not().and(v0),
                        v1.and(v0.not()),
                        v1.and(v0),
                    ];
                    let iv = [
                        w[ins[0].index()],
                        w[ins[1].index()],
                        w[ins[2].index()],
                        w[ins[3].index()],
                    ];
                    for j in 0..4 {
                        let mut acc = V::ZERO;
                        for (s, mask) in m.iter().enumerate() {
                            acc = acc.or(mask.and(iv[perms[s][j] as usize]));
                        }
                        w[base + j] = acc;
                    }
                }
            }
        }

        for (o, wire) in out.iter_mut().zip(c.output_wires()) {
            *o = w[wire.index()];
        }

        // One register add per pass; totals are folded into the recorder
        // when the evaluator drops. The histogram sample is the pass
        // wall-clock divided by lane width: per-*vector* latency, so
        // scalar and packed runs land on one comparable scale.
        #[cfg(feature = "telemetry")]
        {
            self.tel_passes += 1;
            if let Some(t0) = t0 {
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.tel
                    .record_ns("eval.interp.vector_ns", ns / u64::from(V::LANES));
            }
        }
    }
}

/// Evaluates one placed component against a full wire buffer. Shared by
/// the pipelined simulator and the fault-injecting evaluator; the batch
/// hot loop in [`Evaluator::run_into`] keeps its own inlined copy.
pub(crate) fn eval_component<V: Lane>(p: &Placed, w: &mut [V]) {
    let base = p.out_base as usize;
    match p.comp {
        Component::Not { a } => w[base] = w[a.index()].not(),
        Component::Gate { op, a, b } => {
            use crate::component::GateOp::*;
            let (x, y) = (w[a.index()], w[b.index()]);
            w[base] = match op {
                And => x.and(y),
                Or => x.or(y),
                Xor => x.xor(y),
                Nand => x.and(y).not(),
                Nor => x.or(y).not(),
                Xnor => x.xor(y).not(),
            };
        }
        Component::Mux2 { sel, a0, a1 } => {
            w[base] = V::select(w[sel.index()], w[a1.index()], w[a0.index()]);
        }
        Component::Demux2 { sel, x } => {
            let (s, xv) = (w[sel.index()], w[x.index()]);
            w[base] = s.not().and(xv);
            w[base + 1] = s.and(xv);
        }
        Component::Switch2 { ctrl, a, b } => {
            let (s, av, bv) = (w[ctrl.index()], w[a.index()], w[b.index()]);
            w[base] = V::select(s, bv, av);
            w[base + 1] = V::select(s, av, bv);
        }
        Component::BitCompare { a, b } => {
            let (av, bv) = (w[a.index()], w[b.index()]);
            w[base] = av.and(bv);
            w[base + 1] = av.or(bv);
        }
        Component::Switch4 { s1, s0, ins, perms } => {
            let (v1, v0) = (w[s1.index()], w[s0.index()]);
            let m = [
                v1.not().and(v0.not()),
                v1.not().and(v0),
                v1.and(v0.not()),
                v1.and(v0),
            ];
            let iv = [
                w[ins[0].index()],
                w[ins[1].index()],
                w[ins[2].index()],
                w[ins[3].index()],
            ];
            for j in 0..4 {
                let mut acc = V::ZERO;
                for (s, mask) in m.iter().enumerate() {
                    acc = acc.or(mask.and(iv[perms[s][j] as usize]));
                }
                w[base + j] = acc;
            }
        }
    }
}

/// Packs up to 64 boolean input vectors (all of length `n_inputs`) into
/// 64-lane words: result `[i]` holds input `i` across vectors, vector `v`
/// in bit `v`.
pub fn pack_lanes(vectors: &[Vec<bool>], n_inputs: usize) -> Vec<u64> {
    assert!(vectors.len() <= 64, "at most 64 vectors per packed pass");
    let mut packed = vec![0u64; n_inputs];
    for (v, vec) in vectors.iter().enumerate() {
        assert_eq!(vec.len(), n_inputs, "vector {v} has wrong length");
        for (i, &bit) in vec.iter().enumerate() {
            if bit {
                packed[i] |= 1 << v;
            }
        }
    }
    packed
}

/// Checked [`pack_lanes`]: rejects over-long batches and ragged vectors
/// with a typed error.
pub fn try_pack_lanes(vectors: &[Vec<bool>], n_inputs: usize) -> Result<Vec<u64>, EvalError> {
    if vectors.len() > 64 {
        return Err(EvalError::TooManyVectors {
            max: 64,
            got: vectors.len(),
        });
    }
    for (v, vec) in vectors.iter().enumerate() {
        if vec.len() != n_inputs {
            return Err(EvalError::VectorLen {
                vector: v,
                expected: n_inputs,
                got: vec.len(),
            });
        }
    }
    Ok(pack_lanes(vectors, n_inputs))
}

/// Unpacks 64-lane output words back into `count` boolean vectors.
pub fn unpack_lanes(packed: &[u64], count: usize) -> Vec<Vec<bool>> {
    assert!(count <= 64);
    (0..count)
        .map(|v| packed.iter().map(|&word| word >> v & 1 == 1).collect())
        .collect()
}

/// Packs up to `64 * N` boolean input vectors into wide lanes: vector
/// `v` lands in word `v / 64`, bit `v % 64` of `result[i]`.
pub fn pack_lanes_wide<const N: usize>(vectors: &[Vec<bool>], n_inputs: usize) -> Vec<[u64; N]> {
    assert!(
        vectors.len() <= 64 * N,
        "at most {} vectors per wide pass",
        64 * N
    );
    let mut packed = vec![[0u64; N]; n_inputs];
    for (v, vec) in vectors.iter().enumerate() {
        assert_eq!(vec.len(), n_inputs, "vector {v} has wrong length");
        let (word, bit) = (v / 64, v % 64);
        for (i, &b) in vec.iter().enumerate() {
            if b {
                packed[i][word] |= 1 << bit;
            }
        }
    }
    packed
}

/// Unpacks wide-lane output words back into `count` boolean vectors.
pub fn unpack_lanes_wide<const N: usize>(packed: &[[u64; N]], count: usize) -> Vec<Vec<bool>> {
    assert!(count <= 64 * N);
    (0..count)
        .map(|v| {
            let (word, bit) = (v / 64, v % 64);
            packed.iter().map(|w| w[word] >> bit & 1 == 1).collect()
        })
        .collect()
}

/// Multi-threaded batch evaluation: packs vectors into 64-lane groups and
/// shards groups across `threads` scoped threads. Panics only if a stride
/// fails twice (see [`try_eval_batch_parallel`]).
pub(crate) fn eval_batch_parallel(
    circuit: &Circuit,
    vectors: &[Vec<bool>],
    threads: usize,
) -> Vec<Vec<bool>> {
    match try_eval_batch_parallel(circuit, vectors, threads) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Multi-threaded batch evaluation with worker-panic isolation: a panic
/// inside one worker (a malformed netlist hitting an index, typically)
/// poisons only that worker's stride of groups. The stride is retried
/// once on a fresh worker; if it panics again, the *whole call* returns
/// [`EvalError::WorkerPanicked`] for that stride instead of propagating
/// the panic into the caller's sweep. Vector widths are validated up
/// front.
pub(crate) fn try_eval_batch_parallel(
    circuit: &Circuit,
    vectors: &[Vec<bool>],
    threads: usize,
) -> Result<Vec<Vec<bool>>, EvalError> {
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span("eval/batch");
    let n_inputs = circuit.n_inputs();
    try_batch_parallel_with(n_inputs, vectors, 64, threads, &|| {
        let mut ev: Evaluator<'_, u64> = Evaluator::new(circuit);
        let mut out = vec![0u64; circuit.n_outputs()];
        move |g: &[Vec<bool>]| {
            let packed = pack_lanes(g, n_inputs);
            ev.run_into(&packed, &mut out);
            unpack_lanes(&out, g.len())
        }
    })
}

/// Writes one worker's stride of group results back into the shared
/// result table: worker `t` owns groups `t`, `t + step`, `t + 2·step`, …
fn scatter_stride(
    results: &mut [Vec<Vec<bool>>],
    t: usize,
    step: usize,
    stride: Vec<Vec<Vec<bool>>>,
) {
    for (j, r) in stride.into_iter().enumerate() {
        results[t + j * step] = r;
    }
}

/// Engine-agnostic batch machinery shared by the interpreter and the
/// compiled tape ([`crate::CompiledCircuit::try_eval_batch_parallel`]).
///
/// `make_runner` builds one evaluation pass per worker thread (each
/// worker owns a private evaluator and buffers — no shared mutable
/// state); the runner maps one group of up to `group_size` vectors to
/// their outputs, packing however its engine prefers (the interpreter
/// packs 64-lane `u64` groups, the compiled tape walks `group_size =
/// 256` with `[u64; 4]` wide lanes). Groups are dealt to workers in
/// **interleaved strides** (worker `t` takes groups `t`, `t + threads`,
/// …) rather than contiguous chunks: with `groups % threads ≠ 0`
/// contiguous `div_ceil` chunking leaves the last worker a short
/// (possibly empty) tail while earlier workers carry a full extra chunk;
/// striding bounds the imbalance at one group regardless of batch size.
/// Worker panics stay isolated per stride with one retry, exactly as
/// documented on [`Circuit::try_eval_batch_parallel`].
pub(crate) fn try_batch_parallel_with<F, G>(
    n_inputs: usize,
    vectors: &[Vec<bool>],
    group_size: usize,
    threads: usize,
    make_runner: &F,
) -> Result<Vec<Vec<bool>>, EvalError>
where
    F: Fn() -> G + Sync,
    G: FnMut(&[Vec<bool>]) -> Vec<Vec<bool>>,
{
    for (v, vec) in vectors.iter().enumerate() {
        if vec.len() != n_inputs {
            return Err(EvalError::VectorLen {
                vector: v,
                expected: n_inputs,
                got: vec.len(),
            });
        }
    }
    let threads = threads.max(1);
    let groups: Vec<&[Vec<bool>]> = vectors.chunks(group_size).collect();
    let mut results: Vec<Vec<Vec<bool>>> = vec![Vec::new(); groups.len()];

    // One worker's share: every `threads`-th group starting at `t`,
    // evaluated in stride order on a private runner and returned (the
    // main thread scatters — workers never touch shared output).
    let run_stride = |t: usize| -> Vec<Vec<Vec<bool>>> {
        let mut run = make_runner();
        groups
            .iter()
            .skip(t)
            .step_by(threads)
            .map(|g| run(g))
            .collect()
    };

    if threads == 1 || groups.len() <= 1 {
        // Single-threaded path: runs on the caller's own thread, nothing
        // to isolate.
        let stride = run_stride(0);
        scatter_stride(&mut results, 0, threads, stride);
    } else {
        // Every handle is joined explicitly, so a worker panic surfaces
        // as that handle's Err — not as a scope-wide abort.
        let n_workers = threads.min(groups.len());
        let mut outcomes: Vec<Option<Vec<Vec<Vec<bool>>>>> = Vec::with_capacity(n_workers);
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..n_workers)
                .map(|t| s.spawn(move |_| run_stride(t)))
                .collect();
            for h in handles {
                outcomes.push(h.join().ok());
            }
        })
        // All handles are joined above, so the scope itself cannot
        // observe an unjoined panic; this expect is unreachable.
        .expect("all evaluation workers joined");

        let mut poisoned: Vec<usize> = Vec::new();
        for (t, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Some(stride) => scatter_stride(&mut results, t, threads, stride),
                None => poisoned.push(t),
            }
        }

        // Retry each poisoned stride once, on a fresh worker of its own
        // so a second panic is also contained.
        #[cfg(feature = "telemetry")]
        if !poisoned.is_empty() {
            absort_telemetry::counter_add("eval.chunk_retries", poisoned.len() as u64);
        }
        for t in poisoned {
            let retried = crossbeam::thread::scope(|s| s.spawn(|_| run_stride(t)).join())
                .expect("retry worker joined");
            match retried {
                Ok(stride) => scatter_stride(&mut results, t, threads, stride),
                Err(_) => return Err(EvalError::WorkerPanicked { chunk: t }),
            }
        }
    }

    Ok(results.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn majority_circuit() -> Circuit {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let z = b.input();
        let xy = b.and(x, y);
        let yz = b.and(y, z);
        let xz = b.and(x, z);
        let t = b.or(xy, yz);
        let o = b.or(t, xz);
        b.outputs(&[o]);
        b.finish()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let vectors: Vec<Vec<bool>> = (0..8u8)
            .map(|v| (0..3).map(|i| v >> i & 1 == 1).collect())
            .collect();
        let packed = pack_lanes(&vectors, 3);
        let back = unpack_lanes(&packed, vectors.len());
        assert_eq!(back, vectors);
    }

    #[test]
    fn batch_parallel_matches_scalar() {
        let c = majority_circuit();
        let vectors: Vec<Vec<bool>> = (0..8u8)
            .map(|v| (0..3).map(|i| v >> i & 1 == 1).collect())
            .collect();
        // Repeat to force multiple 64-lane groups.
        let many: Vec<Vec<bool>> = vectors.iter().cycle().take(300).cloned().collect();
        for threads in [1, 2, 4] {
            let got = c.eval_batch_parallel(&many, threads);
            for (v, g) in many.iter().zip(&got) {
                assert_eq!(g, &c.eval(v), "threads={threads}");
            }
        }
    }

    #[test]
    fn run_into_avoids_length_bugs() {
        let c = majority_circuit();
        let mut ev: Evaluator<'_, bool> = Evaluator::new(&c);
        let mut out = vec![false; 1];
        ev.run_into(&[true, true, false], &mut out);
        assert!(out[0]);
        ev.run_into(&[false, false, true], &mut out);
        assert!(!out[0]);
    }

    #[test]
    #[should_panic(expected = "expected 3 inputs")]
    fn wrong_input_len_panics() {
        let c = majority_circuit();
        let _ = c.eval(&[true]);
    }
}
