//! Structural statistics and hierarchical cost reports.
//!
//! Beyond the single cost/depth numbers, the experiment write-ups need to
//! see *where* a construction spends its hardware — e.g. that the prefix
//! sorter's patch-up levels cost `3m/2` each while the adder tree stays
//! `Θ(n)` overall. [`Circuit::stats`] computes per-level component
//! histograms, and [`Circuit::scope_report`] renders the scope tree with
//! aggregated costs, indented like a profiler output.

use crate::circuit::Circuit;
use crate::cost::CostReport;
use crate::scope::ScopeId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-circuit structural statistics.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Number of components at each depth level (level = the depth of the
    /// component's outputs; index 0 unused since primitives have depth ≥ 1).
    pub components_per_level: Vec<u32>,
    /// The circuit's depth.
    pub depth: usize,
    /// Total cost report.
    pub cost: CostReport,
    /// Average fanout of wires that feed at least one component.
    pub mean_fanout: f64,
    /// Maximum fanout over all wires.
    pub max_fanout: u32,
}

impl Circuit {
    /// Computes structural statistics in one pass.
    pub fn stats(&self) -> Stats {
        let mut depth = vec![0u32; self.n_wires()];
        let mut per_level: Vec<u32> = Vec::new();
        let mut fanout = vec![0u32; self.n_wires()];
        for p in self.components() {
            let mut m = 0u32;
            p.comp.for_each_input(|w| {
                m = m.max(depth[w.index()]);
                fanout[w.index()] += 1;
            });
            let level = (m + 1) as usize;
            if per_level.len() <= level {
                per_level.resize(level + 1, 0);
            }
            per_level[level] += 1;
            for k in 0..p.comp.n_outputs() {
                depth[p.out_base as usize + k] = level as u32;
            }
        }
        let used: Vec<u32> = fanout.iter().copied().filter(|&f| f > 0).collect();
        let mean_fanout = if used.is_empty() {
            0.0
        } else {
            used.iter().map(|&f| f as f64).sum::<f64>() / used.len() as f64
        };
        Stats {
            depth: self.depth(),
            cost: self.cost(),
            components_per_level: per_level,
            mean_fanout,
            max_fanout: fanout.iter().copied().max().unwrap_or(0),
        }
    }

    /// Renders the scope tree with aggregated cost per subtree, indented
    /// by hierarchy — a hardware profiler view of the construction.
    ///
    /// `max_depth` limits the hierarchy depth shown (0 = only the root
    /// line).
    pub fn scope_report(&self, max_depth: usize) -> String {
        // Aggregate direct cost per scope.
        let mut direct: BTreeMap<ScopeId, u64> = BTreeMap::new();
        for p in self.components() {
            *direct.entry(p.scope).or_default() += p.comp.cost();
        }
        // Children lists by walking all scopes seen (plus ancestors).
        let scopes = self.scopes();
        let mut all: Vec<ScopeId> = direct.keys().copied().collect();
        let mut i = 0;
        while i < all.len() {
            let parent = scopes.parent(all[i]);
            if !all.contains(&parent) {
                all.push(parent);
            }
            i += 1;
        }
        all.sort();
        all.dedup();
        // subtree cost = direct + descendants
        let mut subtree: BTreeMap<ScopeId, u64> = BTreeMap::new();
        for &s in &all {
            let mut total = 0;
            for (&t, &c) in &direct {
                if scopes.is_within(t, s) {
                    total += c;
                }
            }
            subtree.insert(s, total);
        }
        let mut out = String::new();
        let total = subtree.get(&ScopeId::ROOT).copied().unwrap_or(0);
        let _ = writeln!(out, "total cost {total}");
        let mut children: BTreeMap<ScopeId, Vec<ScopeId>> = BTreeMap::new();
        for &s in &all {
            if s != ScopeId::ROOT {
                children.entry(scopes.parent(s)).or_default().push(s);
            }
        }
        fn walk(
            out: &mut String,
            scopes: &crate::scope::ScopeTree,
            children: &BTreeMap<ScopeId, Vec<ScopeId>>,
            subtree: &BTreeMap<ScopeId, u64>,
            node: ScopeId,
            indent: usize,
            remaining: usize,
        ) {
            if remaining == 0 {
                return;
            }
            if let Some(kids) = children.get(&node) {
                for &k in kids {
                    let path = scopes.path(k);
                    let name = path.rsplit('/').next().unwrap_or(&path);
                    let _ = writeln!(
                        out,
                        "{:indent$}{name}: {}",
                        "",
                        subtree[&k],
                        indent = indent * 2
                    );
                    walk(out, scopes, children, subtree, k, indent + 1, remaining - 1);
                }
            }
        }
        walk(
            &mut out,
            scopes,
            &children,
            &subtree,
            ScopeId::ROOT,
            1,
            max_depth,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::Builder;

    #[test]
    fn level_histogram_counts_all_components() {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let a = b.and(x, y); // level 1
        let o = b.or(a, y); // level 2
        let _ = b.xor(x, y); // level 1
        b.outputs(&[o]);
        let c = b.finish();
        let s = c.stats();
        assert_eq!(s.components_per_level[1], 2);
        assert_eq!(s.components_per_level[2], 1);
        assert_eq!(s.depth, 2);
        assert_eq!(s.cost.total, 3);
        // x feeds and+xor (2), y feeds and+or+xor (3), a feeds or (1)
        assert_eq!(s.max_fanout, 3);
        assert!((s.mean_fanout - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stats_on_wire_only_circuit() {
        // A circuit can legally contain zero components (inputs routed
        // straight to outputs); every statistic must degrade to zero
        // instead of dividing by the empty fanout set.
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        b.outputs(&[y, x]);
        let c = b.finish();
        let s = c.stats();
        assert_eq!(s.depth, 0);
        assert_eq!(s.cost.total, 0);
        assert!(s.components_per_level.iter().all(|&n| n == 0));
        assert_eq!(s.mean_fanout, 0.0);
        assert_eq!(s.max_fanout, 0);
    }

    #[test]
    fn level_histogram_spans_full_depth() {
        // A 4-deep NOT chain plus one parallel gate: the histogram must
        // have exactly one component on each level 1..=4, sum to the
        // component count, and agree with `depth`.
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let mut t = x;
        for _ in 0..4 {
            t = b.not(t);
        }
        let side = b.and(x, y); // level 1
        b.outputs(&[t, side]);
        let c = b.finish();
        let s = c.stats();
        assert_eq!(s.depth, 4);
        assert_eq!(s.components_per_level[1], 2);
        assert_eq!(&s.components_per_level[2..=4], &[1, 1, 1]);
        let total: u32 = s.components_per_level.iter().sum();
        assert_eq!(total as usize, c.n_components());
    }

    #[test]
    fn multi_output_components_count_once_per_level() {
        // Demux2 has two outputs at the same level; the histogram counts
        // the component (not its wires), and both outputs carry depth 1
        // for consumers.
        let mut b = Builder::new();
        let sel = b.input();
        let x = b.input();
        let (o0, o1) = b.demux2(sel, x);
        let j = b.or(o0, o1); // level 2
        b.outputs(&[j]);
        let c = b.finish();
        let s = c.stats();
        assert_eq!(s.components_per_level[1], 1);
        assert_eq!(s.components_per_level[2], 1);
        assert_eq!(s.depth, 2);
        // sel and x feed the demux (1 each), o0/o1 feed the OR (1 each).
        assert_eq!(s.max_fanout, 1);
        assert!((s.mean_fanout - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scope_report_aggregates_subtrees() {
        let mut b = Builder::new();
        let x = b.input();
        let y = b.input();
        let o = b.scoped("outer", |b| {
            let t = b.and(x, y);
            b.scoped("inner", |b| b.or(t, y))
        });
        b.outputs(&[o]);
        let c = b.finish();
        let r = c.scope_report(3);
        assert!(r.contains("total cost 2"), "{r}");
        assert!(r.contains("outer: 2"), "{r}");
        assert!(r.contains("inner: 1"), "{r}");
        // depth limit hides inner
        let r1 = c.scope_report(1);
        assert!(r1.contains("outer: 2"));
        assert!(!r1.contains("inner"));
    }

    #[test]
    fn prefix_sorter_scope_profile_shape() {
        // The real use: the prefix sorter's patch-up subtree must carry
        // most of the hardware and the adder subtree Θ(n).
        // (Uses a hand-rolled mini-version to keep absort-circuit
        // dependency-free: scopes named the same way.)
        let mut b = Builder::new();
        let ins = b.input_bus(8);
        let s = b.scoped("sorter", |b| {
            let a = b.scoped("adder", |b| {
                let t = b.xor(ins[0], ins[1]);
                b.and(t, ins[2])
            });
            b.scoped("patchup", |b| {
                let mut acc = a;
                for &i in &ins[3..] {
                    acc = b.or(acc, i);
                }
                acc
            })
        });
        b.outputs(&[s]);
        let c = b.finish();
        let r = c.scope_report(2);
        assert!(r.contains("sorter: 7"), "{r}");
        assert!(r.contains("adder: 2"), "{r}");
        assert!(r.contains("patchup: 5"), "{r}");
    }
}
