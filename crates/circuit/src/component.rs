//! Circuit primitives and their cost/semantics.
//!
//! These are exactly the primitives the paper's Model A admits (Section II):
//! constant-fanin logic gates, 2×2 switches, 2×1 multiplexers, 1×2
//! demultiplexers, bit comparators, and 4×4 switches (normalised to four
//! 2×2 switches). Each primitive has **unit depth**; costs are given by
//! [`Component::cost`] in the paper's units.

use crate::scope::ScopeId;
use crate::wire::Wire;

/// A two-input logic-gate operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Logical XOR.
    Xor,
    /// Logical NAND.
    Nand,
    /// Logical NOR.
    Nor,
    /// Logical XNOR (equivalence).
    Xnor,
}

impl GateOp {
    /// Applies the gate to two booleans (used by tests and the scalar path).
    #[inline]
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            GateOp::And => a & b,
            GateOp::Or => a | b,
            GateOp::Xor => a ^ b,
            GateOp::Nand => !(a & b),
            GateOp::Nor => !(a | b),
            GateOp::Xnor => !(a ^ b),
        }
    }
}

/// One of the four line permutations a 4×4 switch can apply, written as an
/// output-from-input map: output `j` is driven by input `perm[j]`.
///
/// The paper's IN-SWAP and OUT-SWAP four-way swappers each use a set of up
/// to four such permutations, selected by two control bits (Section II.B,
/// Fig. 2(b)).
pub type Perm4 = [u8; 4];

/// A netlist component. Input wires always refer to wires created earlier,
/// so a `Vec<Component>` built by [`crate::Builder`] is in topological
/// order by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Component {
    /// Inverter: `out = !a`. Unit cost, unit depth.
    Not {
        /// Input.
        a: Wire,
    },
    /// Two-input gate: `out = op(a, b)`. Unit cost, unit depth.
    Gate {
        /// Operation.
        op: GateOp,
        /// First input.
        a: Wire,
        /// Second input.
        b: Wire,
    },
    /// 2×1 multiplexer: `out = sel ? a1 : a0`. Unit cost, unit depth
    /// (paper Section II.C).
    Mux2 {
        /// Select line.
        sel: Wire,
        /// Output when `sel = 0`.
        a0: Wire,
        /// Output when `sel = 1`.
        a1: Wire,
    },
    /// 1×2 demultiplexer: routes `x` to output 0 when `sel = 0`, to output
    /// 1 when `sel = 1`; the unselected output is 0. Unit cost, unit depth
    /// (paper Section II.D). Outputs: `(out0, out1)`.
    Demux2 {
        /// Select line.
        sel: Wire,
        /// Data input.
        x: Wire,
    },
    /// 2×2 switch: passes straight when `ctrl = 0`, crosses when
    /// `ctrl = 1`. Unit cost, unit depth (paper Section II). Outputs:
    /// `(out_a, out_b)` where `out_a = ctrl ? b : a`.
    Switch2 {
        /// Control line (0 = pass, 1 = cross).
        ctrl: Wire,
        /// Upper input.
        a: Wire,
        /// Lower input.
        b: Wire,
    },
    /// Bit comparator (ascending 2-sorter on bits): outputs
    /// `(min, max) = (a AND b, a OR b)`. Unit cost, unit depth. This is the
    /// binary specialisation of the comparator switch in Fig. 1.
    BitCompare {
        /// First input.
        a: Wire,
        /// Second input.
        b: Wire,
    },
    /// 4×4 switch: applies one of four line permutations to its four
    /// inputs, selected by two control bits `(s1, s0)` (index
    /// `sel = 2*s1 + s0`). Cost 4 (paper: "the cost of each 4×4 switch is
    /// roughly equivalent to the cost of four 2×2 switches"), unit depth.
    /// Outputs: four wires, output `j` driven by input `perms[sel][j]`.
    Switch4 {
        /// High select bit.
        s1: Wire,
        /// Low select bit.
        s0: Wire,
        /// The four data inputs.
        ins: [Wire; 4],
        /// The permutation applied for each of the four select values.
        perms: [Perm4; 4],
    },
}

impl Component {
    /// Number of output wires this component drives.
    #[inline]
    pub fn n_outputs(&self) -> usize {
        match self {
            Component::Not { .. } | Component::Gate { .. } | Component::Mux2 { .. } => 1,
            Component::Demux2 { .. } | Component::Switch2 { .. } | Component::BitCompare { .. } => {
                2
            }
            Component::Switch4 { .. } => 4,
        }
    }

    /// Cost in the paper's accounting units: unit cost for every primitive
    /// except the 4×4 switch, which counts as four 2×2 switches.
    #[inline]
    pub fn cost(&self) -> u64 {
        match self {
            Component::Switch4 { .. } => 4,
            _ => 1,
        }
    }

    /// Returns a copy of the component with every input wire rewritten
    /// through `f`. Used when splicing one netlist into another (the wire
    /// indices of the embedded circuit must be translated into the host's
    /// wire table).
    pub fn map_wires(&self, mut f: impl FnMut(Wire) -> Wire) -> Component {
        match *self {
            Component::Not { a } => Component::Not { a: f(a) },
            Component::Gate { op, a, b } => Component::Gate {
                op,
                a: f(a),
                b: f(b),
            },
            Component::Mux2 { sel, a0, a1 } => Component::Mux2 {
                sel: f(sel),
                a0: f(a0),
                a1: f(a1),
            },
            Component::Demux2 { sel, x } => Component::Demux2 {
                sel: f(sel),
                x: f(x),
            },
            Component::Switch2 { ctrl, a, b } => Component::Switch2 {
                ctrl: f(ctrl),
                a: f(a),
                b: f(b),
            },
            Component::BitCompare { a, b } => Component::BitCompare { a: f(a), b: f(b) },
            Component::Switch4 { s1, s0, ins, perms } => Component::Switch4 {
                s1: f(s1),
                s0: f(s0),
                ins: ins.map(&mut f),
                perms,
            },
        }
    }

    /// Visits every input wire of the component.
    pub fn for_each_input(&self, mut f: impl FnMut(Wire)) {
        match *self {
            Component::Not { a } => f(a),
            Component::Gate { a, b, .. } => {
                f(a);
                f(b);
            }
            Component::Mux2 { sel, a0, a1 } => {
                f(sel);
                f(a0);
                f(a1);
            }
            Component::Demux2 { sel, x } => {
                f(sel);
                f(x);
            }
            Component::Switch2 { ctrl, a, b } => {
                f(ctrl);
                f(a);
                f(b);
            }
            Component::BitCompare { a, b } => {
                f(a);
                f(b);
            }
            Component::Switch4 { s1, s0, ins, .. } => {
                f(s1);
                f(s0);
                for w in ins {
                    f(w);
                }
            }
        }
    }
}

/// A component together with its placement metadata (output wire base and
/// the scope it was created under).
#[derive(Debug, Clone)]
pub struct Placed {
    /// The component itself.
    pub comp: Component,
    /// Index of the first output wire; outputs occupy
    /// `out_base .. out_base + comp.n_outputs()`.
    pub out_base: u32,
    /// The hierarchical scope the component was created under.
    pub scope: ScopeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_truth_tables() {
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(GateOp::And.apply(a, b), a && b);
            assert_eq!(GateOp::Or.apply(a, b), a || b);
            assert_eq!(GateOp::Xor.apply(a, b), a != b);
            assert_eq!(GateOp::Nand.apply(a, b), !(a && b));
            assert_eq!(GateOp::Nor.apply(a, b), !(a || b));
            assert_eq!(GateOp::Xnor.apply(a, b), a == b);
        }
    }

    #[test]
    fn costs_match_paper_units() {
        let w = Wire::from_index(0);
        assert_eq!(Component::Not { a: w }.cost(), 1);
        assert_eq!(
            Component::Switch2 {
                ctrl: w,
                a: w,
                b: w
            }
            .cost(),
            1
        );
        assert_eq!(
            Component::Mux2 {
                sel: w,
                a0: w,
                a1: w
            }
            .cost(),
            1
        );
        assert_eq!(Component::Demux2 { sel: w, x: w }.cost(), 1);
        assert_eq!(Component::BitCompare { a: w, b: w }.cost(), 1);
        assert_eq!(
            Component::Switch4 {
                s1: w,
                s0: w,
                ins: [w; 4],
                perms: [[0, 1, 2, 3]; 4],
            }
            .cost(),
            4
        );
    }

    #[test]
    fn output_arity() {
        let w = Wire::from_index(0);
        assert_eq!(
            Component::Mux2 {
                sel: w,
                a0: w,
                a1: w
            }
            .n_outputs(),
            1
        );
        assert_eq!(Component::Demux2 { sel: w, x: w }.n_outputs(), 2);
        assert_eq!(Component::BitCompare { a: w, b: w }.n_outputs(), 2);
        assert_eq!(
            Component::Switch4 {
                s1: w,
                s0: w,
                ins: [w; 4],
                perms: [[0, 1, 2, 3]; 4],
            }
            .n_outputs(),
            4
        );
    }

    #[test]
    fn for_each_input_visits_all() {
        let mk = Wire::from_index;
        let c = Component::Switch4 {
            s1: mk(9),
            s0: mk(8),
            ins: [mk(0), mk(1), mk(2), mk(3)],
            perms: [[0, 1, 2, 3]; 4],
        };
        let mut seen = vec![];
        c.for_each_input(|w| seen.push(w.index()));
        assert_eq!(seen, vec![9, 8, 0, 1, 2, 3]);
    }
}
