//! Sequential (clocked) circuits — the paper's Model B substrate.
//!
//! "The adaptive sorting networks under this model can be viewed as
//! simple sequential or clocked circuits" (Section II, Network Model B).
//! A [`ClockedCircuit`] wraps a combinational [`Circuit`] with state
//! registers under a global clock:
//!
//! * combinational inputs = `[external inputs … , state bits …]`,
//! * combinational outputs = `[external outputs … , next-state bits …]`,
//! * each rising edge latches the next-state outputs into the state
//!   registers.
//!
//! This is the textbook Moore/Mealy machine shape; `absort-core` uses it
//! to realize the fish sorter's front-end *controller* (the group
//! counter driving the (n, n/k)-multiplexer) as real hardware rather
//! than as simulation scaffolding.

use crate::circuit::Circuit;
use crate::eval::{EvalError, Evaluator};
use crate::faulty::{FaultyEvaluator, WireFault};
use std::fmt;

/// A structural reason a [`ClockedCircuit`] (or a machine built on top of
/// one, like the streaming sorter) cannot be assembled from the given
/// parts. Returned by the `try_*` constructors so a long-running service
/// can reject a bad configuration without panicking; the infallible
/// constructors remain as thin unwrapping wrappers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClockedBuildError {
    /// The combinational core's input count is not
    /// `n_ext_in + n_state`.
    InputArity {
        /// Inputs the core actually has.
        got: usize,
        /// `n_ext_in + n_state` the wrapper requires.
        expected: usize,
    },
    /// The combinational core's output count is not
    /// `n_ext_out + n_state`.
    OutputArity {
        /// Outputs the core actually has.
        got: usize,
        /// `n_ext_out + n_state` the wrapper requires.
        expected: usize,
    },
    /// A machine-level configuration parameter is out of range (for
    /// example the streaming sorter's `n`/`k` divisibility and
    /// power-of-two requirements). Carries a static description of the
    /// violated constraint.
    BadConfig {
        /// Which constraint failed, in words.
        what: &'static str,
    },
}

impl fmt::Display for ClockedBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockedBuildError::InputArity { got, expected } => write!(
                f,
                "combinational core must take ext inputs + state: has {got} inputs, needs {expected}"
            ),
            ClockedBuildError::OutputArity { got, expected } => write!(
                f,
                "combinational core must yield ext outputs + next state: has {got} outputs, needs {expected}"
            ),
            ClockedBuildError::BadConfig { what } => write!(f, "bad machine config: {what}"),
        }
    }
}

impl std::error::Error for ClockedBuildError {}

/// A synchronous sequential circuit: combinational core + state
/// registers.
///
/// ```
/// use absort_circuit::clocked;
///
/// // a 2-bit wrapping counter
/// let counter = clocked::counter(2);
/// let mut sim = counter.power_on();
/// let reads: Vec<usize> = (0..5)
///     .map(|_| {
///         let out = sim.step(&[]);
///         usize::from(out[0]) | usize::from(out[1]) << 1
///     })
///     .collect();
/// assert_eq!(reads, vec![0, 1, 2, 3, 0]);
/// ```
pub struct ClockedCircuit {
    comb: Circuit,
    n_ext_in: usize,
    n_ext_out: usize,
    n_state: usize,
    reset_state: Vec<bool>,
}

impl ClockedCircuit {
    /// Wraps `comb` as a clocked circuit with `n_state` registers.
    ///
    /// `comb` must have `n_ext_in + n_state` inputs (externals first) and
    /// `n_ext_out + n_state` outputs (externals first, next-state last).
    /// `reset_state` is the registers' power-on value.
    pub fn new(comb: Circuit, n_ext_in: usize, n_ext_out: usize, reset_state: Vec<bool>) -> Self {
        match Self::try_new(comb, n_ext_in, n_ext_out, reset_state) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Checked [`ClockedCircuit::new`]: rejects arity mismatches with a
    /// typed [`ClockedBuildError`] instead of panicking.
    pub fn try_new(
        comb: Circuit,
        n_ext_in: usize,
        n_ext_out: usize,
        reset_state: Vec<bool>,
    ) -> Result<Self, ClockedBuildError> {
        let n_state = reset_state.len();
        if comb.n_inputs() != n_ext_in + n_state {
            return Err(ClockedBuildError::InputArity {
                got: comb.n_inputs(),
                expected: n_ext_in + n_state,
            });
        }
        if comb.n_outputs() != n_ext_out + n_state {
            return Err(ClockedBuildError::OutputArity {
                got: comb.n_outputs(),
                expected: n_ext_out + n_state,
            });
        }
        Ok(ClockedCircuit {
            comb,
            n_ext_in,
            n_ext_out,
            n_state,
            reset_state,
        })
    }

    /// Number of external inputs per cycle.
    pub fn n_inputs(&self) -> usize {
        self.n_ext_in
    }

    /// Number of external outputs per cycle.
    pub fn n_outputs(&self) -> usize {
        self.n_ext_out
    }

    /// Number of state registers.
    pub fn n_state(&self) -> usize {
        self.n_state
    }

    /// The registers' power-on (and reset-pulse) value.
    pub fn reset_state(&self) -> &[bool] {
        &self.reset_state
    }

    /// Combinational cost (the paper's unit accounting; registers are the
    /// `n_state` flip-flops on top, which the paper's cost model does not
    /// price).
    pub fn cost(&self) -> crate::cost::CostReport {
        self.comb.cost()
    }

    /// Combinational depth — the clock period in unit-delay terms.
    pub fn period(&self) -> usize {
        self.comb.depth()
    }

    /// The combinational core (read-only). Fault campaigns enumerate
    /// injection sites on this netlist; remember its inputs are
    /// `[external inputs …, state bits …]` and its outputs
    /// `[external outputs …, next-state bits …]`.
    pub fn comb(&self) -> &Circuit {
        &self.comb
    }

    /// A fresh simulation at the reset state.
    pub fn power_on(&self) -> ClockedSim<'_> {
        ClockedSim {
            machine: self,
            ev: Evaluator::new(&self.comb),
            state: self.reset_state.clone(),
            cycle: 0,
        }
    }

    /// A fresh simulation at the reset state with `faults` injected into
    /// the combinational core on every cycle.
    ///
    /// Permanent faults ([`WireFault::StuckAt`], [`WireFault::BridgeOr`])
    /// apply on every clock edge. A [`WireFault::TransientFlip`] is
    /// *cycle-precise*: its `vector` field names the zero-based clock
    /// cycle on which the wire flips — the scalar simulation consumes
    /// exactly one test vector per edge, so vector index and cycle index
    /// coincide. Because faulted next-state bits are latched, a one-cycle
    /// upset can corrupt the register file and keep echoing through the
    /// schedule long after the pulse — exactly the propagation this
    /// simulator exists to measure.
    pub fn power_on_faulty(&self, faults: &[WireFault]) -> FaultyClockedSim<'_> {
        FaultyClockedSim {
            machine: self,
            ev: FaultyEvaluator::new(&self.comb, faults),
            state: self.reset_state.clone(),
            cycle: 0,
        }
    }
}

/// A running simulation of a [`ClockedCircuit`].
pub struct ClockedSim<'m> {
    machine: &'m ClockedCircuit,
    ev: Evaluator<'m, bool>,
    state: Vec<bool>,
    cycle: u64,
}

impl ClockedSim<'_> {
    /// The current cycle count (number of clock edges so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Reads the current register values.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Pulses the reset line: restores the registers to the power-on
    /// state *without* rewinding the cycle counter — cycles since
    /// power-on keep counting, as they would in hardware.
    pub fn reset(&mut self) {
        self.state.copy_from_slice(&self.machine.reset_state);
    }

    /// Applies one clock cycle: evaluates the combinational core on
    /// `ext_in` plus the current state, latches the next state, and
    /// returns the external outputs.
    pub fn step(&mut self, ext_in: &[bool]) -> Vec<bool> {
        let m = self.machine;
        assert_eq!(ext_in.len(), m.n_ext_in, "external input arity");
        let mut full_in = Vec::with_capacity(m.n_ext_in + m.n_state);
        full_in.extend_from_slice(ext_in);
        full_in.extend_from_slice(&self.state);
        let full_out = self.ev.run(&full_in);
        let (ext, next) = full_out.split_at(m.n_ext_out);
        self.state.copy_from_slice(next);
        self.cycle += 1;
        ext.to_vec()
    }

    /// Checked [`ClockedSim::step`]: rejects a wrong-arity `ext_in` with
    /// a typed [`EvalError`] instead of panicking. The machine state is
    /// untouched on error, so a caller can correct the trace and retry.
    pub fn try_step(&mut self, ext_in: &[bool]) -> Result<Vec<bool>, EvalError> {
        let m = self.machine;
        if ext_in.len() != m.n_ext_in {
            return Err(EvalError::InputLen {
                expected: m.n_ext_in,
                got: ext_in.len(),
            });
        }
        Ok(self.step(ext_in))
    }

    /// Runs a whole input trace, returning the per-cycle outputs.
    pub fn run(&mut self, trace: &[Vec<bool>]) -> Vec<Vec<bool>> {
        trace.iter().map(|t| self.step(t)).collect()
    }

    /// Checked [`ClockedSim::run`]: validates every cycle's input arity
    /// up front, so the machine never advances on a malformed trace.
    pub fn try_run(&mut self, trace: &[Vec<bool>]) -> Result<Vec<Vec<bool>>, EvalError> {
        for t in trace {
            if t.len() != self.machine.n_ext_in {
                return Err(EvalError::InputLen {
                    expected: self.machine.n_ext_in,
                    got: t.len(),
                });
            }
        }
        Ok(self.run(trace))
    }
}

/// A running simulation of a [`ClockedCircuit`] with [`WireFault`]s
/// injected into the combinational core each cycle. Created by
/// [`ClockedCircuit::power_on_faulty`].
pub struct FaultyClockedSim<'m> {
    machine: &'m ClockedCircuit,
    ev: FaultyEvaluator<'m, bool>,
    state: Vec<bool>,
    cycle: u64,
}

impl FaultyClockedSim<'_> {
    /// The current cycle count (number of clock edges so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Reads the current (possibly corrupted) register values.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Pulses the reset line: restores the registers to the power-on
    /// state while the cycle counter keeps counting. This is the
    /// recovery protocol's replay hook — a past
    /// [`WireFault::TransientFlip`] (whose `vector` indexes cycles since
    /// power-on) does *not* re-fire during a replay on the same
    /// simulation, exactly as a one-shot physical upset would not,
    /// while permanent faults keep applying every edge.
    pub fn reset(&mut self) {
        self.state.copy_from_slice(&self.machine.reset_state);
    }

    /// Applies one clock cycle under the injected faults.
    pub fn step(&mut self, ext_in: &[bool]) -> Vec<bool> {
        let m = self.machine;
        assert_eq!(ext_in.len(), m.n_ext_in, "external input arity");
        let mut full_in = Vec::with_capacity(m.n_ext_in + m.n_state);
        full_in.extend_from_slice(ext_in);
        full_in.extend_from_slice(&self.state);
        let full_out = self.ev.run(&full_in);
        let (ext, next) = full_out.split_at(m.n_ext_out);
        self.state.copy_from_slice(next);
        self.cycle += 1;
        ext.to_vec()
    }

    /// Checked [`FaultyClockedSim::step`]; state untouched on error.
    pub fn try_step(&mut self, ext_in: &[bool]) -> Result<Vec<bool>, EvalError> {
        if ext_in.len() != self.machine.n_ext_in {
            return Err(EvalError::InputLen {
                expected: self.machine.n_ext_in,
                got: ext_in.len(),
            });
        }
        Ok(self.step(ext_in))
    }

    /// Runs a whole input trace under the injected faults.
    pub fn run(&mut self, trace: &[Vec<bool>]) -> Vec<Vec<bool>> {
        trace.iter().map(|t| self.step(t)).collect()
    }
}

/// Builds a lg(k)-bit wrapping up-counter as a clocked circuit: no
/// external inputs, outputs the count each cycle. The standard controller
/// for time-multiplexed group selection (the fish front end's
/// multiplexer/demultiplexer select driver).
pub fn counter(bits: usize) -> ClockedCircuit {
    use crate::builder::Builder;
    let mut b = Builder::new();
    let state = b.input_bus(bits); // state comes in as inputs
                                   // increment: next = state + 1 (ripple increment)
    let mut carry = b.constant(true);
    let mut next = Vec::with_capacity(bits);
    let mut outs = Vec::with_capacity(bits);
    for &s in &state {
        let sum = b.xor(s, carry);
        carry = b.and(s, carry);
        next.push(sum);
        outs.push(s); // Moore output: current count
    }
    let mut all = outs;
    all.extend(next);
    b.outputs(&all);
    ClockedCircuit::new(b.finish(), 0, bits, vec![false; bits])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn counter_counts_and_wraps() {
        let c = counter(3);
        let mut sim = c.power_on();
        let mut seen = Vec::new();
        for _ in 0..10 {
            let out = sim.step(&[]);
            let v = out
                .iter()
                .enumerate()
                .fold(0usize, |acc, (i, &b)| acc | (usize::from(b) << i));
            seen.push(v);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6, 7, 0, 1]);
        assert_eq!(sim.cycle(), 10);
    }

    #[test]
    fn accumulator_machine() {
        // 1-bit input, 4-bit state: state' = state + input; output = state.
        let mut b = Builder::new();
        let x = b.input();
        let state = b.input_bus(4);
        let zero = b.constant(false);
        let mut inc = vec![zero; 4];
        inc[0] = x;
        let sum = absort_test_ripple(&mut b, &state, &inc);
        let mut all = state.clone();
        all.extend(sum);
        b.outputs(&all);
        let machine = ClockedCircuit::new(b.finish(), 1, 4, vec![false; 4]);
        let mut sim = machine.power_on();
        let trace: Vec<Vec<bool>> = [true, true, false, true, true, true]
            .iter()
            .map(|&v| vec![v])
            .collect();
        let outs = sim.run(&trace);
        // Moore: output shows the count *before* this cycle's add
        let counts: Vec<usize> = outs
            .iter()
            .map(|o| {
                o.iter()
                    .enumerate()
                    .fold(0, |a, (i, &b)| a | (usize::from(b) << i))
            })
            .collect();
        assert_eq!(counts, vec![0, 1, 2, 2, 3, 4]);
    }

    // small ripple add used by the test (width-preserving, drops carry)
    fn absort_test_ripple(
        b: &mut Builder,
        a: &[crate::wire::Wire],
        c: &[crate::wire::Wire],
    ) -> Vec<crate::wire::Wire> {
        let mut carry = b.constant(false);
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(c) {
            let p = b.xor(x, y);
            let s = b.xor(p, carry);
            let g = b.and(x, y);
            let t = b.and(p, carry);
            carry = b.or(g, t);
            out.push(s);
        }
        out
    }

    #[test]
    fn try_step_rejects_bad_arity_without_advancing() {
        // 1-bit passthrough machine: out = in, state' = in
        let mut b = Builder::new();
        let x = b.input();
        let s = b.input();
        b.outputs(&[s, x]);
        let m = ClockedCircuit::new(b.finish(), 1, 1, vec![false]);
        let mut sim = m.power_on();
        let err = sim.try_step(&[true, false]).unwrap_err();
        assert!(matches!(
            err,
            crate::eval::EvalError::InputLen {
                expected: 1,
                got: 2
            }
        ));
        assert_eq!(sim.cycle(), 0, "failed step must not advance the clock");
        assert_eq!(sim.state(), &[false], "state untouched on error");
        assert_eq!(sim.try_step(&[true]).unwrap(), vec![false]);
        assert_eq!(sim.cycle(), 1);

        // try_run validates the whole trace before stepping at all
        let mut sim2 = m.power_on();
        let bad = vec![vec![true], vec![true, false]];
        assert!(sim2.try_run(&bad).is_err());
        assert_eq!(sim2.cycle(), 0, "malformed trace must not advance");
        let good = vec![vec![true], vec![false]];
        assert_eq!(sim2.try_run(&good).unwrap(), vec![vec![false], vec![true]]);
    }

    #[test]
    fn faulty_sim_transient_corrupts_state_persistently() {
        // The counter's upset: flip the next-state LSB at cycle 2 and the
        // count stays off by one forever after — latched corruption.
        let c = counter(3);
        // next-state outputs are comb outputs 3..6; find the wire of the
        // LSB next-state bit.
        let lsb_next = c.comb().output_wire(3);
        let fault = WireFault::TransientFlip {
            wire: lsb_next,
            vector: 2,
        };
        let mut healthy = c.power_on();
        let mut faulty = c.power_on_faulty(&[fault]);
        let read = |out: Vec<bool>| {
            out.iter()
                .enumerate()
                .fold(0usize, |a, (i, &b)| a | (usize::from(b) << i))
        };
        let mut diverged_at = None;
        for cyc in 0..8 {
            let h = read(healthy.step(&[]));
            let f = read(faulty.try_step(&[]).unwrap());
            if h != f && diverged_at.is_none() {
                diverged_at = Some(cyc);
            }
            if let Some(d) = diverged_at {
                assert_ne!(h, f, "corrupted register echoes from cycle {d} on");
            }
        }
        // flip lands in next-state at cycle 2, so outputs diverge at 3
        assert_eq!(diverged_at, Some(3));
        assert_eq!(faulty.cycle(), 8);
        assert_eq!(faulty.state().len(), 3);
    }

    #[test]
    fn faulty_sim_stuck_state_bit() {
        let c = counter(2);
        // stuck-at-0 on the MSB *current-state* input wire: count cycles 0,1
        let msb_state_in = c.comb().input_wire(1);
        let fault = WireFault::StuckAt {
            wire: msb_state_in,
            value: false,
        };
        let mut sim = c.power_on_faulty(&[fault]);
        let read = |out: Vec<bool>| usize::from(out[0]) | usize::from(out[1]) << 1;
        let seen: Vec<usize> = (0..6).map(|_| read(sim.step(&[]))).collect();
        assert_eq!(seen, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "combinational core must take")]
    fn arity_mismatch_rejected() {
        let mut b = Builder::new();
        let x = b.input();
        b.outputs(&[x]);
        let _ = ClockedCircuit::new(b.finish(), 1, 1, vec![false; 2]);
    }

    #[test]
    fn try_new_reports_typed_arity_errors() {
        let build = || {
            let mut b = Builder::new();
            let x = b.input();
            b.outputs(&[x]);
            b.finish()
        };
        let expect_err = |r: Result<ClockedCircuit, ClockedBuildError>| match r {
            Err(e) => e,
            Ok(_) => panic!("expected a build error"),
        };
        // 1 input, wrapper wants 1 ext + 2 state = 3.
        let err = expect_err(ClockedCircuit::try_new(build(), 1, 1, vec![false; 2]));
        assert_eq!(
            err,
            ClockedBuildError::InputArity {
                got: 1,
                expected: 3
            }
        );
        // inputs fit (0 ext + 1 state), but 1 output vs 1 ext + 1 state.
        let err = expect_err(ClockedCircuit::try_new(build(), 0, 1, vec![false]));
        assert_eq!(
            err,
            ClockedBuildError::OutputArity {
                got: 1,
                expected: 2
            }
        );
        assert!(err.to_string().contains("ext outputs + next state"));
        // the happy path still builds.
        assert!(ClockedCircuit::try_new(build(), 0, 0, vec![false]).is_ok());
    }

    #[test]
    fn reset_restores_state_but_not_the_cycle_counter() {
        let c = counter(3);
        let mut sim = c.power_on();
        for _ in 0..5 {
            sim.step(&[]);
        }
        assert_eq!(sim.state(), &[true, false, true]); // count = 5
        sim.reset();
        assert_eq!(sim.state(), &[false; 3], "registers back to power-on");
        assert_eq!(sim.cycle(), 5, "cycles since power-on keep counting");
        let out = sim.step(&[]);
        assert_eq!(out, vec![false, false, false], "counts from 0 again");

        // Faulty replay semantics: a transient that fired at cycle 1 does
        // NOT re-fire after reset — the vector index is cycles since
        // power-on, so the replayed schedule runs clean.
        let lsb_next = c.comb().output_wire(3);
        let mut faulty = c.power_on_faulty(&[WireFault::TransientFlip {
            wire: lsb_next,
            vector: 1,
        }]);
        for _ in 0..3 {
            faulty.step(&[]);
        }
        assert_ne!(
            faulty.state(),
            &[true, true, false],
            "upset corrupted the count"
        );
        faulty.reset();
        let replay: Vec<Vec<bool>> = (0..3).map(|_| faulty.step(&[])).collect();
        let mut clean = c.power_on();
        let expect: Vec<Vec<bool>> = (0..3).map(|_| clean.step(&[])).collect();
        assert_eq!(replay, expect, "replay after reset is upset-free");
    }

    #[test]
    fn period_is_comb_depth() {
        let c = counter(4);
        assert!(c.period() >= 1);
        assert_eq!(c.n_state(), 4);
        assert_eq!(c.cost().total as usize, 2 * 4); // xor+and per bit
    }
}
