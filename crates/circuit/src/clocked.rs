//! Sequential (clocked) circuits — the paper's Model B substrate.
//!
//! "The adaptive sorting networks under this model can be viewed as
//! simple sequential or clocked circuits" (Section II, Network Model B).
//! A [`ClockedCircuit`] wraps a combinational [`Circuit`] with state
//! registers under a global clock:
//!
//! * combinational inputs = `[external inputs … , state bits …]`,
//! * combinational outputs = `[external outputs … , next-state bits …]`,
//! * each rising edge latches the next-state outputs into the state
//!   registers.
//!
//! This is the textbook Moore/Mealy machine shape; `absort-core` uses it
//! to realize the fish sorter's front-end *controller* (the group
//! counter driving the (n, n/k)-multiplexer) as real hardware rather
//! than as simulation scaffolding.

use crate::circuit::Circuit;
use crate::eval::Evaluator;

/// A synchronous sequential circuit: combinational core + state
/// registers.
///
/// ```
/// use absort_circuit::clocked;
///
/// // a 2-bit wrapping counter
/// let counter = clocked::counter(2);
/// let mut sim = counter.power_on();
/// let reads: Vec<usize> = (0..5)
///     .map(|_| {
///         let out = sim.step(&[]);
///         usize::from(out[0]) | usize::from(out[1]) << 1
///     })
///     .collect();
/// assert_eq!(reads, vec![0, 1, 2, 3, 0]);
/// ```
pub struct ClockedCircuit {
    comb: Circuit,
    n_ext_in: usize,
    n_ext_out: usize,
    n_state: usize,
    reset_state: Vec<bool>,
}

impl ClockedCircuit {
    /// Wraps `comb` as a clocked circuit with `n_state` registers.
    ///
    /// `comb` must have `n_ext_in + n_state` inputs (externals first) and
    /// `n_ext_out + n_state` outputs (externals first, next-state last).
    /// `reset_state` is the registers' power-on value.
    pub fn new(comb: Circuit, n_ext_in: usize, n_ext_out: usize, reset_state: Vec<bool>) -> Self {
        let n_state = reset_state.len();
        assert_eq!(
            comb.n_inputs(),
            n_ext_in + n_state,
            "combinational core must take ext inputs + state"
        );
        assert_eq!(
            comb.n_outputs(),
            n_ext_out + n_state,
            "combinational core must yield ext outputs + next state"
        );
        ClockedCircuit {
            comb,
            n_ext_in,
            n_ext_out,
            n_state,
            reset_state,
        }
    }

    /// Number of external inputs per cycle.
    pub fn n_inputs(&self) -> usize {
        self.n_ext_in
    }

    /// Number of external outputs per cycle.
    pub fn n_outputs(&self) -> usize {
        self.n_ext_out
    }

    /// Number of state registers.
    pub fn n_state(&self) -> usize {
        self.n_state
    }

    /// Combinational cost (the paper's unit accounting; registers are the
    /// `n_state` flip-flops on top, which the paper's cost model does not
    /// price).
    pub fn cost(&self) -> crate::cost::CostReport {
        self.comb.cost()
    }

    /// Combinational depth — the clock period in unit-delay terms.
    pub fn period(&self) -> usize {
        self.comb.depth()
    }

    /// A fresh simulation at the reset state.
    pub fn power_on(&self) -> ClockedSim<'_> {
        ClockedSim {
            machine: self,
            ev: Evaluator::new(&self.comb),
            state: self.reset_state.clone(),
            cycle: 0,
        }
    }
}

/// A running simulation of a [`ClockedCircuit`].
pub struct ClockedSim<'m> {
    machine: &'m ClockedCircuit,
    ev: Evaluator<'m, bool>,
    state: Vec<bool>,
    cycle: u64,
}

impl ClockedSim<'_> {
    /// The current cycle count (number of clock edges so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Reads the current register values.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Applies one clock cycle: evaluates the combinational core on
    /// `ext_in` plus the current state, latches the next state, and
    /// returns the external outputs.
    pub fn step(&mut self, ext_in: &[bool]) -> Vec<bool> {
        let m = self.machine;
        assert_eq!(ext_in.len(), m.n_ext_in, "external input arity");
        let mut full_in = Vec::with_capacity(m.n_ext_in + m.n_state);
        full_in.extend_from_slice(ext_in);
        full_in.extend_from_slice(&self.state);
        let full_out = self.ev.run(&full_in);
        let (ext, next) = full_out.split_at(m.n_ext_out);
        self.state.copy_from_slice(next);
        self.cycle += 1;
        ext.to_vec()
    }

    /// Runs a whole input trace, returning the per-cycle outputs.
    pub fn run(&mut self, trace: &[Vec<bool>]) -> Vec<Vec<bool>> {
        trace.iter().map(|t| self.step(t)).collect()
    }
}

/// Builds a lg(k)-bit wrapping up-counter as a clocked circuit: no
/// external inputs, outputs the count each cycle. The standard controller
/// for time-multiplexed group selection (the fish front end's
/// multiplexer/demultiplexer select driver).
pub fn counter(bits: usize) -> ClockedCircuit {
    use crate::builder::Builder;
    let mut b = Builder::new();
    let state = b.input_bus(bits); // state comes in as inputs
                                   // increment: next = state + 1 (ripple increment)
    let mut carry = b.constant(true);
    let mut next = Vec::with_capacity(bits);
    let mut outs = Vec::with_capacity(bits);
    for &s in &state {
        let sum = b.xor(s, carry);
        carry = b.and(s, carry);
        next.push(sum);
        outs.push(s); // Moore output: current count
    }
    let mut all = outs;
    all.extend(next);
    b.outputs(&all);
    ClockedCircuit::new(b.finish(), 0, bits, vec![false; bits])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    #[test]
    fn counter_counts_and_wraps() {
        let c = counter(3);
        let mut sim = c.power_on();
        let mut seen = Vec::new();
        for _ in 0..10 {
            let out = sim.step(&[]);
            let v = out
                .iter()
                .enumerate()
                .fold(0usize, |acc, (i, &b)| acc | (usize::from(b) << i));
            seen.push(v);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6, 7, 0, 1]);
        assert_eq!(sim.cycle(), 10);
    }

    #[test]
    fn accumulator_machine() {
        // 1-bit input, 4-bit state: state' = state + input; output = state.
        let mut b = Builder::new();
        let x = b.input();
        let state = b.input_bus(4);
        let zero = b.constant(false);
        let mut inc = vec![zero; 4];
        inc[0] = x;
        let sum = absort_test_ripple(&mut b, &state, &inc);
        let mut all = state.clone();
        all.extend(sum);
        b.outputs(&all);
        let machine = ClockedCircuit::new(b.finish(), 1, 4, vec![false; 4]);
        let mut sim = machine.power_on();
        let trace: Vec<Vec<bool>> = [true, true, false, true, true, true]
            .iter()
            .map(|&v| vec![v])
            .collect();
        let outs = sim.run(&trace);
        // Moore: output shows the count *before* this cycle's add
        let counts: Vec<usize> = outs
            .iter()
            .map(|o| {
                o.iter()
                    .enumerate()
                    .fold(0, |a, (i, &b)| a | (usize::from(b) << i))
            })
            .collect();
        assert_eq!(counts, vec![0, 1, 2, 2, 3, 4]);
    }

    // small ripple add used by the test (width-preserving, drops carry)
    fn absort_test_ripple(
        b: &mut Builder,
        a: &[crate::wire::Wire],
        c: &[crate::wire::Wire],
    ) -> Vec<crate::wire::Wire> {
        let mut carry = b.constant(false);
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(c) {
            let p = b.xor(x, y);
            let s = b.xor(p, carry);
            let g = b.and(x, y);
            let t = b.and(p, carry);
            carry = b.or(g, t);
            out.push(s);
        }
        out
    }

    #[test]
    #[should_panic(expected = "combinational core must take")]
    fn arity_mismatch_rejected() {
        let mut b = Builder::new();
        let x = b.input();
        b.outputs(&[x]);
        let _ = ClockedCircuit::new(b.finish(), 1, 1, vec![false; 2]);
    }

    #[test]
    fn period_is_comb_depth() {
        let c = counter(4);
        assert!(c.period() >= 1);
        assert_eq!(c.n_state(), 4);
        assert_eq!(c.cost().total as usize, 2 * 4); // xor+and per bit
    }
}
