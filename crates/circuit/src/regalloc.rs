//! Register allocation and tape emission: the final pipeline stage,
//! turning scheduled [`CompileIr`] into a [`CompiledCircuit`].
//!
//! Values live in *slots* that are freed at their last read and reused
//! (last-use liveness over the scheduled op order), so the working
//! buffer shrinks from `n_wires` entries to the peak live-value count.
//! Destinations may reuse a dying operand's slot because every micro-op
//! reads all of its sources before writing. Definitions nothing reads
//! (an unused demux branch, an ignored input) share one scratch slot.

use crate::compile::{CompiledCircuit, MicroOp, COMP_DEAD, COMP_FOLDED, REUSE_MASKS};
use crate::component::{GateOp, Perm4};
use crate::ir::{CompFate, CompileIr, IrKind, NO_COMP};

/// Sentinel: value is never read and is not an output.
const DEAD: u32 = u32::MAX;
/// Sentinel: value is a designated output — live to the end.
const FOREVER: u32 = u32::MAX - 1;

/// Slot free-list allocator with a high-water mark.
struct SlotAlloc {
    free: Vec<u32>,
    next: u32,
}

impl SlotAlloc {
    fn get(&mut self) -> u32 {
        self.free.pop().unwrap_or_else(|| {
            let s = self.next;
            self.next += 1;
            s
        })
    }
}

/// Index of `set` in the deduplicated permutation table, appending it
/// if absent. Circuits draw from a handful of distinct sets, so the
/// linear scan is cheap and keeps the table minimal.
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn intern_perms(perm_sets: &mut Vec<[Perm4; 4]>, set: [Perm4; 4]) -> u32 {
    perm_sets.iter().position(|p| *p == set).unwrap_or_else(|| {
        perm_sets.push(set);
        perm_sets.len() - 1
    }) as u32
}

/// Allocates slots for a scheduled IR and emits the micro-op tape.
pub fn allocate(ir: &CompileIr) -> CompiledCircuit {
    allocate_with(ir, false)
}

/// [`allocate`] with an explicit slot-reuse policy.
///
/// With `par_safe` set, slots dying inside a depth level are returned to
/// the free list only at the level boundary (and definitions nothing
/// reads get private slots instead of one shared scratch). The tape then
/// carries no intra-level write-after-read or write-after-write hazards:
/// every op of a level reads only slots written by earlier levels and
/// writes slots no other op of the level touches, so a level's ops can
/// execute in any order — or concurrently (see the `absort-parwalk`
/// level-parallel walker). Costs a slightly larger working buffer.
pub fn allocate_with(ir: &CompileIr, par_safe: bool) -> CompiledCircuit {
    let n_vals = ir.n_vals as usize;

    // ---- last-use liveness over scheduled op positions ----------------
    let mut last_use = vec![DEAD; n_vals];
    for (pos, op) in ir.ops.iter().enumerate() {
        op.kind.for_each_use(|v| last_use[v as usize] = pos as u32);
    }
    for &o in &ir.outputs {
        last_use[o as usize] = FOREVER;
    }

    // ---- forward scan: allocate slots and emit --------------------------
    let mut alloc = SlotAlloc {
        free: Vec::new(),
        next: 0,
    };
    let mut slot_of = vec![u32::MAX; n_vals];
    let mut scratch: Option<u32> = None;

    let mut input_slots = Vec::with_capacity(ir.n_inputs as usize);
    for v in 0..ir.n_inputs {
        let s = if last_use[v as usize] == DEAD {
            *scratch.get_or_insert_with(|| alloc.get())
        } else {
            let s = alloc.get();
            slot_of[v as usize] = s;
            s
        };
        input_slots.push(s);
    }

    let mut tape = Vec::with_capacity(ir.ops.len());
    let mut perm_sets: Vec<[Perm4; 4]> = Vec::new();
    let mut level_ranges: Vec<(u32, u32)> = Vec::new();
    let mut cur_level = 0u32;
    let mut prologue_len = 0u32;
    let mut dying: Vec<u32> = Vec::new();
    // par_safe: slots that died inside the current level, parked until
    // the level boundary.
    let mut parked: Vec<u32> = Vec::new();
    let mut comp_pos: Vec<u32> = ir
        .comp_fate
        .iter()
        .map(|fate| match fate {
            CompFate::Folded => COMP_FOLDED,
            CompFate::Live | CompFate::Dead => COMP_DEAD,
        })
        .collect();

    for (pos, op) in ir.ops.iter().enumerate() {
        // Free the slots of operands that die at this op *before*
        // allocating destinations, so a destination can reuse a dying
        // operand's slot (ops read all sources before writing).
        dying.clear();
        op.kind.for_each_use(|v| {
            if last_use[v as usize] == pos as u32 {
                let s = slot_of[v as usize];
                if !dying.contains(&s) {
                    dying.push(s);
                }
            }
        });

        let is_const = matches!(op.kind, IrKind::Const { .. });
        if is_const {
            debug_assert_eq!(tape.len() as u32, prologue_len, "consts must lead the tape");
            prologue_len += 1;
        } else if op.level != cur_level {
            let at = tape.len() as u32;
            level_ranges.push((at, at));
            cur_level = op.level;
            alloc.free.append(&mut parked);
        }

        if par_safe && !is_const {
            // Defer the frees to the level boundary: a slot read anywhere
            // in this level must not be handed to a later op of the same
            // level as a destination.
            for &s in &dying {
                if !parked.contains(&s) {
                    parked.push(s);
                }
            }
        } else {
            alloc.free.extend_from_slice(&dying);
        }

        let mut ds = [0u32; 4];
        for (k, &def) in op.defs().iter().enumerate() {
            ds[k] = if last_use[def as usize] == DEAD {
                if par_safe && !is_const {
                    // A shared scratch would be a same-level write-after-
                    // write hazard; burn a private slot instead and park
                    // it for reuse from the next level on.
                    let s = alloc.get();
                    parked.push(s);
                    s
                } else {
                    *scratch.get_or_insert_with(|| alloc.get())
                }
            } else {
                let s = alloc.get();
                slot_of[def as usize] = s;
                s
            };
        }

        if op.comp != NO_COMP && ir.comp_fate[op.comp as usize] == CompFate::Live {
            debug_assert!(!op.shared, "shared op with live provenance");
            comp_pos[op.comp as usize] = tape.len() as u32;
        }

        let slot = |v: u32| slot_of[v as usize];
        tape.push(match op.kind {
            IrKind::Const { v } => MicroOp::Const { d: ds[0], v },
            IrKind::Not { a } => MicroOp::Not {
                d: ds[0],
                a: slot(a),
            },
            IrKind::Gate { op: g, a, b } => {
                let (a, b) = (slot(a), slot(b));
                let d = ds[0];
                match g {
                    GateOp::And => MicroOp::And { d, a, b },
                    GateOp::Or => MicroOp::Or { d, a, b },
                    GateOp::Xor => MicroOp::Xor { d, a, b },
                    GateOp::Nand => MicroOp::Nand { d, a, b },
                    GateOp::Nor => MicroOp::Nor { d, a, b },
                    GateOp::Xnor => MicroOp::Xnor { d, a, b },
                }
            }
            IrKind::Mux { s, a1, a0 } => MicroOp::Mux {
                d: ds[0],
                s: slot(s),
                a1: slot(a1),
                a0: slot(a0),
            },
            IrKind::Demux { s, x } => MicroOp::Demux {
                d0: ds[0],
                d1: ds[1],
                s: slot(s),
                x: slot(x),
            },
            IrKind::Switch2 { s, a, b } => MicroOp::Switch2 {
                d0: ds[0],
                d1: ds[1],
                s: slot(s),
                a: slot(a),
                b: slot(b),
            },
            IrKind::BitCompare { a, b } => MicroOp::BitCompare {
                d0: ds[0],
                d1: ds[1],
                a: slot(a),
                b: slot(b),
            },
            IrKind::Switch4 { s1, s0, ins, perms } => {
                let pid = intern_perms(&mut perm_sets, perms);
                MicroOp::Switch4 {
                    d: ds,
                    ins: [slot(ins[0]), slot(ins[1]), slot(ins[2]), slot(ins[3])],
                    s1: slot(s1),
                    s0: slot(s0),
                    pidx: pid | if op.reuse_masks { REUSE_MASKS } else { 0 },
                }
            }
        });
        if !is_const {
            if let Some(last) = level_ranges.last_mut() {
                last.1 = tape.len() as u32;
            }
        }
    }

    debug_assert!(
        ir.comp_fate
            .iter()
            .enumerate()
            .all(|(ci, f)| *f != CompFate::Live || comp_pos[ci] < COMP_FOLDED),
        "live component without a tape op"
    );

    let output_slots: Vec<u32> = ir.outputs.iter().map(|&o| slot_of[o as usize]).collect();

    CompiledCircuit {
        tape,
        perm_sets,
        n_slots: alloc.next,
        input_slots,
        output_slots,
        prologue_len,
        level_ranges,
        comp_pos,
        fold_hint: ir.fold_hint.clone(),
        source_wires: ir.source_wires,
        source_components: ir.source_components() as u32,
        pass_stats: Vec::new(),
        rewrite_hits: ir.rewrite_hits.clone(),
        fused_pairs: Vec::new(),
        s4_chains: Vec::new(),
        s4_items: Vec::new(),
    }
}
