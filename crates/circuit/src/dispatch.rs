//! Threaded-code dispatch for the compiled tape.
//!
//! [`CompiledEvaluator`](crate::CompiledEvaluator) does not interpret
//! [`MicroOp`]s with a match loop. At construction it *decodes* the tape
//! once into a [`Program`]: a flat instruction array where every entry
//! carries a function pointer plus fully resolved operands — the
//! permutation bytes of a 4×4 switch are copied inline, the
//! [`REUSE_MASKS`] flag is resolved into a distinct function, and the
//! superinstructions created by the [`crate::fuse`] pass
//! ([`MicroOp::Pair2`], [`MicroOp::S4Chain`]) each decode to a single
//! entry. Evaluation is then one indirect call per instruction with no
//! per-op re-decoding, which is what closes the scalar gap between the
//! tape and the component interpreter.
//!
//! Two decode policies exist per op where it pays:
//!
//! * **wide** (`LANES > 1`): 4×4 switches run the select-mask arithmetic
//!   (masks shared across an op's four outputs and, for chains, across
//!   the whole run);
//! * **scalar** (`LANES == 1`): a 4×4 switch *indexes* — the two control
//!   bits pick one of four permutations and the op degenerates to four
//!   slot moves, replacing ~30 lane operations with 2 bit tests. Sound
//!   only when every lane shares one control value, i.e. exactly when
//!   `LANES == 1`.
//!
//! The profiled twin ([`CompiledEvaluator::run_into_profiled`]) keeps
//! the classic match loop: profiling wants per-`MicroOp` attribution,
//! not per-decoded-function.

use crate::compile::{CompiledCircuit, MicroOp, REUSE_MASKS};
use crate::lane::Lane;

/// One decoded 4×4 switch of a fused chain: permutation bytes inline.
pub(crate) struct ChainItem {
    d: [u32; 4],
    ins: [u32; 4],
    perm: [[u8; 4]; 4],
}

/// Decoded instruction: a function pointer plus resolved operands.
/// `a` is a flat slot-operand window whose layout is op-specific (for
/// [`MicroOp::Pair2`] it is two 5-slot sub-op windows); `perm` holds a
/// 4×4 switch's permutation set inline so execution never touches
/// [`CompiledCircuit::perm_sets`].
pub(crate) struct Instr<V: Lane> {
    f: OpFn<V>,
    a: [u32; 10],
    perm: [[u8; 4]; 4],
}

/// `(slots, switch-masks register, chain items, instruction)`.
type OpFn<V> = fn(&mut [V], &mut [V; 4], &[ChainItem], &Instr<V>);

/// A decoded tape: what a [`CompiledEvaluator`](crate::CompiledEvaluator)
/// actually runs.
pub(crate) struct Program<V: Lane> {
    instrs: Vec<Instr<V>>,
    items: Vec<ChainItem>,
}

#[inline]
fn s(x: u32) -> usize {
    x as usize
}

// ---- simple ops -----------------------------------------------------------

fn op_const<V: Lane>(w: &mut [V], _m: &mut [V; 4], _it: &[ChainItem], i: &Instr<V>) {
    w[s(i.a[0])] = V::splat(i.a[1] != 0);
}

fn op_not<V: Lane>(w: &mut [V], _m: &mut [V; 4], _it: &[ChainItem], i: &Instr<V>) {
    w[s(i.a[0])] = w[s(i.a[1])].not();
}

fn op_demux<V: Lane>(w: &mut [V], _m: &mut [V; 4], _it: &[ChainItem], i: &Instr<V>) {
    let (sv, xv) = (w[s(i.a[2])], w[s(i.a[3])]);
    w[s(i.a[0])] = sv.not().and(xv);
    w[s(i.a[1])] = sv.and(xv);
}

fn op_route2<V: Lane>(w: &mut [V], _m: &mut [V; 4], _it: &[ChainItem], i: &Instr<V>) {
    let (av, bv) = (w[s(i.a[2])], w[s(i.a[3])]);
    w[s(i.a[0])] = av;
    w[s(i.a[1])] = bv;
}

// ---- pair-fusible sub-ops -------------------------------------------------
//
// The ops the fuse pass may pack two-per-dispatch, executed through a
// const-generic kind code so the inner match folds away after
// monomorphization. Operand window layouts (5 slots each):
//   gates (codes 0-5):  [d, a, b]
//   bitcompare (6):     [d0, d1, a, b]
//   switch2 (7):        [d0, d1, s, a, b]
//   mux (8):            [d, s, a1, a0]

/// Number of pair-fusible kind codes (see [`pair_code`]).
pub(crate) const N_PAIR_KINDS: u8 = 9;

/// The pair-fusible kind code and 5-slot operand window of `op`, if it
/// participates in [`MicroOp::Pair2`] fusion.
pub(crate) fn pair_code(op: &MicroOp) -> Option<(u8, [u32; 5])> {
    Some(match *op {
        MicroOp::And { d, a, b } => (0, [d, a, b, 0, 0]),
        MicroOp::Or { d, a, b } => (1, [d, a, b, 0, 0]),
        MicroOp::Xor { d, a, b } => (2, [d, a, b, 0, 0]),
        MicroOp::Nand { d, a, b } => (3, [d, a, b, 0, 0]),
        MicroOp::Nor { d, a, b } => (4, [d, a, b, 0, 0]),
        MicroOp::Xnor { d, a, b } => (5, [d, a, b, 0, 0]),
        MicroOp::BitCompare { d0, d1, a, b } => (6, [d0, d1, a, b, 0]),
        MicroOp::Switch2 { d0, d1, s, a, b } => (7, [d0, d1, s, a, b]),
        MicroOp::Mux { d, s, a1, a0 } => (8, [d, s, a1, a0, 0]),
        _ => return None,
    })
}

/// Executes one pair-fusible sub-op on the operand window `c`. `K` is a
/// compile-time kind code, so each instantiation is straight-line.
#[inline(always)]
fn sub_op<V: Lane, const K: u8>(w: &mut [V], c: &[u32]) {
    match K {
        0 => {
            let (x, y) = (w[s(c[1])], w[s(c[2])]);
            w[s(c[0])] = x.and(y);
        }
        1 => {
            let (x, y) = (w[s(c[1])], w[s(c[2])]);
            w[s(c[0])] = x.or(y);
        }
        2 => {
            let (x, y) = (w[s(c[1])], w[s(c[2])]);
            w[s(c[0])] = x.xor(y);
        }
        3 => {
            let (x, y) = (w[s(c[1])], w[s(c[2])]);
            w[s(c[0])] = x.and(y).not();
        }
        4 => {
            let (x, y) = (w[s(c[1])], w[s(c[2])]);
            w[s(c[0])] = x.or(y).not();
        }
        5 => {
            let (x, y) = (w[s(c[1])], w[s(c[2])]);
            w[s(c[0])] = x.xor(y).not();
        }
        6 => {
            let (x, y) = (w[s(c[2])], w[s(c[3])]);
            w[s(c[0])] = x.and(y);
            w[s(c[1])] = x.or(y);
        }
        7 => {
            let (sv, av, bv) = (w[s(c[2])], w[s(c[3])], w[s(c[4])]);
            w[s(c[0])] = V::select(sv, bv, av);
            w[s(c[1])] = V::select(sv, av, bv);
        }
        _ => {
            let (sv, x1, x0) = (w[s(c[1])], w[s(c[2])], w[s(c[3])]);
            w[s(c[0])] = V::select(sv, x1, x0);
        }
    }
}

/// A lone pair-fusible op dispatched through its `sub_op` body.
fn op_single<V: Lane, const K: u8>(w: &mut [V], _m: &mut [V; 4], _it: &[ChainItem], i: &Instr<V>) {
    sub_op::<V, K>(w, &i.a[..5]);
}

/// Two sub-ops, one dispatch: the [`MicroOp::Pair2`] superinstruction.
fn op_pair<V: Lane, const K1: u8, const K2: u8>(
    w: &mut [V],
    _m: &mut [V; 4],
    _it: &[ChainItem],
    i: &Instr<V>,
) {
    sub_op::<V, K1>(w, &i.a[..5]);
    sub_op::<V, K2>(w, &i.a[5..]);
}

fn single_fn<V: Lane>(k: u8) -> OpFn<V> {
    match k {
        0 => op_single::<V, 0>,
        1 => op_single::<V, 1>,
        2 => op_single::<V, 2>,
        3 => op_single::<V, 3>,
        4 => op_single::<V, 4>,
        5 => op_single::<V, 5>,
        6 => op_single::<V, 6>,
        7 => op_single::<V, 7>,
        _ => op_single::<V, 8>,
    }
}

fn pair_fn<V: Lane>(k1: u8, k2: u8) -> OpFn<V> {
    debug_assert!(k1 < N_PAIR_KINDS && k2 < N_PAIR_KINDS);
    macro_rules! row {
        ($k1:literal) => {
            match k2 {
                0 => op_pair::<V, $k1, 0>,
                1 => op_pair::<V, $k1, 1>,
                2 => op_pair::<V, $k1, 2>,
                3 => op_pair::<V, $k1, 3>,
                4 => op_pair::<V, $k1, 4>,
                5 => op_pair::<V, $k1, 5>,
                6 => op_pair::<V, $k1, 6>,
                7 => op_pair::<V, $k1, 7>,
                _ => op_pair::<V, $k1, 8>,
            }
        };
    }
    match k1 {
        0 => row!(0),
        1 => row!(1),
        2 => row!(2),
        3 => row!(3),
        4 => row!(4),
        5 => row!(5),
        6 => row!(6),
        7 => row!(7),
        _ => row!(8),
    }
}

// ---- 4×4 switches ---------------------------------------------------------
//
// Operand layout: a[0..4] = dests, a[4..8] = ins, a[8] = s1, a[9] = s0;
// the permutation set rides inline in `Instr::perm`. Chains use
// a[0] = s1, a[1] = s0, a[2] = item start, a[3] = item count.

#[inline(always)]
fn switch_masks<V: Lane>(v1: V, v0: V) -> [V; 4] {
    [
        v1.not().and(v0.not()),
        v1.not().and(v0),
        v1.and(v0.not()),
        v1.and(v0),
    ]
}

#[inline(always)]
fn switch_apply<V: Lane>(w: &mut [V], m: &[V; 4], d: &[u32], ins: &[u32], pm: &[[u8; 4]; 4]) {
    let iv = [w[s(ins[0])], w[s(ins[1])], w[s(ins[2])], w[s(ins[3])]];
    for j in 0..4 {
        w[s(d[j])] = m[0]
            .and(iv[pm[0][j] as usize])
            .or(m[1].and(iv[pm[1][j] as usize]))
            .or(m[2].and(iv[pm[2][j] as usize]))
            .or(m[3].and(iv[pm[3][j] as usize]));
    }
}

/// Mask-computing 4×4 switch: refreshes the shared mask register `m`.
fn op_switch4<V: Lane>(w: &mut [V], m: &mut [V; 4], _it: &[ChainItem], i: &Instr<V>) {
    *m = switch_masks(w[s(i.a[8])], w[s(i.a[9])]);
    switch_apply(w, m, &i.a[..4], &i.a[4..8], &i.perm);
}

/// Mask-reusing 4×4 switch: reads `m` as left by the previous switch.
fn op_switch4_reuse<V: Lane>(w: &mut [V], m: &mut [V; 4], _it: &[ChainItem], i: &Instr<V>) {
    switch_apply(w, m, &i.a[..4], &i.a[4..8], &i.perm);
}

/// Scalar (`LANES == 1`) 4×4 switch: the control pair indexes one
/// permutation and the op becomes four slot moves. Never touches `m` —
/// in scalar decode, reuse flags also resolve here (recomputing the
/// 2-bit index from the still-live control slots is cheaper than any
/// sharing).
fn op_switch4_scalar<V: Lane>(w: &mut [V], _m: &mut [V; 4], _it: &[ChainItem], i: &Instr<V>) {
    let k = usize::from(w[s(i.a[8])].first_lane()) << 1 | usize::from(w[s(i.a[9])].first_lane());
    let iv = [w[s(i.a[4])], w[s(i.a[5])], w[s(i.a[6])], w[s(i.a[7])]];
    let pm = &i.perm[k];
    for j in 0..4 {
        w[s(i.a[j])] = iv[pm[j] as usize];
    }
}

/// Fused switch chain, wide flavour: masks computed once, applied to
/// every item of the run.
fn op_s4chain<V: Lane>(w: &mut [V], _m: &mut [V; 4], it: &[ChainItem], i: &Instr<V>) {
    let m = switch_masks(w[s(i.a[0])], w[s(i.a[1])]);
    for item in &it[s(i.a[2])..s(i.a[2]) + s(i.a[3])] {
        switch_apply(w, &m, &item.d, &item.ins, &item.perm);
    }
}

/// Fused switch chain, scalar flavour: one 2-bit index steers the whole
/// run of four-slot moves.
fn op_s4chain_scalar<V: Lane>(w: &mut [V], _m: &mut [V; 4], it: &[ChainItem], i: &Instr<V>) {
    let k = usize::from(w[s(i.a[0])].first_lane()) << 1 | usize::from(w[s(i.a[1])].first_lane());
    for item in &it[s(i.a[2])..s(i.a[2]) + s(i.a[3])] {
        let iv = [
            w[s(item.ins[0])],
            w[s(item.ins[1])],
            w[s(item.ins[2])],
            w[s(item.ins[3])],
        ];
        let pm = &item.perm[k];
        for j in 0..4 {
            w[s(item.d[j])] = iv[pm[j] as usize];
        }
    }
}

// ---- decode ---------------------------------------------------------------

impl<V: Lane> Program<V> {
    /// Decodes a compiled tape into its threaded form. `O(tape)`; done
    /// once per evaluator, so per-mutant evaluators in fault campaigns
    /// pay it on tapes of a few hundred ops at most.
    pub(crate) fn decode(cc: &CompiledCircuit) -> Program<V> {
        let scalar = V::LANES == 1;
        let mut items: Vec<ChainItem> = Vec::with_capacity(cc.s4_items().len());
        let mut instrs: Vec<Instr<V>> = Vec::with_capacity(cc.tape().len());
        for op in cc.tape() {
            let mut a = [0u32; 10];
            let mut perm = [[0u8; 4]; 4];
            let f: OpFn<V> = match *op {
                MicroOp::Const { d, v } => {
                    a[0] = d;
                    a[1] = u32::from(v);
                    op_const
                }
                MicroOp::Not { d, a: x } => {
                    a[0] = d;
                    a[1] = x;
                    op_not
                }
                MicroOp::Demux { d0, d1, s, x } => {
                    a[..4].copy_from_slice(&[d0, d1, s, x]);
                    op_demux
                }
                MicroOp::Route2 { d0, d1, a: x, b } => {
                    a[..4].copy_from_slice(&[d0, d1, x, b]);
                    op_route2
                }
                MicroOp::Switch4 {
                    d,
                    ins,
                    s1,
                    s0,
                    pidx,
                } => {
                    a[..4].copy_from_slice(&d);
                    a[4..8].copy_from_slice(&ins);
                    a[8] = s1;
                    a[9] = s0;
                    perm = cc.perm_sets()[s(pidx & !REUSE_MASKS)];
                    if scalar {
                        op_switch4_scalar
                    } else if pidx & REUSE_MASKS != 0 {
                        op_switch4_reuse
                    } else {
                        op_switch4
                    }
                }
                MicroOp::Pair2 { idx } => {
                    let [op1, op2] = cc.fused_pairs()[s(idx)];
                    let (k1, c1) = pair_code(&op1).expect("unfusible op in pair table");
                    let (k2, c2) = pair_code(&op2).expect("unfusible op in pair table");
                    a[..5].copy_from_slice(&c1);
                    a[5..].copy_from_slice(&c2);
                    pair_fn(k1, k2)
                }
                MicroOp::S4Chain { idx } => {
                    let ch = cc.s4_chains()[s(idx)];
                    a[0] = ch.s1;
                    a[1] = ch.s0;
                    a[2] = items.len() as u32;
                    a[3] = ch.len;
                    for item in &cc.s4_items()[s(ch.start)..s(ch.start) + s(ch.len)] {
                        items.push(ChainItem {
                            d: item.d,
                            ins: item.ins,
                            perm: cc.perm_sets()[s(item.pidx)],
                        });
                    }
                    if scalar {
                        op_s4chain_scalar
                    } else {
                        op_s4chain
                    }
                }
                ref other => {
                    let (k, c) = pair_code(other).expect("unhandled micro-op kind");
                    a[..5].copy_from_slice(&c);
                    single_fn(k)
                }
            };
            instrs.push(Instr { f, a, perm });
        }
        Program { instrs, items }
    }

    /// Executes the decoded program over the slot buffer `w`.
    #[inline]
    pub(crate) fn exec(&self, w: &mut [V]) {
        let mut m = [V::ZERO; 4];
        for i in &self.instrs {
            (i.f)(w, &mut m, &self.items, i);
        }
    }
}
