//! Ruler-style rule synthesis for the `rewrite` pass (`absort-rules`).
//!
//! The committed ruleset (`crates/circuit/rules/absort.rules`) has two
//! parts: a curated preamble (builtin toggles, select folds, the
//! op-pairing rules) and a `synthesized` tail this crate regenerates
//! deterministically. Synthesis follows the ruler recipe:
//!
//! 1. **Enumerate** small terms over the pattern op set — up to three
//!    variables, op count ≤ 2 on the left, ≤ 1 on the right.
//! 2. **Evaluate** every term on a characteristic vector (cvec): one
//!    64-bit lane whose bit `a` holds the term's value under variable
//!    assignment `a mod 8`, the same lane semantics as
//!    `CompileIr::eval_lanes`.
//! 3. **Propose** `lhs => rep` whenever a strictly cheaper
//!    representative shares the cvec.
//! 4. **Verify** every survivor exhaustively over all assignments of
//!    its variables (≤ 3 vars, so 8 cases decide equality outright —
//!    the cvec already enumerated them, verification recomputes both
//!    sides independently and re-checks LUT legs through the actual
//!    [`lut2_switch4`] switch construction the pass emits).
//!
//! [`check`] re-runs validation + verification on a parsed set and is
//! what `absort rules check` (and CI) runs against the committed file.

use std::collections::HashMap;

use absort_circuit::component::GateOp;
use absort_circuit::passes::rewrite::BUILTINS;
use absort_circuit::pattern::{
    lut2_switch4, print_term, validate_rule, PatNode, PatRef, Pattern, Rule, RuleSet,
};

/// Curated head of the ruleset: builtin toggles, select/constant folds,
/// gate identities, and the op-pairing rules (two single-output gates
/// over one operand pair fused into the legs of a comparator or a
/// dual-LUT 4×4 switch). Synthesis re-emits this preamble verbatim and
/// appends discovered rules after it.
const PREAMBLE: &str = "\
# absort-ruleset v1
builtin sw4-const-select
builtin sw4-compose
rule mux-sel-hi: (mux 1 x y) => x
rule mux-sel-lo: (mux 0 x y) => y
rule mux-same: (mux x y y) => y
rule sw2-sel-lo: (sw2.0 0 x y), (sw2.1 0 x y) => x, y
rule sw2-sel-hi: (sw2.0 1 x y), (sw2.1 1 x y) => y, x
rule demux-sel-lo: (demux.0 0 x), (demux.1 0 x) => x, 0
rule demux-sel-hi: (demux.0 1 x), (demux.1 1 x) => 0, x
rule cmp-recompare: (cmp.0 (cmp.0 x y) (cmp.1 x y)), (cmp.1 (cmp.0 x y) (cmp.1 x y)) => (cmp.0 x y), (cmp.1 x y)
rule pair-and-or: (and x y), (or x y) => (cmp.0 x y), (cmp.1 x y)
rule pair-and-xor: (and x y), (xor x y) => (lut2.0 0001.0110 x y), (lut2.1 0001.0110 x y)
rule pair-and-nand: (and x y), (nand x y) => (lut2.0 0001.1110 x y), (lut2.1 0001.1110 x y)
rule pair-and-nor: (and x y), (nor x y) => (lut2.0 0001.1000 x y), (lut2.1 0001.1000 x y)
rule pair-and-xnor: (and x y), (xnor x y) => (lut2.0 0001.1001 x y), (lut2.1 0001.1001 x y)
rule pair-or-xor: (or x y), (xor x y) => (lut2.0 0111.0110 x y), (lut2.1 0111.0110 x y)
rule pair-or-nand: (or x y), (nand x y) => (lut2.0 0111.1110 x y), (lut2.1 0111.1110 x y)
rule pair-or-nor: (or x y), (nor x y) => (lut2.0 0111.1000 x y), (lut2.1 0111.1000 x y)
rule pair-or-xnor: (or x y), (xnor x y) => (lut2.0 0111.1001 x y), (lut2.1 0111.1001 x y)
rule pair-xor-nand: (xor x y), (nand x y) => (lut2.0 0110.1110 x y), (lut2.1 0110.1110 x y)
rule pair-xor-nor: (xor x y), (nor x y) => (lut2.0 0110.1000 x y), (lut2.1 0110.1000 x y)
rule pair-xor-xnor: (xor x y), (xnor x y) => (lut2.0 0110.1001 x y), (lut2.1 0110.1001 x y)
rule pair-nand-nor: (nand x y), (nor x y) => (lut2.0 1110.1000 x y), (lut2.1 1110.1000 x y)
rule pair-nand-xnor: (nand x y), (xnor x y) => (lut2.0 1110.1001 x y), (lut2.1 1110.1001 x y)
rule pair-nor-xnor: (nor x y), (xnor x y) => (lut2.0 1000.1001 x y), (lut2.1 1000.1001 x y)
rule and-idem: (and x x) => x
rule or-idem: (or x x) => x
rule and-absorb: (and x (or x y)) => x
rule or-absorb: (or x (and x y)) => x
rule xor-cancel: (xor (xor x y) y) => x
rule not-not: (not (not x)) => x
rule not-and: (not (and x y)) => (nand x y)
rule not-or: (not (or x y)) => (nor x y)
rule not-xor: (not (xor x y)) => (xnor x y)
rule not-nand: (not (nand x y)) => (and x y)
rule not-nor: (not (nor x y)) => (or x y)
rule not-xnor: (not (xnor x y)) => (xor x y)
";

/// Cap on the number of discovered (non-preamble) rules, applied after
/// the deterministic sort so the committed tail stays reviewable.
const MAX_DISCOVERED: usize = 64;

/// Number of variables synthesis enumerates over.
const N_VARS: u8 = 3;

/// Variable cvec lanes: bit `a` of lane `i` is `(a >> i) & 1` with the
/// 8-assignment block repeated across the word, matching the exhaustive
/// input packing `CompileIr::eval_lanes`-based tests use at `n = 3`.
const VAR_LANES: [u64; 3] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
];

fn gate_lanes(g: GateOp, a: u64, b: u64) -> u64 {
    match g {
        GateOp::And => a & b,
        GateOp::Or => a | b,
        GateOp::Xor => a ^ b,
        GateOp::Nand => !(a & b),
        GateOp::Nor => !(a | b),
        GateOp::Xnor => !(a ^ b),
    }
}

/// Evaluates term `r` lane-parallel under the standard variable lanes —
/// the same per-op semantics as `CompileIr::eval_lanes`, including LUT
/// legs, which are computed through the [`lut2_switch4`] permutation
/// rows (not the truth table directly) so verification exercises the
/// exact switch the rewrite pass would emit.
pub fn eval_term_lanes(pat: &Pattern, r: PatRef, vars: &[u64]) -> u64 {
    let e = |c: PatRef| eval_term_lanes(pat, c, vars);
    match pat.nodes[r as usize] {
        PatNode::Var(i) => vars[i as usize],
        PatNode::Const(v) => {
            if v {
                !0
            } else {
                0
            }
        }
        PatNode::Not(a) => !e(a),
        PatNode::Gate(g, a, b) => gate_lanes(g, e(a), e(b)),
        PatNode::Mux(s, a1, a0) => {
            let sv = e(s);
            (sv & e(a1)) | (!sv & e(a0))
        }
        PatNode::DemuxLeg(l, s, x) => {
            let (sv, xv) = (e(s), e(x));
            if l == 0 {
                !sv & xv
            } else {
                sv & xv
            }
        }
        PatNode::Switch2Leg(l, s, a, b) => {
            let (sv, av, bv) = (e(s), e(a), e(b));
            if l == 0 {
                (sv & bv) | (!sv & av)
            } else {
                (sv & av) | (!sv & bv)
            }
        }
        PatNode::BitCompareLeg(l, a, b) => {
            let (av, bv) = (e(a), e(b));
            if l == 0 {
                av & bv
            } else {
                av | bv
            }
        }
        PatNode::Lut2Leg(l, tts, a, b) => {
            let perms = lut2_switch4(&tts).expect("validated lut2 tables");
            let (s1, s0) = (e(a), e(b));
            let masks = [!s1 & !s0, !s1 & s0, s1 & !s0, s1 & s0];
            let ins = [0u64, !0, 0, !0];
            let mut out = 0u64;
            for (combo, m) in masks.iter().enumerate() {
                out |= m & ins[perms[combo][l as usize] as usize];
            }
            out
        }
    }
}

/// Verifies a rule exhaustively: every leg of the RHS computes the same
/// function of the shared variables as the matching LHS leg, over all
/// assignments (≤ 3 variables fit one 64-bit lane, so one lane compare
/// per leg is a complete proof).
pub fn verify_rule(rule: &Rule) -> Result<(), String> {
    for (k, (&lr, &rr)) in rule.lhs.roots.iter().zip(&rule.rhs.roots).enumerate() {
        let lv = eval_term_lanes(&rule.lhs, lr, &VAR_LANES);
        let rv = eval_term_lanes(&rule.rhs, rr, &VAR_LANES);
        if lv != rv {
            return Err(format!(
                "rule `{}` leg {k}: lhs {} != rhs {} (cvec {lv:#018x} vs {rv:#018x})",
                rule.name,
                print_term(&rule.lhs, lr),
                print_term(&rule.rhs, rr),
            ));
        }
    }
    Ok(())
}

// --- enumeration --------------------------------------------------------

/// Copies the term rooted at `r` in `src` into `dst`, remapping
/// variables through `map` (allocating canonical indices in first-visit
/// order — which is print order, so the result parses back to itself).
fn copy_term(src: &Pattern, r: PatRef, dst: &mut Pattern, map: &mut Vec<Option<u8>>) -> PatRef {
    let node = match src.nodes[r as usize] {
        PatNode::Var(i) => {
            let canon = match map[i as usize] {
                Some(c) => c,
                None => {
                    let c = map.iter().flatten().count() as u8;
                    map[i as usize] = Some(c);
                    c
                }
            };
            PatNode::Var(canon)
        }
        PatNode::Const(v) => PatNode::Const(v),
        PatNode::Not(a) => {
            let a = copy_term(src, a, dst, map);
            PatNode::Not(a)
        }
        PatNode::Gate(g, a, b) => {
            let a = copy_term(src, a, dst, map);
            let b = copy_term(src, b, dst, map);
            PatNode::Gate(g, a, b)
        }
        PatNode::Mux(s, a1, a0) => {
            let s = copy_term(src, s, dst, map);
            let a1 = copy_term(src, a1, dst, map);
            let a0 = copy_term(src, a0, dst, map);
            PatNode::Mux(s, a1, a0)
        }
        PatNode::DemuxLeg(l, s, x) => {
            let s = copy_term(src, s, dst, map);
            let x = copy_term(src, x, dst, map);
            PatNode::DemuxLeg(l, s, x)
        }
        PatNode::Switch2Leg(l, s, a, b) => {
            let s = copy_term(src, s, dst, map);
            let a = copy_term(src, a, dst, map);
            let b = copy_term(src, b, dst, map);
            PatNode::Switch2Leg(l, s, a, b)
        }
        PatNode::BitCompareLeg(l, a, b) => {
            let a = copy_term(src, a, dst, map);
            let b = copy_term(src, b, dst, map);
            PatNode::BitCompareLeg(l, a, b)
        }
        PatNode::Lut2Leg(l, t, a, b) => {
            let a = copy_term(src, a, dst, map);
            let b = copy_term(src, b, dst, map);
            PatNode::Lut2Leg(l, t, a, b)
        }
    };
    dst.intern(node)
}

/// One enumerated term: a single-root pattern plus cached facts.
struct Term {
    pat: Pattern,
    cvec: u64,
    ops: usize,
    var_pure: bool,
    printed: String,
}

fn term_of(pat: Pattern) -> Term {
    let root = pat.roots[0];
    let cvec = eval_term_lanes(&pat, root, &VAR_LANES);
    let ops = pat.op_count();
    // Each enumerated pattern is its own arena, so a Const node
    // anywhere means the term mentions a constant.
    let var_pure = !pat.nodes.iter().any(|n| matches!(n, PatNode::Const(_)));
    let printed = print_term(&pat, root);
    Term {
        pat,
        cvec,
        ops,
        var_pure,
        printed,
    }
}

/// Wraps one node over already-built child terms into a fresh pattern.
fn combine(node: impl Fn(&mut Pattern, Vec<PatRef>) -> PatNode, children: &[&Pattern]) -> Pattern {
    let mut pat = Pattern::default();
    let refs: Vec<PatRef> = children
        .iter()
        .map(|c| {
            let mut id = vec![Some(0), Some(1), Some(2)];
            copy_term(c, c.roots[0], &mut pat, &mut id)
        })
        .collect();
    let n = node(&mut pat, refs);
    let r = pat.intern(n);
    pat.roots.push(r);
    pat
}

fn atom(node: PatNode) -> Pattern {
    let mut pat = Pattern::default();
    let r = pat.intern(node);
    pat.roots.push(r);
    pat
}

/// All gate orderings worth enumerating: gates are commutative, so only
/// `a <= b` orderings (by printed child) would suffice; the matcher
/// tries both operand orders anyway, so enumeration keeps the straight
/// product and lets dedup collapse the rest.
const GATES: [GateOp; 6] = [
    GateOp::And,
    GateOp::Or,
    GateOp::Xor,
    GateOp::Nand,
    GateOp::Nor,
    GateOp::Xnor,
];

/// Depth-≤ 1 terms over `children` (one op applied to the given child
/// terms). `legs` adds the multi-output leg terms.
fn depth1(children: &[Pattern]) -> Vec<Pattern> {
    let mut out = Vec::new();
    for a in children {
        out.push(combine(|_, r| PatNode::Not(r[0]), &[a]));
        for b in children {
            for g in GATES {
                out.push(combine(|_, r| PatNode::Gate(g, r[0], r[1]), &[a, b]));
            }
            for l in 0..2u8 {
                out.push(combine(
                    |_, r| PatNode::BitCompareLeg(l, r[0], r[1]),
                    &[a, b],
                ));
                out.push(combine(|_, r| PatNode::DemuxLeg(l, r[0], r[1]), &[a, b]));
            }
            for s in children {
                out.push(combine(|_, r| PatNode::Mux(r[0], r[1], r[2]), &[s, a, b]));
                for l in 0..2u8 {
                    out.push(combine(
                        |_, r| PatNode::Switch2Leg(l, r[0], r[1], r[2]),
                        &[s, a, b],
                    ));
                }
            }
        }
    }
    out
}

/// The left-hand-side pool: variable-pure terms of op count 1–2. Depth
/// 2 is restricted to {not, gate, cmp} outer ops over {not, gate, cmp}
/// inner terms — the shapes the sorting-network pipelines actually
/// produce in series — to keep enumeration small and deterministic.
fn lhs_pool() -> Vec<Term> {
    let vars: Vec<Pattern> = (0..N_VARS).map(|i| atom(PatNode::Var(i))).collect();
    let var_refs: Vec<Pattern> = vars.clone();
    let mut inner: Vec<Pattern> = var_refs.clone();
    for a in &vars {
        inner.push(combine(|_, r| PatNode::Not(r[0]), &[a]));
        for b in &vars {
            for g in GATES {
                inner.push(combine(|_, r| PatNode::Gate(g, r[0], r[1]), &[a, b]));
            }
            for l in 0..2u8 {
                inner.push(combine(
                    |_, r| PatNode::BitCompareLeg(l, r[0], r[1]),
                    &[a, b],
                ));
            }
        }
    }
    let mut pool: Vec<Pattern> = depth1(&var_refs);
    for a in &inner {
        pool.push(combine(|_, r| PatNode::Not(r[0]), &[a]));
        for b in &inner {
            for g in GATES {
                pool.push(combine(|_, r| PatNode::Gate(g, r[0], r[1]), &[a, b]));
            }
            for l in 0..2u8 {
                pool.push(combine(
                    |_, r| PatNode::BitCompareLeg(l, r[0], r[1]),
                    &[a, b],
                ));
            }
        }
    }
    pool.into_iter()
        .map(term_of)
        .filter(|t| t.var_pure && (1..=2).contains(&t.ops))
        .collect()
}

/// The representative pool: everything of op count ≤ 1 (constants
/// allowed), keyed by cvec, keeping the cheapest (then lexically first)
/// term per class.
fn rep_pool() -> HashMap<u64, Term> {
    let mut atoms: Vec<Pattern> = (0..N_VARS).map(|i| atom(PatNode::Var(i))).collect();
    atoms.push(atom(PatNode::Const(false)));
    atoms.push(atom(PatNode::Const(true)));
    let mut reps: HashMap<u64, Term> = HashMap::new();
    let mut offer = |t: Term| match reps.entry(t.cvec) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(t);
        }
        std::collections::hash_map::Entry::Occupied(mut e) => {
            let cur = e.get();
            if (t.ops, &t.printed) < (cur.ops, &cur.printed) {
                e.insert(t);
            }
        }
    };
    for a in atoms.clone() {
        offer(term_of(a));
    }
    for p in depth1(&atoms) {
        offer(term_of(p));
    }
    reps
}

/// Builds `name` from a printed LHS: lowercase tokens joined by `-`.
fn slug(printed: &str) -> String {
    let mut out = String::from("syn");
    let mut dash = true;
    for ch in printed.chars() {
        if ch.is_ascii_alphanumeric() {
            if dash {
                out.push('-');
                dash = false;
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            dash = true;
        }
    }
    out
}

/// Set of variable indices used by side `pat`.
fn side_vars(pat: &Pattern) -> Vec<u8> {
    let mut vars = Vec::new();
    for &r in &pat.roots {
        pat.vars_of(r, &mut vars);
    }
    vars
}

/// Synthesizes the full ruleset: the curated preamble followed by
/// deterministic discovered rules (enumerate → cvec match → strictly
/// cheaper representative → exhaustive verification). Pure: same code,
/// same output bytes.
pub fn synthesize() -> RuleSet {
    let mut set = RuleSet::parse(PREAMBLE).expect("preamble parses");
    let known_lhs: Vec<String> = set
        .rules
        .iter()
        .filter(|r| r.lhs.roots.len() == 1)
        .map(|r| print_term(&r.lhs, r.lhs.roots[0]))
        .collect();

    let reps = rep_pool();
    let mut discovered: Vec<Rule> = Vec::new();
    let mut seen_lhs: Vec<String> = Vec::new();
    let mut pool = lhs_pool();
    pool.sort_by(|a, b| (a.ops, &a.printed).cmp(&(b.ops, &b.printed)));
    for t in pool {
        let Some(rep) = reps.get(&t.cvec) else {
            continue;
        };
        if rep.ops >= t.ops {
            continue;
        }
        // Canonicalize variables by first appearance in the LHS, then
        // map the representative through the same assignment.
        let mut map: Vec<Option<u8>> = vec![None; N_VARS as usize];
        let mut lhs = Pattern::default();
        let r = copy_term(&t.pat, t.pat.roots[0], &mut lhs, &mut map);
        lhs.roots.push(r);
        // RHS variables must be a subset of the LHS's.
        let lhs_vars = side_vars(&t.pat);
        if !side_vars(&rep.pat).iter().all(|v| lhs_vars.contains(v)) {
            continue;
        }
        let mut rhs = Pattern::default();
        let r = copy_term(&rep.pat, rep.pat.roots[0], &mut rhs, &mut map);
        rhs.roots.push(r);
        let printed_lhs = print_term(&lhs, lhs.roots[0]);
        if known_lhs.contains(&printed_lhs) || seen_lhs.contains(&printed_lhs) {
            continue;
        }
        let mut name = slug(&printed_lhs);
        let mut k = 2;
        while set.rules.iter().chain(&discovered).any(|r| r.name == name) {
            name = format!("{}-{k}", slug(&printed_lhs));
            k += 1;
        }
        let rule = Rule { name, lhs, rhs };
        if validate_rule(&rule).is_err() || verify_rule(&rule).is_err() {
            continue;
        }
        seen_lhs.push(printed_lhs);
        discovered.push(rule);
    }
    // Cap the tail round-robin across outer op kinds (the first token
    // of the printed LHS), so the budget is not spent entirely on the
    // lexically-first `and` shapes: every outer op contributes its
    // cheapest discoveries first. Deterministic given the sorted pool.
    let outer_kind = |r: &Rule| -> String {
        let p = print_term(&r.lhs, r.lhs.roots[0]);
        p.trim_start_matches('(')
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_owned()
    };
    let mut by_kind: Vec<(String, Vec<Rule>)> = Vec::new();
    for rule in discovered {
        let k = outer_kind(&rule);
        match by_kind.iter_mut().find(|(kk, _)| *kk == k) {
            Some((_, v)) => v.push(rule),
            None => by_kind.push((k, vec![rule])),
        }
    }
    by_kind.sort_by(|a, b| a.0.cmp(&b.0));
    let mut picked: Vec<Rule> = Vec::new();
    let mut idx = 0usize;
    while picked.len() < MAX_DISCOVERED {
        let mut any = false;
        for (_, v) in &mut by_kind {
            if idx < v.len() {
                // Queues are drained front-first; clone keeps this
                // simple (rules are tiny).
                picked.push(v[idx].clone());
                any = true;
                if picked.len() >= MAX_DISCOVERED {
                    break;
                }
            }
        }
        if !any {
            break;
        }
        idx += 1;
    }
    picked.sort_by(|a, b| a.name.cmp(&b.name));
    set.rules.extend(picked);
    set
}

/// Full ruleset audit: structural validation, print→parse round-trip,
/// known builtin names, and exhaustive semantic verification of every
/// rule. Returns the first failure.
pub fn check(set: &RuleSet) -> Result<(), String> {
    for b in &set.builtins {
        if !BUILTINS.contains(&b.as_str()) {
            return Err(format!(
                "unknown builtin `{b}` (pass implements: {})",
                BUILTINS.join(", ")
            ));
        }
    }
    for rule in &set.rules {
        validate_rule(rule)?;
        verify_rule(rule)?;
    }
    let reparsed =
        RuleSet::parse(&set.print()).map_err(|e| format!("printed form does not re-parse: {e}"))?;
    if &reparsed != set {
        return Err("print → parse is not the identity for this set".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_set_passes_check() {
        let set = synthesize();
        check(&set).expect("synthesized ruleset must self-check");
        // The tail actually discovered something beyond the preamble.
        let preamble = RuleSet::parse(PREAMBLE).unwrap();
        assert!(
            set.rules.len() > preamble.rules.len(),
            "synthesis discovered no rules"
        );
        // Deterministic: a second run is byte-identical.
        assert_eq!(set.print(), synthesize().print());
    }

    #[test]
    fn discovered_rules_are_strict_improvements() {
        let set = synthesize();
        for r in set.rules.iter().filter(|r| r.name.starts_with("syn-")) {
            assert!(
                r.rhs.op_count() < r.lhs.op_count(),
                "rule `{}` is not strictly cheaper",
                r.name
            );
        }
    }

    #[test]
    fn verify_catches_wrong_rules() {
        let bad = RuleSet::parse("# absort-ruleset v1\nrule bad: (and x y) => (or x y)\n").unwrap();
        assert!(check(&bad).is_err());
        let bad_leg = RuleSet::parse(
            "# absort-ruleset v1\nrule bad: (cmp.0 x y), (cmp.1 x y) => (cmp.1 x y), (cmp.0 x y)\n",
        )
        .unwrap();
        assert!(check(&bad_leg).is_err());
        assert!(check(&RuleSet {
            rules: vec![],
            builtins: vec!["warp-drive".into()],
        })
        .is_err());
    }

    #[test]
    fn committed_default_ruleset_checks() {
        let text = include_str!("../../circuit/rules/absort.rules");
        let set = RuleSet::parse(text).expect("committed ruleset parses");
        check(&set).expect("committed ruleset must pass check");
    }
}
