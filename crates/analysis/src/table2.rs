//! Table II: complexities of permutation-network designs at bit level
//! (experiment E12).
//!
//! The paper's Table II compares five designs. Where we *build* the
//! design (the radix permuter over our sorters, Beneš, Batcher) the
//! numeric columns are measured/exact; for the two cited designs
//! (Jan–Oruç [11] and Koppelman–Oruç [13] / Douglass–Oruç [7]) the paper
//! itself only quotes asymptotic formulas, so we evaluate those formulas
//! (constants 1) and mark them as cited.

use crate::table::{group_digits, Table};
use absort_baselines::batcher_bits;
use absort_core::sorter::SorterKind;
use absort_networks::{benes, permuter::RadixPermuter};

/// Provenance of a Table II row's numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Computed from a construction built in this repository.
    Measured,
    /// Evaluated from the complexity formula the paper cites (constant 1).
    CitedFormula,
}

/// One design's numbers at a concrete `n`.
#[derive(Debug, Clone)]
pub struct Row {
    /// Design name as in Table II.
    pub name: &'static str,
    /// Asymptotic cost as printed in the paper.
    pub cost_asymptotic: &'static str,
    /// Asymptotic depth.
    pub depth_asymptotic: &'static str,
    /// Asymptotic permutation time.
    pub time_asymptotic: &'static str,
    /// Numeric bit-level cost at `n`.
    pub cost: u64,
    /// Numeric bit-level permutation time at `n`.
    pub time: u64,
    /// Where the numbers come from.
    pub provenance: Provenance,
}

/// Generates Table II rows at input size `n = 2^a`.
pub fn rows(n: usize) -> Vec<Row> {
    assert!(n.is_power_of_two() && n >= 8);
    let k = n.trailing_zeros() as u64;
    let lglg = (64 - (k - 1).leading_zeros()) as u64;
    let fish_rp = RadixPermuter::new(SorterKind::Fish { k: None }, n);
    let mux_rp = RadixPermuter::new(SorterKind::MuxMerger, n);
    vec![
        Row {
            name: "Benes [4] + routing [18]",
            cost_asymptotic: "O(n lg^2 n)",
            depth_asymptotic: "O(lg n)",
            time_asymptotic: "O(lg^4 n / lg lg n)",
            cost: benes::table2_cost(n),
            time: benes::table2_time(n),
            provenance: Provenance::Measured,
        },
        Row {
            name: "Batcher [3]",
            cost_asymptotic: "O(n lg^3 n)",
            depth_asymptotic: "O(lg^3 n)",
            time_asymptotic: "O(lg^3 n)",
            cost: batcher_bits::permutation_cost(n),
            time: batcher_bits::permutation_time(n),
            provenance: Provenance::Measured,
        },
        Row {
            name: "Koppelman-Oruc [13]",
            cost_asymptotic: "O(n lg^3 n)",
            depth_asymptotic: "O(lg^3 n)",
            time_asymptotic: "O(lg^3 n)",
            cost: n as u64 * k * k * k,
            time: k * k * k,
            provenance: Provenance::CitedFormula,
        },
        Row {
            name: "Jan-Oruc radix permuter [11]",
            cost_asymptotic: "O(n lg^2 n)",
            depth_asymptotic: "O(lg^2 n lg lg n)",
            time_asymptotic: "O(lg^2 n lg lg n)",
            cost: n as u64 * k * k,
            time: k * k * lglg,
            provenance: Provenance::CitedFormula,
        },
        Row {
            name: "This paper (fish sorters)",
            cost_asymptotic: "O(n lg n)",
            depth_asymptotic: "O(lg^3 n)",
            time_asymptotic: "O(lg^3 n)",
            cost: fish_rp.cost(),
            time: fish_rp.time(),
            provenance: Provenance::Measured,
        },
        Row {
            name: "This paper (mux-merger sorters)",
            cost_asymptotic: "O(n lg^2 n)",
            depth_asymptotic: "O(lg^3 n)",
            time_asymptotic: "O(lg^3 n)",
            cost: mux_rp.cost(),
            time: mux_rp.time(),
            provenance: Provenance::Measured,
        },
    ]
}

/// Renders Table II at size `n`.
pub fn render(n: usize) -> String {
    let mut t = Table::new([
        "construction".to_string(),
        "cost".into(),
        "depth".into(),
        "perm. time".into(),
        format!("cost @ n={n}"),
        format!("time @ n={n}"),
        "numbers".into(),
    ]);
    for r in rows(n) {
        t.row([
            r.name.to_string(),
            r.cost_asymptotic.to_string(),
            r.depth_asymptotic.to_string(),
            r.time_asymptotic.to_string(),
            group_digits(r.cost),
            group_digits(r.time),
            match r.provenance {
                Provenance::Measured => "measured".to_string(),
                Provenance::CitedFormula => "cited formula".to_string(),
            },
        ]);
    }
    t.render()
}

/// The paper's takeaway claims about Table II, checked numerically:
/// the fish-based permuter has the smallest cost growth; its time matches
/// the Batcher/Koppelman rows and is slightly above Jan–Oruç.
pub fn verify_claims(n: usize) -> Result<(), String> {
    let rows = rows(n);
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.name.starts_with(name))
            .unwrap_or_else(|| panic!("row {name}"))
    };
    let ours = get("This paper (fish");
    // Smallest cost *order*: compare the growth ratio against n lg n.
    let k = n.trailing_zeros() as f64;
    let ours_norm = ours.cost as f64 / (n as f64 * k);
    for other in ["Benes", "Batcher", "Koppelman", "Jan-Oruc"] {
        let o = get(other);
        let o_norm = o.cost as f64 / (n as f64 * k);
        if o_norm <= ours_norm {
            // allowed only if the other's *asymptotic* order is higher but
            // constants favour it at this n — flag if it happens at large n
            return Err(format!(
                "at n={n}, {other} normalized cost {o_norm:.1} <= ours {ours_norm:.1}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fish_permuter_has_lowest_cost_at_2_16_and_up() {
        for a in [16u32, 18, 20] {
            verify_claims(1usize << a).expect("Table II claim");
        }
    }

    #[test]
    fn table_renders_all_six_rows() {
        let s = render(1 << 10);
        assert_eq!(s.lines().count(), 2 + 6, "{s}");
        assert!(s.contains("This paper (fish sorters)"));
    }

    #[test]
    fn jan_oruc_time_is_below_ours() {
        // "slightly higher than the depth and permutation time of [11]".
        let rows = rows(1 << 16);
        let ours = rows.iter().find(|r| r.name.contains("fish")).unwrap().time;
        let jan = rows.iter().find(|r| r.name.contains("Jan")).unwrap().time;
        assert!(jan < ours);
    }
}
