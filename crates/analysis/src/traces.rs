//! Worked-example traces regenerating Figs. 8 and 9 (experiments E9,
//! E10).
//!
//! The paper illustrates the k-way mux-merger (Fig. 8, n = 16, k = 4)
//! and the k-way clean sorter (Fig. 9, n = 8, k = 4) on concrete bit
//! sequences. We drive the same machinery on the 4-sorted sequence of
//! the paper's Example 4 — `1111/0001/0011/0111` — whose k-SWAP halves
//! (`11/00/11/11` clean, `11/01/00/01` rest) are exactly the figures'
//! working values, and print every intermediate stage.

use absort_core::fish::kmerge::{clean_sort, k_swap, kmerge_traced, KMergeTrace};
use absort_core::lang::{bits, show};

/// The paper's Example 4 sequence, used as the Fig. 8 input.
pub fn fig8_input() -> Vec<bool> {
    bits("1111000100110111")
}

/// Renders the full Fig. 8 trace: the 16-input 4-way mux-merger.
pub fn fig8_trace() -> String {
    let input = fig8_input();
    let k = 4;
    let mut t = KMergeTrace::default();
    let out = kmerge_traced(&input, k, Some(&mut t));
    let g = input.len() / k;
    let mut s = String::new();
    s.push_str(&format!(
        "Fig. 8 — 16-input 4-way mux-merger\ninput (4-sorted):      {}\n\n",
        show(&input, g)
    ));
    for lvl in t.levels.iter().rev() {
        let bg = lvl.m / k;
        s.push_str(&format!("level m = {}\n", lvl.m));
        s.push_str(&format!(
            "  input:               {}\n",
            show(&lvl.input, bg)
        ));
        s.push_str(&format!(
            "  k-SWAP clean half:   {}\n",
            show(&lvl.upper_clean, bg / 2)
        ));
        s.push_str(&format!(
            "  k-SWAP rest half:    {}\n",
            show(&lvl.lower_rest, bg / 2)
        ));
        s.push_str(&format!(
            "  clean sorter out:    {}\n",
            show(&lvl.clean_sorted, bg / 2)
        ));
        s.push_str(&format!(
            "  merged:              {}\n\n",
            show(&lvl.merged, bg)
        ));
    }
    s.push_str(&format!(
        "base case (k-input sorter): {} -> {}\n",
        show(&t.base_input, 0),
        show(&t.base_output, 0)
    ));
    s.push_str(&format!("\noutput (sorted):       {}\n", show(&out, g)));
    s
}

/// The Fig. 9 input: the clean 4-sorted upper half produced by the
/// k-SWAP on the Fig. 8 input.
pub fn fig9_input() -> Vec<bool> {
    let (clean, _) = k_swap(&fig8_input(), 4);
    clean
}

/// Renders the Fig. 9 trace: the 8-input 4-way clean sorter.
pub fn fig9_trace() -> String {
    let input = fig9_input();
    let (out, trace) = clean_sort(&input, 4);
    let mut s = String::new();
    s.push_str(&format!(
        "Fig. 9 — 8-input 4-way clean sorter\ninput (clean 4-sorted): {}\n",
        show(&input, 2)
    ));
    s.push_str(&format!(
        "leading bits:           {}\n",
        show(&trace.leading_bits, 0)
    ));
    s.push_str(&format!(
        "after 4-input sorter:   {}\n",
        show(&trace.sorted_bits, 0)
    ));
    s.push_str("dispatch (block -> sorted position, one block per clock step):\n");
    for (i, d) in trace.dispatch.iter().enumerate() {
        s.push_str(&format!(
            "  step {i}: block {i} ({}) -> position {d}\n",
            show(&input[i * 2..(i + 1) * 2], 0)
        ));
    }
    s.push_str(&format!("output (sorted):        {}\n", show(&out, 2)));
    s
}

/// The Fig. 5 worked example: the 16-input prefix sorter's top-level
/// merge, with the prefix-adder count and every patch-up level shown.
pub fn fig5_trace() -> String {
    use absort_core::prefix;
    // Chosen so the ones-count (5) is not a multiple of 8: every patch-up
    // level then does real work and the select bits vary down the
    // recursion.
    let input = bits("1011000000010010");
    let (out, t) = prefix::sort_traced(&input);
    let mut s = String::new();
    s.push_str(&format!(
        "Fig. 5 — 16-input prefix binary sorter (top-level merge)\ninput:            {}\n",
        show(&input, 4)
    ));
    s.push_str(&format!(
        "upper half sorted: {}\n",
        show(&t.upper_sorted, 0)
    ));
    s.push_str(&format!(
        "lower half sorted: {}\n",
        show(&t.lower_sorted, 0)
    ));
    s.push_str(&format!(
        "shuffled (A_16):   {}   ones = {} (prefix adder)\n\n",
        show(&t.shuffled, 4),
        t.ones
    ));
    for lvl in &t.levels {
        s.push_str(&format!(
            "patch-up m = {:>2}: in {}  ones {:>2}  select {}  after-compare {}  out {}\n",
            lvl.m,
            show(&lvl.input, 0),
            lvl.ones,
            u8::from(lvl.select),
            show(&lvl.after_compare, 0),
            show(&lvl.output, 0),
        ));
    }
    s.push_str(&format!("\noutput (sorted):   {}\n", show(&out, 4)));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use absort_core::lang::{in_a_n, is_sorted, sorted_oracle};

    #[test]
    fn fig8_trace_ends_sorted() {
        let s = fig8_trace();
        assert!(
            s.contains("output (sorted):       0000/0011/1111/1111"),
            "{s}"
        );
        // the example matches the paper's Example 4 k-SWAP values
        assert!(s.contains("11/00/11/11"), "clean half of Example 4\n{s}");
        assert!(s.contains("11/01/00/01"), "rest half of Example 4\n{s}");
    }

    #[test]
    fn fig9_trace_is_consistent() {
        let s = fig9_trace();
        assert!(s.contains("leading bits:           1011"), "{s}");
        assert!(s.contains("after 4-input sorter:   0111"), "{s}");
        assert!(s.contains("output (sorted):        00/11/11/11"), "{s}");
    }

    #[test]
    fn fig5_trace_is_consistent() {
        let s = fig5_trace();
        assert!(s.contains("Fig. 5"), "{s}");
        assert!(s.contains("patch-up m = 16"));
        assert!(s.contains("patch-up m =  4"));
        // the trace ends sorted
        let input = bits("1011000000010010");
        let expect = format!("output (sorted):   {}", show(&sorted_oracle(&input), 4));
        assert!(s.contains(&expect), "{s}");
        // the example is non-trivial: at least two distinct select values
        // appear across the patch-up levels
        let selects: std::collections::HashSet<&str> = s
            .lines()
            .filter(|l| l.starts_with("patch-up"))
            .map(|l| {
                l.split("select ")
                    .nth(1)
                    .unwrap()
                    .split_whitespace()
                    .next()
                    .unwrap()
            })
            .collect();
        assert!(selects.len() >= 2, "selects should vary\n{s}");
        // every patch-up input is in A_m (Theorems 1–2 visible in the trace)
        for line in s.lines().filter(|l| l.starts_with("patch-up")) {
            let seq = line
                .split("in ")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap();
            assert!(in_a_n(&bits(seq)), "{line}");
        }
    }

    #[test]
    fn fig8_input_matches_example_4() {
        let i = fig8_input();
        assert_eq!(show(&i, 4), "1111/0001/0011/0111");
        assert_eq!(sorted_oracle(&i).iter().filter(|&&b| b).count(), 10);
        assert!(!is_sorted(&i));
        // A_n membership is not required of Fig. 8's example input; the
        // merger gets a *bisorted* sequence, checked in the trace itself.
    }
}
