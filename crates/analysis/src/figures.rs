//! ASCII figure rendering for the sweep series.
//!
//! The paper communicates its results as complexity expressions; the
//! reproduction's "figures" are cost/time-vs-n series. This module
//! renders multi-series data as a log₂–log₂ ASCII scatter chart so
//! `repro` can show the *shape* claims (parallel lines = same order,
//! diverging lines = different order, crossings = crossovers) directly
//! in a terminal, with no plotting dependencies.

use std::fmt::Write as _;

/// One data series: a label, a plotting glyph, and `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Single-character glyph used on the canvas.
    pub glyph: char,
    /// Data points (both axes plotted at log₂ scale; must be positive).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, glyph: char, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            glyph,
            points,
        }
    }
}

/// Renders the series into a `width × height` ASCII chart with log₂
/// axes. Points that collide keep the later series' glyph; axis labels
/// show the log₂ ranges.
pub fn render_loglog(series: &[Series], width: usize, height: usize, title: &str) -> String {
    assert!(width >= 16 && height >= 6, "canvas too small");
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    assert!(!pts.is_empty(), "nothing to plot");
    for &(x, y) in &pts {
        assert!(x > 0.0 && y > 0.0, "log-log needs positive data");
    }
    let lx = |v: f64| v.log2();
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(lx(x));
        x1 = x1.max(lx(x));
        y0 = y0.min(lx(y));
        y1 = y1.max(lx(y));
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut canvas = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let cx = ((lx(x) - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((lx(y) - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            canvas[height - 1 - cy][cx] = s.glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}   [log2-log2]");
    for (r, row) in canvas.iter().enumerate() {
        let y_here = y1 - (y1 - y0) * r as f64 / (height - 1) as f64;
        let label = if r == 0 || r == height - 1 || r == height / 2 {
            format!("2^{y_here:>5.1} |")
        } else {
            "        |".to_string()
        };
        let _ = writeln!(out, "{label}{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "        +{}", "-".repeat(width));
    let _ = writeln!(
        out,
        "         2^{x0:.1}{:>pad$}",
        format!("2^{x1:.1}"),
        pad = width.saturating_sub(6)
    );
    for s in series {
        let _ = writeln!(out, "  {} = {}", s.glyph, s.label);
    }
    out
}

/// The headline figure: bit-level cost of all sorters vs n, as an ASCII
/// chart.
pub fn sorter_cost_figure(exps: &[u32]) -> String {
    use absort_baselines::batcher_bits;
    use absort_core::{muxmerge, prefix, FishSorter};
    let mk = |f: &dyn Fn(usize) -> u64| -> Vec<(f64, f64)> {
        exps.iter()
            .map(|&a| {
                let n = 1usize << a;
                (n as f64, f(n) as f64)
            })
            .collect()
    };
    let series = vec![
        Series::new(
            "Batcher binary (n lg^2 n)",
            'B',
            mk(&batcher_bits::binary_cost),
        ),
        Series::new(
            "mux-merger (4n lg n)",
            'M',
            mk(&|n| muxmerge::formulas::sorter_cost_exact(n)),
        ),
        Series::new("prefix (3n lg n)", 'P', mk(&prefix::paper_cost_dominant)),
        Series::new(
            "fish (O(n))",
            'F',
            mk(&|n| {
                let f = FishSorter::with_default_k(n);
                absort_core::fish::formulas::total_cost_exact(n, f.k)
            }),
        ),
    ];
    render_loglog(&series, 64, 18, "bit-level sorter cost vs n")
}

/// The sorting-time figure: fish serial vs pipelined vs columnsort.
pub fn sorting_time_figure(exps: &[u32]) -> String {
    use absort_baselines::columnsort::{ColumnsortModel, Geometry};
    use absort_core::fish::schedule;
    use absort_core::FishSorter;
    let mut serial = Vec::new();
    let mut piped = Vec::new();
    let mut colsort = Vec::new();
    for &a in exps {
        let n = 1usize << a;
        let f = FishSorter::with_default_k(n);
        serial.push((n as f64, schedule::sorting_time(n, f.k, false) as f64));
        piped.push((n as f64, schedule::sorting_time(n, f.k, true) as f64));
        let cs = ColumnsortModel {
            g: Geometry::paper_params(n),
        };
        colsort.push((n as f64, cs.time(false) as f64));
    }
    let series = vec![
        Series::new("columnsort serial (lg^4 n)", 'C', colsort),
        Series::new("fish serial (lg^3 n)", 'S', serial),
        Series::new("fish pipelined (lg^2 n)", 'p', piped),
    ];
    render_loglog(&series, 64, 16, "Model B sorting time vs n")
}

/// The depth figure: bit-level depth of the combinational sorters vs
/// Batcher (all `Θ(lg² n)` — parallel lines with different constants).
pub fn sorter_depth_figure(exps: &[u32]) -> String {
    use absort_baselines::batcher_bits;
    use absort_core::muxmerge;
    let mk = |f: &dyn Fn(usize) -> u64| -> Vec<(f64, f64)> {
        exps.iter()
            .map(|&a| {
                let n = 1usize << a;
                (n as f64, f(n) as f64)
            })
            .collect()
    };
    let series = vec![
        Series::new(
            "Batcher depth lg n(lg n+1)/2",
            'B',
            mk(&batcher_bits::binary_depth),
        ),
        Series::new(
            "mux-merger depth (exact)",
            'M',
            mk(&|n| muxmerge::formulas::sorter_depth_exact(n)),
        ),
        Series::new(
            "nonadaptive Fig. 4(b) depth",
            'N',
            mk(&|n| {
                let k = n.trailing_zeros() as u64;
                k * (k + 1) / 2
            }),
        ),
    ];
    render_loglog(&series, 64, 14, "bit-level sorter depth vs n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_figure_renders() {
        let f = sorter_depth_figure(&[8, 12, 16, 20]);
        for g in ['B', 'M', 'N'] {
            assert!(f.contains(g), "missing {g}\n{f}");
        }
    }

    #[test]
    fn chart_renders_all_series() {
        let s = vec![
            Series::new("a", 'a', vec![(2.0, 4.0), (4.0, 16.0)]),
            Series::new("b", 'b', vec![(2.0, 8.0), (4.0, 64.0)]),
        ];
        let out = render_loglog(&s, 32, 8, "test");
        assert!(out.contains("test"));
        assert!(out.contains('a'));
        assert!(out.contains('b'));
        assert!(out.contains("= a"));
    }

    #[test]
    fn headline_figures_render() {
        let f = sorter_cost_figure(&[10, 12, 14, 16, 18, 20]);
        for g in ['B', 'M', 'P', 'F'] {
            assert!(f.contains(g), "missing glyph {g}\n{f}");
        }
        let t = sorting_time_figure(&[12, 16, 20, 24]);
        for g in ['C', 'S', 'p'] {
            assert!(t.contains(g), "missing glyph {g}\n{t}");
        }
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn zero_data_rejected() {
        let s = vec![Series::new("z", 'z', vec![(0.0, 1.0)])];
        let _ = render_loglog(&s, 32, 8, "bad");
    }

    #[test]
    fn fish_series_lies_below_batcher_at_large_n() {
        // shape check straight from the figure data
        use absort_baselines::batcher_bits;
        use absort_core::FishSorter;
        let n = 1usize << 20;
        let f = FishSorter::with_default_k(n);
        let fish = absort_core::fish::formulas::total_cost_exact(n, f.k);
        assert!(fish < batcher_bits::binary_cost(n) / 4);
    }
}
