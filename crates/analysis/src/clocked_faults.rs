//! Fault injection for the clocked fish streamer (Model B resilience).
//!
//! The combinational campaigns of [`crate::faults`] freeze time: a fault
//! either corrupts one evaluation or it does not. The paper's Model B
//! machines are different — one shared sorter touches every group of the
//! stream, a counter register steers it, and state corrupted on cycle
//! `c` echoes into every later cycle. This module scores permanent and
//! cycle-precise transient faults on the *hardened* streaming sorter of
//! [`absort_networks::hardened::streaming_sorter`] over full sort
//! schedules:
//!
//! * a **schedule** holds one `n`-bit input stable for `k` cycles while
//!   the machine sorts one `n/k`-group per cycle; the concatenated
//!   stream is completed by a fault-free combinational k-merger
//!   (Definition 4 back end), and the completed output is judged by the
//!   same offline zero-one + conservation oracle as the combinational
//!   campaigns;
//! * **permanent** faults (netlist rewrites of the machine's
//!   combinational core, wire stuck-ats and bridges) apply on every
//!   cycle of every schedule;
//! * **transient** upsets are `(wire, cycle)` pairs — the
//!   [`absort_circuit::faulty::FaultyEvaluator`] counts one vector per
//!   clock step, so a `TransientFlip` at vector `c` hits exactly cycle
//!   `c`, and any corruption latched into the counter register persists
//!   beyond it;
//! * the streamer's **error rail** is read every cycle; a fault is
//!   `flagged` when the rail went high on any cycle of any schedule
//!   (concurrent detection), next to the offline `detected` verdict.
//!
//! Unlike the combinational sweeps, the fault universe here is the whole
//! machine core — shared sorter, group multiplexer, counter, *and* the
//! checker itself — so the report also exposes false alarms: checker
//! faults that raise the rail while the data stream stays correct show
//! up as `flagged` without `detected`.

use absort_circuit::clocked::ClockedCircuit;
use absort_circuit::faulty::{observable_wires, permanent_fault_sites};
use absort_circuit::mutate::{self, Fault};
use absort_circuit::{Circuit, EvalError, WireFault};
use absort_core::{fish, lang};
use absort_faults::{Degradation, FaultKind, KindReport, NetworkReport};
use absort_networks::hardened::{streaming_sorter, StreamingSorter};
use rand::prelude::*;

use crate::faults::{fish_k, fnv1a, CampaignConfig};

/// The `network` name the clocked unit reports under.
pub const CLOCKED_NETWORK: &str = "fish-clocked";

/// Schedule-count ceiling: all `2^n` inputs when they fit, otherwise a
/// seeded sample of this many. Each schedule costs `k` scalar clock
/// steps per fault, so the clocked unit budgets tighter than the
/// lane-packed combinational sweeps.
const MAX_SCHEDULES: usize = 256;

/// The fixed test bench one clocked campaign runs against.
struct Harness {
    streamer: StreamingSorter,
    /// Fault-free combinational k-merger completing the streamed
    /// k-sorted sequence.
    merger: Circuit,
    schedules: Vec<Vec<bool>>,
    tier: &'static str,
    /// Fault-free per-cycle group outputs, `reference[s][c]` = the data
    /// lines cycle `c` of schedule `s` presents.
    reference: Vec<Vec<Vec<bool>>>,
}

/// Either simulator the sweep drives — fault-free over a rewritten core,
/// or the fault-overlay simulator over the pristine core.
enum AnySim<'m> {
    Clean(absort_circuit::clocked::ClockedSim<'m>),
    Faulty(absort_circuit::clocked::FaultyClockedSim<'m>),
}

impl AnySim<'_> {
    fn try_step(&mut self, ext_in: &[bool]) -> Result<Vec<bool>, EvalError> {
        match self {
            AnySim::Clean(s) => s.try_step(ext_in),
            AnySim::Faulty(s) => s.try_step(ext_in),
        }
    }
}

fn harness(cfg: &CampaignConfig) -> Harness {
    let n = cfg.n;
    let k = fish_k(n);
    let streamer = streaming_sorter(n, k, Some(&cfg.harden));
    assert!(streamer.has_rail, "clocked campaign needs the error rail");
    let merger = fish::circuits::build_combinational_kmerger(n, k);

    let (schedules, tier): (Vec<Vec<bool>>, _) =
        if n < usize::BITS as usize && (1usize << n) <= MAX_SCHEDULES.min(cfg.max_exhaustive) {
            (lang::all_sequences(n).collect(), "exhaustive")
        } else {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ fnv1a(CLOCKED_NETWORK));
            let count = MAX_SCHEDULES.min(cfg.max_exhaustive);
            (
                (0..count)
                    .map(|_| (0..n).map(|_| rng.gen::<bool>()).collect())
                    .collect(),
                "sampled",
            )
        };

    // Fault-free reference: per-cycle group data, a quiet rail, and a
    // completed output that matches the sorted oracle.
    let group = streamer.group;
    let mut reference = Vec::with_capacity(schedules.len());
    for sched in &schedules {
        let trace = vec![sched.clone(); k];
        let outs = streamer
            .machine
            .power_on()
            .try_run(&trace)
            .expect("schedule arity matches the machine");
        let mut data = Vec::with_capacity(k);
        for out in &outs {
            assert!(!out[group], "rail must stay quiet fault-free");
            data.push(out[..group].to_vec());
        }
        let completed = merger.eval(&data.concat());
        assert_eq!(
            completed,
            lang::sorted_oracle(sched),
            "fault-free stream must complete to the sorted oracle"
        );
        reference.push(data);
    }

    Harness {
        streamer,
        merger,
        schedules,
        tier,
        reference,
    }
}

/// Per-fault outcome over the swept schedules.
#[derive(Default)]
struct Outcome {
    detected: bool,
    differed: bool,
    flagged: bool,
    cycles: u64,
}

/// Runs one faulty machine over one schedule and folds the verdicts.
fn run_schedule(
    h: &Harness,
    si: usize,
    mut sim: AnySim<'_>,
    o: &mut Outcome,
    degradation: &mut Degradation,
) {
    let k = h.streamer.k;
    let group = h.streamer.group;
    let sched = &h.schedules[si];
    let mut data: Vec<Vec<bool>> = Vec::with_capacity(k);
    for _ in 0..k {
        let out = sim
            .try_step(sched)
            .expect("schedule arity matches the machine");
        o.cycles += 1;
        if out[group] {
            o.flagged = true;
            degradation.flagged += 1;
        }
        data.push(out[..group].to_vec());
    }
    if data != h.reference[si] {
        o.differed = true;
    }
    let completed = h.merger.eval(&data.concat());
    let true_ones = sched.iter().filter(|&&b| b).count();
    let ones = completed.iter().filter(|&&b| b).count();
    if !lang::is_sorted(&completed) || ones != true_ones {
        o.detected = true;
        degradation.observe(&completed, true_ones);
    }
}

/// Folds one fault's outcome into a report cell, mirroring the
/// combinational campaign's masked-set accounting.
fn tally(cell: &mut KindReport, o: &Outcome) -> u64 {
    cell.injected += 1;
    if o.detected {
        cell.detected += 1;
    } else if !o.differed {
        cell.masked += 1;
    }
    if o.flagged {
        cell.flagged += 1;
    }
    o.cycles
}

/// Runs the clocked fish-streamer campaign at `cfg.n` and returns its
/// report (network name [`CLOCKED_NETWORK`], `fault_set_size = 1`).
pub fn run_clocked_fish(cfg: &CampaignConfig) -> NetworkReport {
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span("faults/clocked");
    let h = harness(cfg);
    let comb = h.streamer.machine.comb();
    let k = h.streamer.k;
    let kbits = h.streamer.machine.n_state();
    let n_ext_out = h.streamer.machine.n_outputs();
    let mut total_cycles = 0u64;

    let mut kinds: Vec<KindReport> = Vec::new();

    // --- netlist rewrites of the combinational core ---------------------
    for fault in Fault::ALL {
        let kind = match fault {
            Fault::InvertBehaviour => FaultKind::InvertBehaviour,
            Fault::StuckSelectLow => FaultKind::StuckSelectLow,
            Fault::StuckSelectHigh => FaultKind::StuckSelectHigh,
        };
        let mut cell = KindReport {
            kind: Some(kind),
            ..Default::default()
        };
        for (_, mutant) in mutate::mutants(comb, fault) {
            mutant
                .validate()
                .unwrap_or_else(|e| panic!("clocked mutant failed validation: {e}"));
            let machine = ClockedCircuit::new(mutant, cfg.n, n_ext_out, vec![false; kbits]);
            let mut o = Outcome::default();
            for si in 0..h.schedules.len() {
                run_schedule(
                    &h,
                    si,
                    AnySim::Clean(machine.power_on()),
                    &mut o,
                    &mut cell.degradation,
                );
            }
            total_cycles += tally(&mut cell, &o);
        }
        kinds.push(cell);
    }

    // --- wire-granularity permanent faults ------------------------------
    // Site enumeration needs the core's full input space: external lines
    // crossed with every counter state the schedule visits.
    let mut comb_vectors: Vec<Vec<bool>> = Vec::new();
    for sched in &h.schedules {
        for c in 0..k {
            let mut v = sched.clone();
            for b in 0..kbits {
                v.push(c >> b & 1 == 1);
            }
            comb_vectors.push(v);
        }
    }
    let sites = permanent_fault_sites(comb, &comb_vectors);
    for kind in [
        FaultKind::StuckAt0,
        FaultKind::StuckAt1,
        FaultKind::BridgeOr,
    ] {
        let mut cell = KindReport {
            kind: Some(kind),
            ..Default::default()
        };
        for &site in sites.iter().filter(|s| match kind {
            FaultKind::StuckAt0 => matches!(s, WireFault::StuckAt { value: false, .. }),
            FaultKind::StuckAt1 => matches!(s, WireFault::StuckAt { value: true, .. }),
            _ => matches!(s, WireFault::BridgeOr { .. }),
        }) {
            let mut o = Outcome::default();
            for si in 0..h.schedules.len() {
                run_schedule(
                    &h,
                    si,
                    AnySim::Faulty(h.streamer.machine.power_on_faulty(&[site])),
                    &mut o,
                    &mut cell.degradation,
                );
            }
            total_cycles += tally(&mut cell, &o);
        }
        kinds.push(cell);
    }

    // --- cycle-precise transient upsets ---------------------------------
    // The faulty simulator counts one vector per clock step, so vector
    // index `c` is exactly cycle `c` of the run. Each sample targets one
    // (wire, cycle, schedule) triple; corruption latched into the
    // counter register persists past the upset cycle.
    let mut cell = KindReport {
        kind: Some(FaultKind::TransientFlip),
        ..Default::default()
    };
    let cone = observable_wires(comb);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fnv1a(CLOCKED_NETWORK) ^ 0x7f1b);
    for _ in 0..cfg.transient_samples {
        let wire = cone[rng.gen_range(0..cone.len())];
        let cycle = rng.gen_range(0..k) as u64;
        let si = rng.gen_range(0..h.schedules.len());
        let fault = WireFault::TransientFlip {
            wire,
            vector: cycle,
        };
        let mut o = Outcome::default();
        run_schedule(
            &h,
            si,
            AnySim::Faulty(h.streamer.machine.power_on_faulty(&[fault])),
            &mut o,
            &mut cell.degradation,
        );
        total_cycles += tally(&mut cell, &o);
    }
    kinds.push(cell);

    #[cfg(feature = "telemetry")]
    absort_telemetry::counter_add("faults.clocked.cycles", total_cycles);
    #[cfg(not(feature = "telemetry"))]
    let _ = total_cycles;

    // The cost columns price the checker: the bare (unhardened)
    // streamer core against the self-checking one actually swept.
    let bare_cost = streaming_sorter(cfg.n, k, None).machine.comb().cost().total;

    NetworkReport {
        network: CLOCKED_NETWORK.to_owned(),
        n: cfg.n,
        components: comb.n_components() as u64,
        base_cost: bare_cost,
        hardened_cost: comb.cost().total,
        tier: h.tier.to_owned(),
        vectors: h.schedules.len() as u64,
        fault_set_size: 1,
        kinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            n: 4,
            transient_samples: 16,
            ..Default::default()
        }
    }

    #[test]
    fn harness_reference_is_exhaustive_and_sound() {
        let h = harness(&small_cfg());
        assert_eq!(h.tier, "exhaustive");
        assert_eq!(h.schedules.len(), 16);
        assert_eq!(h.reference.len(), 16);
        for per_cycle in &h.reference {
            assert_eq!(per_cycle.len(), h.streamer.k);
        }
    }

    #[test]
    fn clocked_campaign_reports_and_is_deterministic() {
        let cfg = small_cfg();
        let a = run_clocked_fish(&cfg);
        assert_eq!(a.network, CLOCKED_NETWORK);
        assert_eq!(a.fault_set_size, 1);
        assert_eq!(a.vectors, 16);
        assert_eq!(a.kinds.len(), 7);
        let injected: u64 = a.kinds.iter().map(|c| c.injected).sum();
        assert!(injected > 0, "no clocked faults swept");
        let detected: u64 = a.kinds.iter().map(|c| c.detected).sum();
        assert!(detected > 0, "some clocked fault must corrupt the stream");
        let flagged: u64 = a.kinds.iter().map(|c| c.flagged).sum();
        assert!(flagged > 0, "the rail must fire for some clocked fault");
        let b = run_clocked_fish(&cfg);
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn transient_counter_upsets_can_outlive_their_cycle() {
        // A transient on the counter's next-state feed corrupts the
        // register, steering the *wrong group* into the shared sorter on
        // later cycles — the degradation mode unique to Model B. Assert
        // the sweep saw at least one transient whose output differed
        // from the reference (cycle-precise injection reaches state).
        let cfg = CampaignConfig {
            n: 4,
            transient_samples: 64,
            ..Default::default()
        };
        let report = run_clocked_fish(&cfg);
        let cell = report
            .kinds
            .iter()
            .find(|c| c.kind == Some(FaultKind::TransientFlip))
            .unwrap();
        assert_eq!(cell.injected, 64);
        assert!(
            cell.injected > cell.masked,
            "some transient must perturb the stream"
        );
    }
}
