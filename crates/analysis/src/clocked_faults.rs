//! Fault injection for the clocked fish streamer (Model B resilience).
//!
//! The combinational campaigns of [`crate::faults`] freeze time: a fault
//! either corrupts one evaluation or it does not. The paper's Model B
//! machines are different — one shared sorter touches every group of the
//! stream, a counter register steers it, and state corrupted on cycle
//! `c` echoes into every later cycle. This module scores permanent and
//! cycle-precise transient faults on the *hardened* streaming sorter of
//! [`absort_networks::hardened::streaming_sorter`] over full sort
//! schedules:
//!
//! * a **schedule** holds one `n`-bit input stable for `k` cycles while
//!   the machine sorts one `n/k`-group per cycle; the concatenated
//!   stream is completed by a fault-free combinational k-merger
//!   (Definition 4 back end), and the completed output is judged by the
//!   same offline zero-one + conservation oracle as the combinational
//!   campaigns;
//! * **permanent** faults (netlist rewrites of the machine's
//!   combinational core, wire stuck-ats and bridges) apply on every
//!   cycle of every schedule;
//! * **transient** upsets are `(wire, cycle)` pairs — the
//!   [`absort_circuit::faulty::FaultyEvaluator`] counts one vector per
//!   clock step, so a `TransientFlip` at vector `c` hits exactly cycle
//!   `c`, and any corruption latched into the counter register persists
//!   beyond it;
//! * the streamer's **error rail** is read every cycle; a fault is
//!   `flagged` when the rail went high on any cycle of any schedule
//!   (concurrent detection), next to the offline `detected` verdict.
//!
//! Unlike the combinational sweeps, the fault universe here is the whole
//! machine core — shared sorter, group multiplexer, counter (plus its
//! shadow/parity/heartbeat checker under control hardening), *and* the
//! checker itself — so the report also exposes false alarms: checker
//! faults that raise the rail while the data stream stays correct show
//! up as `flagged` without `detected`.
//!
//! ## Recovery semantics (schema v3)
//!
//! Every schedule whose rail fired is **replayed**: the machine's reset
//! line is pulsed (registers restored, the cycle counter keeps running,
//! so a latched transient does not re-fire) and the same schedule re-run.
//! A fault all of whose replays come back clean — quiet rail *and* a
//! completed stream matching the sorted oracle — is scored `recovered`;
//! a fault whose flag persists through some replay is `fail_stop` (the
//! machine must be pulled, but it failed *loudly*). Replays never touch
//! the v2 columns: `detected`/`masked`/`flagged` and the degradation
//! extremes come from the primary run alone.
//!
//! ## Multi-tenant streaming
//!
//! With `tenants = t > 1`, schedules are round-robined through **one**
//! powered-on machine `t` at a time instead of each getting a fresh
//! power-on: tenant `j` of a batch owns cycles `[j·k, (j+1)·k)`, so
//! state corrupted under one tenant's schedule is still latched when the
//! next tenant's begins — the cross-tenant interference a shared Model B
//! machine actually risks. `tenants = 1` reduces to the classic
//! one-machine-per-schedule sweep bit-for-bit. Batch occupancy feeds the
//! `pipeline.in_flight_vector_cycles` telemetry counter.

use absort_circuit::clocked::ClockedCircuit;
use absort_circuit::faulty::{observable_wires, permanent_fault_sites};
use absort_circuit::mutate::{self, Fault};
use absort_circuit::{Circuit, EvalError, WireFault};
use absort_core::{fish, lang};
use absort_faults::{Degradation, FaultKind, KindReport, NetworkReport};
use absort_networks::hardened::{streaming_sorter, StreamingSorter};
use rand::prelude::*;

use crate::faults::{fish_k, fnv1a, CampaignConfig};

/// The `network` name the clocked unit reports under.
pub const CLOCKED_NETWORK: &str = "fish-clocked";

/// Schedule-count ceiling: all `2^n` inputs when they fit, otherwise a
/// seeded sample of this many. Each schedule costs `k` scalar clock
/// steps per fault, so the clocked unit budgets tighter than the
/// lane-packed combinational sweeps.
const MAX_SCHEDULES: usize = 256;

/// The fixed test bench one clocked campaign runs against.
struct Harness {
    streamer: StreamingSorter,
    /// Fault-free combinational k-merger completing the streamed
    /// k-sorted sequence.
    merger: Circuit,
    schedules: Vec<Vec<bool>>,
    tier: &'static str,
    /// Fault-free per-cycle group outputs, `reference[s][c]` = the data
    /// lines cycle `c` of schedule `s` presents.
    reference: Vec<Vec<Vec<bool>>>,
}

/// Either simulator the sweep drives — fault-free over a rewritten core,
/// or the fault-overlay simulator over the pristine core.
enum AnySim<'m> {
    Clean(absort_circuit::clocked::ClockedSim<'m>),
    Faulty(absort_circuit::clocked::FaultyClockedSim<'m>),
}

impl AnySim<'_> {
    fn try_step(&mut self, ext_in: &[bool]) -> Result<Vec<bool>, EvalError> {
        match self {
            AnySim::Clean(s) => s.try_step(ext_in),
            AnySim::Faulty(s) => s.try_step(ext_in),
        }
    }

    /// Pulses the reset line: registers restored, cycle counter kept.
    fn reset(&mut self) {
        match self {
            AnySim::Clean(s) => s.reset(),
            AnySim::Faulty(s) => s.reset(),
        }
    }
}

fn harness(cfg: &CampaignConfig) -> Harness {
    let n = cfg.n;
    let k = fish_k(n);
    let streamer = streaming_sorter(n, k, Some(&cfg.harden));
    assert!(streamer.has_rail, "clocked campaign needs the error rail");
    let merger = fish::circuits::build_combinational_kmerger(n, k);

    let (schedules, tier): (Vec<Vec<bool>>, _) =
        if n < usize::BITS as usize && (1usize << n) <= MAX_SCHEDULES.min(cfg.max_exhaustive) {
            (lang::all_sequences(n).collect(), "exhaustive")
        } else {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ fnv1a(CLOCKED_NETWORK));
            let count = MAX_SCHEDULES.min(cfg.max_exhaustive);
            (
                (0..count)
                    .map(|_| (0..n).map(|_| rng.gen::<bool>()).collect())
                    .collect(),
                "sampled",
            )
        };

    // Fault-free reference: per-cycle group data, a quiet rail, and a
    // completed output that matches the sorted oracle.
    let group = streamer.group;
    let mut reference = Vec::with_capacity(schedules.len());
    for sched in &schedules {
        let trace = vec![sched.clone(); k];
        let outs = streamer
            .machine
            .power_on()
            .try_run(&trace)
            .expect("schedule arity matches the machine");
        let mut data = Vec::with_capacity(k);
        for out in &outs {
            assert!(!out[group], "rail must stay quiet fault-free");
            data.push(out[..group].to_vec());
        }
        let completed = merger.eval(&data.concat());
        assert_eq!(
            completed,
            lang::sorted_oracle(sched),
            "fault-free stream must complete to the sorted oracle"
        );
        reference.push(data);
    }

    Harness {
        streamer,
        merger,
        schedules,
        tier,
        reference,
    }
}

/// The machine core's visited input space: every schedule's external
/// lines crossed with the register values each cycle holds fault-free —
/// the counter, and under control hardening its shadow copy, parity bit,
/// and end-of-schedule heartbeat. Wire-fault site enumeration prunes
/// sites provably vacuous over these vectors.
fn core_vectors(h: &Harness) -> Vec<Vec<bool>> {
    let k = h.streamer.k;
    let kbits = k.trailing_zeros() as usize;
    let mut vectors = Vec::with_capacity(h.schedules.len() * k);
    for sched in &h.schedules {
        for c in 0..k {
            let mut v = sched.clone();
            for b in 0..kbits {
                v.push(c >> b & 1 == 1);
            }
            if h.streamer.hardened_control {
                // Shadow counter tracks the primary bit-for-bit.
                for b in 0..kbits {
                    v.push(c >> b & 1 == 1);
                }
                // Parity register shadows the count's LSB; the heartbeat
                // is armed by the shadow's wrap carry, so it is high
                // exactly on schedule-start cycles.
                v.push(c & 1 == 1);
                v.push(c == 0);
            }
            vectors.push(v);
        }
    }
    vectors
}

/// Per-fault outcome over the swept schedules.
#[derive(Default)]
struct Outcome {
    detected: bool,
    differed: bool,
    flagged: bool,
    /// Some flagged schedule's replay stayed dirty (rail high again or a
    /// corrupted completion): the fault is persistent, not a transient.
    replay_failed: bool,
    cycles: u64,
    /// Queue-depth integral of the tenant batches (vector·cycles spent
    /// in flight), fed to `pipeline.in_flight_vector_cycles`.
    in_flight: u64,
}

/// Runs one schedule on `sim` and folds the verdicts; returns whether
/// the rail fired during *this* schedule (the replay trigger).
fn run_schedule(
    h: &Harness,
    si: usize,
    sim: &mut AnySim<'_>,
    o: &mut Outcome,
    degradation: &mut Degradation,
) -> bool {
    let k = h.streamer.k;
    let group = h.streamer.group;
    let sched = &h.schedules[si];
    let mut flagged = false;
    let mut data: Vec<Vec<bool>> = Vec::with_capacity(k);
    for _ in 0..k {
        let out = sim
            .try_step(sched)
            .expect("schedule arity matches the machine");
        o.cycles += 1;
        if out[group] {
            flagged = true;
            o.flagged = true;
            degradation.flagged += 1;
        }
        data.push(out[..group].to_vec());
    }
    if data != h.reference[si] {
        o.differed = true;
    }
    let completed = h.merger.eval(&data.concat());
    let true_ones = sched.iter().filter(|&&b| b).count();
    let ones = completed.iter().filter(|&&b| b).count();
    if !lang::is_sorted(&completed) || ones != true_ones {
        o.detected = true;
        degradation.observe(&completed, true_ones);
    }
    flagged
}

/// Replays one flagged schedule after a reset pulse and reports whether
/// the replay came back clean: quiet rail on every cycle and a completed
/// stream matching the sorted oracle. The cycle counter is *not* rewound
/// by reset, so a transient upset latched during the primary run cannot
/// re-fire here. Replays deliberately leave the v2 columns (detection,
/// masking, flag counts, degradation) untouched.
fn replay_schedule(h: &Harness, si: usize, sim: &mut AnySim<'_>) -> bool {
    sim.reset();
    let k = h.streamer.k;
    let group = h.streamer.group;
    let sched = &h.schedules[si];
    let mut data: Vec<Vec<bool>> = Vec::with_capacity(k);
    for _ in 0..k {
        let out = sim
            .try_step(sched)
            .expect("schedule arity matches the machine");
        if out[group] {
            return false;
        }
        data.push(out[..group].to_vec());
    }
    let completed = h.merger.eval(&data.concat());
    let true_ones = sched.iter().filter(|&&b| b).count();
    lang::is_sorted(&completed) && completed.iter().filter(|&&b| b).count() == true_ones
}

/// Runs one faulty machine over `schedules`, `tenants` at a time. Each
/// batch shares one power-on simulator round-robin — tenant `j` owns
/// cycles `[j·k, (j+1)·k)` — so corruption latched under one tenant's
/// schedule is live when the next tenant's begins. `tenants = 1` is the
/// classic fresh-machine-per-schedule sweep, bit-for-bit.
///
/// After each batch, every schedule whose rail fired is replayed on the
/// same (reset) machine; `o.replay_failed` records whether any replay
/// stayed dirty.
fn score_schedules<'m>(
    h: &Harness,
    tenants: usize,
    schedules: &[usize],
    mut fresh: impl FnMut() -> AnySim<'m>,
    o: &mut Outcome,
    degradation: &mut Degradation,
) {
    let k = h.streamer.k as u64;
    for batch in schedules.chunks(tenants.max(1)) {
        let mut sim = fresh();
        let mut flagged: Vec<usize> = Vec::new();
        for &si in batch {
            if run_schedule(h, si, &mut sim, o, degradation) {
                flagged.push(si);
            }
        }
        // Queue-depth integral: while tenant j computes for k cycles,
        // the batch's j later arrivals wait in flight.
        let b = batch.len() as u64;
        o.in_flight += k * (b * (b + 1) / 2);
        for &si in &flagged {
            if !replay_schedule(h, si, &mut sim) {
                o.replay_failed = true;
            }
        }
    }
}

/// Folds one fault's outcome into a report cell, mirroring the
/// combinational campaign's masked-set accounting and adding the v3
/// recovery split: every flagged fault is exactly one of `recovered`
/// (all replays clean) or `fail_stop` (some replay stayed dirty).
fn tally(cell: &mut KindReport, o: &Outcome) -> u64 {
    cell.injected += 1;
    if o.detected {
        cell.detected += 1;
    } else if !o.differed {
        cell.masked += 1;
    }
    if o.flagged {
        cell.flagged += 1;
        if o.replay_failed {
            cell.fail_stop += 1;
        } else {
            cell.recovered += 1;
        }
    }
    o.cycles
}

/// Runs the clocked fish-streamer campaign at `cfg.n` with the classic
/// one-schedule-per-machine workload (network name [`CLOCKED_NETWORK`],
/// `fault_set_size = 1`).
pub fn run_clocked_fish(cfg: &CampaignConfig) -> NetworkReport {
    run_clocked_fish_with(cfg, 1)
}

/// Runs the clocked fish-streamer campaign with `tenants` in-flight
/// schedules round-robined through each faulty machine (see the module
/// docs); `tenants = 1` matches [`run_clocked_fish`] bit-for-bit.
pub fn run_clocked_fish_with(cfg: &CampaignConfig, tenants: usize) -> NetworkReport {
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span("faults/clocked");
    let h = harness(cfg);
    let comb = h.streamer.machine.comb();
    let k = h.streamer.k;
    let n_ext_out = h.streamer.machine.n_outputs();
    let all: Vec<usize> = (0..h.schedules.len()).collect();
    let mut total_cycles = 0u64;
    let mut total_in_flight = 0u64;

    let mut kinds: Vec<KindReport> = Vec::new();

    // --- netlist rewrites of the combinational core ---------------------
    for fault in Fault::ALL {
        let kind = match fault {
            Fault::InvertBehaviour => FaultKind::InvertBehaviour,
            Fault::StuckSelectLow => FaultKind::StuckSelectLow,
            Fault::StuckSelectHigh => FaultKind::StuckSelectHigh,
        };
        let mut cell = KindReport {
            kind: Some(kind),
            ..Default::default()
        };
        for (_, mutant) in mutate::mutants(comb, fault) {
            mutant
                .validate()
                .unwrap_or_else(|e| panic!("clocked mutant failed validation: {e}"));
            // The mutant machine must power on in the streamer's own
            // reset state (under control hardening the heartbeat register
            // resets high), or every mutant would false-alarm on cycle 0.
            let machine = ClockedCircuit::new(
                mutant,
                cfg.n,
                n_ext_out,
                h.streamer.machine.reset_state().to_vec(),
            );
            let mut o = Outcome::default();
            score_schedules(
                &h,
                tenants,
                &all,
                || AnySim::Clean(machine.power_on()),
                &mut o,
                &mut cell.degradation,
            );
            total_in_flight += o.in_flight;
            total_cycles += tally(&mut cell, &o);
        }
        kinds.push(cell);
    }

    // --- wire-granularity permanent faults ------------------------------
    // Site enumeration needs the core's full input space: external lines
    // crossed with every register state the schedule visits.
    let sites = permanent_fault_sites(comb, &core_vectors(&h));
    for kind in [
        FaultKind::StuckAt0,
        FaultKind::StuckAt1,
        FaultKind::BridgeOr,
    ] {
        let mut cell = KindReport {
            kind: Some(kind),
            ..Default::default()
        };
        for &site in sites.iter().filter(|s| match kind {
            FaultKind::StuckAt0 => matches!(s, WireFault::StuckAt { value: false, .. }),
            FaultKind::StuckAt1 => matches!(s, WireFault::StuckAt { value: true, .. }),
            _ => matches!(s, WireFault::BridgeOr { .. }),
        }) {
            let mut o = Outcome::default();
            score_schedules(
                &h,
                tenants,
                &all,
                || AnySim::Faulty(h.streamer.machine.power_on_faulty(&[site])),
                &mut o,
                &mut cell.degradation,
            );
            total_in_flight += o.in_flight;
            total_cycles += tally(&mut cell, &o);
        }
        kinds.push(cell);
    }

    // --- cycle-precise transient upsets ---------------------------------
    // The faulty simulator counts one vector per clock step, so vector
    // index `c` is exactly cycle `c` of the run. Each sample targets one
    // (wire, cycle, schedule) triple; corruption latched into the
    // counter register persists past the upset cycle. Samples stay
    // single-schedule runs regardless of `tenants` — the replay protocol
    // is what demonstrates transient recovery.
    let mut cell = KindReport {
        kind: Some(FaultKind::TransientFlip),
        ..Default::default()
    };
    let cone = observable_wires(comb);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fnv1a(CLOCKED_NETWORK) ^ 0x7f1b);
    for _ in 0..cfg.transient_samples {
        let wire = cone[rng.gen_range(0..cone.len())];
        let cycle = rng.gen_range(0..k) as u64;
        let si = rng.gen_range(0..h.schedules.len());
        let fault = WireFault::TransientFlip {
            wire,
            vector: cycle,
        };
        let mut o = Outcome::default();
        score_schedules(
            &h,
            1,
            &[si],
            || AnySim::Faulty(h.streamer.machine.power_on_faulty(&[fault])),
            &mut o,
            &mut cell.degradation,
        );
        total_in_flight += o.in_flight;
        total_cycles += tally(&mut cell, &o);
    }
    kinds.push(cell);

    #[cfg(feature = "telemetry")]
    absort_telemetry::counter_add_many(&[
        ("faults.clocked.cycles", total_cycles),
        ("pipeline.in_flight_vector_cycles", total_in_flight),
    ]);
    #[cfg(not(feature = "telemetry"))]
    let _ = (total_cycles, total_in_flight);

    // The cost columns price the checker: the bare (unhardened)
    // streamer core against the self-checking one actually swept.
    let bare_cost = streaming_sorter(cfg.n, k, None).machine.comb().cost().total;

    NetworkReport {
        network: CLOCKED_NETWORK.to_owned(),
        n: cfg.n,
        components: comb.n_components() as u64,
        base_cost: bare_cost,
        hardened_cost: comb.cost().total,
        tier: h.tier.to_owned(),
        vectors: h.schedules.len() as u64,
        fault_set_size: 1,
        kinds,
    }
}

/// The physical site a wire fault occupies; sampled sets keep sites
/// distinct so `k` faults model `k` separate defects.
fn wire_site(f: &WireFault) -> (u8, usize, usize) {
    match *f {
        WireFault::StuckAt { wire, .. } => (1, wire.index(), 0),
        WireFault::BridgeOr { a, b } => (2, a.index(), b.index()),
        WireFault::TransientFlip { .. } => {
            unreachable!("transients are not pooled into multi-fault sets")
        }
    }
}

/// Sweeps sampled simultaneous `set_size`-fault sets over the clocked
/// streamer — the Model B analogue of
/// [`crate::faults::run_network_sets`]. Each sample draws `set_size`
/// wire-granularity permanent faults on distinct sites of the machine
/// core, applies them together on every cycle, and scores the set over
/// all schedules with the same tenant batching and replay protocol as
/// the single-fault sweep; the report is one mixed-kind cell with
/// `fault_set_size = set_size`.
///
/// The sampling stream depends only on `(cfg.seed, set_size)` — not on
/// which other units ran — so checkpoint-resumed campaigns reproduce
/// uninterrupted ones bit-for-bit.
pub fn run_clocked_fish_sets(
    cfg: &CampaignConfig,
    set_size: usize,
    samples: usize,
    tenants: usize,
) -> NetworkReport {
    assert!(
        set_size >= 2,
        "run_clocked_fish_sets needs set_size ≥ 2; use run_clocked_fish for singles"
    );
    #[cfg(feature = "telemetry")]
    let _span = absort_telemetry::span(&format!("faults/clocked/k{set_size}"));
    let h = harness(cfg);
    let comb = h.streamer.machine.comb();
    let k = h.streamer.k;
    let all: Vec<usize> = (0..h.schedules.len()).collect();
    let sites = permanent_fault_sites(comb, &core_vectors(&h));
    {
        let mut ids: Vec<_> = sites.iter().map(wire_site).collect();
        ids.sort_unstable();
        ids.dedup();
        assert!(
            ids.len() >= set_size,
            "clocked core at n={} has only {} distinct wire-fault sites, cannot draw {set_size}-sets",
            cfg.n,
            ids.len()
        );
    }

    let mut cell = KindReport::default(); // kind: None → "mixed"
    let mut total_cycles = 0u64;
    let mut total_in_flight = 0u64;
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ fnv1a(CLOCKED_NETWORK) ^ ((set_size as u64) << 32));
    for _ in 0..samples {
        let mut chosen: Vec<WireFault> = Vec::with_capacity(set_size);
        while chosen.len() < set_size {
            let f = sites[rng.gen_range(0..sites.len())];
            if chosen.iter().any(|c| wire_site(c) == wire_site(&f)) {
                continue;
            }
            chosen.push(f);
        }
        let mut o = Outcome::default();
        score_schedules(
            &h,
            tenants,
            &all,
            || AnySim::Faulty(h.streamer.machine.power_on_faulty(&chosen)),
            &mut o,
            &mut cell.degradation,
        );
        total_in_flight += o.in_flight;
        total_cycles += tally(&mut cell, &o);
    }

    #[cfg(feature = "telemetry")]
    absort_telemetry::counter_add_many(&[
        ("faults.clocked.cycles", total_cycles),
        ("faults.multi.sets", samples as u64),
        ("pipeline.in_flight_vector_cycles", total_in_flight),
    ]);
    #[cfg(not(feature = "telemetry"))]
    let _ = (total_cycles, total_in_flight);

    let bare_cost = streaming_sorter(cfg.n, k, None).machine.comb().cost().total;

    NetworkReport {
        network: CLOCKED_NETWORK.to_owned(),
        n: cfg.n,
        components: comb.n_components() as u64,
        base_cost: bare_cost,
        hardened_cost: comb.cost().total,
        tier: h.tier.to_owned(),
        vectors: h.schedules.len() as u64,
        fault_set_size: set_size as u64,
        kinds: vec![cell],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            n: 4,
            transient_samples: 16,
            ..Default::default()
        }
    }

    #[test]
    fn harness_reference_is_exhaustive_and_sound() {
        let h = harness(&small_cfg());
        assert_eq!(h.tier, "exhaustive");
        assert_eq!(h.schedules.len(), 16);
        assert_eq!(h.reference.len(), 16);
        for per_cycle in &h.reference {
            assert_eq!(per_cycle.len(), h.streamer.k);
        }
    }

    #[test]
    fn clocked_campaign_reports_and_is_deterministic() {
        let cfg = small_cfg();
        let a = run_clocked_fish(&cfg);
        assert_eq!(a.network, CLOCKED_NETWORK);
        assert_eq!(a.fault_set_size, 1);
        assert_eq!(a.vectors, 16);
        assert_eq!(a.kinds.len(), 7);
        let injected: u64 = a.kinds.iter().map(|c| c.injected).sum();
        assert!(injected > 0, "no clocked faults swept");
        let detected: u64 = a.kinds.iter().map(|c| c.detected).sum();
        assert!(detected > 0, "some clocked fault must corrupt the stream");
        let flagged: u64 = a.kinds.iter().map(|c| c.flagged).sum();
        assert!(flagged > 0, "the rail must fire for some clocked fault");
        let b = run_clocked_fish(&cfg);
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }

    #[test]
    fn transient_counter_upsets_can_outlive_their_cycle() {
        // A transient on the counter's next-state feed corrupts the
        // register, steering the *wrong group* into the shared sorter on
        // later cycles — the degradation mode unique to Model B. Assert
        // the sweep saw at least one transient whose output differed
        // from the reference (cycle-precise injection reaches state).
        let cfg = CampaignConfig {
            n: 4,
            transient_samples: 64,
            ..Default::default()
        };
        let report = run_clocked_fish(&cfg);
        let cell = report
            .kinds
            .iter()
            .find(|c| c.kind == Some(FaultKind::TransientFlip))
            .unwrap();
        assert_eq!(cell.injected, 64);
        assert!(
            cell.injected > cell.masked,
            "some transient must perturb the stream"
        );
    }

    #[test]
    fn recovery_split_partitions_the_flagged_faults() {
        // v3 accounting: every flagged fault is exactly one of
        // recovered/fail_stop; permanents re-manifest on replay (the
        // primary run and the replay start from the same reset state at
        // tenants = 1, so a flag always repeats → fail_stop), while
        // flagged transients cannot re-fire after reset → recovered.
        let cfg = CampaignConfig {
            n: 4,
            transient_samples: 64,
            ..Default::default()
        };
        let report = run_clocked_fish(&cfg);
        for cell in &report.kinds {
            assert_eq!(
                cell.recovered + cell.fail_stop,
                cell.flagged,
                "{:?}: recovery split must partition the flagged count",
                cell.kind
            );
            if cell.kind != Some(FaultKind::TransientFlip) {
                assert_eq!(
                    cell.recovered, 0,
                    "{:?}: a permanent fault cannot recover via replay",
                    cell.kind
                );
            }
        }
        let transients = report
            .kinds
            .iter()
            .find(|c| c.kind == Some(FaultKind::TransientFlip))
            .unwrap();
        assert!(
            transients.recovered > 0,
            "some flagged transient must clear on replay"
        );
        assert_eq!(
            transients.fail_stop, 0,
            "a reset pulse clears every latched transient"
        );
    }

    #[test]
    fn multi_tenant_sweep_is_deterministic_and_keeps_the_universe() {
        // Tenant batching changes which state each schedule starts from
        // (interference is the point), never which faults are swept.
        let cfg = small_cfg();
        let solo = run_clocked_fish_with(&cfg, 1);
        let multi = run_clocked_fish_with(&cfg, 4);
        assert_eq!(solo.kinds.len(), multi.kinds.len());
        for (a, b) in solo.kinds.iter().zip(&multi.kinds) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.injected, b.injected, "{:?}", a.kind);
        }
        // tenants = 1 is the definition of the classic sweep.
        assert_eq!(
            solo.to_json().to_pretty(),
            run_clocked_fish(&cfg).to_json().to_pretty()
        );
        let again = run_clocked_fish_with(&cfg, 4);
        assert_eq!(multi.to_json().to_pretty(), again.to_json().to_pretty());
    }

    #[test]
    fn clocked_fault_sets_sample_and_score() {
        let cfg = small_cfg();
        let report = run_clocked_fish_sets(&cfg, 2, 16, 2);
        assert_eq!(report.network, CLOCKED_NETWORK);
        assert_eq!(report.fault_set_size, 2);
        assert_eq!(report.kinds.len(), 1);
        let cell = &report.kinds[0];
        assert_eq!(cell.kind, None);
        assert_eq!(cell.injected, 16);
        assert!(cell.detected + cell.masked <= cell.injected);
        assert_eq!(cell.recovered + cell.fail_stop, cell.flagged);
        let again = run_clocked_fish_sets(&cfg, 2, 16, 2);
        assert_eq!(again.to_json().to_pretty(), report.to_json().to_pretty());
    }
}
