//! The master claim checklist: every quantitative claim the paper makes,
//! re-checked in one pass and rendered as a ✓/✗ table (`repro checklist`).
//!
//! Each entry re-derives its verdict from the constructions at run time —
//! nothing is hard-coded — so this is the one-screen answer to "does the
//! reproduction still hold?".

use crate::table::Table;
use absort_baselines::{aks, batcher_bits};
use absort_core::{fish, lang, muxmerge, nonadaptive, prefix, table1, FishSorter};

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Where the paper makes it.
    pub source: &'static str,
    /// The claim, in one line.
    pub statement: &'static str,
    /// Whether the reproduction confirms it.
    pub holds: bool,
    /// The measured evidence, in one line.
    pub evidence: String,
}

fn claim(source: &'static str, statement: &'static str, holds: bool, evidence: String) -> Claim {
    Claim {
        source,
        statement,
        holds,
        evidence,
    }
}

/// Runs the full checklist. Fast enough for CI (~seconds, release mode).
pub fn run() -> Vec<Claim> {
    let mut out = Vec::new();

    // Fig. 1 numbers
    let f1 = absort_cmpnet::catalog::fig1();
    out.push(claim(
        "§I, Fig. 1",
        "the 4-input example network has cost 5 and depth 3",
        f1.cost() == 5 && f1.depth() == 3,
        format!("cost {} depth {}", f1.cost(), f1.depth()),
    ));

    // Theorems (exhaustive at moderate sizes)
    let t1 = lang::all_sorted(8)
        .flat_map(|u| lang::all_sorted(8).map(move |l| (u.clone(), l)))
        .all(|(u, l)| lang::theorem1_holds(&u, &l));
    out.push(claim(
        "§III Thm. 1",
        "shuffled concatenation of sorted halves lies in A_n",
        t1,
        "all 81 (n1,m1) cases at n=16".into(),
    ));
    let t2 = lang::all_a_n(16).iter().all(|z| lang::theorem2_holds(z));
    out.push(claim(
        "§III Thm. 2",
        "balanced stage on A_n leaves one clean half, one A_{n/2} half",
        t2,
        format!("all {} members of A_16", lang::count_a_n(16)),
    ));
    let t3 = lang::all_bisorted(16).all(|x| lang::theorem3_holds(&x));
    out.push(claim(
        "§III Thm. 3",
        "bisorted quarters: two clean, two re-bisorted (middle-bit rule)",
        t3,
        "all 81 bisorted sequences at n=16".into(),
    ));
    let t4 = lang::all_k_sorted(16, 4)
        .iter()
        .all(|s| lang::theorem4_holds(s, 4));
    out.push(claim(
        "§III Thm. 4",
        "k-SWAP halving: clean k-sorted up, k-sorted down",
        t4,
        "all 625 4-sorted sequences at n=16".into(),
    ));

    // Network 1
    let n = 1usize << 10;
    let c1 = prefix::build(n);
    let cost1 = c1.cost().total;
    let dom = prefix::paper_cost_dominant(n);
    out.push(claim(
        "§III.A",
        "prefix sorter cost tracks 3n lg n (within ±12n)",
        cost1 + 12 * n as u64 >= dom && cost1 <= dom + 12 * n as u64,
        format!("built {cost1} vs 3n lg n = {dom} at n=1024"),
    ));
    out.push(claim(
        "§III.A",
        "prefix sorter depth within the paper's 3 lg²n + 2 lg n lg lg n bound",
        (c1.depth() as u64) <= prefix::paper_depth_bound(n),
        format!(
            "built {} vs bound {}",
            c1.depth(),
            prefix::paper_depth_bound(n)
        ),
    ));

    // Network 2
    let c2 = muxmerge::build(n);
    out.push(claim(
        "§III.B",
        "mux-merger sorter cost equals the 4n lg n − Θ(n) recurrence exactly",
        c2.cost().total == muxmerge::formulas::sorter_cost_exact(n),
        format!("built {} = recurrence", c2.cost().total),
    ));
    out.push(claim(
        "§III.B (corrected)",
        "mux-merger sorter depth is Θ(lg² n), not the printed 2 lg n",
        c2.depth() as u64 == muxmerge::formulas::sorter_depth_exact(n)
            && c2.depth() as u64 > 2 * 10,
        format!("built depth {} at n=1024 (2 lg n would be 20)", c2.depth()),
    ));

    // Table I
    out.push(claim(
        "§III.B Table I",
        "mux-merger behaviour table holds for every bisorted input",
        table1::verify(16).is_empty() && table1::verify(32).is_empty(),
        "exhaustive at n = 16 and 32".into(),
    ));

    // Network 3
    let big = 1usize << 16;
    let fk = FishSorter::with_default_k(big);
    let fish_cost = fish::formulas::total_cost_exact(big, fk.k);
    out.push(claim(
        "§III.C eq. 19",
        "fish sorter cost ≤ 17n at k = lg n",
        fish_cost <= 17 * big as u64,
        format!(
            "{fish_cost} = {:.1}n at n=2^16",
            fish_cost as f64 / big as f64
        ),
    ));
    let ts = fish::schedule::sorting_time(big, fk.k, false) as f64;
    let tp = fish::schedule::sorting_time(big, fk.k, true) as f64;
    out.push(claim(
        "§III.C eqs. 24/26",
        "sorting time O(lg³ n) serial, O(lg² n) pipelined",
        ts / (16.0 * 16.0 * 16.0) < 6.0 && tp / (16.0 * 16.0) < 8.0,
        format!("T/lg³n = {:.2}, Tpip/lg²n = {:.2}", ts / 4096.0, tp / 256.0),
    ));

    // Batcher comparison
    out.push(claim(
        "§I",
        "adaptive sorters beat Batcher's binary cost",
        prefix::paper_cost_dominant(big) < batcher_bits::binary_cost(big)
            && fish_cost < batcher_bits::binary_cost(big) / 3,
        format!(
            "Batcher {} vs prefix {} vs fish {fish_cost} at n=2^16",
            batcher_bits::binary_cost(big),
            prefix::paper_cost_dominant(big)
        ),
    ));

    // E17 adaptivity
    out.push(claim(
        "§III.A motivation",
        "nonadaptive Fig. 4(b) costs a Θ(lg n) factor more at scale",
        nonadaptive::adaptivity_saving(1 << 22) > 1.5,
        format!(
            "saving {:.2}x at n=2^22",
            nonadaptive::adaptivity_saving(1 << 22)
        ),
    ));

    // Table II headline
    out.push(claim(
        "§IV Table II",
        "fish-based permuter has the smallest cost order",
        crate::table2::verify_claims(1 << 16).is_ok()
            && crate::table2::verify_claims(1 << 20).is_ok(),
        "verified at n = 2^16 and 2^20".into(),
    ));

    // AKS crossover
    let depth_cross = aks::PATERSON.depth_crossover_exp(|a| 2.0 * (a as f64) * (a as f64), 10_000);
    let cost_cross = aks::PATERSON.cost_crossover_exp(|_| 17.0, 10_000);
    out.push(claim(
        "abstract / §V",
        "our complexities beat AKS until n is extremely large",
        matches!(depth_cross, Some(x) if x > 3000) && cost_cross.is_none(),
        format!(
            "depth crossover at 2^{}; cost: never",
            depth_cross.unwrap_or(0)
        ),
    ));

    // constants audit
    let all_small = crate::crossover::constants_audit()
        .into_iter()
        .all(|(_, v)| v <= 17.5);
    out.push(claim(
        "§V",
        "all construction constants ≤ 17",
        all_small,
        "prefix 3.4·n lg n, mux 3.6·n lg n, fish 15.5·n".into(),
    ));

    out
}

/// Renders the checklist as a table; returns `(rendered, all_hold)`.
pub fn render() -> (String, bool) {
    let claims = run();
    let mut t = Table::new(["", "source", "claim", "evidence"]);
    let mut all = true;
    for c in &claims {
        all &= c.holds;
        t.row([
            if c.holds { "✓" } else { "✗" }.to_string(),
            c.source.to_string(),
            c.statement.to_string(),
            c.evidence.clone(),
        ]);
    }
    (t.render(), all)
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_claim_holds() {
        let claims = super::run();
        assert!(claims.len() >= 15);
        for c in &claims {
            assert!(c.holds, "{} — {}: {}", c.source, c.statement, c.evidence);
        }
    }

    #[test]
    fn render_marks_all_green() {
        let (s, all) = super::render();
        assert!(all);
        assert!(!s.contains('✗'), "{s}");
    }
}
