//! The AKS crossover analysis (experiment E15): quantifying the
//! abstract's claim that "our complexities outperform those of the AKS
//! sorting network until n becomes extremely large", and the
//! "constants ≤ 17" audit of Section V.

use crate::table::Table;
use absort_baselines::aks::{AKS_ORIGINAL, HYPOTHETICAL_100, PATERSON};

/// Result of one crossover computation.
#[derive(Debug, Clone)]
pub struct Crossover {
    /// The AKS-model variant used.
    pub model_label: &'static str,
    /// Which of our networks is compared.
    pub rival: &'static str,
    /// Metric compared.
    pub metric: &'static str,
    /// Smallest exponent `a` with `n = 2^a` where AKS wins, if any below
    /// the search bound.
    pub aks_wins_at_exp: Option<u32>,
    /// The search bound used.
    pub searched_to_exp: u32,
}

/// Depth of our adaptive sorters as a function of the exponent: ≈ 2 lg² n
/// (mux-merger exact depth is `lg² n + lg n − ...`; 2 lg² n is the safe
/// upper envelope used in the paper's comparisons).
fn adaptive_depth(a: u32) -> f64 {
    2.0 * a as f64 * a as f64
}

/// Cost per input of our networks as functions of the exponent.
fn fish_cost_per_input(_a: u32) -> f64 {
    17.0
}
fn prefix_cost_per_input(a: u32) -> f64 {
    3.0 * a as f64
}
fn muxmerge_cost_per_input(a: u32) -> f64 {
    4.0 * a as f64
}

/// Computes the full crossover matrix.
pub fn matrix(max_exp: u32) -> Vec<Crossover> {
    let mut out = Vec::new();
    for model in [PATERSON, AKS_ORIGINAL, HYPOTHETICAL_100] {
        out.push(Crossover {
            model_label: model.label,
            rival: "adaptive sorters (2 lg^2 n depth)",
            metric: "depth",
            aks_wins_at_exp: model.depth_crossover_exp(adaptive_depth, max_exp),
            searched_to_exp: max_exp,
        });
        for (rival, f) in [
            (
                "fish sorter (17n cost)",
                fish_cost_per_input as fn(u32) -> f64,
            ),
            ("prefix sorter (3n lg n cost)", prefix_cost_per_input),
            ("mux-merger sorter (4n lg n cost)", muxmerge_cost_per_input),
        ] {
            out.push(Crossover {
                model_label: model.label,
                rival,
                metric: "cost",
                aks_wins_at_exp: model.cost_crossover_exp(f, max_exp),
                searched_to_exp: max_exp,
            });
        }
    }
    out
}

/// Renders the crossover matrix.
pub fn render(max_exp: u32) -> String {
    let mut t = Table::new(["AKS model", "vs", "metric", "AKS wins at"]);
    for c in matrix(max_exp) {
        t.row([
            c.model_label.to_string(),
            c.rival.to_string(),
            c.metric.to_string(),
            match c.aks_wins_at_exp {
                Some(a) => format!("n = 2^{a}"),
                None => format!("never (searched to 2^{})", c.searched_to_exp),
            },
        ]);
    }
    t.render()
}

/// The Section V constants audit: "the constants in the cost, depth, and
/// time complexity expressions are very small (≤ 17)". Returns each
/// construction's leading constant as realized by our builds.
pub fn constants_audit() -> Vec<(&'static str, f64)> {
    use absort_core::fish::formulas::total_cost_exact;
    use absort_core::muxmerge::formulas::sorter_cost_exact;
    use absort_core::prefix;

    let n = 1usize << 16;
    let a = 16.0;
    let prefix_c = {
        let c = prefix::build(1 << 12).cost().total as f64;
        c / ((1 << 12) as f64 * 12.0)
    };
    let mux_c = sorter_cost_exact(n) as f64 / (n as f64 * a);
    let fish_c = total_cost_exact(n, 16) as f64 / n as f64;
    vec![
        ("prefix sorter: cost / (n lg n)", prefix_c),
        ("mux-merger sorter: cost / (n lg n)", mux_c),
        ("fish sorter (k = lg n): cost / n", fish_c),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paterson_never_beats_fish_on_cost() {
        let m = matrix(2000);
        let fish = m
            .iter()
            .find(|c| c.model_label.contains("Paterson") && c.rival.contains("fish"))
            .unwrap();
        assert!(fish.aks_wins_at_exp.is_none());
    }

    #[test]
    fn aks_never_wins_on_cost_against_same_order_rivals() {
        // AKS cost is Θ(n lg n) with constant ≥ 50 per comparator level;
        // the prefix/mux-merger sorters are Θ(n lg n) with constants 3–4,
        // so on cost AKS never catches up at any n.
        let m = matrix(20_000);
        for rival in ["prefix", "mux-merger"] {
            let c = m
                .iter()
                .find(|c| c.model_label.contains("Paterson") && c.rival.contains(rival))
                .unwrap();
            assert!(c.aks_wins_at_exp.is_none(), "{rival}");
        }
    }

    #[test]
    fn aks_eventually_wins_on_depth_but_astronomically_late() {
        let m = matrix(20_000);
        let d = m
            .iter()
            .find(|c| c.model_label.contains("Paterson") && c.metric == "depth")
            .unwrap();
        let x = d
            .aks_wins_at_exp
            .expect("AKS O(lg n) depth eventually wins");
        assert!(x > 3000, "depth crossover at 2^{x} should be astronomical");
    }

    #[test]
    fn constants_are_at_most_17() {
        for (name, c) in constants_audit() {
            assert!(c <= 17.5, "{name} constant {c}");
            assert!(c > 1.0, "{name} constant {c} suspiciously small");
        }
    }

    #[test]
    fn render_mentions_never() {
        let s = render(100);
        assert!(s.contains("never"));
    }
}
