//! Ablations of the paper's design choices (experiments E16–E18).
//!
//! The paper motivates three specific mechanisms; each ablation swaps one
//! out on the *built circuits* and measures the difference:
//!
//! * **E16 — prefix adders vs ripple-carry** (Network 1). Measured
//!   finding: inside the sorter the adder kind changes *nothing* — the
//!   count path hides behind the deeper patch-up path — and even the
//!   standalone popcount tree stays `O(lg n)` deep with ripple adders
//!   thanks to carry skew across tree levels. Prefix adders only win for
//!   a single wide addition. (A sharper statement than the paper's, from
//!   measurement.)
//! * **E17 — adaptivity itself** (Network 2 vs the nonadaptive bit-level
//!   Fig. 4(b) sorter). The saving is the predicted `Θ(lg n)` factor:
//!   `n lg n (lg n+1)/4` comparators vs `≈ 4 n lg n` adaptive units.
//! * **E18 — time-multiplexed vs combinational dispatch** (Network 3's
//!   clean sorter). The combinational dispatch costs `Θ(k·m)` per merger
//!   level against the paper's `m + k`; time-multiplexing is what makes
//!   the `O(n)` total possible.

use crate::table::{group_digits, Table};
use absort_blocks::adder::AdderKind;
use absort_core::fish::circuits::dispatch_ablation;
use absort_core::{muxmerge, nonadaptive, prefix};

/// E16: adder-kind ablation rows (measured on built circuits).
pub fn adder_ablation(exps: &[u32]) -> Table {
    let mut t = Table::new([
        "n",
        "depth (prefix adders)",
        "depth (ripple adders)",
        "cost (prefix)",
        "cost (ripple)",
    ]);
    for &a in exps {
        let n = 1usize << a;
        let fast = prefix::build_with_adder(n, AdderKind::Prefix);
        let slow = prefix::build_with_adder(n, AdderKind::Ripple);
        t.row([
            n.to_string(),
            fast.depth().to_string(),
            slow.depth().to_string(),
            group_digits(fast.cost().total),
            group_digits(slow.cost().total),
        ]);
    }
    t
}

/// E17: adaptivity ablation — the nonadaptive Fig. 4(b) bit-level sorter
/// vs the adaptive mux-merger sorter, same function, same depth order.
pub fn adaptivity_ablation(exps: &[u32]) -> Table {
    let mut t = Table::new([
        "n",
        "nonadaptive cost",
        "adaptive (mux-merger) cost",
        "saving",
        "nonadaptive depth",
        "adaptive depth",
    ]);
    for &a in exps {
        let n = 1usize << a;
        let na = nonadaptive::cost_exact(n);
        let ad = muxmerge::formulas::sorter_cost_exact(n);
        t.row([
            format!("2^{a}"),
            group_digits(na),
            group_digits(ad),
            format!("{:.2}x", na as f64 / ad as f64),
            (a as usize * (a as usize + 1) / 2).to_string(),
            muxmerge::formulas::sorter_depth_exact(n).to_string(),
        ]);
    }
    t
}

/// E18: dispatch ablation — combinational vs time-multiplexed clean-sorter
/// dispatch at the top merger level.
pub fn dispatch_ablation_table(cases: &[(usize, usize)]) -> Table {
    let mut t = Table::new([
        "m",
        "k",
        "combinational dispatch",
        "time-multiplexed (m + k)",
        "factor",
    ]);
    for &(m, k) in cases {
        let (comb, tm) = dispatch_ablation(m, k);
        t.row([
            m.to_string(),
            k.to_string(),
            group_digits(comb),
            group_digits(tm),
            format!("{:.1}x", comb as f64 / tm as f64),
        ]);
    }
    t
}

/// Renders all three ablations.
pub fn render_all() -> String {
    let mut s = String::new();
    s.push_str("E16 — adder kind inside Network 1 (measured: no depth change):\n");
    s.push_str(&adder_ablation(&[6, 8, 10, 12]).render());
    s.push_str("\nE17 — adaptivity: nonadaptive Fig. 4(b) vs adaptive mux-merger:\n");
    s.push_str(&adaptivity_ablation(&[6, 10, 14, 18, 22]).render());
    s.push_str("\nE18 — clean-sorter dispatch: combinational vs time-multiplexed:\n");
    s.push_str(&dispatch_ablation_table(&[(64, 4), (256, 8), (1024, 16)]).render());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_depths_equal() {
        let t = adder_ablation(&[8]);
        let csv = t.to_csv();
        let row: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row[1], row[2], "prefix vs ripple depth must match: {csv}");
    }

    #[test]
    fn e17_saving_grows() {
        let f = |a: u32| nonadaptive::adaptivity_saving(1usize << a);
        assert!(f(22) > f(14));
        assert!(f(14) > f(6));
        assert!(f(22) > 1.3, "at 2^22 the saving must be substantial");
        // table renders without panicking and has the right shape
        assert_eq!(adaptivity_ablation(&[6, 14, 22]).len(), 3);
    }

    #[test]
    fn e18_factor_exceeds_k_over_constant() {
        let t = dispatch_ablation_table(&[(256, 8)]);
        let csv = t.to_csv();
        let r: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        let factor: f64 = r[4].trim_end_matches('x').parse().unwrap();
        assert!(factor > 3.0, "combinational dispatch must cost several x");
    }

    #[test]
    fn render_all_contains_three_sections() {
        let s = render_all();
        assert!(s.contains("E16"));
        assert!(s.contains("E17"));
        assert!(s.contains("E18"));
    }
}
