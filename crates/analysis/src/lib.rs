//! # absort-analysis — experiment drivers and paper-vs-measured analysis
//!
//! Produces every table and figure series of the reproduction:
//!
//! * [`table`] — plain-text/CSV table rendering used by all reports;
//! * [`sweeps`] — cost/depth/time sweeps of the three adaptive sorters
//!   against their closed forms and the Batcher baseline (figure series
//!   for Figs. 4–7, experiments E4–E6, E8);
//! * [`table2`] — regenerates Table II (permutation-network complexity
//!   comparison, experiment E12);
//! * [`concentrators`] — the Section IV concentrator comparison (E14);
//! * [`crossover`] — the AKS constant-factor crossover analysis (E15);
//! * [`traces`] — the worked examples of Figs. 8 and 9 (E9, E10);
//! * [`ablations`] — design-choice ablations measured on the built
//!   circuits: adder kind, adaptivity, time-multiplexed dispatch
//!   (E16–E18);
//! * [`faults`] — fault-injection campaigns: detection, concurrent
//!   (error-rail) detection, and graceful degradation of the four
//!   networks under the `absort-faults` taxonomy, including sampled
//!   multi-fault sets and checkpoint/resume campaign driving;
//! * [`clocked_faults`] — the same questions asked of the clocked
//!   Model B fish streamer: permanent and cycle-precise transient
//!   faults scored over full sort schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod checklist;
pub mod clocked_faults;
pub mod concentrators;
pub mod crossover;
pub mod faults;
pub mod figures;
pub mod sweeps;
pub mod table;
pub mod table2;
pub mod traces;
