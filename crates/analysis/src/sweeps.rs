//! Cost/depth/time sweeps: the figure-series data behind experiments
//! E4–E6 and E8.
//!
//! For every network the paper constructs, sweep `n` and report the
//! *measured* cost and depth of the circuit we actually build, next to
//! the paper's closed form. Circuits are built up to a configurable size
//! cap (they have `Θ(n lg n)` components); beyond the cap the exact
//! recurrences — themselves validated against built circuits in the unit
//! tests — extend the series.

use crate::table::{group_digits, Table};
use absort_baselines::batcher_bits;
use absort_baselines::columnsort::{ColumnsortModel, Geometry};
use absort_core::fish::{formulas as fishf, schedule};
use absort_core::muxmerge;
use absort_core::prefix;

/// One sweep point for a combinational sorter.
#[derive(Debug, Clone, Copy)]
pub struct SorterPoint {
    /// Input size.
    pub n: usize,
    /// Measured cost of the built circuit (`None` above the build cap).
    pub measured_cost: Option<u64>,
    /// Measured depth of the built circuit.
    pub measured_depth: Option<u64>,
    /// The paper's closed-form (or exact-recurrence) cost.
    pub formula_cost: u64,
    /// The paper's closed-form (or exact-recurrence) depth.
    pub formula_depth: u64,
}

/// Sweeps the prefix binary sorter (E5 / Fig. 5): measured vs
/// `3n lg n` dominant cost and the `3 lg² n + 2 lg n lg lg n` depth
/// bound.
pub fn prefix_sweep(max_exp: u32, build_cap_exp: u32) -> Vec<SorterPoint> {
    (2..=max_exp)
        .map(|a| {
            let n = 1usize << a;
            let (mc, md) = if a <= build_cap_exp {
                let c = prefix::build(n);
                (Some(c.cost().total), Some(c.depth() as u64))
            } else {
                (None, None)
            };
            SorterPoint {
                n,
                measured_cost: mc,
                measured_depth: md,
                formula_cost: prefix::paper_cost_dominant(n),
                formula_depth: prefix::paper_depth_bound(n),
            }
        })
        .collect()
}

/// Sweeps the mux-merger binary sorter (E6 / Fig. 6): measured vs the
/// exact recurrence (`≈ 4n lg n` cost).
pub fn muxmerge_sweep(max_exp: u32, build_cap_exp: u32) -> Vec<SorterPoint> {
    (1..=max_exp)
        .map(|a| {
            let n = 1usize << a;
            let (mc, md) = if a <= build_cap_exp {
                let c = muxmerge::build(n);
                (Some(c.cost().total), Some(c.depth() as u64))
            } else {
                (None, None)
            };
            SorterPoint {
                n,
                measured_cost: mc,
                measured_depth: md,
                formula_cost: muxmerge::formulas::sorter_cost_exact(n),
                formula_depth: muxmerge::formulas::sorter_depth_exact(n),
            }
        })
        .collect()
}

/// One sweep point for the fish sorter (E8 / Fig. 7).
#[derive(Debug, Clone, Copy)]
pub struct FishPoint {
    /// Input size.
    pub n: usize,
    /// Group count.
    pub k: usize,
    /// Exact cost of the construction.
    pub cost_exact: u64,
    /// Paper closed-form bound (eq. 17).
    pub cost_paper: u64,
    /// Cost per input (the O(n) headline: should stay bounded).
    pub cost_per_input: f64,
    /// Sorting time, serial front end.
    pub time_serial: u64,
    /// Sorting time, pipelined front end.
    pub time_pipelined: u64,
}

/// Sweeps the fish sorter at `k = lg n` (rounded to a power of two).
pub fn fish_sweep(exps: &[u32]) -> Vec<FishPoint> {
    exps.iter()
        .map(|&a| {
            let n = 1usize << a;
            let f = absort_core::FishSorter::with_default_k(n);
            FishPoint {
                n,
                k: f.k,
                cost_exact: fishf::total_cost_exact(n, f.k),
                cost_paper: fishf::total_cost_paper(n, f.k),
                cost_per_input: fishf::total_cost_exact(n, f.k) as f64 / n as f64,
                time_serial: schedule::sorting_time(n, f.k, false),
                time_pipelined: schedule::sorting_time(n, f.k, true),
            }
        })
        .collect()
}

/// Sweeps the fish sorter across `k` at fixed `n`, exposing the
/// cost-minimising `k ≈ lg n` the paper derives (eqs. 19–21).
pub fn fish_k_sweep(n: usize) -> Vec<FishPoint> {
    let max_k_exp = n.trailing_zeros() / 2;
    (1..=max_k_exp)
        .map(|b| {
            let k = 1usize << b;
            FishPoint {
                n,
                k,
                cost_exact: fishf::total_cost_exact(n, k),
                cost_paper: fishf::total_cost_paper(n, k),
                cost_per_input: fishf::total_cost_exact(n, k) as f64 / n as f64,
                time_serial: schedule::sorting_time(n, k, false),
                time_pipelined: schedule::sorting_time(n, k, true),
            }
        })
        .collect()
}

/// Renders a combinational-sorter sweep for the report.
pub fn render_sorter_sweep(points: &[SorterPoint], formula_name: &str) -> String {
    let mut t = Table::new([
        "n",
        "cost(built)",
        formula_name,
        "depth(built)",
        "depth(formula)",
    ]);
    for p in points {
        t.row([
            p.n.to_string(),
            p.measured_cost.map_or("-".into(), group_digits),
            group_digits(p.formula_cost),
            p.measured_depth.map_or("-".into(), |d| d.to_string()),
            p.formula_depth.to_string(),
        ]);
    }
    t.render()
}

/// Renders a fish sweep for the report.
pub fn render_fish_sweep(points: &[FishPoint]) -> String {
    let mut t = Table::new([
        "n",
        "k",
        "cost(exact)",
        "cost(eq.17)",
        "cost/n",
        "T serial",
        "T pipelined",
    ]);
    for p in points {
        t.row([
            p.n.to_string(),
            p.k.to_string(),
            group_digits(p.cost_exact),
            group_digits(p.cost_paper),
            format!("{:.1}", p.cost_per_input),
            group_digits(p.time_serial),
            group_digits(p.time_pipelined),
        ]);
    }
    t.render()
}

/// Sweeps the nonadaptive bit-level Fig. 4(b) sorter (the E17 ablation's
/// baseline).
pub fn nonadaptive_sweep(max_exp: u32, build_cap_exp: u32) -> Vec<SorterPoint> {
    use absort_core::nonadaptive;
    (1..=max_exp)
        .map(|a| {
            let n = 1usize << a;
            let (mc, md) = if a <= build_cap_exp {
                let c = nonadaptive::build(n);
                (Some(c.cost().total), Some(c.depth() as u64))
            } else {
                (None, None)
            };
            SorterPoint {
                n,
                measured_cost: mc,
                measured_depth: md,
                formula_cost: nonadaptive::cost_exact(n),
                formula_depth: (a * (a + 1) / 2) as u64,
            }
        })
        .collect()
}

/// Builds the three combinational-sorter sweeps concurrently with scoped
/// threads (each sweep constructs `Θ(n lg n)`-component circuits, so the
/// parallelism is worth having in the `repro` driver).
pub fn all_sorter_sweeps_parallel(
    max_exp: u32,
    build_cap_exp: u32,
) -> (Vec<SorterPoint>, Vec<SorterPoint>, Vec<SorterPoint>) {
    let mut prefix_pts = Vec::new();
    let mut mux_pts = Vec::new();
    let mut na_pts = Vec::new();
    crossbeam::thread::scope(|s| {
        let h1 = s.spawn(|_| prefix_sweep(max_exp, build_cap_exp));
        let h2 = s.spawn(|_| muxmerge_sweep(max_exp, build_cap_exp));
        let h3 = s.spawn(|_| nonadaptive_sweep(max_exp, build_cap_exp));
        prefix_pts = h1.join().expect("prefix sweep panicked");
        mux_pts = h2.join().expect("muxmerge sweep panicked");
        na_pts = h3.join().expect("nonadaptive sweep panicked");
    })
    .expect("sweep worker panicked");
    (prefix_pts, mux_pts, na_pts)
}

/// The four-way sorter comparison series (the headline figure): bit-level
/// cost of Batcher, prefix, mux-merger, fish, and columnsort at each `n`.
pub fn cost_comparison(exps: &[u32]) -> Table {
    let mut t = Table::new([
        "n",
        "Batcher (n lg²n)",
        "prefix (3n lg n)",
        "mux-merger (4n lg n)",
        "fish (O(n))",
        "columnsort TM (O(n))",
    ]);
    for &a in exps {
        let n = 1usize << a;
        let f = absort_core::FishSorter::with_default_k(n);
        let cs = ColumnsortModel {
            g: Geometry::paper_params(n),
        };
        t.row([
            format!("2^{a}"),
            group_digits(batcher_bits::binary_cost(n)),
            group_digits(prefix::paper_cost_dominant(n)),
            group_digits(muxmerge::formulas::sorter_cost_exact(n)),
            group_digits(fishf::total_cost_exact(n, f.k)),
            group_digits(cs.cost()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sweep_measured_matches_formula_shape() {
        for p in prefix_sweep(10, 10) {
            let mc = p.measured_cost.unwrap();
            // within ±12n of 3n lg n (the audited adder-tree slack)
            assert!(
                mc + 12 * p.n as u64 >= p.formula_cost && mc <= p.formula_cost + 12 * p.n as u64,
                "n={}: measured {mc} vs formula {}",
                p.n,
                p.formula_cost
            );
            assert!(p.measured_depth.unwrap() <= p.formula_depth);
        }
    }

    #[test]
    fn muxmerge_sweep_exact_match() {
        for p in muxmerge_sweep(10, 10) {
            assert_eq!(p.measured_cost.unwrap(), p.formula_cost, "n={}", p.n);
            assert_eq!(p.measured_depth.unwrap(), p.formula_depth, "n={}", p.n);
        }
    }

    #[test]
    fn fish_cost_per_input_is_bounded() {
        for p in fish_sweep(&[10, 12, 14, 16, 18, 20]) {
            assert!(
                p.cost_per_input < 18.0,
                "n={}: {} per input",
                p.n,
                p.cost_per_input
            );
        }
    }

    #[test]
    fn fish_k_sweep_k_lg_n_is_near_optimal() {
        // The paper minimises its cost *bound* (eq. 17) at k = lg n; the
        // exact construction cost keeps improving slightly toward larger
        // k (the n/k-sorter shrinks faster than the merger's k-terms
        // grow), so the claim to verify is near-optimality: the k = lg n
        // point must be within 30% of the sweep minimum, and the minimum
        // itself stays Θ(n).
        let n = 1usize << 16;
        let pts = fish_k_sweep(n);
        let best = pts.iter().map(|p| p.cost_exact).min().unwrap();
        let at_lgn = pts.iter().find(|p| p.k == 16).unwrap().cost_exact;
        assert!(
            at_lgn as f64 <= best as f64 * 1.3,
            "k=lg n cost {at_lgn} vs best {best}"
        );
        assert!(best >= 11 * n as u64, "minimum below the 11n merger floor");
    }

    #[test]
    fn crossovers_in_comparison_series() {
        // Figure-shape check: fish < prefix < mux-merger < Batcher at 2^16.
        let n = 1usize << 16;
        let f = absort_core::FishSorter::with_default_k(n);
        let fish = fishf::total_cost_exact(n, f.k);
        let pre = prefix::paper_cost_dominant(n);
        let mux = muxmerge::formulas::sorter_cost_exact(n);
        let bat = batcher_bits::binary_cost(n);
        assert!(fish < pre && pre < mux && mux < bat);
    }

    #[test]
    fn parallel_sweeps_match_serial() {
        let (p, m, na) = all_sorter_sweeps_parallel(8, 6);
        let ps = prefix_sweep(8, 6);
        let ms = muxmerge_sweep(8, 6);
        let nas = nonadaptive_sweep(8, 6);
        for (a, b) in p.iter().zip(&ps) {
            assert_eq!(a.measured_cost, b.measured_cost);
            assert_eq!(a.formula_cost, b.formula_cost);
        }
        for (a, b) in m.iter().zip(&ms) {
            assert_eq!(a.measured_cost, b.measured_cost);
        }
        for (a, b) in na.iter().zip(&nas) {
            assert_eq!(a.measured_cost, b.measured_cost);
        }
    }

    #[test]
    fn nonadaptive_sweep_measured_matches_closed_form() {
        for p in nonadaptive_sweep(9, 9) {
            assert_eq!(p.measured_cost.unwrap(), p.formula_cost, "n={}", p.n);
            assert_eq!(p.measured_depth.unwrap(), p.formula_depth, "n={}", p.n);
        }
    }

    #[test]
    fn render_has_all_rows() {
        let pts = prefix_sweep(6, 4);
        let s = render_sorter_sweep(&pts, "3n lg n");
        assert_eq!(s.lines().count(), 2 + pts.len());
        let t = cost_comparison(&[8, 12, 16]);
        assert_eq!(t.len(), 3);
    }
}
